// B14 — log-shipping replication (docs/REPLICATION.md). Two questions:
//
//   1. Lag vs write load: a primary commits in bursts of B transactions
//      before the follower gets to poll. How much durable-but-unapplied
//      log piles up (the reported lag bound), and how fast does the
//      follower drain it (applied groups/sec)?
//   2. Follower read throughput vs fan-out: 1..4 followers each serving
//      snapshot count(*) reads from the same primary directory — reads
//      scale with followers because each replays into its own engine and
//      readers never touch the primary.
//
// Custom main (not google-benchmark): timed runs against fresh WAL
// directories, results written to BENCH_replication.json for the CI
// trend tracker. Fsync is pinned OFF so the numbers measure the
// replication machinery, not the disk.
//
// Run: ./build/bench/bench_replication [txns-per-config]

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "replication/follower.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_bench_replication_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

RuleEngineOptions PrimaryOptions(const std::string& dir) {
  RuleEngineOptions options;
  options.wal_dir = dir;
  options.wal_fsync = WalFsyncPolicy::kOff;
  options.wal_checkpoint_interval = 0;  // no rotations mid-measurement
  return options;
}

replication::FollowerOptions MakeFollowerOptions(const std::string& dir) {
  replication::FollowerOptions options;
  options.engine = PrimaryOptions(dir);
  options.retry.initial_delay = std::chrono::microseconds(20);
  options.retry.max_delay = std::chrono::microseconds(200);
  options.retry.max_attempts = 50;
  return options;
}

struct RunResult {
  std::string experiment;  // "lag" | "reads"
  int batch = 0;           // lag: commits per burst
  int followers = 0;       // reads: fan-out
  int operations = 0;      // groups applied / reads served
  double seconds = 0;
  double per_sec = 0;
  uint64_t max_lag_bytes = 0;
};

Status RunTxn(Engine* engine, int i) {
  return engine->Execute("insert into t values (" + std::to_string(i) +
                         ", " + std::to_string(i % 97) + ")");
}

uint64_t FileSize(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

/// Lag vs write load: the primary commits `batch` transactions between
/// follower polls; the follower's first poll of each burst reports the
/// accumulated lag bound, then drains it.
RunResult RunLag(int batch, int total_txns) {
  const std::string dir = MakeTempDir();
  auto primary = Engine::Open(PrimaryOptions(dir));
  Check(primary.status(), "open primary");
  Check(primary.value()->Execute("create table t (id int, v int)"), "ddl");

  auto follower = replication::Follower::Open(MakeFollowerOptions(dir));
  Check(follower.status(), "open follower");
  Check(follower.value()->CatchUp(), "initial catch-up");

  const std::string log_path = dir + "/wal.log";
  uint64_t drained = FileSize(log_path);
  uint64_t max_lag = 0;
  double replay_seconds = 0;
  for (int done = 0; done < total_txns; done += batch) {
    for (int i = 0; i < batch; ++i) {
      Check(RunTxn(primary.value().get(), done + i), "txn");
    }
    // The burst is durable but unapplied: this is the lag bound a reader
    // would see before the follower's next poll.
    const uint64_t size = FileSize(log_path);
    if (size - drained > max_lag) max_lag = size - drained;
    const auto start = std::chrono::steady_clock::now();
    Check(follower.value()->CatchUp(), "catch-up");
    replay_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    drained = size;
  }

  RunResult r;
  r.experiment = "lag";
  r.batch = batch;
  r.operations = total_txns;
  r.seconds = replay_seconds;
  r.per_sec = total_txns / replay_seconds;
  r.max_lag_bytes = max_lag;
  return r;
}

/// Read throughput vs fan-out: `followers` replicas of one preloaded
/// primary directory, one reader thread each, fixed read count.
RunResult RunReads(int followers, int reads_per_follower) {
  const std::string dir = MakeTempDir();
  {
    auto primary = Engine::Open(PrimaryOptions(dir));
    Check(primary.status(), "open primary");
    Check(primary.value()->Execute("create table t (id int, v int)"),
          "ddl");
    for (int i = 0; i < 200; ++i) {
      Check(RunTxn(primary.value().get(), i), "load");
    }
  }  // primary closed: followers read a quiesced directory

  std::vector<std::unique_ptr<replication::Follower>> fleet;
  for (int f = 0; f < followers; ++f) {
    auto follower = replication::Follower::Open(MakeFollowerOptions(dir));
    Check(follower.status(), "open follower");
    Check(follower.value()->CatchUp(), "catch-up");
    fleet.push_back(std::move(follower).value());
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  for (int f = 0; f < followers; ++f) {
    readers.emplace_back([&, f] {
      for (int i = 0; i < reads_per_follower; ++i) {
        auto result =
            fleet[f]->Query("select count(*) from t where v = " +
                            std::to_string(i % 97));
        Check(result.status(), "read");
      }
    });
  }
  for (std::thread& t : readers) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  r.experiment = "reads";
  r.followers = followers;
  r.operations = followers * reads_per_follower;
  r.seconds = secs;
  r.per_sec = r.operations / secs;
  return r;
}

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  // The bench pins fsync off; the env override would skew the lag runs.
  ::unsetenv("SOPR_WAL_FSYNC");
  const int total = argc > 1 ? std::atoi(argv[1]) : 256;

  std::vector<sopr::RunResult> results;
  for (int batch : {1, 4, 16, 64}) {
    results.push_back(sopr::RunLag(batch, total));
  }
  for (int followers : {1, 2, 4}) {
    results.push_back(sopr::RunReads(followers, total * 4));
  }

  std::ofstream json("BENCH_replication.json");
  json << "{\n  \"bench\": \"replication\",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const sopr::RunResult& r = results[i];
    json << "    {\"experiment\": \"" << r.experiment << "\", \"batch\": "
         << r.batch << ", \"followers\": " << r.followers
         << ", \"operations\": " << r.operations << ", \"seconds\": "
         << r.seconds << ", \"per_sec\": " << r.per_sec
         << ", \"max_lag_bytes\": " << r.max_lag_bytes << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
    std::printf(
        "%-5s batch=%-3d followers=%-2d ops=%-6d %8.3fs %10.0f/s "
        "max_lag=%llu\n",
        r.experiment.c_str(), r.batch, r.followers, r.operations, r.seconds,
        r.per_sec, static_cast<unsigned long long>(r.max_lag_bytes));
  }
  double replay_per_sec = 0;
  double reads_per_sec = 0;
  for (const sopr::RunResult& r : results) {
    if (r.experiment == "lag" && r.per_sec > replay_per_sec) {
      replay_per_sec = r.per_sec;
    }
    if (r.experiment == "reads" && r.per_sec > reads_per_sec) {
      reads_per_sec = r.per_sec;
    }
  }
  json << "  ],\n  \"replay_txns_per_sec\": " << replay_per_sec
       << ",\n  \"follower_reads_per_sec\": " << reads_per_sec << "\n}\n";
  std::cout << "wrote BENCH_replication.json\n";
  return 0;
}
