// B6 — the ablation the paper itself flags (§4.3: "associating transition
// information on a rule-by-rule basis will introduce considerable
// redundancy — there is substantial need and room for optimization"):
// per-rule eager maintenance (Figure 1 verbatim) vs a shared transition
// log with lazy per-rule composition. Sweeps the number of *defined but
// untriggered* rules: eager mode pays O(rules) per transition, lazy mode
// pays only for rules actually considered.
//
// Run: ./build/bench/bench_transinfo_ablation

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"

namespace sopr {
namespace {

/// Creates `idle_rules` rules that watch an untouched table, plus one
/// cascade rule that does all the work, then deletes the chain root.
void RunWorkload(MaintenanceMode mode, int idle_rules, int depth) {
  RuleEngineOptions options;
  options.maintenance = mode;
  options.max_rule_firings = 100000;
  Engine engine(options);
  BenchCheck(engine.Execute(
                 "create table emp (name string, emp_no int, "
                 "salary double, dept_no int)"),
             "emp");
  BenchCheck(engine.Execute("create table dept (dept_no int, mgr_no int)"),
             "dept");
  BenchCheck(engine.Execute("create table idle (x int)"), "idle");

  for (int i = 0; i < idle_rules; ++i) {
    BenchCheck(engine.Execute("create rule idle" + std::to_string(i) +
                              " when inserted into idle "
                              "then delete from idle where x = " +
                              std::to_string(i)),
               "idle rule");
  }

  std::string emps = "insert into emp values ";
  std::string depts = "insert into dept values ";
  for (int i = 0; i <= depth; ++i) {
    if (i > 0) {
      emps += ", ";
      depts += ", ";
    }
    emps += "('e" + std::to_string(i) + "', " + std::to_string(i) + ", 100, " +
            std::to_string(i) + ")";
    depts += "(" + std::to_string(i + 1) + ", " + std::to_string(i) + ")";
  }
  BenchCheck(engine.Execute(emps), "emps");
  BenchCheck(engine.Execute(depts), "depts");
  BenchCheck(engine.Execute(
                 "create rule cascade when deleted from emp "
                 "then delete from emp where dept_no in "
                 "  (select dept_no from dept where mgr_no in "
                 "   (select emp_no from deleted emp)); "
                 "delete from dept where mgr_no in "
                 "  (select emp_no from deleted emp)"),
             "rule");

  BenchCheck(engine.Execute("delete from emp where emp_no = 0"), "delete");
  if (engine.TableSize("emp").ValueOr(99) != 0) {
    std::abort();
  }
}

void BM_PerRuleMaintenance(benchmark::State& state) {
  const int idle_rules = static_cast<int>(state.range(0));
  const int depth = 32;
  for (auto _ : state) {
    RunWorkload(MaintenanceMode::kPerRule, idle_rules, depth);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_PerRuleMaintenance)->Arg(0)->Arg(8)->Arg(32)->Arg(128);

void BM_SharedLogMaintenance(benchmark::State& state) {
  const int idle_rules = static_cast<int>(state.range(0));
  const int depth = 32;
  for (auto _ : state) {
    RunWorkload(MaintenanceMode::kSharedLog, idle_rules, depth);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_SharedLogMaintenance)->Arg(0)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
