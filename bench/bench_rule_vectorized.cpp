// B17 — vectorized set-oriented rule evaluation vs the row-at-a-time
// path (docs/EXECUTION.md). One engine pair differing ONLY in
// RuleEngineOptions::vectorized_execution runs the same rule-dense
// workloads single-threaded:
//
//   rule_dense — the headline. Each transaction updates a 25-row slab
//                of t, which fires (a) a join rule whose action joins
//                the transition table against a 30k-row base table —
//                the build side dominates the transaction, so this
//                measures the build/probe hash join (u64 key digests,
//                bucket vector) against the row path's ordered-map join
//                (a heap-allocated Row key copied and compared ~log n
//                times per build row) — and (b) an aggregate-condition
//                rule over the transition table; every few transactions
//                a delete fires a cascade rule. This is the paper's
//                set-oriented shape: few transactions, rule work over
//                whole transition sets.
//   filter     — a NULL-heavy residual predicate scanned over a 100k-row
//                table (no join): batch predicate evaluation with
//                selection vectors vs the per-row expression tree walk.
//
// Both engines produce identical results (the differential suite proves
// it); this bench measures only the cost. Honest numbers: everything is
// one thread, so "cpus" is reported as 1 and the speedup is pure
// per-row-overhead elimination, not parallelism. The JSON also records
// the exec-layer counters so the trend tracker can verify the hash join
// actually engaged (hash_join_builds > 0) rather than silently falling
// back.
//
// Run: ./build/bench/bench_rule_vectorized [iterations]
// Emits BENCH_rule_vectorized.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/row_batch.h"

namespace sopr {
namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

constexpr int kTableRows = 2000;   // t: update target
constexpr int kSlabRows = 25;      // transition-set size per update
constexpr int kBaseRows = 30000;   // u: hash-join build side
constexpr int kMirrorRows = 100;   // v: cascade target
constexpr int kFilterRows = 100000;

void SetupRuleDense(Engine* engine) {
  Check(engine->Execute("create table t (a int, b int, s string)"),
        "create t");
  Check(engine->Execute("create table u (s string, c int)"), "create u");
  Check(engine->Execute("create table v (a int)"), "create v");
  Check(engine->Execute("create table log (c int)"), "create log");
  // String join key: the row path's ordered-map join copies the key
  // string into a heap-allocated Row per build row and compares it
  // ~log n times; the hash join digests it once.
  Check(engine->Execute(
            "create rule jn when updated t.b "
            "then insert into log (select u.c from new updated t.b x, u "
            "where x.s = u.s)"),
        "rule jn");
  Check(engine->Execute(
            "create rule agg when updated t.b "
            "if (select count(*) from new updated t.b) > 10 "
            "then insert into log values (-1)"),
        "rule agg");
  Check(engine->Execute(
            "create rule cas when deleted from t "
            "then delete from v where a in (select a from deleted t)"),
        "rule cas");

  std::string batch;
  for (int i = 0; i < kBaseRows; ++i) {
    batch += "insert into u values ('k" + std::to_string(i) + "', " +
             std::to_string(i * 3) + "); ";
    if (i % 500 == 499) {
      Check(engine->Execute(batch), "load u");
      batch.clear();
    }
  }
  for (int i = 0; i < kTableRows; ++i) {
    batch += "insert into t values (" + std::to_string(i) + ", 0, 'k" +
             std::to_string(i) + "'); ";
    if (i < kMirrorRows) {
      batch += "insert into v values (" + std::to_string(i) + "); ";
    }
    if (i % 250 == 249) {
      Check(engine->Execute(batch), "load t/v");
      batch.clear();
    }
  }
  if (!batch.empty()) Check(engine->Execute(batch), "load tail");
}

double RunRuleDense(Engine* engine, int iters) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    // Fires jn (25-row transition ⋈ 30k-row base build) and agg (count
    // over the transition set) in one transaction.
    Check(engine->Execute("update t set b = b + 1 where a < " +
                          std::to_string(kSlabRows)),
          "slab update");
    Check(engine->Execute("delete from log"), "clear log");
    if (i % 4 == 3) {
      // Cascade: delete a 10-row slice of t, rule cas mirrors it in v,
      // then restore both.
      Check(engine->Execute("delete from t where a >= " +
                            std::to_string(kTableRows - 10)),
            "cascade delete");
      std::string restore;
      for (int k = kTableRows - 10; k < kTableRows; ++k) {
        restore += "insert into t values (" + std::to_string(k) + ", 0, 'k" +
                   std::to_string(k) + "'); ";
      }
      Check(engine->Execute(restore), "restore slice");
    }
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void SetupFilter(Engine* engine) {
  Check(engine->Execute("create table big (a int, b int)"), "create big");
  std::string batch;
  for (int i = 0; i < kFilterRows; ++i) {
    batch += "insert into big values (" + std::to_string(i) + ", " +
             (i % 7 == 0 ? std::string("null")
                         : std::to_string((i * 37) % 10000)) +
             "); ";
    if (i % 500 == 499) {
      Check(engine->Execute(batch), "load big");
      batch.clear();
    }
  }
}

double RunFilter(Engine* engine, int iters) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = engine->Query(
        "select count(*) from big "
        "where (b between 100 and 9000 or b is null) "
        "and a + b > 200 and not (b = 5000)");
    Check(r.status(), "filter query");
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

struct RunResult {
  std::string mode;
  std::string workload;
  int iters = 0;
  double seconds = 0;
  double tx_per_sec = 0;
};

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 12;
  std::vector<sopr::RunResult> results;
  double dense_row = 0, dense_vec = 0, filter_row = 0, filter_vec = 0;

  const uint64_t builds_before =
      sopr::exec::GlobalStats().hash_join_builds.load();

  for (bool vectorized : {false, true}) {
    sopr::RuleEngineOptions options;
    options.vectorized_execution = vectorized;
    const char* mode = vectorized ? "vector" : "row";

    {
      sopr::Engine engine(options);
      sopr::SetupRuleDense(&engine);
      sopr::RunRuleDense(&engine, 1);  // warm-up, outside the window
      double secs = sopr::RunRuleDense(&engine, iters);
      results.push_back({mode, "rule_dense", iters, secs, iters / secs});
      (vectorized ? dense_vec : dense_row) = secs;
      std::printf("rule_dense %-7s %6.3fs  (%.2f tx/s)\n", mode, secs,
                  iters / secs);
    }
    {
      sopr::Engine engine(options);
      sopr::SetupFilter(&engine);
      sopr::RunFilter(&engine, 1);
      double secs = sopr::RunFilter(&engine, iters);
      results.push_back({mode, "filter", iters, secs, iters / secs});
      (vectorized ? filter_vec : filter_row) = secs;
      std::printf("filter     %-7s %6.3fs  (%.2f q/s)\n", mode, secs,
                  iters / secs);
    }
  }

  const uint64_t builds =
      sopr::exec::GlobalStats().hash_join_builds.load() - builds_before;
  const uint64_t fallbacks =
      sopr::exec::GlobalStats().hash_join_fallbacks.load();
  const double dense_speedup = dense_vec > 0 ? dense_row / dense_vec : 0;
  const double filter_speedup = filter_vec > 0 ? filter_row / filter_vec : 0;

  std::ofstream json("BENCH_rule_vectorized.json");
  json << "{\n  \"bench\": \"rule_vectorized\",\n  \"cpus\": 1,\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const sopr::RunResult& r = results[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"workload\": \""
         << r.workload << "\", \"iters\": " << r.iters
         << ", \"seconds\": " << r.seconds
         << ", \"tx_per_sec\": " << r.tx_per_sec << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  // The headline is rule_dense: large transition sets joined against a
  // base table inside rule actions, the paper's set-oriented shape. The
  // counters prove the hash join engaged during the vector runs instead
  // of silently taking the nested-loop fallback.
  json << "  ],\n  \"rule_dense_speedup\": " << dense_speedup
       << ",\n  \"filter_speedup\": " << filter_speedup
       << ",\n  \"hash_join_builds\": " << builds
       << ",\n  \"hash_join_fallbacks\": " << fallbacks << "\n}\n";
  std::cout << "wrote BENCH_rule_vectorized.json (rule_dense speedup "
            << dense_speedup << "x, filter speedup " << filter_speedup
            << "x, " << builds << " hash-join builds)\n";
  return 0;
}
