// B17/B18 — vectorized set-oriented rule evaluation vs the
// row-at-a-time path (docs/EXECUTION.md). Three engines differing ONLY
// in RuleEngineOptions::{vectorized_execution, columnar_execution} run
// the same rule-dense workloads single-threaded: `row` (scalar),
// `vector` (B17: pointer batches + selection vectors + hash join), and
// `columnar` (B18: hot predicate/join-key columns decomposed into
// contiguous typed arrays evaluated by branch-light kernels, join keys
// digested by bulk column loops):
//
//   rule_dense — the headline. Each transaction updates a 25-row slab
//                of t, which fires (a) a join rule whose action joins
//                the transition table against a 30k-row base table —
//                the build side dominates the transaction, so this
//                measures the build/probe hash join (u64 key digests,
//                bucket vector) against the row path's ordered-map join
//                (a heap-allocated Row key copied and compared ~log n
//                times per build row) — and (b) an aggregate-condition
//                rule over the transition table; every few transactions
//                a delete fires a cascade rule. This is the paper's
//                set-oriented shape: few transactions, rule work over
//                whole transition sets.
//   filter     — a NULL-heavy residual predicate scanned over a 100k-row
//                table (no join): batch predicate evaluation with
//                selection vectors vs the per-row expression tree walk.
//
// Both engines produce identical results (the differential suite proves
// it); this bench measures only the cost. Honest numbers: everything is
// one thread, so "cpus" is reported as 1 and the speedup is pure
// per-row-overhead elimination, not parallelism. The JSON also records
// the exec-layer counters so the trend tracker can verify the hash join
// actually engaged (hash_join_builds > 0) rather than silently falling
// back.
//
// Run: ./build/bench/bench_rule_vectorized [iterations]
// Emits BENCH_rule_vectorized.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/row_batch.h"

namespace sopr {
namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

constexpr int kTableRows = 2000;   // t: update target
constexpr int kSlabRows = 25;      // transition-set size per update
constexpr int kBaseRows = 30000;   // u: hash-join build side
constexpr int kMirrorRows = 100;   // v: cascade target
constexpr int kFilterRows = 100000;

void SetupRuleDense(Engine* engine) {
  Check(engine->Execute("create table t (a int, b int, s string)"),
        "create t");
  Check(engine->Execute("create table u (s string, c int)"), "create u");
  Check(engine->Execute("create table v (a int)"), "create v");
  Check(engine->Execute("create table log (c int)"), "create log");
  // String join key: the row path's ordered-map join copies the key
  // string into a heap-allocated Row per build row and compares it
  // ~log n times; the hash join digests it once.
  Check(engine->Execute(
            "create rule jn when updated t.b "
            "then insert into log (select u.c from new updated t.b x, u "
            "where x.s = u.s)"),
        "rule jn");
  Check(engine->Execute(
            "create rule agg when updated t.b "
            "if (select count(*) from new updated t.b) > 10 "
            "then insert into log values (-1)"),
        "rule agg");
  Check(engine->Execute(
            "create rule cas when deleted from t "
            "then delete from v where a in (select a from deleted t)"),
        "rule cas");

  std::string batch;
  for (int i = 0; i < kBaseRows; ++i) {
    batch += "insert into u values ('k" + std::to_string(i) + "', " +
             std::to_string(i * 3) + "); ";
    if (i % 500 == 499) {
      Check(engine->Execute(batch), "load u");
      batch.clear();
    }
  }
  for (int i = 0; i < kTableRows; ++i) {
    batch += "insert into t values (" + std::to_string(i) + ", 0, 'k" +
             std::to_string(i) + "'); ";
    if (i < kMirrorRows) {
      batch += "insert into v values (" + std::to_string(i) + "); ";
    }
    if (i % 250 == 249) {
      Check(engine->Execute(batch), "load t/v");
      batch.clear();
    }
  }
  if (!batch.empty()) Check(engine->Execute(batch), "load tail");
}

double RunRuleDense(Engine* engine, int iters) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    // Fires jn (25-row transition ⋈ 30k-row base build) and agg (count
    // over the transition set) in one transaction.
    Check(engine->Execute("update t set b = b + 1 where a < " +
                          std::to_string(kSlabRows)),
          "slab update");
    Check(engine->Execute("delete from log"), "clear log");
    if (i % 4 == 3) {
      // Cascade: delete a 10-row slice of t, rule cas mirrors it in v,
      // then restore both.
      Check(engine->Execute("delete from t where a >= " +
                            std::to_string(kTableRows - 10)),
            "cascade delete");
      std::string restore;
      for (int k = kTableRows - 10; k < kTableRows; ++k) {
        restore += "insert into t values (" + std::to_string(k) + ", 0, 'k" +
                   std::to_string(k) + "'); ";
      }
      Check(engine->Execute(restore), "restore slice");
    }
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void SetupFilter(Engine* engine) {
  Check(engine->Execute("create table big (a int, b int)"), "create big");
  std::string batch;
  for (int i = 0; i < kFilterRows; ++i) {
    batch += "insert into big values (" + std::to_string(i) + ", " +
             (i % 7 == 0 ? std::string("null")
                         : std::to_string((i * 37) % 10000)) +
             "); ";
    if (i % 500 == 499) {
      Check(engine->Execute(batch), "load big");
      batch.clear();
    }
  }
}

double RunFilter(Engine* engine, int iters) {
  // Arithmetic-dense NULL-heavy predicate: the conjuncts are
  // mostly-true, so the AND narrowing keeps the lanes full and every
  // engine pays the full per-row expression cost — the row path one
  // tree walk per row, the pointer-vector path one Value type switch
  // per lane per operator, the columnar path a handful of contiguous
  // int64 loops over the two decomposed columns.
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = engine->Query(
        "select count(*) from big "
        "where (b between 100 and 9000 or b is null) "
        "and a * 3 + b * 2 - a > 200 "
        "and b * 5 - a < 60000 "
        "and a * a + b * b >= 0 "
        "and (a - b) * 2 <> 1 "
        "and a * 7 - b * 3 + a * 2 - b > -100000 "
        "and (a + 1) * (b + 1) >= a * b "
        "and a * a - a * 2 + 1 >= 0 "
        "and b * b + b * 4 + 4 >= 0 "
        "and not (b = 5000)");
    Check(r.status(), "filter query");
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

struct RunResult {
  std::string mode;
  std::string workload;
  int iters = 0;
  double seconds = 0;
  double tx_per_sec = 0;
};

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 12;
  std::vector<sopr::RunResult> results;
  double dense_secs[3] = {0, 0, 0};
  double filter_secs[3] = {0, 0, 0};
  static const char* kModes[3] = {"row", "vector", "columnar"};

  const sopr::exec::ExecStatsSnapshot before =
      sopr::exec::SnapshotStats();

  for (int m = 0; m < 3; ++m) {
    sopr::RuleEngineOptions options;
    options.vectorized_execution = m > 0;
    options.columnar_execution = m == 2;
    const char* mode = kModes[m];

    {
      sopr::Engine engine(options);
      sopr::SetupRuleDense(&engine);
      sopr::RunRuleDense(&engine, 1);  // warm-up, outside the window
      double secs = sopr::RunRuleDense(&engine, iters);
      results.push_back({mode, "rule_dense", iters, secs, iters / secs});
      dense_secs[m] = secs;
      std::printf("rule_dense %-8s %6.3fs  (%.2f tx/s)\n", mode, secs,
                  iters / secs);
    }
    {
      sopr::Engine engine(options);
      sopr::SetupFilter(&engine);
      sopr::RunFilter(&engine, 1);
      double secs = sopr::RunFilter(&engine, iters);
      results.push_back({mode, "filter", iters, secs, iters / secs});
      filter_secs[m] = secs;
      std::printf("filter     %-8s %6.3fs  (%.2f q/s)\n", mode, secs,
                  iters / secs);
    }
  }

  const sopr::exec::ExecStatsSnapshot after =
      sopr::exec::SnapshotStats();
  const double dense_speedup =
      dense_secs[1] > 0 ? dense_secs[0] / dense_secs[1] : 0;
  const double filter_speedup =
      filter_secs[1] > 0 ? filter_secs[0] / filter_secs[1] : 0;
  // The B18 headlines: columnar vs the B17 pointer-vector path, same
  // workloads. filter_columnar_speedup is the acceptance number (NULL-
  // heavy predicate scan, kernels vs pointer batch evaluation).
  const double dense_columnar_speedup =
      dense_secs[2] > 0 ? dense_secs[1] / dense_secs[2] : 0;
  const double filter_columnar_speedup =
      filter_secs[2] > 0 ? filter_secs[1] / filter_secs[2] : 0;

  std::ofstream json("BENCH_rule_vectorized.json");
  json << "{\n  \"bench\": \"rule_vectorized\",\n  \"cpus\": 1,\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const sopr::RunResult& r = results[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"workload\": \""
         << r.workload << "\", \"iters\": " << r.iters
         << ", \"seconds\": " << r.seconds
         << ", \"tx_per_sec\": " << r.tx_per_sec << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  // The headline is rule_dense: large transition sets joined against a
  // base table inside rule actions, the paper's set-oriented shape. The
  // counters prove each layer actually engaged during its runs — the
  // hash join built tables (and, in the columnar run, built them
  // through the bulk digest loops), the kernels ran, and nothing
  // silently fell back to a slower path it was supposed to replace.
  json << "  ],\n  \"rule_dense_speedup\": " << dense_speedup
       << ",\n  \"filter_speedup\": " << filter_speedup
       << ",\n  \"rule_dense_columnar_speedup\": " << dense_columnar_speedup
       << ",\n  \"filter_columnar_speedup\": " << filter_columnar_speedup
       << ",\n  \"hash_join_builds\": "
       << after.hash_join_builds - before.hash_join_builds
       << ",\n  \"hash_join_columnar_builds\": "
       << after.hash_join_columnar_builds - before.hash_join_columnar_builds
       << ",\n  \"hash_join_fallbacks\": " << after.hash_join_fallbacks
       << ",\n  \"columnar_chunks\": "
       << after.columnar_chunks - before.columnar_chunks
       << ",\n  \"columns_built\": "
       << after.columns_built - before.columns_built
       << ",\n  \"columns_rejected\": "
       << after.columns_rejected - before.columns_rejected
       << ",\n  \"kernel_compare\": "
       << after.kernel_compare - before.kernel_compare
       << ",\n  \"kernel_arith\": " << after.kernel_arith - before.kernel_arith
       << ",\n  \"kernel_null_check\": "
       << after.kernel_null_check - before.kernel_null_check
       << ",\n  \"kernel_membership\": "
       << after.kernel_membership - before.kernel_membership
       << ",\n  \"kernel_logical\": "
       << after.kernel_logical - before.kernel_logical
       << ",\n  \"pointer_fallback_preds\": "
       << after.pointer_fallback_preds - before.pointer_fallback_preds
       << "\n}\n";
  std::cout << "wrote BENCH_rule_vectorized.json (rule_dense "
            << dense_speedup << "x vector, " << dense_columnar_speedup
            << "x columnar-over-vector; filter " << filter_speedup
            << "x vector, " << filter_columnar_speedup
            << "x columnar-over-vector)\n";
  return 0;
}
