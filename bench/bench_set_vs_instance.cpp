// B1 — the paper's core claim: set-oriented rules amortize rule overhead
// over the whole set of changes, while instance-oriented rules pay per
// tuple. Sweeps the batch size N for an audit rule (one insert per
// triggering insert) under both engines; the gap should widen with N.
//
// Run: ./build/bench/bench_set_vs_instance

#include <benchmark/benchmark.h>

#include "baseline/instance_engine.h"
#include "bench_util.h"
#include "engine/engine.h"
#include "sql/parser.h"

namespace sopr {
namespace {

constexpr const char* kAuditRule =
    "create rule audit_ins when inserted into orders "
    "then insert into audit (select id, 1 from inserted orders)";

void BM_SetOrientedAudit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Pre-parse the batch so both engines execute identical statement
  // objects (neither side is charged for parsing).
  auto batch_stmts = Parser::ParseScript(OrdersBatch(n));
  BenchCheck(batch_stmts.status(), "parse batch");
  std::vector<const Stmt*> ops;
  for (const StmtPtr& s : batch_stmts.value()) ops.push_back(s.get());

  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    CreateOrdersSchema(&engine);
    BenchCheck(engine.Execute(kAuditRule), "rule");
    state.ResumeTiming();

    auto trace = engine.rules().ExecuteBlock(ops);

    state.PauseTiming();
    BenchCheck(trace.status(), "block");
    auto audit = engine.TableSize("audit");
    if (!audit.ok() || audit.value() != static_cast<size_t>(n)) {
      state.SkipWithError("audit table wrong size");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SetOrientedAudit)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_InstanceOrientedAudit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string batch = OrdersBatch(n);
  auto rule_stmt = Parser::ParseStatement(kAuditRule);
  BenchCheck(rule_stmt.status(), "parse rule");
  auto batch_stmts = Parser::ParseScript(batch);
  BenchCheck(batch_stmts.status(), "parse batch");

  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    BenchCheck(db.CreateTable(TableSchema("orders", {{"id", ValueType::kInt},
                                                     {"qty", ValueType::kInt}})),
               "orders");
    BenchCheck(db.CreateTable(TableSchema("audit", {{"id", ValueType::kInt},
                                                    {"tag", ValueType::kInt}})),
               "audit");
    InstanceEngine engine(&db);
    auto def_stmt = Parser::ParseStatement(kAuditRule);
    std::shared_ptr<const CreateRuleStmt> def(
        static_cast<const CreateRuleStmt*>(def_stmt.value().release()));
    BenchCheck(engine.DefineRule(std::move(def)), "rule");
    std::vector<const Stmt*> ops;
    for (const StmtPtr& s : batch_stmts.value()) ops.push_back(s.get());
    state.ResumeTiming();

    auto stats = engine.ExecuteBlock(ops);

    state.PauseTiming();
    if (!stats.ok() ||
        stats.value().actions_executed != static_cast<size_t>(n)) {
      state.SkipWithError("instance engine did not run n actions");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InstanceOrientedAudit)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);

// Conditioned variant: the rule carries an `if` predicate. The
// set-oriented engine evaluates it once per transition; the instance
// engine evaluates it once per affected tuple — the per-instance overhead
// §1 of the paper argues against.
constexpr const char* kGuardedRule =
    "create rule guarded when inserted into orders "
    "if exists (select * from inserted orders where qty >= 0) "
    "then insert into audit (select id, 1 from inserted orders)";

void BM_SetOrientedGuarded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto batch_stmts = Parser::ParseScript(OrdersBatch(n));
  BenchCheck(batch_stmts.status(), "parse batch");
  std::vector<const Stmt*> ops;
  for (const StmtPtr& s : batch_stmts.value()) ops.push_back(s.get());

  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    CreateOrdersSchema(&engine);
    BenchCheck(engine.Execute(kGuardedRule), "rule");
    state.ResumeTiming();

    auto trace = engine.rules().ExecuteBlock(ops);

    state.PauseTiming();
    BenchCheck(trace.status(), "block");
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SetOrientedGuarded)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_InstanceOrientedGuarded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto batch_stmts = Parser::ParseScript(OrdersBatch(n));
  BenchCheck(batch_stmts.status(), "parse batch");

  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    BenchCheck(db.CreateTable(TableSchema("orders", {{"id", ValueType::kInt},
                                                     {"qty", ValueType::kInt}})),
               "orders");
    BenchCheck(db.CreateTable(TableSchema("audit", {{"id", ValueType::kInt},
                                                    {"tag", ValueType::kInt}})),
               "audit");
    InstanceEngine engine(&db);
    auto def_stmt = Parser::ParseStatement(kGuardedRule);
    std::shared_ptr<const CreateRuleStmt> def(
        static_cast<const CreateRuleStmt*>(def_stmt.value().release()));
    BenchCheck(engine.DefineRule(std::move(def)), "rule");
    std::vector<const Stmt*> ops;
    for (const StmtPtr& s : batch_stmts.value()) ops.push_back(s.get());
    state.ResumeTiming();

    auto stats = engine.ExecuteBlock(ops);

    state.PauseTiming();
    if (!stats.ok()) state.SkipWithError("instance run failed");
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InstanceOrientedGuarded)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

// Cascade variant: delete of a parent set cascades to a child table.
// Set-oriented: one rule firing per level; instance-oriented: one firing
// per deleted tuple.
void BM_SetOrientedCascade(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    BenchCheck(engine.Execute("create table parent (id int)"), "parent");
    BenchCheck(engine.Execute("create table child (id int, pid int)"),
               "child");
    BenchCheck(engine.Execute(
                   "create rule cascade when deleted from parent "
                   "then delete from child where pid in "
                   "(select id from deleted parent)"),
               "rule");
    std::string parents = "insert into parent values ";
    std::string children = "insert into child values ";
    for (int i = 0; i < n; ++i) {
      if (i > 0) {
        parents += ", ";
        children += ", ";
      }
      parents += "(" + std::to_string(i) + ")";
      children += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
    }
    BenchCheck(engine.Execute(parents), "parents");
    BenchCheck(engine.Execute(children), "children");
    state.ResumeTiming();

    BenchCheck(engine.Execute("delete from parent"), "delete");

    state.PauseTiming();
    if (engine.TableSize("child").ValueOr(99) != 0) {
      state.SkipWithError("cascade incomplete");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SetOrientedCascade)->Arg(8)->Arg(64)->Arg(256);

void BM_InstanceOrientedCascade(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    BenchCheck(
        db.CreateTable(TableSchema("parent", {{"id", ValueType::kInt}})),
        "parent");
    BenchCheck(db.CreateTable(TableSchema(
                   "child", {{"id", ValueType::kInt}, {"pid", ValueType::kInt}})),
               "child");
    for (int i = 0; i < n; ++i) {
      BenchCheck(db.InsertRow("parent", Row{Value::Int(i)}).status(), "p");
      BenchCheck(
          db.InsertRow("child", Row{Value::Int(i), Value::Int(i)}).status(),
          "c");
    }
    db.CommitAll();
    InstanceEngine engine(&db);
    auto def_stmt = Parser::ParseStatement(
        "create rule cascade when deleted from parent "
        "then delete from child where pid in (select id from deleted parent)");
    std::shared_ptr<const CreateRuleStmt> def(
        static_cast<const CreateRuleStmt*>(def_stmt.value().release()));
    BenchCheck(engine.DefineRule(std::move(def)), "rule");
    auto del = Parser::ParseStatement("delete from parent");
    std::vector<const Stmt*> ops{del.value().get()};
    state.ResumeTiming();

    auto stats = engine.ExecuteBlock(ops);

    state.PauseTiming();
    if (!stats.ok()) state.SkipWithError("instance cascade failed");
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InstanceOrientedCascade)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
