// B4 — rule selection (§4.4): overhead of picking among R triggered
// rules under each tie-break strategy and with a priority DAG.
//
// Run: ./build/bench/bench_selection

#include <benchmark/benchmark.h>

#include "rules/selection.h"

namespace sopr {
namespace {

std::vector<SelectionCandidate> MakeCandidates(int n) {
  std::vector<SelectionCandidate> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(SelectionCandidate{"rule" + std::to_string(i),
                                     static_cast<uint64_t>(i),
                                     static_cast<uint64_t>((i * 37) % n)});
  }
  return out;
}

void BM_SelectNoPriorities(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tie = static_cast<TieBreak>(state.range(1));
  auto candidates = MakeCandidates(n);
  PriorityGraph empty;
  for (auto _ : state) {
    int pick = SelectRule(candidates, empty, tie);
    benchmark::DoNotOptimize(pick);
  }
  state.SetLabel(TieBreakName(tie));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SelectNoPriorities)
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({512, 1})
    ->Args({8, 2})
    ->Args({64, 2})
    ->Args({512, 2});

void BM_SelectWithPriorityChain(benchmark::State& state) {
  // Worst case for the partial order: a full chain rule0 > rule1 > ... so
  // dominance checks traverse deep paths.
  const int n = static_cast<int>(state.range(0));
  auto candidates = MakeCandidates(n);
  PriorityGraph chain;
  for (int i = 0; i + 1 < n; ++i) {
    benchmark::DoNotOptimize(
        chain.AddEdge("rule" + std::to_string(i), "rule" + std::to_string(i + 1)));
  }
  for (auto _ : state) {
    int pick = SelectRule(candidates, chain, TieBreak::kCreationOrder);
    benchmark::DoNotOptimize(pick);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SelectWithPriorityChain)->Arg(8)->Arg(32)->Arg(128);

void BM_PriorityGraphAddEdgeWithCycleCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PriorityGraph g;
    for (int i = 0; i + 1 < n; ++i) {
      benchmark::DoNotOptimize(g.AddEdge("r" + std::to_string(i),
                                         "r" + std::to_string(i + 1)));
    }
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PriorityGraphAddEdgeWithCycleCheck)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
