#ifndef SOPR_BENCH_BENCH_UTIL_H_
#define SOPR_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "engine/engine.h"

namespace sopr {

inline void BenchCheck(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << "benchmark setup failed (" << what << "): " << status
              << "\n";
    std::abort();
  }
}

/// Creates the orders/audit schema used by the set-vs-instance and
/// cascade benchmarks.
inline void CreateOrdersSchema(Engine* engine) {
  BenchCheck(engine->Execute("create table orders (id int, qty int)"),
             "create orders");
  BenchCheck(engine->Execute("create table audit (id int, tag int)"),
             "create audit");
}

/// One multi-row insert touching `n` order tuples: "insert into orders
/// values (0, 0), (1, 10), ...".
inline std::string OrdersBatch(int n) {
  std::string sql = "insert into orders values ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += "(" + std::to_string(i) + ", " + std::to_string(i * 10) + ")";
  }
  return sql;
}

}  // namespace sopr

#endif  // SOPR_BENCH_BENCH_UTIL_H_
