// B3 — recursive cascade depth (Example 4.1 generalized): a management
// chain of depth d; deleting the root must fire the cascade rule d times.
// Measures how transaction cost grows with cascade depth.
//
// Run: ./build/bench/bench_cascade

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"

namespace sopr {
namespace {

/// Builds a management chain: employee i manages department i+1 whose
/// sole member is employee i+1 (depth levels).
void BuildChain(Engine* engine, int depth) {
  BenchCheck(engine->Execute(
                 "create table emp (name string, emp_no int, "
                 "salary double, dept_no int)"),
             "emp");
  BenchCheck(engine->Execute("create table dept (dept_no int, mgr_no int)"),
             "dept");
  std::string emps = "insert into emp values ";
  std::string depts = "insert into dept values ";
  for (int i = 0; i <= depth; ++i) {
    if (i > 0) {
      emps += ", ";
      depts += ", ";
    }
    emps += "('e" + std::to_string(i) + "', " + std::to_string(i) + ", 100, " +
            std::to_string(i) + ")";
    // dept i+1 managed by emp i.
    depts += "(" + std::to_string(i + 1) + ", " + std::to_string(i) + ")";
  }
  BenchCheck(engine->Execute(emps), "emps");
  BenchCheck(engine->Execute(depts), "depts");
  BenchCheck(engine->Execute(
                 "create rule cascade when deleted from emp "
                 "then delete from emp where dept_no in "
                 "  (select dept_no from dept where mgr_no in "
                 "   (select emp_no from deleted emp)); "
                 "delete from dept where mgr_no in "
                 "  (select emp_no from deleted emp)"),
             "rule");
}

void BM_CascadeDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RuleEngineOptions options;
    options.max_rule_firings = 100000;
    Engine engine(options);
    BuildChain(&engine, depth);
    state.ResumeTiming();

    BenchCheck(engine.Execute("delete from emp where emp_no = 0"), "delete");

    state.PauseTiming();
    if (engine.TableSize("emp").ValueOr(99) != 0) {
      state.SkipWithError("cascade did not empty the chain");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_CascadeDepth)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

/// Wide-fanout variant: one root manages F departments of one employee
/// each — a single rule firing handles all F children (set-orientation
/// collapses the fanout into one action execution).
void BM_CascadeFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    BenchCheck(engine.Execute(
                   "create table emp (name string, emp_no int, "
                   "salary double, dept_no int)"),
               "emp");
    BenchCheck(
        engine.Execute("create table dept (dept_no int, mgr_no int)"),
        "dept");
    std::string emps = "insert into emp values ('root', 0, 100, 0)";
    std::string depts = "insert into dept values ";
    for (int i = 1; i <= fanout; ++i) {
      emps += ", ('e" + std::to_string(i) + "', " + std::to_string(i) +
              ", 100, " + std::to_string(i) + ")";
      if (i > 1) depts += ", ";
      depts += "(" + std::to_string(i) + ", 0)";  // all managed by root
    }
    BenchCheck(engine.Execute(emps), "emps");
    BenchCheck(engine.Execute(depts), "depts");
    BenchCheck(engine.Execute(
                   "create rule cascade when deleted from emp "
                   "then delete from emp where dept_no in "
                   "  (select dept_no from dept where mgr_no in "
                   "   (select emp_no from deleted emp)); "
                   "delete from dept where mgr_no in "
                   "  (select emp_no from deleted emp)"),
               "rule");
    state.ResumeTiming();

    BenchCheck(engine.Execute("delete from emp where emp_no = 0"), "delete");

    state.PauseTiming();
    if (engine.TableSize("emp").ValueOr(99) != 0) {
      state.SkipWithError("fanout cascade incomplete");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_CascadeFanout)->Arg(4)->Arg(32)->Arg(128);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
