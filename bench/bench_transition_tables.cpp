// B5 — transition table materialization: cost of building `inserted t` /
// `deleted t` / `old|new updated t.c` relations from trans-info, and of a
// rule condition that queries them, as a function of touched-tuple count.
//
// Run: ./build/bench/bench_transition_tables

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"
#include "query/executor.h"
#include "rules/transition_tables.h"
#include "sql/parser.h"

namespace sopr {
namespace {

/// A database with one table of `n` rows plus trans-info claiming all of
/// them were updated and half of a shadow population was deleted.
struct Fixture {
  explicit Fixture(int n) {
    BenchCheck(db.CreateTable(TableSchema("t", {{"a", ValueType::kInt},
                                                {"b", ValueType::kInt}})),
               "t");
    for (int i = 0; i < n; ++i) {
      auto h = db.InsertRow("t", Row{Value::Int(i), Value::Int(i * 2)});
      BenchCheck(h.status(), "insert");
      DmlEffect upd;
      upd.table = "t";
      DmlEffect::UpdatedTuple u;
      u.handle = h.value();
      u.columns = {1};
      u.old_row = Row{Value::Int(i), Value::Int(i)};
      upd.updated.push_back(std::move(u));
      info.ApplyOp(upd);
    }
    // Deleted tuples exist only in the trans-info (values carried).
    DmlEffect del;
    del.table = "t";
    for (int i = 0; i < n / 2; ++i) {
      auto h = db.InsertRow("t", Row{Value::Int(-i), Value::Int(-i)});
      BenchCheck(h.status(), "shadow");
      BenchCheck(db.DeleteRow("t", h.value()), "shadow del");
      del.deleted.emplace_back(h.value(), Row{Value::Int(-i), Value::Int(-i)});
    }
    info.ApplyOp(del);
    db.CommitAll();
  }

  Database db;
  TransInfo info;
};

void BM_MaterializeInserted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db;
  BenchCheck(db.CreateTable(TableSchema("t", {{"a", ValueType::kInt},
                                              {"b", ValueType::kInt}})),
             "t");
  TransInfo info;
  DmlEffect ins;
  ins.table = "t";
  for (int i = 0; i < n; ++i) {
    auto h = db.InsertRow("t", Row{Value::Int(i), Value::Int(i)});
    ins.inserted.push_back(h.value());
  }
  info.ApplyOp(ins);
  TransitionTableResolver resolver(&db, &info);
  TableRef ref{TableRefKind::kInserted, "t", "", ""};
  for (auto _ : state) {
    auto rel = resolver.Resolve(ref);
    benchmark::DoNotOptimize(rel);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MaterializeInserted)->Arg(16)->Arg(256)->Arg(4096);

void BM_MaterializeDeleted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fixture fx(n);
  TransitionTableResolver resolver(&fx.db, &fx.info);
  TableRef ref{TableRefKind::kDeleted, "t", "", ""};
  for (auto _ : state) {
    auto rel = resolver.Resolve(ref);
    benchmark::DoNotOptimize(rel);
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_MaterializeDeleted)->Arg(16)->Arg(256)->Arg(4096);

void BM_MaterializeNewUpdatedColumn(benchmark::State& state) {
  // `new updated t.b` needs a current-value lookup per handle.
  const int n = static_cast<int>(state.range(0));
  Fixture fx(n);
  TransitionTableResolver resolver(&fx.db, &fx.info);
  TableRef ref{TableRefKind::kNewUpdated, "t", "b", ""};
  for (auto _ : state) {
    auto rel = resolver.Resolve(ref);
    benchmark::DoNotOptimize(rel);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MaterializeNewUpdatedColumn)->Arg(16)->Arg(256)->Arg(4096);

void BM_ConditionOverTransitionTables(benchmark::State& state) {
  // The Example 3.2 condition shape: two aggregates over old/new updated.
  const int n = static_cast<int>(state.range(0));
  Fixture fx(n);
  TransitionTableResolver resolver(&fx.db, &fx.info);
  Executor executor(&fx.db, &resolver);
  auto cond = Parser::ParseExpression(
      "(select sum(b) from new updated t.b) > "
      "(select sum(b) from old updated t.b)");
  BenchCheck(cond.status(), "condition");
  for (auto _ : state) {
    Scope scope;
    EvalContext ctx;
    ctx.runner = &executor;
    auto held = EvaluatePredicate(*cond.value(), scope, ctx);
    if (!held.ok()) state.SkipWithError("condition failed");
    benchmark::DoNotOptimize(held);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConditionOverTransitionTables)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
