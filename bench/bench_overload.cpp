// B15 — admission control under open-loop overload (docs/OVERLOAD.md).
//
// Phase 1 measures peak goodput with a small closed loop (2 writers):
// every request is an indexed multi-update block on the worker's own key
// range, so the only shared sections are the scheduler and the WAL. The
// per-commit p50 from this phase calibrates the client latency budget D
// (6x the uncontended service time — a patient but not infinite client).
//
// Phase 2 offers the SAME requests open-loop at >= 4x the measured peak
// (arrival i is due at start + i/rate, regardless of completions) from a
// pool of 16 client sessions, each enforcing D as its statement timeout.
// Two server configurations absorb the storm:
//
//   no_admission — the generous defaults: every arrival is admitted, all
//     16 clients execute concurrently, every request's share of the
//     machine shrinks until nearly all of them blow their budget
//     MID-transaction — work is admitted, partially applied, rolled
//     back. Goodput collapses to the few requests that slip through,
//     and end-to-end p99 (queueing included) grows with the backlog.
//   admission — max_inflight_writers=2 and a tiny queue with a deadline
//     of D/4: the excess is refused AT THE DOOR in microseconds with
//     kOverloaded + a retry-after hint, so the admitted requests run at
//     the same concurrency the peak was measured at and finish inside
//     their budget. Goodput retains >= ~70% of peak; p99 stays bounded.
//
// Success = the block committed within D of its scheduled arrival;
// latency is end-to-end (arrival to final status), so client-side
// backlog wait counts. Custom main; emits BENCH_overload.json.
//
// Run: ./build/bench/bench_overload [seconds-per-window]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "server/session_manager.h"

namespace sopr {
namespace {

using Clock = std::chrono::steady_clock;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_bench_overload_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

constexpr int kClients = 16;       // open-loop worker sessions
constexpr int kRowsPerTable = 256; // each client owns one table: no locks
constexpr int kUpdatesPerBlock = 4;
constexpr double kOverloadFactor = 4.0;

double PercentileMs(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = static_cast<size_t>(p * (samples->size() - 1));
  return (*samples)[idx];
}

/// A block of full-table updates on the client's OWN table (no index, so
/// each statement scans and rewrites all kRowsPerTable rows; per-client
/// tables, so no two requests ever contend on a lock). Execution costs
/// milliseconds while parse costs microseconds — which is what makes
/// refusal at the door cheap relative to the work being refused.
std::string MakeBlock(int client) {
  std::string block;
  for (int u = 0; u < kUpdatesPerBlock; ++u) {
    if (!block.empty()) block += "; ";
    block += "update accts" + std::to_string(client) + " set bal = bal + 1";
  }
  return block;
}

std::unique_ptr<server::SessionManager> OpenServer() {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.wal_fsync = WalFsyncPolicy::kOff;  // measure admission, not fsync
  auto manager = server::SessionManager::Open(options, /*record_locks=*/true);
  Check(manager.status(), "open");
  auto setup = manager.value()->CreateSession();
  Check(setup.status(), "setup session");
  for (int c = 0; c < kClients; ++c) {
    const std::string table = "accts" + std::to_string(c);
    Check(setup.value()->Execute("create table " + table +
                                 " (id int, bal int)"),
          "ddl");
    for (int i = 0; i < kRowsPerTable; i += 32) {
      std::string block;
      for (int j = i; j < i + 32; ++j) {
        if (!block.empty()) block += "; ";
        block += "insert into " + table + " values (" + std::to_string(j) +
                 ", 0)";
      }
      Check(setup.value()->Execute(block), "load");
    }
  }
  return std::move(manager).value();
}

struct PeakResult {
  double goodput = 0;  // commits/sec, closed loop at concurrency 2
  double p50_ms = 0;   // per-commit service time at that concurrency
  double p99_ms = 0;
};

PeakResult MeasurePeak(double seconds) {
  auto manager = OpenServer();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::mutex lat_mu;
  std::vector<double> latencies;

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      auto session = manager->CreateSession();
      Check(session.status(), "peak session");
      std::vector<double> mine;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        Check(session.value()->Execute(MakeBlock(w)), "peak block");
        mine.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
        commits.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  const auto start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : writers) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  PeakResult r;
  r.goodput = commits.load() / secs;
  r.p50_ms = PercentileMs(&latencies, 0.50);
  r.p99_ms = PercentileMs(&latencies, 0.99);
  return r;
}

struct OverloadResult {
  std::string mode;  // "no_admission" | "admission"
  double offered_per_sec = 0;
  double seconds = 0;
  uint64_t offered = 0;
  uint64_t commits = 0;   // within budget: the goodput numerator
  uint64_t late = 0;      // committed but past D (wasted by the client)
  uint64_t timeouts = 0;  // kTimeout/kLockTimeout mid-transaction
  uint64_t sheds = 0;     // kOverloaded at the admission door
  double goodput = 0;
  double p99_all_ms = 0;      // end-to-end, every attempt (the user view)
  double p99_success_ms = 0;  // end-to-end, successful attempts only
};

OverloadResult RunOverload(bool admission, double offered_per_sec,
                           std::chrono::microseconds budget, double seconds) {
  auto manager = OpenServer();
  if (admission) {
    server::AdmissionOptions options;
    options.max_inflight_writers = 2;  // the concurrency peak was measured at
    options.max_queued_writers = 2;
    options.queue_deadline = budget / 4;  // shed with budget left to retry
    manager->scheduler().admission().set_options(options);
  }

  const uint64_t total_arrivals =
      static_cast<uint64_t>(offered_per_sec * seconds);
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> commits{0}, late{0}, timeouts{0}, sheds{0};
  std::mutex lat_mu;
  std::vector<double> all_lat, success_lat;

  const auto start = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session = manager->CreateSession();
      Check(session.status(), "client session");
      session.value()->set_statement_timeout(budget);
      std::vector<double> mine_all, mine_success;
      while (true) {
        const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total_arrivals) break;
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i / offered_per_sec));
        std::this_thread::sleep_until(due);  // no-op once we lag: open loop
        const Status st = session.value()->Execute(MakeBlock(c));
        const auto lat = std::chrono::duration<double, std::milli>(
            Clock::now() - due);
        mine_all.push_back(lat.count());
        if (st.ok()) {
          if (lat <= budget) {
            commits.fetch_add(1, std::memory_order_relaxed);
            mine_success.push_back(lat.count());
          } else {
            late.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (st.code() == StatusCode::kOverloaded) {
          sheds.fetch_add(1, std::memory_order_relaxed);
        } else if (st.code() == StatusCode::kTimeout ||
                   st.code() == StatusCode::kLockTimeout) {
          timeouts.fetch_add(1, std::memory_order_relaxed);
        } else {
          Check(st, "overload block");
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      all_lat.insert(all_lat.end(), mine_all.begin(), mine_all.end());
      success_lat.insert(success_lat.end(), mine_success.begin(),
                         mine_success.end());
    });
  }
  for (std::thread& t : clients) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  OverloadResult r;
  r.mode = admission ? "admission" : "no_admission";
  r.offered_per_sec = offered_per_sec;
  r.seconds = secs;
  r.offered = total_arrivals;
  r.commits = commits.load();
  r.late = late.load();
  r.timeouts = timeouts.load();
  r.sheds = sheds.load();
  r.goodput = r.commits / secs;
  r.p99_all_ms = PercentileMs(&all_lat, 0.99);
  r.p99_success_ms = PercentileMs(&success_lat, 0.99);
  return r;
}

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  ::unsetenv("SOPR_WAL_FSYNC");  // the bench pins kOff itself
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const unsigned cpus = std::thread::hardware_concurrency();

  const sopr::PeakResult peak = sopr::MeasurePeak(seconds);
  // The client's patience: 6x the uncontended per-commit service time.
  // Floors at 10ms so scheduler noise on a loaded box cannot make the
  // budget unmeetable even at peak concurrency.
  const auto budget = std::chrono::microseconds(std::max<int64_t>(
      10000, static_cast<int64_t>(peak.p50_ms * 6 * 1000)));
  const double offered = peak.goodput * sopr::kOverloadFactor;
  std::printf(
      "peak %.0f commits/s (p50 %.2fms, p99 %.2fms); budget %.1fms, "
      "offering %.0f/s (%.0fx) to %d clients\n",
      peak.goodput, peak.p50_ms, peak.p99_ms, budget.count() / 1000.0,
      offered, sopr::kOverloadFactor, sopr::kClients);

  const sopr::OverloadResult collapse =
      sopr::RunOverload(false, offered, budget, seconds);
  const sopr::OverloadResult shedded =
      sopr::RunOverload(true, offered, budget, seconds);
  for (const sopr::OverloadResult* r : {&collapse, &shedded}) {
    std::printf(
        "%-12s goodput %7.0f/s (%.0f%% of peak)  p99(all) %8.2fms  "
        "p99(success) %7.2fms  commits=%llu late=%llu timeouts=%llu "
        "sheds=%llu\n",
        r->mode.c_str(), r->goodput, 100.0 * r->goodput / peak.goodput,
        r->p99_all_ms, r->p99_success_ms,
        static_cast<unsigned long long>(r->commits),
        static_cast<unsigned long long>(r->late),
        static_cast<unsigned long long>(r->timeouts),
        static_cast<unsigned long long>(r->sheds));
  }

  const double retention = shedded.goodput / peak.goodput;
  const double collapse_retention = collapse.goodput / peak.goodput;
  std::ofstream json("BENCH_overload.json");
  json << "{\n  \"bench\": \"overload\",\n  \"cpus\": " << cpus
       << ",\n  \"clients\": " << sopr::kClients
       << ",\n  \"overload_factor\": " << sopr::kOverloadFactor
       << ",\n  \"budget_ms\": " << budget.count() / 1000.0
       << ",\n  \"peak\": {\"goodput_per_sec\": " << peak.goodput
       << ", \"p50_ms\": " << peak.p50_ms << ", \"p99_ms\": " << peak.p99_ms
       << "},\n  \"runs\": [\n";
  const sopr::OverloadResult* runs[] = {&collapse, &shedded};
  for (size_t i = 0; i < 2; ++i) {
    const sopr::OverloadResult& r = *runs[i];
    json << "    {\"mode\": \"" << r.mode
         << "\", \"offered_per_sec\": " << r.offered_per_sec
         << ", \"seconds\": " << r.seconds << ", \"offered\": " << r.offered
         << ", \"commits\": " << r.commits << ", \"late\": " << r.late
         << ", \"timeouts\": " << r.timeouts << ", \"sheds\": " << r.sheds
         << ", \"goodput_per_sec\": " << r.goodput
         << ", \"retention_vs_peak\": " << r.goodput / peak.goodput
         << ", \"p99_all_ms\": " << r.p99_all_ms
         << ", \"p99_success_ms\": " << r.p99_success_ms << "}"
         << (i == 0 ? "," : "") << "\n";
  }
  json << "  ],\n  \"admission_retention\": " << retention
       << ",\n  \"no_admission_retention\": " << collapse_retention << "\n}\n";
  std::cout << "wrote BENCH_overload.json (admission retains "
            << static_cast<int>(retention * 100)
            << "% of peak goodput under " << sopr::kOverloadFactor
            << "x overload vs " << static_cast<int>(collapse_retention * 100)
            << "% unshedded, on " << cpus << " cpu(s))\n";
  return retention >= 0.7 && retention > collapse_retention ? 0 : 1;
}
