// B16 — the network front-end end to end (docs/NETWORK.md): every
// request in this bench crosses a real TCP socket, the epoll loop
// thread, the worker pool, and the session/WAL machinery, so the
// numbers measure the wire path the paper-engine is actually served
// through — not the in-process Session API the other benches drive.
//
// Phase 1 (pipelining): a handful of closed-loop connections commit
// single-insert scripts for one window, first one Execute round-trip
// per commit, then in pipelined bursts (every frame written before the
// first response is read). Same SQL, same connections — the only
// difference is that the server's dispatch batches the consecutive
// EXECUTE frames into one Session::ExecutePipelined call, so the
// staged commits share group-commit cohorts. The group-commit counters
// from the STATS frame (batches/cohorts per mode) make the cohort
// amplification visible, not just inferable from throughput.
//
// Phase 2 (scale): kConnections (>= 1k) connections are opened and
// HELD OPEN — the epoll loop multiplexes them all — while a few driver
// threads (the container has 1 CPU; thousands of client threads would
// measure the scheduler, not the server) offer single-insert commits
// OPEN-LOOP at a fixed fraction of the phase-1 rate, round-robin
// across their share of the pool. Arrival i is due at start + i/rate
// whether or not earlier requests finished; latency is measured from
// the due time, so backlog counts against p99.
//
// Phase 3 (overload): writer admission is tightened to the same shape
// docs/OVERLOAD.md ships (max_inflight=2, tiny queue, short deadline)
// and the offered load switches to multi-statement update blocks at 4x
// the measured heavy-block capacity. The excess is refused at the door
// as kOverloaded WIRE errors carrying escalating retry-after-ms hints;
// goodput retention vs the closed-loop heavy peak should match the
// in-process BENCH_overload.json story (~70%+), now demonstrated
// through the protocol.
//
// Custom main; emits BENCH_network.json.
// Run: ./build/bench/bench_network [seconds-per-window] [connections]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "server/session_manager.h"

namespace sopr {
namespace {

using Clock = std::chrono::steady_clock;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_bench_network_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

constexpr int kPipelineClients = 4;  // closed-loop connections, phase 1
constexpr int kBurst = 16;           // pipelined frames per burst
constexpr int kDrivers = 4;          // open-loop driver threads, phases 2+3
constexpr int kHeavyRows = 256;      // rows per phase-3 hot table
constexpr int kHeavyUpdates = 4;     // statements per heavy block
constexpr double kOverloadFactor = 4.0;

double PercentileMs(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = static_cast<size_t>(p * (samples->size() - 1));
  return (*samples)[idx];
}

std::atomic<uint64_t> g_next_id{0};

std::string MakeInsert() {
  return "insert into t values (" +
         std::to_string(g_next_id.fetch_add(1, std::memory_order_relaxed)) +
         ", 0)";
}

/// Phase-3 work unit: a block of full-table updates on the driver's OWN
/// hot table (no index, so each statement rewrites all kHeavyRows rows;
/// per-driver tables, so no lock contention — the only doors are the
/// admission controller and the WAL). Milliseconds of execution against
/// microseconds of parse: refusal at the door is cheap relative to the
/// work refused, which is the whole point of the retry-after hint.
std::string MakeHeavyBlock(int driver) {
  std::string block;
  for (int u = 0; u < kHeavyUpdates; ++u) {
    if (!block.empty()) block += "; ";
    block += "update hot" + std::to_string(driver) + " set val = val + 1";
  }
  return block;
}

struct TestServer {
  std::unique_ptr<server::SessionManager> manager;
  std::unique_ptr<net::Server> server;
  uint16_t port = 0;
};

TestServer StartServer() {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.wal_fsync = WalFsyncPolicy::kOff;  // measure the wire, not fsync
  auto manager = server::SessionManager::Open(options);
  Check(manager.status(), "open");
  manager.value()->set_max_sessions(4096);  // room for the 1k+ pool

  auto setup = manager.value()->CreateSession();
  Check(setup.status(), "setup session");
  Check(setup.value()->Execute("create table t (id int, val int)"), "ddl");
  for (int d = 0; d < kDrivers; ++d) {
    const std::string table = "hot" + std::to_string(d);
    Check(setup.value()->Execute("create table " + table + " (id int, val int)"),
          "ddl");
    for (int i = 0; i < kHeavyRows; i += 32) {
      std::string block;
      for (int j = i; j < i + 32; ++j) {
        if (!block.empty()) block += "; ";
        block += "insert into " + table + " values (" + std::to_string(j) +
                 ", 0)";
      }
      Check(setup.value()->Execute(block), "load");
    }
  }

  net::Server::Options server_options;
  server_options.workers = 4;
  auto server = net::Server::Start(manager.value().get(), server_options);
  Check(server.status(), "server start");

  TestServer ts;
  ts.manager = std::move(manager).value();
  ts.server = std::move(server).value();
  ts.port = ts.server->port();
  return ts;
}

std::unique_ptr<net::Client> Connect(uint16_t port, const char* name) {
  net::Client::Options options;
  options.port = port;
  options.client_name = name;
  auto client = net::Client::Connect(options);
  Check(client.status(), "connect");
  return std::move(client).value();
}

struct PipelineResult {
  std::string mode;  // "one_at_a_time" | "pipelined"
  double commits_per_sec = 0;
  double p99_ms = 0;  // per round-trip: one commit or one whole burst
  uint64_t cohorts = 0;
  uint64_t batches = 0;
  double mean_cohort = 0;  // batches / cohorts over this window
  uint64_t largest_cohort = 0;
};

/// One phase-1 window: kPipelineClients closed-loop connections, either
/// one Execute round-trip per commit or kBurst-frame pipelined bursts.
/// Cohort counters are deltas over exactly this window.
PipelineResult RunPipelineWindow(uint16_t port, bool pipelined,
                                 double seconds) {
  auto stats_client = Connect(port, "bench-stats");
  auto before = stats_client->Stats();
  Check(before.status(), "stats before");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::mutex lat_mu;
  std::vector<double> latencies;

  std::vector<std::thread> clients;
  for (int c = 0; c < kPipelineClients; ++c) {
    clients.emplace_back([&, c] {
      auto client =
          Connect(port, pipelined ? "bench-pipelined" : "bench-single");
      std::vector<double> mine;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        if (pipelined) {
          std::vector<std::string> scripts;
          scripts.reserve(kBurst);
          for (int i = 0; i < kBurst; ++i) scripts.push_back(MakeInsert());
          auto outcomes = client->ExecutePipelined(scripts);
          Check(outcomes.status(), "pipelined burst");
          for (const auto& o : outcomes.value()) Check(o.status, "burst script");
          commits.fetch_add(kBurst, std::memory_order_relaxed);
        } else {
          auto lsn = client->Execute(MakeInsert());
          Check(lsn.status(), "execute");
          commits.fetch_add(1, std::memory_order_relaxed);
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
      }
      client->Close();
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  const auto start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  auto after = stats_client->Stats();
  Check(after.status(), "stats after");
  stats_client->Close();

  PipelineResult r;
  r.mode = pipelined ? "pipelined" : "one_at_a_time";
  r.commits_per_sec = commits.load() / secs;
  r.p99_ms = PercentileMs(&latencies, 0.99);
  r.cohorts = after.value().group_commit.cohorts -
              before.value().group_commit.cohorts;
  r.batches = after.value().group_commit.batches -
              before.value().group_commit.batches;
  r.mean_cohort =
      r.cohorts > 0 ? static_cast<double>(r.batches) / r.cohorts : 0;
  r.largest_cohort = after.value().group_commit.largest_cohort;
  return r;
}

struct ScaleResult {
  size_t connections = 0;
  double offered_per_sec = 0;
  uint64_t offered = 0;
  uint64_t commits = 0;
  uint64_t errors = 0;
  double commits_per_sec = 0;
  double p99_ms = 0;  // end-to-end from the scheduled arrival time
  uint64_t connections_active = 0;  // the server's own view of the pool
};

struct OverloadResult {
  double peak_per_sec = 0;  // closed-loop heavy-block capacity
  double offered_per_sec = 0;
  uint64_t offered = 0;
  uint64_t commits = 0;
  uint64_t sheds = 0;
  uint64_t other_errors = 0;
  double goodput_per_sec = 0;
  double retention = 0;  // goodput / heavy peak
  double p99_success_ms = 0;
  uint32_t max_retry_hint_ms = 0;  // hints escalate per admission Backoff
};

/// Phase 2: the pool is held open end to end; each driver thread offers
/// arrivals open-loop at rate/kDrivers, round-robin over its slice.
ScaleResult RunScale(uint16_t port, std::vector<std::unique_ptr<net::Client>>* pool,
                     double offered_per_sec, double seconds) {
  const size_t per_driver = pool->size() / kDrivers;
  const uint64_t total_arrivals =
      static_cast<uint64_t>(offered_per_sec * seconds);
  std::atomic<uint64_t> commits{0}, errors{0};
  std::mutex lat_mu;
  std::vector<double> latencies;

  const auto start = Clock::now();
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      const double my_rate = offered_per_sec / kDrivers;
      const uint64_t my_arrivals = total_arrivals / kDrivers;
      std::vector<double> mine;
      for (uint64_t i = 0; i < my_arrivals; ++i) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i / my_rate));
        std::this_thread::sleep_until(due);  // no-op once we lag: open loop
        net::Client& conn =
            *(*pool)[d * per_driver + (i % per_driver)];
        auto lsn = conn.Execute(MakeInsert());
        mine.push_back(std::chrono::duration<double, std::milli>(Clock::now() -
                                                                 due)
                           .count());
        if (lsn.ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : drivers) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  auto stats_client = Connect(port, "bench-stats");
  auto stats = stats_client->Stats();
  Check(stats.status(), "scale stats");
  stats_client->Close();

  ScaleResult r;
  r.connections = pool->size();
  r.offered_per_sec = offered_per_sec;
  r.offered = (total_arrivals / kDrivers) * kDrivers;
  r.commits = commits.load();
  r.errors = errors.load();
  r.commits_per_sec = r.commits / secs;
  r.p99_ms = PercentileMs(&latencies, 0.99);
  r.connections_active = stats.value().connections_active;
  return r;
}

/// Phase 3: measure closed-loop heavy-block capacity at concurrency 2,
/// tighten admission to that concurrency, then offer 4x through the
/// pool. Every kOverloaded comes back as a wire error whose message
/// carries the retry-after hint the client surfaces.
OverloadResult RunOverload(TestServer* ts,
                           std::vector<std::unique_ptr<net::Client>>* pool,
                           double seconds) {
  OverloadResult r;
  {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> commits{0};
    std::vector<std::thread> writers;
    for (int w = 0; w < 2; ++w) {
      writers.emplace_back([&, w] {
        auto client = Connect(ts->port, "bench-heavy-peak");
        while (!stop.load(std::memory_order_relaxed)) {
          Check(client->Execute(MakeHeavyBlock(w)).status(), "heavy peak");
          commits.fetch_add(1, std::memory_order_relaxed);
        }
        client->Close();
      });
    }
    const auto start = Clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2));
    stop.store(true);
    for (std::thread& t : writers) t.join();
    r.peak_per_sec =
        commits.load() /
        std::chrono::duration<double>(Clock::now() - start).count();
  }

  server::AdmissionOptions admission;
  admission.max_inflight_writers = 2;  // the concurrency peak was measured at
  admission.max_queued_writers = 2;
  admission.queue_deadline = std::chrono::milliseconds(5);
  ts->manager->scheduler().admission().set_options(admission);

  const double offered = std::max(1.0, r.peak_per_sec) * kOverloadFactor;
  const size_t per_driver = pool->size() / kDrivers;
  const uint64_t total_arrivals = static_cast<uint64_t>(offered * seconds);
  std::atomic<uint64_t> commits{0}, sheds{0}, other{0};
  std::atomic<uint32_t> max_hint{0};
  std::mutex lat_mu;
  std::vector<double> success_lat;

  const auto start = Clock::now();
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      const double my_rate = offered / kDrivers;
      const uint64_t my_arrivals = total_arrivals / kDrivers;
      std::vector<double> mine;
      for (uint64_t i = 0; i < my_arrivals; ++i) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i / my_rate));
        std::this_thread::sleep_until(due);
        net::Client& conn = *(*pool)[d * per_driver + (i % per_driver)];
        auto lsn = conn.Execute(MakeHeavyBlock(d));
        if (lsn.ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
          mine.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() - due)
                             .count());
        } else if (lsn.status().code() == StatusCode::kOverloaded) {
          sheds.fetch_add(1, std::memory_order_relaxed);
          // The hint escalates with consecutive sheds (admission
          // Backoff); an obedient open-loop client would delay its next
          // arrival by it. Here we record it to prove it crossed the
          // wire intact.
          uint32_t hint = conn.retry_after_ms();
          uint32_t seen = max_hint.load(std::memory_order_relaxed);
          while (hint > seen &&
                 !max_hint.compare_exchange_weak(seen, hint)) {
          }
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      success_lat.insert(success_lat.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : drivers) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  server::AdmissionOptions defaults;
  ts->manager->scheduler().admission().set_options(defaults);

  r.offered_per_sec = offered;
  r.offered = (total_arrivals / kDrivers) * kDrivers;
  r.commits = commits.load();
  r.sheds = sheds.load();
  r.other_errors = other.load();
  r.goodput_per_sec = r.commits / secs;
  r.retention = r.peak_per_sec > 0 ? r.goodput_per_sec / r.peak_per_sec : 0;
  r.p99_success_ms = PercentileMs(&success_lat, 0.99);
  r.max_retry_hint_ms = max_hint.load();
  return r;
}

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  ::unsetenv("SOPR_WAL_FSYNC");  // the bench pins kOff itself
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const size_t connections = argc > 2
                                 ? static_cast<size_t>(std::atoll(argv[2]))
                                 : 1024;
  const unsigned cpus = std::thread::hardware_concurrency();

  sopr::TestServer ts = sopr::StartServer();
  std::printf("server on port %u (4 workers, %u cpu(s))\n", ts.port, cpus);

  const sopr::PipelineResult single =
      sopr::RunPipelineWindow(ts.port, /*pipelined=*/false, seconds);
  const sopr::PipelineResult pipelined =
      sopr::RunPipelineWindow(ts.port, /*pipelined=*/true, seconds);
  for (const sopr::PipelineResult* r : {&single, &pipelined}) {
    std::printf(
        "%-14s %8.0f commits/s  p99 %7.3fms/round-trip  cohorts=%llu "
        "batches=%llu mean_cohort=%.2f\n",
        r->mode.c_str(), r->commits_per_sec, r->p99_ms,
        static_cast<unsigned long long>(r->cohorts),
        static_cast<unsigned long long>(r->batches), r->mean_cohort);
  }

  // The held-open pool: every connection is a live session in the
  // server's epoll set for the rest of the run.
  std::vector<std::unique_ptr<sopr::net::Client>> pool;
  pool.reserve(connections);
  for (size_t i = 0; i < connections; ++i) {
    pool.push_back(sopr::Connect(ts.port, "bench-pool"));
  }
  const double scale_rate = single.commits_per_sec * 0.7;
  const sopr::ScaleResult scale =
      sopr::RunScale(ts.port, &pool, scale_rate, seconds);
  std::printf(
      "scale: %zu connections held open (server sees %llu active), offered "
      "%.0f/s -> %8.0f commits/s  p99 %7.3fms  errors=%llu\n",
      scale.connections,
      static_cast<unsigned long long>(scale.connections_active),
      scale.offered_per_sec, scale.commits_per_sec, scale.p99_ms,
      static_cast<unsigned long long>(scale.errors));

  const sopr::OverloadResult overload = sopr::RunOverload(&ts, &pool, seconds);
  std::printf(
      "overload: heavy peak %.0f/s, offered %.0f/s (%.0fx) -> goodput "
      "%.0f/s (%.0f%% retained)  sheds=%llu  max_retry_hint=%ums  "
      "p99(success) %.2fms  other_errors=%llu\n",
      overload.peak_per_sec, overload.offered_per_sec, sopr::kOverloadFactor,
      overload.goodput_per_sec, 100.0 * overload.retention,
      static_cast<unsigned long long>(overload.sheds),
      overload.max_retry_hint_ms, overload.p99_success_ms,
      static_cast<unsigned long long>(overload.other_errors));

  for (auto& client : pool) client->Abort();
  pool.clear();
  ts.server->Shutdown();

  std::ofstream json("BENCH_network.json");
  json << "{\n  \"bench\": \"network\",\n  \"cpus\": " << cpus
       << ",\n  \"workers\": 4,\n  \"seconds_per_window\": " << seconds
       << ",\n  \"pipeline\": [\n";
  const sopr::PipelineResult* modes[] = {&single, &pipelined};
  for (size_t i = 0; i < 2; ++i) {
    const sopr::PipelineResult& r = *modes[i];
    json << "    {\"mode\": \"" << r.mode
         << "\", \"commits_per_sec\": " << r.commits_per_sec
         << ", \"p99_round_trip_ms\": " << r.p99_ms
         << ", \"cohorts\": " << r.cohorts << ", \"batches\": " << r.batches
         << ", \"mean_cohort\": " << r.mean_cohort
         << ", \"largest_cohort\": " << r.largest_cohort << "}"
         << (i == 0 ? "," : "") << "\n";
  }
  json << "  ],\n  \"scale\": {\"connections\": " << scale.connections
       << ", \"connections_active\": " << scale.connections_active
       << ", \"offered_per_sec\": " << scale.offered_per_sec
       << ", \"offered\": " << scale.offered
       << ", \"commits\": " << scale.commits
       << ", \"errors\": " << scale.errors
       << ", \"commits_per_sec\": " << scale.commits_per_sec
       << ", \"p99_ms\": " << scale.p99_ms
       << "},\n  \"overload\": {\"heavy_peak_per_sec\": "
       << overload.peak_per_sec
       << ", \"offered_per_sec\": " << overload.offered_per_sec
       << ", \"offered\": " << overload.offered
       << ", \"commits\": " << overload.commits
       << ", \"sheds\": " << overload.sheds
       << ", \"other_errors\": " << overload.other_errors
       << ", \"goodput_per_sec\": " << overload.goodput_per_sec
       << ", \"retention_vs_peak\": " << overload.retention
       << ", \"p99_success_ms\": " << overload.p99_success_ms
       << ", \"max_retry_hint_ms\": " << overload.max_retry_hint_ms
       << "}\n}\n";

  const bool cohorts_grew = pipelined.mean_cohort > single.mean_cohort;
  const bool scale_clean = scale.errors == 0 && scale.commits > 0 &&
                           scale.connections_active >= scale.connections;
  const bool shed_visible =
      overload.sheds > 0 && overload.max_retry_hint_ms > 0;
  std::cout << "wrote BENCH_network.json (pipelined mean cohort "
            << pipelined.mean_cohort << " vs " << single.mean_cohort
            << " one-at-a-time; " << scale.connections
            << " connections multiplexed; overload retained "
            << static_cast<int>(overload.retention * 100)
            << "% of heavy peak)\n";
  return cohorts_grew && scale_clean && shed_visible ? 0 : 1;
}
