// B8 — substrate sanity: SQL front-end and executor throughput (parse,
// point select, join, aggregate, update) so rule-system numbers can be
// normalized against the engine's baseline cost.
//
// Run: ./build/bench/bench_sql

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"
#include "sql/parser.h"

namespace sopr {
namespace {

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "select e.name, d.mgr_no, salary * 1.1 from emp e, dept d "
      "where e.dept_no = d.dept_no and salary > "
      "(select avg(salary) from emp e2 where e2.dept_no = e.dept_no) "
      "order by salary desc";
  for (auto _ : state) {
    auto stmt = Parser::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseSelect);

void BM_ParseCreateRule(benchmark::State& state) {
  const std::string sql =
      "create rule r when inserted into emp or updated emp.salary "
      "if (select sum(salary) from new updated emp.salary) > "
      "(select sum(salary) from old updated emp.salary) "
      "then update emp set salary = 0.95 * salary where dept_no = 2; "
      "update emp set salary = 0.85 * salary where dept_no = 3";
  for (auto _ : state) {
    auto stmt = Parser::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseCreateRule);

Engine* MakeEmpEngine(int rows) {
  auto* engine = new Engine();
  BenchCheck(engine->Execute(
                 "create table emp (name string, emp_no int, "
                 "salary double, dept_no int)"),
             "emp");
  std::string sql = "insert into emp values ";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) sql += ", ";
    sql += "('e" + std::to_string(i) + "', " + std::to_string(i) + ", " +
           std::to_string(1000 + (i * 37) % 9000) + ", " +
           std::to_string(i % 10) + ")";
  }
  BenchCheck(engine->Execute(sql), "rows");
  return engine;
}

void BM_PointSelect(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine(MakeEmpEngine(rows));
  for (auto _ : state) {
    auto r = engine->Query("select name from emp where emp_no = 17");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_PointSelect)->Arg(100)->Arg(1000);

void BM_GroupByAggregate(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine(MakeEmpEngine(rows));
  for (auto _ : state) {
    auto r = engine->Query(
        "select dept_no, avg(salary), count(*) from emp group by dept_no");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_GroupByAggregate)->Arg(100)->Arg(1000);

void BM_CorrelatedSubquery(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine(MakeEmpEngine(rows));
  for (auto _ : state) {
    auto r = engine->Query(
        "select name from emp e1 where salary > "
        "1.5 * (select avg(salary) from emp e2 "
        "       where e2.dept_no = e1.dept_no)");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_CorrelatedSubquery)->Arg(100)->Arg(400);

void BM_SetUpdate(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine(MakeEmpEngine(rows));
  for (auto _ : state) {
    BenchCheck(engine->Execute("update emp set salary = salary + 1"),
               "update");
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SetUpdate)->Arg(100)->Arg(1000);

void BM_TransactionRollbackCost(benchmark::State& state) {
  // Undo-log replay cost for a batch insert that is rolled back.
  const int rows = static_cast<int>(state.range(0));
  Engine engine;
  CreateOrdersSchema(&engine);
  BenchCheck(engine.Execute(
                 "create rule veto when inserted into orders then rollback"),
             "veto");
  const std::string batch = OrdersBatch(rows);
  for (auto _ : state) {
    Status s = engine.Execute(batch);
    if (s.code() != StatusCode::kRolledBack) {
      state.SkipWithError("expected rollback");
    }
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_TransactionRollbackCost)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
