// B7 — constraint enforcement cost: compiled referential/domain rules on
// the insert path, as a function of table size, plus the rollback path.
//
// Run: ./build/bench/bench_constraints

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "constraints/compiler.h"
#include "engine/engine.h"

namespace sopr {
namespace {

void Setup(Engine* engine, int parents, bool with_constraints) {
  BenchCheck(engine->Execute(
                 "create table emp (name string, emp_no int, "
                 "salary double, dept_no int)"),
             "emp");
  BenchCheck(engine->Execute("create table dept (dept_no int, mgr_no int)"),
             "dept");
  std::string depts = "insert into dept values ";
  for (int i = 0; i < parents; ++i) {
    if (i > 0) depts += ", ";
    depts += "(" + std::to_string(i) + ", 0)";
  }
  BenchCheck(engine->Execute(depts), "depts");

  if (with_constraints) {
    ConstraintCompiler compiler(engine);
    ReferentialConstraint fk;
    fk.name = "fk";
    fk.child_table = "emp";
    fk.child_column = "dept_no";
    fk.parent_table = "dept";
    fk.parent_column = "dept_no";
    fk.on_parent_delete = ViolationAction::kCascade;
    BenchCheck(compiler.AddReferential(fk).status(), "fk");
    DomainConstraint dom;
    dom.name = "sal";
    dom.table = "emp";
    dom.column = "salary";
    dom.predicate_sql = "salary >= 0";
    BenchCheck(compiler.AddDomain(dom).status(), "dom");
  }
}

void BM_InsertNoConstraints(benchmark::State& state) {
  const int parents = static_cast<int>(state.range(0));
  Engine engine;
  Setup(&engine, parents, false);
  int i = 0;
  for (auto _ : state) {
    BenchCheck(engine.Execute("insert into emp values ('e', " +
                              std::to_string(i) + ", 100, " +
                              std::to_string(i % parents) + ")"),
               "insert");
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertNoConstraints)->Arg(16)->Arg(256);

void BM_InsertWithCompiledConstraints(benchmark::State& state) {
  const int parents = static_cast<int>(state.range(0));
  Engine engine;
  Setup(&engine, parents, true);
  int i = 0;
  for (auto _ : state) {
    BenchCheck(engine.Execute("insert into emp values ('e', " +
                              std::to_string(i) + ", 100, " +
                              std::to_string(i % parents) + ")"),
               "insert");
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertWithCompiledConstraints)->Arg(16)->Arg(256);

void BM_ViolationRollbackPath(benchmark::State& state) {
  // Cost of a rejected insert: rule evaluation + transaction undo.
  const int parents = static_cast<int>(state.range(0));
  Engine engine;
  Setup(&engine, parents, true);
  for (auto _ : state) {
    Status s = engine.Execute(
        "insert into emp values ('bad', 0, 100, 999999)");  // dangling FK
    if (s.code() != StatusCode::kRolledBack) {
      state.SkipWithError("expected rollback");
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViolationRollbackPath)->Arg(16)->Arg(256);

void BM_CascadeViaCompiledRule(benchmark::State& state) {
  // Delete one parent with `children` children under a compiled cascade.
  const int children = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    Setup(&engine, 2, true);
    std::string emps = "insert into emp values ";
    for (int i = 0; i < children; ++i) {
      if (i > 0) emps += ", ";
      emps += "('e', " + std::to_string(i) + ", 100, 1)";
    }
    BenchCheck(engine.Execute(emps), "children");
    state.ResumeTiming();

    BenchCheck(engine.Execute("delete from dept where dept_no = 1"),
               "cascade");

    state.PauseTiming();
    if (engine.TableSize("emp").ValueOr(99) != 0) {
      state.SkipWithError("cascade incomplete");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * children);
}
BENCHMARK(BM_CascadeViaCompiledRule)->Arg(16)->Arg(256);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
