// B10 — bulk loading under active rules: CSV import batch-size sweep.
// Each batch is one transition, so rule-processing cost amortizes over
// the batch — large batches approach raw insert speed even with rules
// installed.
//
// Run: ./build/bench/bench_bulk_load

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"
#include "io/csv.h"

namespace sopr {
namespace {

std::string MakeCsv(int rows) {
  std::string csv = "id,qty\n";
  for (int i = 0; i < rows; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i % 100) + "\n";
  }
  return csv;
}

void RunImport(benchmark::State& state, bool with_rules, size_t batch) {
  const int rows = 2048;
  const std::string csv = MakeCsv(rows);
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    CreateOrdersSchema(&engine);
    if (with_rules) {
      BenchCheck(engine.Execute(
                     "create rule audit when inserted into orders "
                     "then insert into audit "
                     "(select id, 1 from inserted orders where qty > 90)"),
                 "rule");
      BenchCheck(engine.Execute(
                     "create rule guard when inserted into orders "
                     "if exists (select * from inserted orders where qty < 0) "
                     "then rollback"),
                 "guard");
    }
    CsvOptions options;
    options.batch_rows = batch;
    state.ResumeTiming();

    auto imported = ImportCsv(&engine, "orders", csv, options);

    state.PauseTiming();
    if (!imported.ok() || imported.value() != static_cast<size_t>(rows)) {
      state.SkipWithError("import failed");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_ImportNoRules(benchmark::State& state) {
  RunImport(state, false, static_cast<size_t>(state.range(0)));
}
void BM_ImportWithRules(benchmark::State& state) {
  RunImport(state, true, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ImportNoRules)->Arg(16)->Arg(256)->Arg(2048);
BENCHMARK(BM_ImportWithRules)->Arg(16)->Arg(256)->Arg(2048);

void BM_ExportCsv(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Engine engine;
  CreateOrdersSchema(&engine);
  BenchCheck(engine.Execute(OrdersBatch(rows)), "rows");
  for (auto _ : state) {
    auto out = ExportCsv(&engine, "select * from orders");
    if (!out.ok()) state.SkipWithError("export failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ExportCsv)->Arg(256)->Arg(2048);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
