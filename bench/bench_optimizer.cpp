// B9 — the §1 claim that set-oriented rules keep relational optimization
// applicable "to the rules themselves": join queries and join-heavy rule
// actions with the optimizer (pushdown + hash equijoin) on vs off.
//
// Run: ./build/bench/bench_optimizer

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"

namespace sopr {
namespace {

std::unique_ptr<Engine> MakeJoinEngine(bool optimize, int rows) {
  RuleEngineOptions options;
  options.optimize_queries = optimize;
  auto engine = std::make_unique<Engine>(options);
  BenchCheck(engine->Execute("create table fact (id int, dim_id int, v int)"),
             "fact");
  BenchCheck(engine->Execute("create table dim (dim_id int, label string)"),
             "dim");
  std::string facts = "insert into fact values ";
  std::string dims = "insert into dim values ";
  int dims_n = rows / 4 + 1;
  for (int i = 0; i < rows; ++i) {
    if (i > 0) facts += ", ";
    facts += "(" + std::to_string(i) + ", " + std::to_string(i % dims_n) +
             ", " + std::to_string(i % 100) + ")";
  }
  for (int i = 0; i < dims_n; ++i) {
    if (i > 0) dims += ", ";
    dims += "(" + std::to_string(i) + ", 'd" + std::to_string(i) + "')";
  }
  BenchCheck(engine->Execute(facts), "facts");
  BenchCheck(engine->Execute(dims), "dims");
  return engine;
}

void RunJoinQuery(benchmark::State& state, bool optimize) {
  const int rows = static_cast<int>(state.range(0));
  auto engine = MakeJoinEngine(optimize, rows);
  for (auto _ : state) {
    auto r = engine->Query(
        "select label, count(*) from fact, dim "
        "where fact.dim_id = dim.dim_id and v < 50 group by label");
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_JoinNaive(benchmark::State& state) { RunJoinQuery(state, false); }
void BM_JoinOptimized(benchmark::State& state) { RunJoinQuery(state, true); }
BENCHMARK(BM_JoinNaive)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_JoinOptimized)->Arg(64)->Arg(256)->Arg(1024);

void RunRuleWithJoinAction(benchmark::State& state, bool optimize) {
  // The rule's action joins the transition table against a base table —
  // optimization applies inside rule processing.
  const int rows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RuleEngineOptions options;
    options.optimize_queries = optimize;
    Engine engine(options);
    BenchCheck(engine.Execute("create table incoming (dim_id int, qty int)"),
               "incoming");
    BenchCheck(engine.Execute("create table dim (dim_id int, label string)"),
               "dim");
    BenchCheck(engine.Execute("create table enriched (label string, qty int)"),
               "enriched");
    std::string dims = "insert into dim values ";
    for (int i = 0; i < rows; ++i) {
      if (i > 0) dims += ", ";
      dims += "(" + std::to_string(i) + ", 'd" + std::to_string(i) + "')";
    }
    BenchCheck(engine.Execute(dims), "dims");
    BenchCheck(engine.Execute(
                   "create rule enrich when inserted into incoming "
                   "then insert into enriched "
                   "  (select dim.label, i.qty from inserted incoming i, dim "
                   "   where i.dim_id = dim.dim_id)"),
               "rule");
    std::string batch = "insert into incoming values ";
    for (int i = 0; i < rows; ++i) {
      if (i > 0) batch += ", ";
      batch += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
    }
    state.ResumeTiming();

    BenchCheck(engine.Execute(batch), "batch");

    state.PauseTiming();
    if (engine.TableSize("enriched").ValueOr(0) != static_cast<size_t>(rows)) {
      state.SkipWithError("rule did not enrich all rows");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_RuleJoinActionNaive(benchmark::State& state) {
  RunRuleWithJoinAction(state, false);
}
void BM_RuleJoinActionOptimized(benchmark::State& state) {
  RunRuleWithJoinAction(state, true);
}
BENCHMARK(BM_RuleJoinActionNaive)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_RuleJoinActionOptimized)->Arg(32)->Arg(128)->Arg(512);

void RunPushdown(benchmark::State& state, bool optimize) {
  // Selective single-table predicate over a wide cross product: pushdown
  // shrinks the left side before the (unavoidable) cross join.
  const int rows = static_cast<int>(state.range(0));
  auto engine = MakeJoinEngine(optimize, rows);
  for (auto _ : state) {
    auto r = engine->Query(
        "select count(*) from fact, dim where v = 7");
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_PushdownNaive(benchmark::State& state) { RunPushdown(state, false); }
void BM_PushdownOptimized(benchmark::State& state) {
  RunPushdown(state, true);
}
BENCHMARK(BM_PushdownNaive)->Arg(64)->Arg(256);
BENCHMARK(BM_PushdownOptimized)->Arg(64)->Arg(256);

void RunPointSelect(benchmark::State& state, bool indexed) {
  // B9c: equality index vs linear scan for point predicates.
  const int rows = static_cast<int>(state.range(0));
  Engine engine;
  BenchCheck(engine.Execute("create table t (k int, v int)"), "t");
  if (indexed) {
    BenchCheck(engine.Execute("create index on t (k)"), "index");
  }
  std::string batch = "insert into t values ";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) batch += ", ";
    batch += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  BenchCheck(engine.Execute(batch), "rows");
  int key = 0;
  for (auto _ : state) {
    auto r = engine.Query("select v from t where k = " +
                          std::to_string(key++ % rows));
    if (!r.ok() || r.value().rows.size() != 1) {
      state.SkipWithError("point select failed");
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PointSelectScan(benchmark::State& state) {
  RunPointSelect(state, false);
}
void BM_PointSelectIndexed(benchmark::State& state) {
  RunPointSelect(state, true);
}
BENCHMARK(BM_PointSelectScan)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_PointSelectIndexed)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
