// B11 — group commit vs one-fsync-per-commit. N client threads insert
// through the concurrent session front-end (docs/CONCURRENCY.md); the
// cohort leader amortizes one fsync over every transaction staged while
// the previous fsync ran. The baseline holds one global lock across the
// whole commit (apply + write + fsync), i.e. fsyncs never overlap
// anything — the classic serial commit path.
//
// Custom main (not google-benchmark): each configuration is one timed
// run against a fresh WAL directory, and the results are written to
// BENCH_group_commit.json for the CI trend tracker.
//
// Run: ./build/bench/bench_group_commit [txns-per-config]

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/session_manager.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_bench_group_commit_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

struct RunResult {
  std::string mode;    // "group" | "serial"
  std::string policy;  // "commit" | "off"
  int threads = 0;
  int commits = 0;
  double seconds = 0;
  double commits_per_sec = 0;
  uint64_t cohorts = 0;
  uint64_t largest_cohort = 0;
};

std::string InsertBlock(int thread, int step) {
  return "insert into t values (" + std::to_string(thread * 1000000 + step) +
         ", " + std::to_string(step % 97) + ")";
}

/// Group mode: the session front-end's two-phase pipeline (exclusive
/// apply, lock-free durability wait -> fsync cohorts).
RunResult RunGroup(WalFsyncPolicy policy, int threads, int total_txns) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.wal_fsync = policy;
  auto manager = server::SessionManager::Open(options);
  Check(manager.status(), "open");
  auto setup = manager.value()->CreateSession();
  Check(setup.status(), "session");
  Check(setup.value()->Execute("create table t (id int, v int)"), "ddl");

  const int per_thread = total_txns / threads;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      auto session = manager.value()->CreateSession();
      Check(session.status(), "worker session");
      for (int j = 0; j < per_thread; ++j) {
        Check(session.value()->Execute(InsertBlock(i, j)), "insert");
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  r.mode = "group";
  r.policy = policy == WalFsyncPolicy::kCommit ? "commit" : "off";
  r.threads = threads;
  r.commits = per_thread * threads;
  r.seconds = secs;
  r.commits_per_sec = r.commits / secs;
  const wal::GroupCommitStats stats =
      manager.value()->engine().wal()->group_stats();
  r.cohorts = stats.cohorts;
  r.largest_cohort = stats.largest_cohort;
  return r;
}

/// Serial baseline: same engine, same WAL, but one global mutex held
/// across apply AND fsync — every commit pays its own fsync and nothing
/// overlaps it.
RunResult RunSerial(WalFsyncPolicy policy, int threads, int total_txns) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.wal_fsync = policy;
  auto engine = Engine::Open(options);
  Check(engine.status(), "open");
  Check(engine.value()->Execute("create table t (id int, v int)"), "ddl");

  std::mutex global;
  const int per_thread = total_txns / threads;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      for (int j = 0; j < per_thread; ++j) {
        std::lock_guard<std::mutex> lock(global);
        Check(engine.value()->Execute(InsertBlock(i, j)), "insert");
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  r.mode = "serial";
  r.policy = policy == WalFsyncPolicy::kCommit ? "commit" : "off";
  r.threads = threads;
  r.commits = per_thread * threads;
  r.seconds = secs;
  r.commits_per_sec = r.commits / secs;
  return r;
}

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  // The bench pins its own policies; the env override would make the
  // "commit" configurations silently measure nothing.
  ::unsetenv("SOPR_WAL_FSYNC");
  const int total = argc > 1 ? std::atoi(argv[1]) : 400;

  std::vector<sopr::RunResult> results;
  double group4 = 0, serial4 = 0;
  for (sopr::WalFsyncPolicy policy :
       {sopr::WalFsyncPolicy::kCommit, sopr::WalFsyncPolicy::kOff}) {
    for (int threads : {1, 2, 4, 8}) {
      sopr::RunResult group = sopr::RunGroup(policy, threads, total);
      sopr::RunResult serial = sopr::RunSerial(policy, threads, total);
      results.push_back(group);
      results.push_back(serial);
      std::printf(
          "policy=%-6s threads=%d  group %8.0f c/s (%llu cohorts, max %llu)"
          "  serial %8.0f c/s  ratio %.2fx\n",
          group.policy.c_str(), threads, group.commits_per_sec,
          static_cast<unsigned long long>(group.cohorts),
          static_cast<unsigned long long>(group.largest_cohort),
          serial.commits_per_sec,
          group.commits_per_sec / serial.commits_per_sec);
      if (policy == sopr::WalFsyncPolicy::kCommit && threads == 4) {
        group4 = group.commits_per_sec;
        serial4 = serial.commits_per_sec;
      }
    }
  }

  std::ofstream json("BENCH_group_commit.json");
  json << "{\n  \"bench\": \"group_commit\",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const sopr::RunResult& r = results[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"policy\": \"" << r.policy
         << "\", \"threads\": " << r.threads << ", \"commits\": " << r.commits
         << ", \"seconds\": " << r.seconds
         << ", \"commits_per_sec\": " << r.commits_per_sec
         << ", \"cohorts\": " << r.cohorts
         << ", \"largest_cohort\": " << r.largest_cohort << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_group_vs_serial_at_4_threads_commit\": "
       << (serial4 > 0 ? group4 / serial4 : 0) << "\n}\n";
  std::cout << "wrote BENCH_group_commit.json (4-thread kCommit speedup "
            << (serial4 > 0 ? group4 / serial4 : 0) << "x)\n";
  return 0;
}
