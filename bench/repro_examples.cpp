// Experiment harness for EXPERIMENTS.md: re-runs every worked example of
// the paper (EX3.1–EX4.3) and prints a table of paper-expected vs
// observed outcomes. This is the paper's "evaluation" — it has no
// quantitative tables, so its examples are the reproducible artifacts.
//
// Run: ./build/bench/repro_examples

#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/result_set.h"

namespace sopr {
namespace {

struct ExperimentRow {
  std::string id;
  std::string scenario;
  std::string expected;
  std::string observed;
  bool pass;
};

std::vector<ExperimentRow> g_rows;

void Report(const std::string& id, const std::string& scenario,
            const std::string& expected, const std::string& observed) {
  g_rows.push_back(
      ExperimentRow{id, scenario, expected, observed, expected == observed});
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "setup error: " << status << "\n";
    std::exit(1);
  }
}

void MakeSchema(Engine* engine) {
  Check(engine->Execute(
      "create table emp (name string, emp_no int, salary double, "
      "dept_no int)"));
  Check(engine->Execute("create table dept (dept_no int, mgr_no int)"));
}

void LoadOrg(Engine* engine) {
  Check(engine->Execute(
      "insert into dept values (0, -1), (1, 10), (2, 20), (3, 30)"));
  Check(engine->Execute(
      "insert into emp values "
      "('Jane', 10, 90000, 0), ('Mary', 20, 70000, 1), "
      "('Jim', 30, 65000, 1), ('Bill', 40, 25000, 2), "
      "('Sam', 50, 40000, 3), ('Sue', 60, 42000, 3)"));
}

std::string EmpNames(Engine* engine) {
  auto result = engine->Query("select name from emp order by name");
  if (!result.ok()) return "<error>";
  std::string names;
  for (const Row& row : result.value().rows) {
    if (!names.empty()) names += ",";
    names += row.at(0).AsString();
  }
  return names.empty() ? "<none>" : names;
}

void Example31() {
  Engine engine;
  MakeSchema(&engine);
  LoadOrg(&engine);
  Check(engine.Execute(
      "create rule r when deleted from dept "
      "then delete from emp where dept_no in "
      "(select dept_no from deleted dept)"));
  Check(engine.Execute("delete from dept where dept_no = 3"));
  Report("EX3.1", "delete dept 3 cascades to its employees",
         "Bill,Jane,Jim,Mary", EmpNames(&engine));
}

void Example32() {
  Engine engine;
  MakeSchema(&engine);
  LoadOrg(&engine);
  Check(engine.Execute(
      "create rule r when updated emp.salary "
      "if (select sum(salary) from new updated emp.salary) > "
      "   (select sum(salary) from old updated emp.salary) "
      "then update emp set salary = 0.95 * salary where dept_no = 2; "
      "     update emp set salary = 0.85 * salary where dept_no = 3"));
  Check(engine.Execute("update emp set salary = 95000 where name = 'Jane'"));
  auto bill = engine.Query("select salary from emp where name = 'Bill'");
  Report("EX3.2", "raise triggers 5%/15% cuts in depts 2/3",
         "Bill=23750, Sam=34000",
         "Bill=" +
             std::to_string(static_cast<int>(
                 bill.value().rows[0].at(0).NumericAsDouble())) +
             ", Sam=" +
             std::to_string(static_cast<int>(
                 engine.Query("select salary from emp where name = 'Sam'")
                     .value()
                     .rows[0]
                     .at(0)
                     .NumericAsDouble())));
}

void Example33() {
  Engine engine;
  MakeSchema(&engine);
  LoadOrg(&engine);
  Check(engine.Execute("insert into dept values (5, 60)"));
  Check(engine.Execute(
      "create rule r "
      "when inserted into emp or deleted from emp "
      "  or updated emp.salary or updated emp.dept_no "
      "if exists (select * from emp e1 where salary > "
      "  2 * (select avg(salary) from emp e2 "
      "       where e2.dept_no = e1.dept_no)) "
      "then delete from emp where emp_no = "
      "  (select mgr_no from dept where dept_no = 5)"));
  Check(engine.Execute("insert into emp values ('Rich', 70, 500000, 3)"));
  Report("EX3.3", "outlier salary deletes manager of dept 5 (Sue)",
         "Bill,Jane,Jim,Mary,Rich,Sam", EmpNames(&engine));
}

void Example41() {
  Engine engine;
  MakeSchema(&engine);
  LoadOrg(&engine);
  Check(engine.Execute(
      "create rule r when deleted from emp "
      "then delete from emp where dept_no in "
      "  (select dept_no from dept where mgr_no in "
      "   (select emp_no from deleted emp)); "
      "delete from dept where mgr_no in (select emp_no from deleted emp)"));
  Check(engine.Execute("delete from emp where name = 'Jane'"));
  Report("EX4.1", "recursive cascade from Jane empties the org",
         "<none> emp, 1 dept",
         EmpNames(&engine) + " emp, " +
             std::to_string(engine.TableSize("dept").ValueOr(0)) + " dept");
}

void Example42() {
  Engine engine;
  MakeSchema(&engine);
  Check(engine.Execute("insert into dept values (1, 10)"));
  Check(engine.Execute(
      "insert into emp values ('Bill', 40, 25000, 1), "
      "('Mary', 20, 70000, 1)"));
  Check(engine.Execute(
      "create rule r when updated emp.salary "
      "if (select avg(salary) from new updated emp.salary) > 50K "
      "then delete from emp where emp_no in "
      "  (select emp_no from new updated emp.salary) and salary > 80K"));
  Check(engine.Execute(
      "update emp set salary = 30000 where name = 'Bill'; "
      "update emp set salary = 85000 where name = 'Mary'"));
  Report("EX4.2", "Bill 25K->30K, Mary 70K->85K: avg 57.5K>50K deletes Mary",
         "Bill", EmpNames(&engine));
}

void Example43() {
  Engine engine;
  MakeSchema(&engine);
  LoadOrg(&engine);
  Check(engine.Execute(
      "create rule r1 when deleted from emp "
      "then delete from emp where dept_no in "
      "  (select dept_no from dept where mgr_no in "
      "   (select emp_no from deleted emp)); "
      "delete from dept where mgr_no in (select emp_no from deleted emp)"));
  Check(engine.Execute(
      "create rule r2 when updated emp.salary "
      "if (select avg(salary) from new updated emp.salary) > 50K "
      "then delete from emp where emp_no in "
      "  (select emp_no from new updated emp.salary) and salary > 80K"));
  Check(engine.Execute("create rule priority r2 before r1"));

  auto trace = engine.ExecuteBlock(
      "delete from emp where name = 'Jane'; "
      "update emp set salary = 85000 where name = 'Mary'; "
      "update emp set salary = 60000 where name = 'Jim'");
  Check(trace.status());
  std::string order;
  for (const RuleFiring& f : trace.value().firings) {
    if (!order.empty()) order += ",";
    order += f.rule;
  }
  Report("EX4.3", "interleaving: R2 fires once, then R1 cascades",
         "r2,r1,r1,r1 / emp <none>", order + " / emp " + EmpNames(&engine));
}

}  // namespace
}  // namespace sopr

int main() {
  sopr::Example31();
  sopr::Example32();
  sopr::Example33();
  sopr::Example41();
  sopr::Example42();
  sopr::Example43();

  std::cout << "Paper example reproduction (Widom & Finkelstein, SIGMOD "
               "1990)\n";
  std::cout << std::string(78, '=') << "\n";
  int failures = 0;
  for (const auto& row : sopr::g_rows) {
    std::cout << (row.pass ? "[PASS] " : "[FAIL] ") << row.id << "  "
              << row.scenario << "\n"
              << "        expected: " << row.expected << "\n"
              << "        observed: " << row.observed << "\n";
    if (!row.pass) ++failures;
  }
  std::cout << std::string(78, '=') << "\n"
            << (sopr::g_rows.size() - failures) << "/" << sopr::g_rows.size()
            << " examples reproduce the paper's traces\n";
  return failures == 0 ? 0 : 1;
}
