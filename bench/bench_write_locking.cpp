// B13 — record-level write locking vs the single-writer baseline. N
// writer threads each commit multi-statement indexed-update blocks in a
// closed loop. "record_locks" opens the session manager with concurrent
// writers on: strict 2PL record locks plus SHARED scheduler admission,
// so writers overlap parse, planning, fixpoint and apply and serialize
// only in the WAL commit section. "single_writer" is the PR 3 baseline:
// every transaction takes the scheduler's exclusive writer slot.
//
// Three workloads per thread count:
//   disjoint       — each thread owns its key range; no two blocks ever
//                    touch the same record, so record locking admits
//                    them all. Pure CPU overlap: the speedup here needs
//                    as many cores as writers (see "cpus" in the JSON).
//   disjoint_stall — same key layout, but writer 0 parks mid-
//                    transaction (a blocking failpoint standing in for
//                    a slow interactive client) and stays parked for
//                    the whole window, locks held. This measures the
//                    serial section's head-of-line blocking, which is
//                    core-count independent: under exclusive admission
//                    the parked writer stalls EVERY other writer for
//                    the duration; under record locking it holds only
//                    its own row locks and the disjoint writers sail
//                    past. The headline number.
//   contended      — every thread hammers the same 8 keys in random
//                    order; blocking and deadlock aborts are the
//                    expected graceful-degradation cost.
//
// Custom main (not google-benchmark): each configuration is one timed
// run against a fresh WAL directory; results go to
// BENCH_write_locking.json for the CI trend tracker.
//
// Run: ./build/bench/bench_write_locking [seconds-per-config]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "server/session_manager.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_bench_locking_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

enum class Workload { kDisjoint, kDisjointStall, kContended };

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kDisjoint:
      return "disjoint";
    case Workload::kDisjointStall:
      return "disjoint_stall";
    case Workload::kContended:
      return "contended";
  }
  return "?";
}

struct RunResult {
  std::string mode;  // "record_locks" | "single_writer"
  std::string workload;
  int threads = 0;
  double seconds = 0;
  uint64_t commits = 0;
  uint64_t deadlock_aborts = 0;
  double commits_per_sec = 0;
};

constexpr int kMaxThreads = 8;
constexpr int kKeysPerThread = 32;   // disjoint partition size
constexpr int kContendedKeys = 8;    // shared hot set
constexpr int kUpdatesPerBlock = 4;  // statements per transaction
// Only the stall workload's writer 0 ever inserts, so only it parks here.
const char* kStallSite = "storage.insert.pre";

/// A block of indexed single-record updates — record X locks only, no
/// scans, so disjoint blocks share nothing but the commit section. The
/// stall workload's writer 0 appends an insert whose blocking failpoint
/// parks it mid-transaction, locks held.
std::string MakeBlock(Workload workload, int thread, std::mt19937* rng) {
  const bool contended = workload == Workload::kContended;
  std::string block;
  for (int u = 0; u < kUpdatesPerBlock; ++u) {
    const int key = contended
                        ? static_cast<int>((*rng)() % kContendedKeys)
                        : thread * kKeysPerThread +
                              static_cast<int>((*rng)() % kKeysPerThread);
    if (!block.empty()) block += "; ";
    block += "update accts set bal = bal + 1 where id = " +
             std::to_string(key);
  }
  if (workload == Workload::kDisjointStall && thread == 0) {
    block += "; insert into stalls values (1)";
  }
  return block;
}

RunResult Run(bool record_locks, Workload workload, int threads,
              double seconds) {
  FailpointRegistry::Instance().DisarmAll();
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.wal_fsync = WalFsyncPolicy::kOff;  // measure locking, not fsync
  auto manager = server::SessionManager::Open(options, record_locks);
  Check(manager.status(), "open");
  auto setup = manager.value()->CreateSession();
  Check(setup.status(), "session");
  Check(setup.value()->Execute("create table accts (id int, bal int)"),
        "ddl");
  Check(setup.value()->Execute("create index on accts (id)"), "index");
  Check(setup.value()->Execute("create table stalls (v int)"), "ddl");
  for (int i = 0; i < kMaxThreads * kKeysPerThread; i += 32) {
    std::string block;
    for (int j = i; j < i + 32; ++j) {
      if (!block.empty()) block += "; ";
      block += "insert into accts values (" + std::to_string(j) + ", 0)";
    }
    Check(setup.value()->Execute(block), "load");
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> deadlocks{0};

  // The stall scenario: writer 0's first block parks at the insert's
  // blocking failpoint (only it executes inserts) and sits mid-
  // transaction, locks held, for the WHOLE measurement window — a slow
  // interactive client. Throughput is what the OTHER writers commit
  // meanwhile: under exclusive admission that is ~nothing, under record
  // locking the disjoint writers are unaffected. DisarmAll at shutdown
  // unparks it.
  if (workload == Workload::kDisjointStall) {
    FailpointRegistry::Instance().ArmBlocking(kStallSite);
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < threads; ++w) {
    writers.emplace_back([&, w] {
      auto session = manager.value()->CreateSession();
      Check(session.status(), "writer session");
      std::mt19937 rng(104729u * (w + 1));
      uint64_t mine = 0, aborted = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Status st =
            session.value()->Execute(MakeBlock(workload, w, &rng));
        if (st.ok()) {
          ++mine;
        } else if (st.code() == StatusCode::kDeadlock) {
          ++aborted;  // victim rolled back whole; just move on
        } else {
          Check(st, "update block");
        }
      }
      commits.fetch_add(mine);
      deadlocks.fetch_add(aborted);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  FailpointRegistry::Instance().DisarmAll();  // release the parked writer
  for (std::thread& t : writers) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  r.mode = record_locks ? "record_locks" : "single_writer";
  r.workload = WorkloadName(workload);
  r.threads = threads;
  r.seconds = secs;
  r.commits = commits.load();
  r.deadlock_aborts = deadlocks.load();
  r.commits_per_sec = r.commits / secs;
  return r;
}

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  ::unsetenv("SOPR_WAL_FSYNC");  // the bench pins kOff itself
  const double seconds = argc > 1 ? std::atof(argv[1]) : 0.5;
  const unsigned cpus = std::thread::hardware_concurrency();

  std::vector<sopr::RunResult> results;
  double stall4 = 0, stall4_single = 0;
  double uniform4 = 0, uniform4_single = 0;
  const sopr::Workload workloads[] = {sopr::Workload::kDisjoint,
                                      sopr::Workload::kDisjointStall,
                                      sopr::Workload::kContended};
  for (const sopr::Workload workload : workloads) {
    for (int threads : {1, 2, 4, 8}) {
      // A stall needs a bystander to block.
      if (workload == sopr::Workload::kDisjointStall && threads < 2) continue;
      sopr::RunResult locked = sopr::Run(true, workload, threads, seconds);
      sopr::RunResult single = sopr::Run(false, workload, threads, seconds);
      results.push_back(locked);
      results.push_back(single);
      std::printf(
          "%-14s threads=%d  record_locks %8.0f c/s (%llu deadlocks)"
          "  single_writer %8.0f c/s  speedup %.2fx\n",
          locked.workload.c_str(), threads, locked.commits_per_sec,
          static_cast<unsigned long long>(locked.deadlock_aborts),
          single.commits_per_sec,
          single.commits_per_sec > 0
              ? locked.commits_per_sec / single.commits_per_sec
              : 0);
      if (threads == 4) {
        if (workload == sopr::Workload::kDisjointStall) {
          stall4 = locked.commits_per_sec;
          stall4_single = single.commits_per_sec;
        } else if (workload == sopr::Workload::kDisjoint) {
          uniform4 = locked.commits_per_sec;
          uniform4_single = single.commits_per_sec;
        }
      }
    }
  }

  const double stall_speedup = stall4_single > 0 ? stall4 / stall4_single : 0;
  const double uniform_speedup =
      uniform4_single > 0 ? uniform4 / uniform4_single : 0;
  std::ofstream json("BENCH_write_locking.json");
  json << "{\n  \"bench\": \"write_locking\",\n  \"cpus\": " << cpus
       << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const sopr::RunResult& r = results[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"workload\": \""
         << r.workload << "\", \"threads\": " << r.threads
         << ", \"seconds\": " << r.seconds << ", \"commits\": " << r.commits
         << ", \"deadlock_aborts\": " << r.deadlock_aborts
         << ", \"commits_per_sec\": " << r.commits_per_sec << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  // Two headline numbers for 4 disjoint-key writers. The stall column is
  // what the serial section actually costs — one writer pausing
  // mid-transaction (slow client, long fixpoint) stalls everyone under
  // exclusive admission, nobody under record locks — and it holds at any
  // core count. The uniform column is pure CPU overlap and needs >= 4
  // cores to show its speedup (check "cpus").
  json << "  ],\n  \"disjoint_speedup_at_4_threads\": " << stall_speedup
       << ",\n  \"disjoint_speedup_workload\": \"disjoint_stall\""
       << ",\n  \"disjoint_uniform_speedup_at_4_threads\": " << uniform_speedup
       << "\n}\n";
  std::cout << "wrote BENCH_write_locking.json (4-thread disjoint speedup: "
            << stall_speedup << "x with a stalling writer, "
            << uniform_speedup << "x uniform on " << cpus << " cpu(s))\n";
  return 0;
}
