// B12 — MVCC snapshot reads vs the PR 3 shared-lock read path. N reader
// threads run the same select in a closed loop while ONE hot writer
// commits updates as fast as it can. "snapshot" readers pin the
// published visible LSN and scan version chains entirely outside the
// writer's exclusive section; "shared_lock" readers are the pre-MVCC
// baseline, serialized against the writer's apply phase on the
// scheduler's reader-writer lock.
//
// Custom main (not google-benchmark): each configuration is one timed
// run against a fresh WAL directory; results go to
// BENCH_snapshot_reads.json for the CI trend tracker.
//
// Run: ./build/bench/bench_snapshot_reads [seconds-per-config]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/session_manager.h"
#include "sql/parser.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_bench_snapshot_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << "\n";
    std::exit(1);
  }
}

struct RunResult {
  std::string mode;  // "snapshot" | "shared_lock"
  int readers = 0;
  double seconds = 0;
  uint64_t reads = 0;
  uint64_t writer_commits = 0;
  double reads_per_sec = 0;
  double commits_per_sec = 0;
};

constexpr int kRows = 200;
const char* kReadSql = "select count(*) from t where v >= 0";

RunResult Run(bool snapshot_mode, int readers, double seconds) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.wal_fsync = WalFsyncPolicy::kOff;  // measure concurrency, not fsync
  auto manager = server::SessionManager::Open(options);
  Check(manager.status(), "open");
  auto setup = manager.value()->CreateSession();
  Check(setup.status(), "session");
  Check(setup.value()->Execute("create table t (id int, v int)"), "ddl");
  for (int i = 0; i < kRows; i += 20) {
    std::string block;
    for (int j = i; j < i + 20; ++j) {
      if (!block.empty()) block += "; ";
      block += "insert into t values (" + std::to_string(j) + ", " +
               std::to_string(j % 17) + ")";
    }
    Check(setup.value()->Execute(block), "load");
  }

  // Parse the reader's select once; both paths run the identical parsed
  // statement so the comparison is pure lock/version mechanics.
  auto parsed = Parser::ParseStatement(kReadSql);
  Check(parsed.status(), "parse");
  if (parsed.value()->kind != StmtKind::kSelect) {
    std::cerr << "probe is not a select\n";
    std::exit(1);
  }
  const auto* stmt = static_cast<const SelectStmt*>(parsed.value().get());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> commits{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = snapshot_mode
                          ? manager.value()->scheduler().QuerySnapshot(*stmt)
                          : manager.value()->scheduler().Query(*stmt);
        Check(result.status(), "read");
        ++mine;
      }
      reads.fetch_add(mine);
    });
  }
  std::thread writer([&] {
    auto session = manager.value()->CreateSession();
    Check(session.status(), "writer session");
    uint64_t step = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int id = static_cast<int>(step++ % kRows);
      Check(session.value()->Execute("update t set v = v + 1 where id = " +
                                     std::to_string(id)),
            "update");
      commits.fetch_add(1);
    }
  });

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  writer.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  r.mode = snapshot_mode ? "snapshot" : "shared_lock";
  r.readers = readers;
  r.seconds = secs;
  r.reads = reads.load();
  r.writer_commits = commits.load();
  r.reads_per_sec = r.reads / secs;
  r.commits_per_sec = r.writer_commits / secs;
  return r;
}

}  // namespace
}  // namespace sopr

int main(int argc, char** argv) {
  ::unsetenv("SOPR_WAL_FSYNC");  // the bench pins kOff itself
  const double seconds = argc > 1 ? std::atof(argv[1]) : 0.5;

  std::vector<sopr::RunResult> results;
  double snap8 = 0, shared8 = 0, snap8_writer = 0, shared8_writer = 0;
  for (int readers : {1, 4, 8}) {
    sopr::RunResult snapshot = sopr::Run(true, readers, seconds);
    sopr::RunResult shared = sopr::Run(false, readers, seconds);
    results.push_back(snapshot);
    results.push_back(shared);
    std::printf(
        "readers=%d  snapshot %9.0f reads/s (writer %6.0f c/s)"
        "  shared_lock %9.0f reads/s (writer %6.0f c/s)  ratio %.2fx\n",
        readers, snapshot.reads_per_sec, snapshot.commits_per_sec,
        shared.reads_per_sec, shared.commits_per_sec,
        shared.reads_per_sec > 0
            ? snapshot.reads_per_sec / shared.reads_per_sec
            : 0);
    if (readers == 8) {
      snap8 = snapshot.reads_per_sec;
      shared8 = shared.reads_per_sec;
      snap8_writer = snapshot.commits_per_sec;
      shared8_writer = shared.commits_per_sec;
    }
  }

  std::ofstream json("BENCH_snapshot_reads.json");
  json << "{\n  \"bench\": \"snapshot_reads\",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const sopr::RunResult& r = results[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"readers\": " << r.readers
         << ", \"seconds\": " << r.seconds << ", \"reads\": " << r.reads
         << ", \"writer_commits\": " << r.writer_commits
         << ", \"reads_per_sec\": " << r.reads_per_sec
         << ", \"writer_commits_per_sec\": " << r.commits_per_sec << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  // Two headline numbers: raw read throughput ratio, and — the point of
  // MVCC — how alive the writer stays under full read load (the shared
  // lock starves it; snapshots never touch it).
  json << "  ],\n  \"read_ratio_snapshot_vs_shared_at_8_readers\": "
       << (shared8 > 0 ? snap8 / shared8 : 0)
       << ",\n  \"writer_liveness_snapshot_vs_shared_at_8_readers\": "
       << (shared8_writer > 0 ? snap8_writer / shared8_writer : 0) << "\n}\n";
  std::cout << "wrote BENCH_snapshot_reads.json (8-reader read ratio "
            << (shared8 > 0 ? snap8 / shared8 : 0) << "x, writer liveness "
            << (shared8_writer > 0 ? snap8_writer / shared8_writer : 0)
            << "x)\n";
  return 0;
}
