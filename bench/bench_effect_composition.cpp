// B2 — cost of transition-effect machinery (Definition 2.1): composing
// pure effects and folding value-carrying trans-info, as a function of
// the number of touched tuples and of composition chain length.
//
// Run: ./build/bench/bench_effect_composition

#include <benchmark/benchmark.h>

#include <random>

#include "rules/effect.h"
#include "rules/trans_info.h"

namespace sopr {
namespace {

TransitionEffect MakeEffect(int tuples, uint32_t seed) {
  std::mt19937 rng(seed);
  TransitionEffect e;
  TableEffect& t = e.tables["t"];
  for (int i = 0; i < tuples; ++i) {
    TupleHandle h = rng() % (tuples * 4) + 1;
    switch (rng() % 3) {
      case 0:
        t.inserted.insert(h);
        break;
      case 1:
        if (t.inserted.count(h) == 0) t.deleted.insert(h);
        break;
      default:
        if (t.inserted.count(h) == 0 && t.deleted.count(h) == 0) {
          t.updated[h].insert(rng() % 4);
        }
        break;
    }
  }
  return e;
}

void BM_ComposePair(benchmark::State& state) {
  const int tuples = static_cast<int>(state.range(0));
  TransitionEffect e1 = MakeEffect(tuples, 1);
  TransitionEffect e2 = MakeEffect(tuples, 2);
  for (auto _ : state) {
    TransitionEffect c = TransitionEffect::Compose(e1, e2);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * tuples * 2);
}
BENCHMARK(BM_ComposePair)->Arg(16)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ComposeChain(benchmark::State& state) {
  // Left-fold a chain of k effects of fixed size (the shape of a long
  // rule cascade).
  const int chain = static_cast<int>(state.range(0));
  std::vector<TransitionEffect> effects;
  effects.reserve(chain);
  for (int i = 0; i < chain; ++i) effects.push_back(MakeEffect(64, i + 10));
  for (auto _ : state) {
    TransitionEffect acc;
    for (const TransitionEffect& e : effects) {
      acc = TransitionEffect::Compose(acc, e);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_ComposeChain)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

DmlEffect MakeDmlEffect(int tuples, TupleHandle base) {
  DmlEffect op;
  op.table = "t";
  for (int i = 0; i < tuples; ++i) {
    DmlEffect::UpdatedTuple u;
    u.handle = base + i;
    u.columns = {0};
    u.old_row = Row{Value::Int(i), Value::Int(i * 2)};
    op.updated.push_back(std::move(u));
  }
  return op;
}

void BM_TransInfoApplyOp(benchmark::State& state) {
  // Value-carrying fold: the per-operation cost inside a block.
  const int tuples = static_cast<int>(state.range(0));
  DmlEffect op = MakeDmlEffect(tuples, 1);
  for (auto _ : state) {
    TransInfo info;
    info.ApplyOp(op);
    benchmark::DoNotOptimize(info);
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_TransInfoApplyOp)->Arg(16)->Arg(128)->Arg(1024);

void BM_TransInfoCompose(benchmark::State& state) {
  // modify-trans-info between transitions (the Figure 1 hot path).
  const int tuples = static_cast<int>(state.range(0));
  TransInfo base;
  base.ApplyOp(MakeDmlEffect(tuples, 1));
  TransInfo later;
  later.ApplyOp(MakeDmlEffect(tuples, tuples / 2 + 1));  // half overlap
  for (auto _ : state) {
    TransInfo info = base;
    info.Compose(later);
    benchmark::DoNotOptimize(info);
  }
  state.SetItemsProcessed(state.iterations() * tuples * 2);
}
BENCHMARK(BM_TransInfoCompose)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace sopr

BENCHMARK_MAIN();
