#ifndef SOPR_EXEC_HASH_JOIN_H_
#define SOPR_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/column_vector.h"
#include "types/row.h"
#include "types/value.h"

namespace sopr {
namespace exec {

/// Hash of a non-NULL value under SQL join-key equality: numerics are
/// normalized through double (so int 2 and double 2.0 — which
/// SqlEquals — land in the same bucket, and -0.0 hashes as +0.0).
uint64_t HashJoinKeyValue(const Value& v);

/// Build/probe hash table for equijoins: build side keyed by one or
/// more columns, probe by value pointers (no key materialization).
/// Collisions are resolved by verifying candidates with SqlEquals, so a
/// hash collision can cost time but never correctness. Rows with a NULL
/// key column are not inserted and a NULL probe key matches nothing —
/// SQL equality semantics.
class JoinHashTable {
 public:
  /// Builds over `rows` keyed by `key_cols`. Returns false when a
  /// non-zero `max_build_rows` is exceeded (hash-join memory
  /// discipline: the caller falls back to the nested-loop path instead
  /// of growing the table without bound; docs/EXECUTION.md). Checks
  /// cancellation at batch boundaries during the build.
  Result<bool> Build(const std::vector<Row>& rows,
                     std::vector<size_t> key_cols, size_t max_build_rows);

  /// Columnar build: identical table, keys digested by monomorphic bulk
  /// loops over decomposed key columns (`key_vecs`, parallel to
  /// `key_cols`, each spanning all of `rows`) instead of a per-row
  /// Value-type switch. Same normalization (numerics through double
  /// bits, -0.0 collapsed), same NULL-key skip, same ascending build-row
  /// bucket order — bucket contents are bit-identical to Build's.
  /// Counted in exec stats hash_join_columnar_builds (as well as
  /// hash_join_builds).
  Result<bool> BuildColumnar(const std::vector<Row>& rows,
                             std::vector<size_t> key_cols,
                             size_t max_build_rows,
                             const std::vector<const ColumnVector*>& key_vecs);

  /// Appends to `out` the build-row indices whose key columns all
  /// SqlEquals the probe values (one per key column, same order as
  /// `key_cols`). Any NULL probe value matches nothing.
  void Probe(const std::vector<const Value*>& probe_key,
             std::vector<uint32_t>* out) const;

 private:
  const std::vector<Row>* rows_ = nullptr;
  std::vector<size_t> key_cols_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

}  // namespace exec
}  // namespace sopr

#endif  // SOPR_EXEC_HASH_JOIN_H_
