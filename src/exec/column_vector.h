#ifndef SOPR_EXEC_COLUMN_VECTOR_H_
#define SOPR_EXEC_COLUMN_VECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "types/row.h"
#include "types/value.h"

namespace sopr {
namespace exec {

/// One hot column decomposed out of row-organized storage into a
/// contiguous typed array + null mask (docs/EXECUTION.md "Columnar
/// chunks"). Decomposition happens at materialization time; the kernels
/// in exec/kernels.h then run branch-light loops over these arrays
/// instead of chasing Row pointers and std::variant tags per value.
///
/// Lifetime: string entries BORROW the std::string owned by the source
/// Row — a ColumnVector is valid exactly as long as the rows it was
/// decomposed from, the same discipline as RowBatch's row pointers.
///
/// A column decomposes only if every non-NULL value matches the single
/// tag derived from the column's declared type. SQL columns are typed,
/// so this holds for every row that came out of storage; if it ever does
/// not (defensive check), decomposition is refused and the expression
/// falls back to the PR 9 pointer path for that column.
class ColumnVector {
 public:
  enum class Tag : uint8_t { kInt64, kDouble, kString, kBool };

  /// Maps a declared column type to its array tag. kNull (the type of an
  /// undeclared literal column) has no tag: such a column never
  /// decomposes.
  static std::optional<Tag> TagFor(ValueType t);

  Tag tag() const { return tag_; }
  size_t size() const { return nulls_.size(); }
  bool has_nulls() const { return has_nulls_; }

  /// Null mask: 1 = NULL at that position. Always size() entries.
  const uint8_t* nulls() const { return nulls_.data(); }
  bool is_null(size_t i) const { return nulls_[i] != 0; }

  /// Typed payload arrays; only the one matching tag() is populated.
  /// NULL positions hold a defined dummy (0 / 0.0 / nullptr / 0) so
  /// branchless kernels may read every lane and mask afterwards.
  const int64_t* i64() const { return i64_.data(); }
  const double* f64() const { return f64_.data(); }
  const std::string* const* str() const { return str_.data(); }
  const uint8_t* b8() const { return b8_.data(); }

  void Reset(Tag tag, size_t reserve);

  /// Appends one value. Returns false (leaving the vector unusable) if a
  /// non-NULL value does not match the tag.
  bool Append(const Value& v);

  /// Re-reads position i as a Value (tests / debugging; not a hot path).
  Value GetValue(size_t i) const;

  /// Rebuilds this vector as a copy of src's [begin, begin + len)
  /// window — a flat copy of POD lanes (string entries still borrow from
  /// the original rows). Windows whole-relation columns into per-chunk
  /// vectors parallel to a RowBatch.
  void SliceFrom(const ColumnVector& src, size_t begin, size_t len);

 private:
  Tag tag_ = Tag::kInt64;
  bool has_nulls_ = false;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<const std::string*> str_;
  std::vector<uint8_t> b8_;
};

/// Decomposes column `col` of `rows` (declared type `declared`) into
/// `out`. Returns false — and bumps exec stats columns_rejected — when
/// the column cannot decompose (untagged declared type or a value/tag
/// mismatch); `out` is unusable in that case. Bumps columns_built on
/// success.
bool BuildColumn(const std::vector<Row>& rows, size_t col,
                 ValueType declared, ColumnVector* out);

/// Same, over an arbitrary row-pointer accessor (e.g. DML snapshots or
/// join combos). `row_at(i)` must return a live `const Row&` for
/// i in [0, n).
template <typename RowAt>
bool BuildColumnFrom(size_t n, RowAt&& row_at, size_t col,
                     ValueType declared, ColumnVector* out);

namespace internal {
bool FinishBuild(bool ok, ColumnVector* out);
}  // namespace internal

template <typename RowAt>
bool BuildColumnFrom(size_t n, RowAt&& row_at, size_t col,
                     ValueType declared, ColumnVector* out) {
  std::optional<ColumnVector::Tag> tag = ColumnVector::TagFor(declared);
  if (!tag.has_value()) return internal::FinishBuild(false, out);
  out->Reset(*tag, n);
  for (size_t i = 0; i < n; ++i) {
    const Row& row = row_at(i);
    if (col >= row.size() || !out->Append(row.at(col))) {
      return internal::FinishBuild(false, out);
    }
  }
  return internal::FinishBuild(true, out);
}

}  // namespace exec
}  // namespace sopr

#endif  // SOPR_EXEC_COLUMN_VECTOR_H_
