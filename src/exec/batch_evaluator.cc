#include "exec/batch_evaluator.h"

#include <optional>
#include <utility>

#include "exec/kernels.h"

namespace sopr {
namespace exec {

namespace {

/// One value per selected position (parallel to the SelVec being
/// evaluated): either pointers borrowed from storage — column refs and
/// literals never copy a Value, which is where the batch path beats the
/// per-row tree walk on string columns — or owned computed results.
struct Slice {
  bool borrowed = false;
  std::vector<const Value*> ptrs;
  std::vector<Value> vals;

  const Value& at(size_t i) const { return borrowed ? *ptrs[i] : vals[i]; }
};

struct BatchCtx {
  Scope* scope;
  EvalContext* ctx;
  const RowBatch* batch;
};

Status EvalValue(const Expr& e, BatchCtx& c, const SelVec& sel, Slice* out);
Status EvalPred(const Expr& e, BatchCtx& c, const SelVec& sel,
                std::vector<TriBool>* out);

/// Binds every batch binding of the innermost scope level to the rows at
/// `pos`, for nodes that drop to per-row scalar evaluation (subqueries,
/// aggregates) and for the whole-chunk scalar re-run.
void BindRows(BatchCtx& c, uint32_t pos) {
  for (size_t b = 0; b < c.batch->num_bindings(); ++b) {
    c.scope->SetRow(b, c.batch->row(b, pos));
  }
}

/// Resolution of a column ref against the batch: either one of the
/// batch's bindings (gather per position) or an outer-scope binding
/// (one row, constant across the batch).
Status ResolveRef(const ColumnRefExpr& ref, BatchCtx& c, bool* in_batch,
                  size_t* binding, size_t* column, const Row** outer_row) {
  auto resolved = c.scope->ResolveColumn(ref.qualifier, ref.column);
  if (!resolved.ok()) return resolved.status();
  *column = resolved.value().column;
  const Binding* b = resolved.value().binding;
  for (size_t i = 0; i < c.scope->num_bindings(); ++i) {
    if (&c.scope->binding(i) == b) {
      *in_batch = true;
      *binding = i;
      return Status::OK();
    }
  }
  *in_batch = false;
  *outer_row = b->row;
  return Status::OK();
}

/// Short-circuit AND/OR over the batch: the right operand is evaluated
/// only for positions the left operand did not decide, via a narrowed
/// selection vector — the same (row, subexpression) pairs the scalar
/// evaluator visits, operator-at-a-time.
Status EvalLogical(const BinaryExpr& b, BatchCtx& c, const SelVec& sel,
                   std::vector<TriBool>* out) {
  const bool is_and = b.op == BinaryOp::kAnd;
  std::vector<TriBool> lt;
  SOPR_RETURN_NOT_OK(EvalPred(*b.left, c, sel, &lt));

  SelVec rhs_sel;
  std::vector<uint32_t> rhs_idx;  // index into `sel` for each rhs entry
  for (size_t i = 0; i < sel.size(); ++i) {
    const bool decided =
        is_and ? lt[i] == TriBool::kFalse : lt[i] == TriBool::kTrue;
    if (!decided) {
      rhs_sel.push_back(sel[i]);
      rhs_idx.push_back(static_cast<uint32_t>(i));
    }
  }

  std::vector<TriBool> rt;
  if (!rhs_sel.empty()) {
    SOPR_RETURN_NOT_OK(EvalPred(*b.right, c, rhs_sel, &rt));
  }

  *out = std::move(lt);
  for (size_t j = 0; j < rhs_idx.size(); ++j) {
    TriBool& slot = (*out)[rhs_idx[j]];
    slot = is_and ? TriAnd(slot, rt[j]) : TriOr(slot, rt[j]);
  }
  return Status::OK();
}

/// Nodes the batch path evaluates position-at-a-time through the scalar
/// evaluator (subqueries and aggregate lookups): binds the batch rows
/// into the scope and calls Evaluate, exactly as the row path does.
Status EvalPerRowScalar(const Expr& e, BatchCtx& c, const SelVec& sel,
                        Slice* out) {
  out->borrowed = false;
  out->vals.reserve(sel.size());
  for (uint32_t pos : sel) {
    BindRows(c, pos);
    auto v = Evaluate(e, *c.scope, *c.ctx);
    if (!v.ok()) return v.status();
    out->vals.push_back(std::move(v).value());
  }
  return Status::OK();
}

Status EvalValue(const Expr& e, BatchCtx& c, const SelVec& sel, Slice* out) {
  const size_t n = sel.size();
  switch (e.kind) {
    case ExprKind::kLiteral: {
      out->borrowed = true;
      out->ptrs.assign(n, &static_cast<const LiteralExpr&>(e).value);
      return Status::OK();
    }

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      bool in_batch = false;
      size_t binding = 0, column = 0;
      const Row* outer_row = nullptr;
      SOPR_RETURN_NOT_OK(
          ResolveRef(ref, c, &in_batch, &binding, &column, &outer_row));
      out->borrowed = true;
      out->ptrs.resize(n);
      if (!in_batch) {
        if (outer_row == nullptr) {
          return Status::Internal("column " + ref.ToString() +
                                  " referenced outside row context");
        }
        const Value* v = &outer_row->at(column);
        for (size_t i = 0; i < n; ++i) out->ptrs[i] = v;
        return Status::OK();
      }
      for (size_t i = 0; i < n; ++i) {
        const Row* row = c.batch->row(binding, sel[i]);
        if (row == nullptr) {
          return Status::Internal("column " + ref.ToString() +
                                  " referenced outside row context");
        }
        out->ptrs[i] = &row->at(column);
      }
      return Status::OK();
    }

    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(e);
      if (unary.op == UnaryOp::kNeg) {
        Slice operand;
        SOPR_RETURN_NOT_OK(EvalValue(*unary.operand, c, sel, &operand));
        out->borrowed = false;
        out->vals.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          auto v = Value::Negate(operand.at(i));
          if (!v.ok()) return v.status();
          out->vals.push_back(std::move(v).value());
        }
        return Status::OK();
      }
      std::vector<TriBool> t;
      SOPR_RETURN_NOT_OK(EvalPred(*unary.operand, c, sel, &t));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out->vals.push_back(TriBoolToValue(TriNot(t[i])));
      }
      return Status::OK();
    }

    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(e);
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        std::vector<TriBool> t;
        SOPR_RETURN_NOT_OK(EvalLogical(binary, c, sel, &t));
        out->borrowed = false;
        out->vals.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          out->vals.push_back(TriBoolToValue(t[i]));
        }
        return Status::OK();
      }
      Slice left, right;
      SOPR_RETURN_NOT_OK(EvalValue(*binary.left, c, sel, &left));
      SOPR_RETURN_NOT_OK(EvalValue(*binary.right, c, sel, &right));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        auto v = EvaluateBinaryValue(binary.op, left.at(i), right.at(i));
        if (!v.ok()) return v.status();
        out->vals.push_back(std::move(v).value());
      }
      return Status::OK();
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      Slice needle;
      SOPR_RETURN_NOT_OK(EvalValue(*in.operand, c, sel, &needle));
      std::vector<Slice> items(in.items.size());
      for (size_t k = 0; k < in.items.size(); ++k) {
        SOPR_RETURN_NOT_OK(EvalValue(*in.items[k], c, sel, &items[k]));
      }
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        // Inline MembershipTri over the item slices (no Value copies).
        bool saw_unknown = false;
        TriBool t = TriBool::kFalse;
        for (const Slice& item : items) {
          TriBool eq = needle.at(i).SqlEquals(item.at(i));
          if (eq == TriBool::kTrue) {
            t = TriBool::kTrue;
            break;
          }
          if (eq == TriBool::kUnknown) saw_unknown = true;
        }
        if (t != TriBool::kTrue && saw_unknown) t = TriBool::kUnknown;
        out->vals.push_back(TriBoolToValue(in.negated ? TriNot(t) : t));
      }
      return Status::OK();
    }

    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(e);
      Slice operand;
      SOPR_RETURN_NOT_OK(EvalValue(*isnull.operand, c, sel, &operand));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool null = operand.at(i).is_null();
        out->vals.push_back(Value::Bool(isnull.negated ? !null : null));
      }
      return Status::OK();
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(e);
      Slice v, lo, hi;
      SOPR_RETURN_NOT_OK(EvalValue(*between.operand, c, sel, &v));
      SOPR_RETURN_NOT_OK(EvalValue(*between.low, c, sel, &lo));
      SOPR_RETURN_NOT_OK(EvalValue(*between.high, c, sel, &hi));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        TriBool ge = TriNot(v.at(i).SqlLess(lo.at(i)));
        TriBool le = TriNot(hi.at(i).SqlLess(v.at(i)));
        TriBool t = TriAnd(ge, le);
        out->vals.push_back(TriBoolToValue(between.negated ? TriNot(t) : t));
      }
      return Status::OK();
    }

    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
    case ExprKind::kAggregate:
      return EvalPerRowScalar(e, c, sel, out);
  }
  return Status::Internal("unhandled expression kind");
}

Status EvalPred(const Expr& e, BatchCtx& c, const SelVec& sel,
                std::vector<TriBool>* out) {
  if (e.kind == ExprKind::kBinary) {
    const auto& binary = static_cast<const BinaryExpr&>(e);
    if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
      return EvalLogical(binary, c, sel, out);
    }
  }
  Slice s;
  SOPR_RETURN_NOT_OK(EvalValue(e, c, sel, &s));
  out->resize(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    auto t = PredicateTriFromValue(s.at(i));
    if (!t.ok()) return t.status();
    (*out)[i] = t.value();
  }
  return Status::OK();
}

/// Position-dependent evaluation errors re-run through the scalar path
/// for exact row-order error reporting; everything else (cancellation,
/// timeouts, injected faults, lock trouble surfaced through subqueries)
/// is position-independent or nondeterministic and propagates as is.
bool ShouldFallback(StatusCode code) {
  switch (code) {
    case StatusCode::kTypeError:
    case StatusCode::kExecutionError:
    case StatusCode::kCatalogError:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

/// The authoritative row-order re-run both wrappers share after an
/// evaluation-class error.
Status ScalarRerun(const Expr& expr, BatchCtx& c, const SelVec& sel,
                   std::vector<TriBool>* out) {
  GlobalStats().scalar_fallbacks.fetch_add(1, std::memory_order_relaxed);
  out->clear();
  out->reserve(sel.size());
  for (uint32_t pos : sel) {
    BindRows(c, pos);
    auto t = EvaluatePredicate(expr, *c.scope, *c.ctx);
    if (!t.ok()) return t.status();
    out->push_back(t.value());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Columnar evaluation (docs/EXECUTION.md "Columnar chunks").
//
// A pre-walk (InferTag) statically types each subtree over the decomposed
// columns. Typeable subtrees run the dense kernels of exec/kernels.h;
// everything else — subqueries, aggregates, non-decomposed columns,
// string/bool arithmetic, per-lane type divergence — evaluates through
// the PR 9 pointer path (EvalPred/EvalValue above) over the same
// selection vector, so observable behaviour is identical by construction.
// ---------------------------------------------------------------------------

struct CCtx {
  BatchCtx base;
  const ColumnSet* cols;
};

/// Static type of a columnar-eligible value expression. kNull = the
/// expression is NULL at every lane (its type never materializes).
enum class CTag { kNum, kStr, kBool, kNull };

std::optional<CTag> TagOfValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return CTag::kNull;
    case ValueType::kInt:
    case ValueType::kDouble:
      return CTag::kNum;
    case ValueType::kString:
      return CTag::kStr;
    case ValueType::kBool:
      return CTag::kBool;
  }
  return std::nullopt;
}

CTag TagOfColumn(ColumnVector::Tag t) {
  switch (t) {
    case ColumnVector::Tag::kInt64:
    case ColumnVector::Tag::kDouble:
      return CTag::kNum;
    case ColumnVector::Tag::kString:
      return CTag::kStr;
    case ColumnVector::Tag::kBool:
      return CTag::kBool;
  }
  return CTag::kNum;
}

bool IsCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Infers the static columnar type of `e`, or nullopt when the subtree
/// must run the pointer path. Eligibility is conservative: a subtree is
/// eligible only when the kernels provably reproduce the scalar
/// evaluator's per-lane values AND per-lane error behaviour. NOT/AND/OR
/// are always eligible at this level because their operands are
/// evaluated as predicates (CEvalPred), which falls back per-side.
std::optional<CTag> InferTag(const Expr& e, CCtx& c) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return TagOfValue(static_cast<const LiteralExpr&>(e).value);

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      bool in_batch = false;
      size_t binding = 0, column = 0;
      const Row* outer_row = nullptr;
      Status s = ResolveRef(ref, c.base, &in_batch, &binding, &column,
                            &outer_row);
      if (!s.ok()) return std::nullopt;  // pointer path raises it
      if (in_batch) {
        const ColumnVector* cv = c.cols->Find(binding, column);
        if (cv == nullptr) return std::nullopt;  // not decomposed
        return TagOfColumn(cv->tag());
      }
      if (outer_row == nullptr) return std::nullopt;
      return TagOfValue(outer_row->at(column));  // constant broadcast
    }

    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(e);
      if (unary.op == UnaryOp::kNot) return CTag::kBool;
      auto t = InferTag(*unary.operand, c);
      if (!t.has_value()) return std::nullopt;
      // Negate: NULL propagates; numerics negate; anything else is a
      // per-lane TypeError (pointer path).
      if (*t == CTag::kNum || *t == CTag::kNull) return *t;
      return std::nullopt;
    }

    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(e);
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        return CTag::kBool;
      }
      auto lt = InferTag(*binary.left, c);
      auto rt = InferTag(*binary.right, c);
      if (!lt.has_value() || !rt.has_value()) return std::nullopt;
      if (IsCompareOp(binary.op)) return CTag::kBool;
      // Arithmetic. NULL wins before type checks (Value::Add et al.), so
      // an all-NULL side makes the result all-NULL whatever the other
      // side's type; string concatenation and type errors run pointered.
      if (*lt == CTag::kNull || *rt == CTag::kNull) return CTag::kNull;
      if (*lt == CTag::kNum && *rt == CTag::kNum) return CTag::kNum;
      return std::nullopt;
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (!InferTag(*in.operand, c).has_value()) return std::nullopt;
      for (const ExprPtr& item : in.items) {
        if (!InferTag(*item, c).has_value()) return std::nullopt;
      }
      return CTag::kBool;
    }

    case ExprKind::kIsNull:
      if (!InferTag(*static_cast<const IsNullExpr&>(e).operand, c)
               .has_value()) {
        return std::nullopt;
      }
      return CTag::kBool;

    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(e);
      if (!InferTag(*b.operand, c).has_value() ||
          !InferTag(*b.low, c).has_value() ||
          !InferTag(*b.high, c).has_value()) {
        return std::nullopt;
      }
      return CTag::kBool;
    }

    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
    case ExprKind::kAggregate:
      return std::nullopt;
  }
  return std::nullopt;
}

/// A typed dense slice plus its static tag; kNull means "NULL at every
/// lane" and carries no arrays.
struct CSlice {
  CTag tag = CTag::kNull;
  size_t n = 0;
  NumSlice num;
  StrSlice str;
  BoolSlice bools;
};

const std::vector<uint8_t>& NullMaskOf(const CSlice& s) {
  switch (s.tag) {
    case CTag::kNum:
      return s.num.null;
    case CTag::kStr:
      return s.str.null;
    case CTag::kBool:
    case CTag::kNull:
      return s.bools.null;
  }
  return s.bools.null;
}

Status CEvalValue(const Expr& e, CCtx& c, const SelVec& sel, CSlice* out);
Status CEvalPred(const Expr& e, CCtx& c, const SelVec& sel, TriVec* out);

/// Leaf predicates without a kernel run the PR 9 pointer path over the
/// same selection vector.
Status PointerPred(const Expr& e, CCtx& c, const SelVec& sel, TriVec* out) {
  GlobalStats().pointer_fallback_preds.fetch_add(1, std::memory_order_relaxed);
  return EvalPred(e, c.base, sel, out);
}

void TriVecToBoolSlice(const TriVec& t, CSlice* out) {
  out->tag = CTag::kBool;
  out->n = t.size();
  out->bools.Resize(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    out->bools.null[i] = t[i] == TriBool::kUnknown;
    out->bools.b[i] = t[i] == TriBool::kTrue;
  }
}

void BroadcastValue(const Value& v, CTag tag, size_t n, CSlice* out) {
  out->tag = tag;
  out->n = n;
  switch (tag) {
    case CTag::kNull:
      return;
    case CTag::kNum:
      BroadcastNum(v, n, &out->num);
      return;
    case CTag::kStr:
      BroadcastStr(v, n, &out->str);
      return;
    case CTag::kBool:
      BroadcastBool(v, n, &out->bools);
      return;
  }
}

/// Dispatches a comparison over two evaluated slices. Type-mismatched or
/// all-NULL operands can never decide (SqlEquals/SqlLess return kUnknown
/// for every such lane).
void CmpSlices(BinaryOp op, const CSlice& a, const CSlice& b, size_t n,
               TriVec* out) {
  if (a.tag == CTag::kNull || b.tag == CTag::kNull || a.tag != b.tag) {
    FillUnknown(n, out);
    return;
  }
  switch (a.tag) {
    case CTag::kNum:
      CmpNum(op, a.num, b.num, out);
      return;
    case CTag::kStr:
      CmpStr(op, a.str, b.str, out);
      return;
    case CTag::kBool:
      CmpBool(op, a.bools, b.bools, out);
      return;
    case CTag::kNull:
      return;  // unreachable
  }
}

Status CCompare(const BinaryExpr& binary, CCtx& c, const SelVec& sel,
                TriVec* out) {
  CSlice a, b;
  SOPR_RETURN_NOT_OK(CEvalValue(*binary.left, c, sel, &a));
  SOPR_RETURN_NOT_OK(CEvalValue(*binary.right, c, sel, &b));
  CmpSlices(binary.op, a, b, sel.size(), out);
  return Status::OK();
}

/// v BETWEEN lo AND hi ≡ TriAnd(TriNot(v < lo), TriNot(hi < v)) — the
/// exact composition the scalar evaluator uses, built from the kGe/kLe
/// kernels (which implement those TriNot forms, NaN-exactly).
Status CBetween(const BetweenExpr& be, CCtx& c, const SelVec& sel,
                TriVec* out) {
  const size_t n = sel.size();
  CSlice v, lo, hi;
  SOPR_RETURN_NOT_OK(CEvalValue(*be.operand, c, sel, &v));
  SOPR_RETURN_NOT_OK(CEvalValue(*be.low, c, sel, &lo));
  SOPR_RETURN_NOT_OK(CEvalValue(*be.high, c, sel, &hi));
  TriVec ge, le;
  CmpSlices(BinaryOp::kGe, v, lo, n, &ge);
  CmpSlices(BinaryOp::kLe, v, hi, n, &le);
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    TriBool t = TriAnd(ge[i], le[i]);
    (*out)[i] = be.negated ? TriNot(t) : t;
  }
  return Status::OK();
}

/// IN list as a TriOr fold of equality kernels: any kTrue wins, else any
/// kUnknown, else kFalse — MembershipTri exactly.
Status CInList(const InListExpr& in, CCtx& c, const SelVec& sel,
               TriVec* out) {
  GlobalStats().kernel_membership.fetch_add(1, std::memory_order_relaxed);
  const size_t n = sel.size();
  CSlice needle;
  SOPR_RETURN_NOT_OK(CEvalValue(*in.operand, c, sel, &needle));
  out->assign(n, TriBool::kFalse);
  TriVec eq;
  for (const ExprPtr& item : in.items) {
    CSlice iv;
    SOPR_RETURN_NOT_OK(CEvalValue(*item, c, sel, &iv));
    CmpSlices(BinaryOp::kEq, needle, iv, n, &eq);
    for (size_t i = 0; i < n; ++i) (*out)[i] = TriOr((*out)[i], eq[i]);
  }
  if (in.negated) {
    for (size_t i = 0; i < n; ++i) (*out)[i] = TriNot((*out)[i]);
  }
  return Status::OK();
}

/// AND/OR with the same lazily narrowed selection vectors as
/// EvalLogical; each side independently picks kernels or the pointer
/// path through CEvalPred.
Status CEvalLogical(const BinaryExpr& b, CCtx& c, const SelVec& sel,
                    TriVec* out) {
  GlobalStats().kernel_logical.fetch_add(1, std::memory_order_relaxed);
  const bool is_and = b.op == BinaryOp::kAnd;
  std::vector<TriBool> lt;
  SOPR_RETURN_NOT_OK(CEvalPred(*b.left, c, sel, &lt));

  SelVec rhs_sel;
  std::vector<uint32_t> rhs_idx;
  for (size_t i = 0; i < sel.size(); ++i) {
    const bool decided =
        is_and ? lt[i] == TriBool::kFalse : lt[i] == TriBool::kTrue;
    if (!decided) {
      rhs_sel.push_back(sel[i]);
      rhs_idx.push_back(static_cast<uint32_t>(i));
    }
  }

  std::vector<TriBool> rt;
  if (!rhs_sel.empty()) {
    SOPR_RETURN_NOT_OK(CEvalPred(*b.right, c, rhs_sel, &rt));
  }

  *out = std::move(lt);
  for (size_t j = 0; j < rhs_idx.size(); ++j) {
    TriBool& slot = (*out)[rhs_idx[j]];
    slot = is_and ? TriAnd(slot, rt[j]) : TriOr(slot, rt[j]);
  }
  return Status::OK();
}

Status CEvalValue(const Expr& e, CCtx& c, const SelVec& sel, CSlice* out) {
  const size_t n = sel.size();
  out->n = n;
  switch (e.kind) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value;
      auto tag = TagOfValue(v);
      BroadcastValue(v, *tag, n, out);
      return Status::OK();
    }

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      bool in_batch = false;
      size_t binding = 0, column = 0;
      const Row* outer_row = nullptr;
      SOPR_RETURN_NOT_OK(
          ResolveRef(ref, c.base, &in_batch, &binding, &column, &outer_row));
      if (!in_batch) {
        // Outer-scope binding: one row, constant across the batch.
        const Value& v = outer_row->at(column);
        BroadcastValue(v, *TagOfValue(v), n, out);
        return Status::OK();
      }
      const ColumnVector* cv = c.cols->Find(binding, column);
      out->tag = TagOfColumn(cv->tag());
      switch (out->tag) {
        case CTag::kNum:
          GatherNum(*cv, sel, &out->num);
          break;
        case CTag::kStr:
          GatherStr(*cv, sel, &out->str);
          break;
        case CTag::kBool:
          GatherBool(*cv, sel, &out->bools);
          break;
        case CTag::kNull:
          break;  // unreachable: columns always carry a concrete tag
      }
      return Status::OK();
    }

    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(e);
      if (unary.op == UnaryOp::kNeg) {
        CSlice operand;
        SOPR_RETURN_NOT_OK(CEvalValue(*unary.operand, c, sel, &operand));
        if (operand.tag == CTag::kNull) {
          out->tag = CTag::kNull;
          return Status::OK();
        }
        out->tag = CTag::kNum;
        NegNum(operand.num, &out->num);
        return Status::OK();
      }
      TriVec t;
      SOPR_RETURN_NOT_OK(CEvalPred(*unary.operand, c, sel, &t));
      for (size_t i = 0; i < n; ++i) t[i] = TriNot(t[i]);
      TriVecToBoolSlice(t, out);
      return Status::OK();
    }

    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(e);
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        TriVec t;
        SOPR_RETURN_NOT_OK(CEvalLogical(binary, c, sel, &t));
        TriVecToBoolSlice(t, out);
        return Status::OK();
      }
      if (IsCompareOp(binary.op)) {
        TriVec t;
        SOPR_RETURN_NOT_OK(CCompare(binary, c, sel, &t));
        TriVecToBoolSlice(t, out);
        return Status::OK();
      }
      // Arithmetic. Both operands always evaluate (nested errors must
      // surface) even when an all-NULL side fixes the result.
      CSlice a, b;
      SOPR_RETURN_NOT_OK(CEvalValue(*binary.left, c, sel, &a));
      SOPR_RETURN_NOT_OK(CEvalValue(*binary.right, c, sel, &b));
      if (a.tag == CTag::kNull || b.tag == CTag::kNull) {
        out->tag = CTag::kNull;
        return Status::OK();
      }
      out->tag = CTag::kNum;
      return ArithNum(binary.op, a.num, b.num, &out->num);
    }

    case ExprKind::kInList: {
      TriVec t;
      SOPR_RETURN_NOT_OK(
          CInList(static_cast<const InListExpr&>(e), c, sel, &t));
      TriVecToBoolSlice(t, out);
      return Status::OK();
    }

    case ExprKind::kIsNull: {
      TriVec t;
      SOPR_RETURN_NOT_OK(CEvalPred(e, c, sel, &t));
      TriVecToBoolSlice(t, out);
      return Status::OK();
    }

    case ExprKind::kBetween: {
      TriVec t;
      SOPR_RETURN_NOT_OK(
          CBetween(static_cast<const BetweenExpr&>(e), c, sel, &t));
      TriVecToBoolSlice(t, out);
      return Status::OK();
    }

    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
    case ExprKind::kAggregate:
      break;  // never eligible; InferTag routed these to the pointer path
  }
  return Status::Internal("columnar evaluation of ineligible expression");
}

Status CEvalPred(const Expr& e, CCtx& c, const SelVec& sel, TriVec* out) {
  const size_t n = sel.size();
  switch (e.kind) {
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(e);
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        return CEvalLogical(binary, c, sel, out);
      }
      if (IsCompareOp(binary.op)) {
        if (InferTag(*binary.left, c).has_value() &&
            InferTag(*binary.right, c).has_value()) {
          return CCompare(binary, c, sel, out);
        }
        return PointerPred(e, c, sel, out);
      }
      break;  // arithmetic as a predicate: generic leaf handling below
    }

    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(e);
      if (unary.op == UnaryOp::kNot) {
        SOPR_RETURN_NOT_OK(CEvalPred(*unary.operand, c, sel, out));
        for (size_t i = 0; i < n; ++i) (*out)[i] = TriNot((*out)[i]);
        return Status::OK();
      }
      break;
    }

    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(e);
      if (!InferTag(*isnull.operand, c).has_value()) {
        return PointerPred(e, c, sel, out);
      }
      CSlice s;
      SOPR_RETURN_NOT_OK(CEvalValue(*isnull.operand, c, sel, &s));
      if (s.tag == CTag::kNull) {
        GlobalStats().kernel_null_check.fetch_add(1,
                                                  std::memory_order_relaxed);
        out->assign(n, isnull.negated ? TriBool::kFalse : TriBool::kTrue);
        return Status::OK();
      }
      IsNullMask(NullMaskOf(s), isnull.negated, out);
      return Status::OK();
    }

    case ExprKind::kInList:
      if (InferTag(e, c).has_value()) {
        return CInList(static_cast<const InListExpr&>(e), c, sel, out);
      }
      return PointerPred(e, c, sel, out);

    case ExprKind::kBetween:
      if (InferTag(e, c).has_value()) {
        return CBetween(static_cast<const BetweenExpr&>(e), c, sel, out);
      }
      return PointerPred(e, c, sel, out);

    default:
      break;
  }

  // Generic leaf: a boolean-or-NULL value expression converts lanewise
  // (NULL -> kUnknown, exactly PredicateTriFromValue); any other static
  // type is a per-lane TypeError or unsupported node -> pointer path.
  auto tag = InferTag(e, c);
  if (!tag.has_value() ||
      (*tag != CTag::kBool && *tag != CTag::kNull)) {
    return PointerPred(e, c, sel, out);
  }
  CSlice s;
  SOPR_RETURN_NOT_OK(CEvalValue(e, c, sel, &s));
  if (s.tag == CTag::kNull) {
    out->assign(n, TriBool::kUnknown);
    return Status::OK();
  }
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*out)[i] = s.bools.null[i] ? TriBool::kUnknown
                                : (s.bools.b[i] ? TriBool::kTrue
                                                : TriBool::kFalse);
  }
  return Status::OK();
}

}  // namespace

Status EvaluatePredicateBatch(const Expr& expr, Scope* scope,
                              EvalContext& ctx, const RowBatch& batch,
                              const SelVec& sel, std::vector<TriBool>* out) {
  out->clear();
  if (sel.empty()) return Status::OK();
  GlobalStats().batches.fetch_add(1, std::memory_order_relaxed);

  BatchCtx c{scope, &ctx, &batch};
  Status s = EvalPred(expr, c, sel, out);
  if (s.ok()) return s;
  if (!ShouldFallback(s.code())) return s;

  // The batch pass hit an evaluation error. Re-run the same positions
  // row-at-a-time: both passes visit the same (row, subexpression)
  // pairs, so whatever the row path reports — the same error at its
  // first erroring row, or (if the batch error was spurious) a clean
  // result — is the authoritative outcome.
  return ScalarRerun(expr, c, sel, out);
}

Status EvaluatePredicateColumnar(const Expr& expr, Scope* scope,
                                 EvalContext& ctx, const RowBatch& batch,
                                 const ColumnSet& cols, const SelVec& sel,
                                 std::vector<TriBool>* out) {
  out->clear();
  if (sel.empty()) return Status::OK();
  GlobalStats().batches.fetch_add(1, std::memory_order_relaxed);
  GlobalStats().columnar_chunks.fetch_add(1, std::memory_order_relaxed);

  CCtx c{BatchCtx{scope, &ctx, &batch}, &cols};
  Status s = CEvalPred(expr, c, sel, out);
  if (s.ok()) return s;
  if (!ShouldFallback(s.code())) return s;

  // Same contract as EvaluatePredicateBatch: evaluation-class errors may
  // surface out of row order (kernels check whole lanes), so the scalar
  // re-run over the same positions is authoritative.
  return ScalarRerun(expr, c.base, sel, out);
}

}  // namespace exec
}  // namespace sopr
