#include "exec/batch_evaluator.h"

#include <utility>

namespace sopr {
namespace exec {

namespace {

/// One value per selected position (parallel to the SelVec being
/// evaluated): either pointers borrowed from storage — column refs and
/// literals never copy a Value, which is where the batch path beats the
/// per-row tree walk on string columns — or owned computed results.
struct Slice {
  bool borrowed = false;
  std::vector<const Value*> ptrs;
  std::vector<Value> vals;

  const Value& at(size_t i) const { return borrowed ? *ptrs[i] : vals[i]; }
};

struct BatchCtx {
  Scope* scope;
  EvalContext* ctx;
  const RowBatch* batch;
};

Status EvalValue(const Expr& e, BatchCtx& c, const SelVec& sel, Slice* out);
Status EvalPred(const Expr& e, BatchCtx& c, const SelVec& sel,
                std::vector<TriBool>* out);

/// Binds every batch binding of the innermost scope level to the rows at
/// `pos`, for nodes that drop to per-row scalar evaluation (subqueries,
/// aggregates) and for the whole-chunk scalar re-run.
void BindRows(BatchCtx& c, uint32_t pos) {
  for (size_t b = 0; b < c.batch->num_bindings(); ++b) {
    c.scope->SetRow(b, c.batch->row(b, pos));
  }
}

/// Resolution of a column ref against the batch: either one of the
/// batch's bindings (gather per position) or an outer-scope binding
/// (one row, constant across the batch).
Status ResolveRef(const ColumnRefExpr& ref, BatchCtx& c, bool* in_batch,
                  size_t* binding, size_t* column, const Row** outer_row) {
  auto resolved = c.scope->ResolveColumn(ref.qualifier, ref.column);
  if (!resolved.ok()) return resolved.status();
  *column = resolved.value().column;
  const Binding* b = resolved.value().binding;
  for (size_t i = 0; i < c.scope->num_bindings(); ++i) {
    if (&c.scope->binding(i) == b) {
      *in_batch = true;
      *binding = i;
      return Status::OK();
    }
  }
  *in_batch = false;
  *outer_row = b->row;
  return Status::OK();
}

/// Short-circuit AND/OR over the batch: the right operand is evaluated
/// only for positions the left operand did not decide, via a narrowed
/// selection vector — the same (row, subexpression) pairs the scalar
/// evaluator visits, operator-at-a-time.
Status EvalLogical(const BinaryExpr& b, BatchCtx& c, const SelVec& sel,
                   std::vector<TriBool>* out) {
  const bool is_and = b.op == BinaryOp::kAnd;
  std::vector<TriBool> lt;
  SOPR_RETURN_NOT_OK(EvalPred(*b.left, c, sel, &lt));

  SelVec rhs_sel;
  std::vector<uint32_t> rhs_idx;  // index into `sel` for each rhs entry
  for (size_t i = 0; i < sel.size(); ++i) {
    const bool decided =
        is_and ? lt[i] == TriBool::kFalse : lt[i] == TriBool::kTrue;
    if (!decided) {
      rhs_sel.push_back(sel[i]);
      rhs_idx.push_back(static_cast<uint32_t>(i));
    }
  }

  std::vector<TriBool> rt;
  if (!rhs_sel.empty()) {
    SOPR_RETURN_NOT_OK(EvalPred(*b.right, c, rhs_sel, &rt));
  }

  *out = std::move(lt);
  for (size_t j = 0; j < rhs_idx.size(); ++j) {
    TriBool& slot = (*out)[rhs_idx[j]];
    slot = is_and ? TriAnd(slot, rt[j]) : TriOr(slot, rt[j]);
  }
  return Status::OK();
}

/// Nodes the batch path evaluates position-at-a-time through the scalar
/// evaluator (subqueries and aggregate lookups): binds the batch rows
/// into the scope and calls Evaluate, exactly as the row path does.
Status EvalPerRowScalar(const Expr& e, BatchCtx& c, const SelVec& sel,
                        Slice* out) {
  out->borrowed = false;
  out->vals.reserve(sel.size());
  for (uint32_t pos : sel) {
    BindRows(c, pos);
    auto v = Evaluate(e, *c.scope, *c.ctx);
    if (!v.ok()) return v.status();
    out->vals.push_back(std::move(v).value());
  }
  return Status::OK();
}

Status EvalValue(const Expr& e, BatchCtx& c, const SelVec& sel, Slice* out) {
  const size_t n = sel.size();
  switch (e.kind) {
    case ExprKind::kLiteral: {
      out->borrowed = true;
      out->ptrs.assign(n, &static_cast<const LiteralExpr&>(e).value);
      return Status::OK();
    }

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      bool in_batch = false;
      size_t binding = 0, column = 0;
      const Row* outer_row = nullptr;
      SOPR_RETURN_NOT_OK(
          ResolveRef(ref, c, &in_batch, &binding, &column, &outer_row));
      out->borrowed = true;
      out->ptrs.resize(n);
      if (!in_batch) {
        if (outer_row == nullptr) {
          return Status::Internal("column " + ref.ToString() +
                                  " referenced outside row context");
        }
        const Value* v = &outer_row->at(column);
        for (size_t i = 0; i < n; ++i) out->ptrs[i] = v;
        return Status::OK();
      }
      for (size_t i = 0; i < n; ++i) {
        const Row* row = c.batch->row(binding, sel[i]);
        if (row == nullptr) {
          return Status::Internal("column " + ref.ToString() +
                                  " referenced outside row context");
        }
        out->ptrs[i] = &row->at(column);
      }
      return Status::OK();
    }

    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(e);
      if (unary.op == UnaryOp::kNeg) {
        Slice operand;
        SOPR_RETURN_NOT_OK(EvalValue(*unary.operand, c, sel, &operand));
        out->borrowed = false;
        out->vals.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          auto v = Value::Negate(operand.at(i));
          if (!v.ok()) return v.status();
          out->vals.push_back(std::move(v).value());
        }
        return Status::OK();
      }
      std::vector<TriBool> t;
      SOPR_RETURN_NOT_OK(EvalPred(*unary.operand, c, sel, &t));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out->vals.push_back(TriBoolToValue(TriNot(t[i])));
      }
      return Status::OK();
    }

    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(e);
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        std::vector<TriBool> t;
        SOPR_RETURN_NOT_OK(EvalLogical(binary, c, sel, &t));
        out->borrowed = false;
        out->vals.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          out->vals.push_back(TriBoolToValue(t[i]));
        }
        return Status::OK();
      }
      Slice left, right;
      SOPR_RETURN_NOT_OK(EvalValue(*binary.left, c, sel, &left));
      SOPR_RETURN_NOT_OK(EvalValue(*binary.right, c, sel, &right));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        auto v = EvaluateBinaryValue(binary.op, left.at(i), right.at(i));
        if (!v.ok()) return v.status();
        out->vals.push_back(std::move(v).value());
      }
      return Status::OK();
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      Slice needle;
      SOPR_RETURN_NOT_OK(EvalValue(*in.operand, c, sel, &needle));
      std::vector<Slice> items(in.items.size());
      for (size_t k = 0; k < in.items.size(); ++k) {
        SOPR_RETURN_NOT_OK(EvalValue(*in.items[k], c, sel, &items[k]));
      }
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        // Inline MembershipTri over the item slices (no Value copies).
        bool saw_unknown = false;
        TriBool t = TriBool::kFalse;
        for (const Slice& item : items) {
          TriBool eq = needle.at(i).SqlEquals(item.at(i));
          if (eq == TriBool::kTrue) {
            t = TriBool::kTrue;
            break;
          }
          if (eq == TriBool::kUnknown) saw_unknown = true;
        }
        if (t != TriBool::kTrue && saw_unknown) t = TriBool::kUnknown;
        out->vals.push_back(TriBoolToValue(in.negated ? TriNot(t) : t));
      }
      return Status::OK();
    }

    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(e);
      Slice operand;
      SOPR_RETURN_NOT_OK(EvalValue(*isnull.operand, c, sel, &operand));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool null = operand.at(i).is_null();
        out->vals.push_back(Value::Bool(isnull.negated ? !null : null));
      }
      return Status::OK();
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(e);
      Slice v, lo, hi;
      SOPR_RETURN_NOT_OK(EvalValue(*between.operand, c, sel, &v));
      SOPR_RETURN_NOT_OK(EvalValue(*between.low, c, sel, &lo));
      SOPR_RETURN_NOT_OK(EvalValue(*between.high, c, sel, &hi));
      out->borrowed = false;
      out->vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        TriBool ge = TriNot(v.at(i).SqlLess(lo.at(i)));
        TriBool le = TriNot(hi.at(i).SqlLess(v.at(i)));
        TriBool t = TriAnd(ge, le);
        out->vals.push_back(TriBoolToValue(between.negated ? TriNot(t) : t));
      }
      return Status::OK();
    }

    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
    case ExprKind::kAggregate:
      return EvalPerRowScalar(e, c, sel, out);
  }
  return Status::Internal("unhandled expression kind");
}

Status EvalPred(const Expr& e, BatchCtx& c, const SelVec& sel,
                std::vector<TriBool>* out) {
  if (e.kind == ExprKind::kBinary) {
    const auto& binary = static_cast<const BinaryExpr&>(e);
    if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
      return EvalLogical(binary, c, sel, out);
    }
  }
  Slice s;
  SOPR_RETURN_NOT_OK(EvalValue(e, c, sel, &s));
  out->resize(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    auto t = PredicateTriFromValue(s.at(i));
    if (!t.ok()) return t.status();
    (*out)[i] = t.value();
  }
  return Status::OK();
}

/// Position-dependent evaluation errors re-run through the scalar path
/// for exact row-order error reporting; everything else (cancellation,
/// timeouts, injected faults, lock trouble surfaced through subqueries)
/// is position-independent or nondeterministic and propagates as is.
bool ShouldFallback(StatusCode code) {
  switch (code) {
    case StatusCode::kTypeError:
    case StatusCode::kExecutionError:
    case StatusCode::kCatalogError:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status EvaluatePredicateBatch(const Expr& expr, Scope* scope,
                              EvalContext& ctx, const RowBatch& batch,
                              const SelVec& sel, std::vector<TriBool>* out) {
  out->clear();
  if (sel.empty()) return Status::OK();
  GlobalStats().batches.fetch_add(1, std::memory_order_relaxed);

  BatchCtx c{scope, &ctx, &batch};
  Status s = EvalPred(expr, c, sel, out);
  if (s.ok()) return s;
  if (!ShouldFallback(s.code())) return s;

  // The batch pass hit an evaluation error. Re-run the same positions
  // row-at-a-time: both passes visit the same (row, subexpression)
  // pairs, so whatever the row path reports — the same error at its
  // first erroring row, or (if the batch error was spurious) a clean
  // result — is the authoritative outcome.
  GlobalStats().scalar_fallbacks.fetch_add(1, std::memory_order_relaxed);
  out->clear();
  out->reserve(sel.size());
  for (uint32_t pos : sel) {
    BindRows(c, pos);
    auto t = EvaluatePredicate(expr, *scope, ctx);
    if (!t.ok()) return t.status();
    out->push_back(t.value());
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace sopr
