#ifndef SOPR_EXEC_KERNELS_H_
#define SOPR_EXEC_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/column_vector.h"
#include "exec/row_batch.h"
#include "sql/ast.h"
#include "types/value.h"

namespace sopr {
namespace exec {

/// Dense typed slices: one entry per lane of the selection vector being
/// evaluated (NOT per batch position — kernels never re-index through
/// the SelVec; gathers do that once at the leaves). Lanes are at most
/// kBatchRows, so slices are small, reusable, and cache-resident.
///
/// NULL lanes hold defined dummy payloads (0 / 0.0 / nullptr), so loops
/// may compute every lane branchlessly and mask with the null bytes
/// afterwards; the SQL observable at a NULL lane is decided by the mask
/// alone.

/// Numeric lanes. Invariants (non-null lanes): `i64[i]` is valid only
/// where `is_int[i]`; `f64[i]` holds the value widened to double
/// whenever `f64_valid` — all-int slices defer the widening (the
/// gather/arith loops over int columns write two streams instead of
/// four) and any kernel path that mixes int and double lanes calls
/// `EnsureF64()` first. This mirrors Value's numeric model exactly —
/// int64 compares must stay exact (2^63-1 != 2^63-2 even though they
/// collide as doubles), while int/double mixing compares through double
/// (`Value::SqlLess`).
struct NumSlice {
  std::vector<uint8_t> null;    // 1 = NULL
  std::vector<uint8_t> is_int;  // 1 = i64 lane, 0 = f64 lane
  // Lazily-widened shadow of i64 (mutable: EnsureF64 is a cache fill,
  // not an observable mutation; slices are single-threaded locals).
  mutable std::vector<double> f64;
  std::vector<int64_t> i64;
  mutable bool f64_valid = true;
  bool all_int = false;     // every lane is an i64 lane
  bool all_double = false;  // every lane is an f64 lane

  void Resize(size_t n);

  /// Materializes `f64` from `i64` when an all-int slice meets a path
  /// that reads the widened representation. No-op when already valid.
  void EnsureF64() const;
};

/// String lanes; pointers borrow the std::string owned by storage rows
/// (or by a literal), the RowBatch lifetime discipline.
struct StrSlice {
  std::vector<uint8_t> null;
  std::vector<const std::string*> str;

  void Resize(size_t n);
};

struct BoolSlice {
  std::vector<uint8_t> null;
  std::vector<uint8_t> b;

  void Resize(size_t n);
};

using TriVec = std::vector<TriBool>;

// ---------------------------------------------------------------------------
// Gathers: ColumnVector (batch-position indexed) -> dense slice (lane
// indexed). The column's tag picks which overload applies; int columns
// pre-widen into f64 so comparison loops never convert per lane.
// ---------------------------------------------------------------------------

void GatherNum(const ColumnVector& col, const SelVec& sel, NumSlice* out);
void GatherStr(const ColumnVector& col, const SelVec& sel, StrSlice* out);
void GatherBool(const ColumnVector& col, const SelVec& sel, BoolSlice* out);

// ---------------------------------------------------------------------------
// Broadcasts: one constant Value -> every lane. `v` must match the slice
// type and be non-NULL unless noted; callers route NULL constants to the
// all-NULL tag instead.
// ---------------------------------------------------------------------------

void BroadcastNum(const Value& v, size_t n, NumSlice* out);
void BroadcastStr(const Value& v, size_t n, StrSlice* out);
void BroadcastBool(const Value& v, size_t n, BoolSlice* out);

// ---------------------------------------------------------------------------
// Comparison kernels. `op` must be one of kEq/kNe/kLt/kLe/kGt/kGe; the
// result composes SqlEquals/SqlLess exactly as EvaluateBinaryValue does
// (kLe is TriNot(b < a), NOT a <= b — the distinction matters for NaN).
// Each writes out[i] for every lane.
// ---------------------------------------------------------------------------

void CmpNum(BinaryOp op, const NumSlice& a, const NumSlice& b, TriVec* out);
void CmpStr(BinaryOp op, const StrSlice& a, const StrSlice& b, TriVec* out);
/// bool x bool: only equality is defined; ordering is kUnknown
/// (SqlLess on bools), which FillUnknown also covers.
void CmpBool(BinaryOp op, const BoolSlice& a, const BoolSlice& b, TriVec* out);
/// Comparisons whose operand types can never decide (type-mismatched
/// non-null pairs, or an all-NULL operand): every lane kUnknown.
void FillUnknown(size_t n, TriVec* out);

// ---------------------------------------------------------------------------
// Arithmetic kernels (Value::Add/Subtract/Multiply/Divide semantics:
// NULL propagates before anything else; int lanes overflow-promote to
// double; division by zero at a non-NULL lane is an ExecutionError).
// ---------------------------------------------------------------------------

/// `op` one of kAdd/kSub/kMul/kDiv. An error reflects SOME selected lane
/// failing; the caller's whole-chunk scalar re-run provides the
/// authoritative row-order error (docs/EXECUTION.md).
Status ArithNum(BinaryOp op, const NumSlice& a, const NumSlice& b,
                NumSlice* out);

/// Unary minus (Value::Negate): INT64_MIN promotes to double.
void NegNum(const NumSlice& a, NumSlice* out);

// ---------------------------------------------------------------------------
// Null-check kernel: IS [NOT] NULL over a null mask. Always kTrue/kFalse.
// ---------------------------------------------------------------------------

void IsNullMask(const std::vector<uint8_t>& null, bool negated, TriVec* out);

}  // namespace exec
}  // namespace sopr

#endif  // SOPR_EXEC_KERNELS_H_
