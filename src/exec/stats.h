#ifndef SOPR_EXEC_STATS_H_
#define SOPR_EXEC_STATS_H_

#include <atomic>
#include <cstdint>

namespace sopr {
namespace exec {

/// Process-wide counters for the vectorized/columnar execution layer;
/// monotonically increasing, read by tests and benches. Relaxed atomics:
/// these are statistics, not synchronization.
///
/// The per-kernel engagement counters exist so a benchmark (or an
/// operator) can prove WHICH path actually ran: a workload whose
/// predicates all fall back to the pointer path shows
/// `pointer_fallback_preds` climbing while the kernel counters stay
/// flat, and vice versa (docs/EXECUTION.md).
struct ExecStats {
  // --- PR 9 vectorized layer -------------------------------------------
  std::atomic<uint64_t> batches{0};            // batch evaluations started
  std::atomic<uint64_t> scalar_fallbacks{0};   // batch errored -> re-run row-wise
  std::atomic<uint64_t> hash_join_builds{0};   // unordered hash tables built
  std::atomic<uint64_t> hash_join_fallbacks{0};  // build-side budget exceeded

  // --- Columnar layer ---------------------------------------------------
  // Columnar predicate evaluations started (chunk granularity).
  std::atomic<uint64_t> columnar_chunks{0};
  // ColumnVector decompositions performed (one per column materialized
  // into contiguous typed arrays).
  std::atomic<uint64_t> columns_built{0};
  // Decompositions refused because a value's type did not match the
  // column's schema tag (the column stays row-organized).
  std::atomic<uint64_t> columns_rejected{0};
  // Kernel engagements, by family.
  std::atomic<uint64_t> kernel_compare{0};     // typed comparison loops
  std::atomic<uint64_t> kernel_arith{0};       // typed arithmetic loops
  std::atomic<uint64_t> kernel_null_check{0};  // IS [NOT] NULL over null masks
  std::atomic<uint64_t> kernel_membership{0};  // IN-list over typed slices
  std::atomic<uint64_t> kernel_logical{0};     // AND/OR/NOT TriBool combines
  // Leaf predicates the columnar evaluator routed to the PR 9 pointer
  // path (unsupported node kinds, non-decomposed columns).
  std::atomic<uint64_t> pointer_fallback_preds{0};
  // Hash-join builds whose key digests ran the bulk columnar loop.
  std::atomic<uint64_t> hash_join_columnar_builds{0};
};

/// The process-wide stats instance.
ExecStats& GlobalStats();

/// Plain-integer snapshot for delta accounting in tests and benches.
struct ExecStatsSnapshot {
  uint64_t batches = 0;
  uint64_t scalar_fallbacks = 0;
  uint64_t hash_join_builds = 0;
  uint64_t hash_join_fallbacks = 0;
  uint64_t columnar_chunks = 0;
  uint64_t columns_built = 0;
  uint64_t columns_rejected = 0;
  uint64_t kernel_compare = 0;
  uint64_t kernel_arith = 0;
  uint64_t kernel_null_check = 0;
  uint64_t kernel_membership = 0;
  uint64_t kernel_logical = 0;
  uint64_t pointer_fallback_preds = 0;
  uint64_t hash_join_columnar_builds = 0;
};

ExecStatsSnapshot SnapshotStats();

/// Elementwise a - b (callers take deltas across a measured window).
ExecStatsSnapshot operator-(const ExecStatsSnapshot& a,
                            const ExecStatsSnapshot& b);

}  // namespace exec
}  // namespace sopr

#endif  // SOPR_EXEC_STATS_H_
