#include "exec/column_vector.h"

#include "exec/stats.h"

namespace sopr {
namespace exec {

std::optional<ColumnVector::Tag> ColumnVector::TagFor(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return Tag::kInt64;
    case ValueType::kDouble:
      return Tag::kDouble;
    case ValueType::kString:
      return Tag::kString;
    case ValueType::kBool:
      return Tag::kBool;
    case ValueType::kNull:
      return std::nullopt;
  }
  return std::nullopt;
}

void ColumnVector::Reset(Tag tag, size_t reserve) {
  tag_ = tag;
  has_nulls_ = false;
  nulls_.clear();
  i64_.clear();
  f64_.clear();
  str_.clear();
  b8_.clear();
  nulls_.reserve(reserve);
  switch (tag_) {
    case Tag::kInt64:
      i64_.reserve(reserve);
      break;
    case Tag::kDouble:
      f64_.reserve(reserve);
      break;
    case Tag::kString:
      str_.reserve(reserve);
      break;
    case Tag::kBool:
      b8_.reserve(reserve);
      break;
  }
}

bool ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    has_nulls_ = true;
    nulls_.push_back(1);
    switch (tag_) {
      case Tag::kInt64:
        i64_.push_back(0);
        break;
      case Tag::kDouble:
        f64_.push_back(0.0);
        break;
      case Tag::kString:
        str_.push_back(nullptr);
        break;
      case Tag::kBool:
        b8_.push_back(0);
        break;
    }
    return true;
  }
  switch (tag_) {
    case Tag::kInt64:
      if (v.type() != ValueType::kInt) return false;
      nulls_.push_back(0);
      i64_.push_back(v.AsInt());
      return true;
    case Tag::kDouble:
      if (v.type() != ValueType::kDouble) return false;
      nulls_.push_back(0);
      f64_.push_back(v.AsDouble());
      return true;
    case Tag::kString:
      if (v.type() != ValueType::kString) return false;
      nulls_.push_back(0);
      str_.push_back(&v.AsString());
      return true;
    case Tag::kBool:
      if (v.type() != ValueType::kBool) return false;
      nulls_.push_back(0);
      b8_.push_back(v.AsBool() ? 1 : 0);
      return true;
  }
  return false;
}

Value ColumnVector::GetValue(size_t i) const {
  if (nulls_[i]) return Value::Null();
  switch (tag_) {
    case Tag::kInt64:
      return Value::Int(i64_[i]);
    case Tag::kDouble:
      return Value::Double(f64_[i]);
    case Tag::kString:
      return Value::String(*str_[i]);
    case Tag::kBool:
      return Value::Bool(b8_[i] != 0);
  }
  return Value::Null();
}

void ColumnVector::SliceFrom(const ColumnVector& src, size_t begin,
                             size_t len) {
  tag_ = src.tag_;
  nulls_.assign(src.nulls_.begin() + begin, src.nulls_.begin() + begin + len);
  has_nulls_ = false;
  for (uint8_t b : nulls_) has_nulls_ |= b != 0;
  i64_.clear();
  f64_.clear();
  str_.clear();
  b8_.clear();
  switch (tag_) {
    case Tag::kInt64:
      i64_.assign(src.i64_.begin() + begin, src.i64_.begin() + begin + len);
      break;
    case Tag::kDouble:
      f64_.assign(src.f64_.begin() + begin, src.f64_.begin() + begin + len);
      break;
    case Tag::kString:
      str_.assign(src.str_.begin() + begin, src.str_.begin() + begin + len);
      break;
    case Tag::kBool:
      b8_.assign(src.b8_.begin() + begin, src.b8_.begin() + begin + len);
      break;
  }
}

bool BuildColumn(const std::vector<Row>& rows, size_t col,
                 ValueType declared, ColumnVector* out) {
  return BuildColumnFrom(
      rows.size(), [&rows](size_t i) -> const Row& { return rows[i]; }, col,
      declared, out);
}

namespace internal {

bool FinishBuild(bool ok, ColumnVector* out) {
  (void)out;
  if (ok) {
    GlobalStats().columns_built.fetch_add(1, std::memory_order_relaxed);
  } else {
    GlobalStats().columns_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  return ok;
}

}  // namespace internal

}  // namespace exec
}  // namespace sopr
