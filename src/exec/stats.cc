#include "exec/stats.h"

namespace sopr {
namespace exec {

ExecStats& GlobalStats() {
  static ExecStats stats;
  return stats;
}

ExecStatsSnapshot SnapshotStats() {
  const ExecStats& s = GlobalStats();
  ExecStatsSnapshot out;
  out.batches = s.batches.load(std::memory_order_relaxed);
  out.scalar_fallbacks = s.scalar_fallbacks.load(std::memory_order_relaxed);
  out.hash_join_builds = s.hash_join_builds.load(std::memory_order_relaxed);
  out.hash_join_fallbacks =
      s.hash_join_fallbacks.load(std::memory_order_relaxed);
  out.columnar_chunks = s.columnar_chunks.load(std::memory_order_relaxed);
  out.columns_built = s.columns_built.load(std::memory_order_relaxed);
  out.columns_rejected = s.columns_rejected.load(std::memory_order_relaxed);
  out.kernel_compare = s.kernel_compare.load(std::memory_order_relaxed);
  out.kernel_arith = s.kernel_arith.load(std::memory_order_relaxed);
  out.kernel_null_check = s.kernel_null_check.load(std::memory_order_relaxed);
  out.kernel_membership = s.kernel_membership.load(std::memory_order_relaxed);
  out.kernel_logical = s.kernel_logical.load(std::memory_order_relaxed);
  out.pointer_fallback_preds =
      s.pointer_fallback_preds.load(std::memory_order_relaxed);
  out.hash_join_columnar_builds =
      s.hash_join_columnar_builds.load(std::memory_order_relaxed);
  return out;
}

ExecStatsSnapshot operator-(const ExecStatsSnapshot& a,
                            const ExecStatsSnapshot& b) {
  ExecStatsSnapshot d;
  d.batches = a.batches - b.batches;
  d.scalar_fallbacks = a.scalar_fallbacks - b.scalar_fallbacks;
  d.hash_join_builds = a.hash_join_builds - b.hash_join_builds;
  d.hash_join_fallbacks = a.hash_join_fallbacks - b.hash_join_fallbacks;
  d.columnar_chunks = a.columnar_chunks - b.columnar_chunks;
  d.columns_built = a.columns_built - b.columns_built;
  d.columns_rejected = a.columns_rejected - b.columns_rejected;
  d.kernel_compare = a.kernel_compare - b.kernel_compare;
  d.kernel_arith = a.kernel_arith - b.kernel_arith;
  d.kernel_null_check = a.kernel_null_check - b.kernel_null_check;
  d.kernel_membership = a.kernel_membership - b.kernel_membership;
  d.kernel_logical = a.kernel_logical - b.kernel_logical;
  d.pointer_fallback_preds =
      a.pointer_fallback_preds - b.pointer_fallback_preds;
  d.hash_join_columnar_builds =
      a.hash_join_columnar_builds - b.hash_join_columnar_builds;
  return d;
}

}  // namespace exec
}  // namespace sopr
