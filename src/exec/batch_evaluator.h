#ifndef SOPR_EXEC_BATCH_EVALUATOR_H_
#define SOPR_EXEC_BATCH_EVALUATOR_H_

#include <vector>

#include "exec/row_batch.h"
#include "expr/evaluator.h"
#include "sql/ast.h"

namespace sopr {
namespace exec {

/// Evaluates `expr` as a predicate over every selected position of
/// `batch`, writing one TriBool per entry of `sel` (parallel order).
///
/// Contract (the differential-oracle guarantee; docs/EXECUTION.md):
/// exactly the same (row, subexpression) pairs are evaluated as the
/// scalar evaluator would visit row-at-a-time — AND/OR short-circuiting
/// is reproduced per position with lazily narrowed selection vectors —
/// only the evaluation *order* differs (operator-at-a-time instead of
/// row-at-a-time). If any position errors, the whole call re-runs the
/// selected positions row-at-a-time through the scalar evaluator and
/// returns its first error, so error codes and messages are bit-identical
/// to the row path. Position-independent failures (cancellation,
/// timeouts, injected faults, lock errors surfaced through subqueries)
/// propagate immediately without the re-run.
///
/// `scope` must have the batch's bindings at its innermost level; its
/// row pointers are clobbered (subquery nodes and the scalar re-run bind
/// rows through it) and are not restored.
Status EvaluatePredicateBatch(const Expr& expr, Scope* scope,
                              EvalContext& ctx, const RowBatch& batch,
                              const SelVec& sel, std::vector<TriBool>* out);

}  // namespace exec
}  // namespace sopr

#endif  // SOPR_EXEC_BATCH_EVALUATOR_H_
