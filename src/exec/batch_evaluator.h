#ifndef SOPR_EXEC_BATCH_EVALUATOR_H_
#define SOPR_EXEC_BATCH_EVALUATOR_H_

#include <vector>

#include "exec/column_vector.h"
#include "exec/row_batch.h"
#include "expr/evaluator.h"
#include "sql/ast.h"

namespace sopr {
namespace exec {

/// The decomposed (hot) columns available to the columnar evaluator for
/// one batch: (binding, column) -> ColumnVector, indexed by the SAME
/// positions as the RowBatch. Sparse by design — only columns the
/// predicate actually touches get decomposed; a lookup miss routes that
/// leaf to the pointer path.
class ColumnSet {
 public:
  void Add(size_t binding, size_t column, const ColumnVector* cv) {
    entries_.push_back(Entry{binding, column, cv});
  }
  const ColumnVector* Find(size_t binding, size_t column) const {
    for (const Entry& e : entries_) {
      if (e.binding == binding && e.column == column) return e.cv;
    }
    return nullptr;
  }
  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    size_t binding;
    size_t column;
    const ColumnVector* cv;
  };
  std::vector<Entry> entries_;
};

/// Evaluates `expr` as a predicate over every selected position of
/// `batch`, writing one TriBool per entry of `sel` (parallel order).
///
/// Contract (the differential-oracle guarantee; docs/EXECUTION.md):
/// exactly the same (row, subexpression) pairs are evaluated as the
/// scalar evaluator would visit row-at-a-time — AND/OR short-circuiting
/// is reproduced per position with lazily narrowed selection vectors —
/// only the evaluation *order* differs (operator-at-a-time instead of
/// row-at-a-time). If any position errors, the whole call re-runs the
/// selected positions row-at-a-time through the scalar evaluator and
/// returns its first error, so error codes and messages are bit-identical
/// to the row path. Position-independent failures (cancellation,
/// timeouts, injected faults, lock errors surfaced through subqueries)
/// propagate immediately without the re-run.
///
/// `scope` must have the batch's bindings at its innermost level; its
/// row pointers are clobbered (subquery nodes and the scalar re-run bind
/// rows through it) and are not restored.
Status EvaluatePredicateBatch(const Expr& expr, Scope* scope,
                              EvalContext& ctx, const RowBatch& batch,
                              const SelVec& sel, std::vector<TriBool>* out);

/// Columnar variant of EvaluatePredicateBatch: where an expression
/// subtree is statically typeable over decomposed columns (`cols`), it
/// runs the branch-light typed kernels of exec/kernels.h; every other
/// leaf predicate drops to the PR 9 pointer path over the same selection
/// vector (per-expression fallback, counted in
/// exec::GlobalStats().pointer_fallback_preds). The differential-oracle
/// contract is IDENTICAL to EvaluatePredicateBatch — same TriBools, same
/// visited (row, subexpression) pairs for short-circuiting, same
/// whole-chunk scalar re-run on evaluation-class errors — because the
/// kernels reproduce Value's comparison/arithmetic semantics lane-exactly
/// and anything they cannot type falls back.
///
/// `batch` must still carry row pointers for every selected position
/// (the pointer fallback and the scalar re-run need them); `cols` may be
/// empty, in which case every leaf falls back.
Status EvaluatePredicateColumnar(const Expr& expr, Scope* scope,
                                 EvalContext& ctx, const RowBatch& batch,
                                 const ColumnSet& cols, const SelVec& sel,
                                 std::vector<TriBool>* out);

}  // namespace exec
}  // namespace sopr

#endif  // SOPR_EXEC_BATCH_EVALUATOR_H_
