#include "exec/kernels.h"

#include <cstdint>

#include "exec/stats.h"

namespace sopr {
namespace exec {

void NumSlice::Resize(size_t n) {
  null.assign(n, 0);
  is_int.assign(n, 0);
  i64.assign(n, 0);
  f64.assign(n, 0.0);
  f64_valid = true;
  all_int = false;
  all_double = false;
}

void NumSlice::EnsureF64() const {
  if (f64_valid) return;
  // Only all-int writers defer the widening, so every lane has a valid
  // i64 payload (dummies at NULL lanes widen to dummy doubles).
  const size_t n = i64.size();
  f64.resize(n);
  const int64_t* src = i64.data();
  double* dst = f64.data();
  for (size_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
  f64_valid = true;
}

void StrSlice::Resize(size_t n) {
  null.assign(n, 0);
  str.assign(n, nullptr);
}

void BoolSlice::Resize(size_t n) {
  null.assign(n, 0);
  b.assign(n, 0);
}

// ---------------------------------------------------------------------------
// Gathers
// ---------------------------------------------------------------------------

void GatherNum(const ColumnVector& col, const SelVec& sel, NumSlice* out) {
  const size_t n = sel.size();
  const uint8_t* nulls = col.nulls();
  if (col.tag() == ColumnVector::Tag::kInt64) {
    // Two streams only; the f64 shadow stays lazy (EnsureF64) so pure
    // int pipelines never pay the widening.
    out->null.resize(n);
    out->is_int.assign(n, 1);
    out->i64.resize(n);
    out->f64.clear();
    out->f64_valid = false;
    out->all_int = true;
    out->all_double = false;
    const int64_t* src = col.i64();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = sel[i];
      out->null[i] = nulls[p];
      out->i64[i] = src[p];
    }
  } else {
    out->null.resize(n);
    out->is_int.assign(n, 0);
    out->i64.clear();
    out->f64.resize(n);
    out->f64_valid = true;
    out->all_int = false;
    out->all_double = true;
    const double* src = col.f64();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = sel[i];
      out->null[i] = nulls[p];
      out->f64[i] = src[p];
    }
  }
}

void GatherStr(const ColumnVector& col, const SelVec& sel, StrSlice* out) {
  const size_t n = sel.size();
  out->Resize(n);
  const uint8_t* nulls = col.nulls();
  const std::string* const* src = col.str();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = sel[i];
    out->null[i] = nulls[p];
    out->str[i] = src[p];
  }
}

void GatherBool(const ColumnVector& col, const SelVec& sel, BoolSlice* out) {
  const size_t n = sel.size();
  out->Resize(n);
  const uint8_t* nulls = col.nulls();
  const uint8_t* src = col.b8();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = sel[i];
    out->null[i] = nulls[p];
    out->b[i] = src[p];
  }
}

// ---------------------------------------------------------------------------
// Broadcasts
// ---------------------------------------------------------------------------

void BroadcastNum(const Value& v, size_t n, NumSlice* out) {
  out->Resize(n);
  if (v.type() == ValueType::kInt) {
    const int64_t iv = v.AsInt();
    const double dv = static_cast<double>(iv);
    for (size_t i = 0; i < n; ++i) {
      out->is_int[i] = 1;
      out->i64[i] = iv;
      out->f64[i] = dv;
    }
    out->all_int = true;
  } else {
    const double dv = v.AsDouble();
    for (size_t i = 0; i < n; ++i) out->f64[i] = dv;
    out->all_double = true;
  }
}

void BroadcastStr(const Value& v, size_t n, StrSlice* out) {
  out->Resize(n);
  const std::string* s = &v.AsString();
  for (size_t i = 0; i < n; ++i) out->str[i] = s;
}

void BroadcastBool(const Value& v, size_t n, BoolSlice* out) {
  out->Resize(n);
  const uint8_t b = v.AsBool() ? 1 : 0;
  for (size_t i = 0; i < n; ++i) out->b[i] = b;
}

// ---------------------------------------------------------------------------
// Comparisons
// ---------------------------------------------------------------------------

namespace {

constexpr TriBool kTriByBool[2] = {TriBool::kFalse, TriBool::kTrue};

/// `Decide(lt, gt, eq) -> bool` composes the six operators from the
/// primitive relations exactly as EvaluateBinaryValue composes
/// SqlLess/SqlEquals; instantiating the loop per operator hoists the
/// switch out of the lane loop so the body stays branch-light.
template <typename Decide>
void CmpNumLoop(const NumSlice& a, const NumSlice& b, TriVec* out,
                Decide decide) {
  const size_t n = a.null.size();
  out->resize(n);
  TriBool* o = out->data();
  if (a.all_int && b.all_int) {
    const int64_t* x = a.i64.data();
    const int64_t* y = b.i64.data();
    for (size_t i = 0; i < n; ++i) {
      const bool lt = x[i] < y[i];
      const bool gt = y[i] < x[i];
      const bool eq = x[i] == y[i];
      o[i] = (a.null[i] | b.null[i]) ? TriBool::kUnknown
                                     : kTriByBool[decide(lt, gt, eq)];
    }
    return;
  }
  if (a.all_double || b.all_double) {
    // Every lane pair has at least one double side, so SqlLess/SqlEquals
    // compare through the widened f64 representation.
    a.EnsureF64();
    b.EnsureF64();
    const double* x = a.f64.data();
    const double* y = b.f64.data();
    for (size_t i = 0; i < n; ++i) {
      const bool lt = x[i] < y[i];
      const bool gt = y[i] < x[i];
      const bool eq = x[i] == y[i];
      o[i] = (a.null[i] | b.null[i]) ? TriBool::kUnknown
                                     : kTriByBool[decide(lt, gt, eq)];
    }
    return;
  }
  a.EnsureF64();
  b.EnsureF64();
  for (size_t i = 0; i < n; ++i) {
    bool lt, gt, eq;
    if (a.is_int[i] & b.is_int[i]) {
      lt = a.i64[i] < b.i64[i];
      gt = b.i64[i] < a.i64[i];
      eq = a.i64[i] == b.i64[i];
    } else {
      lt = a.f64[i] < b.f64[i];
      gt = b.f64[i] < a.f64[i];
      eq = a.f64[i] == b.f64[i];
    }
    o[i] = (a.null[i] | b.null[i]) ? TriBool::kUnknown
                                   : kTriByBool[decide(lt, gt, eq)];
  }
}

template <typename Decide>
void CmpStrLoop(const StrSlice& a, const StrSlice& b, TriVec* out,
                Decide decide) {
  const size_t n = a.null.size();
  out->resize(n);
  TriBool* o = out->data();
  for (size_t i = 0; i < n; ++i) {
    if (a.null[i] | b.null[i]) {
      o[i] = TriBool::kUnknown;
      continue;
    }
    const std::string& x = *a.str[i];
    const std::string& y = *b.str[i];
    const int c = x.compare(y);
    o[i] = kTriByBool[decide(c < 0, c > 0, c == 0)];
  }
}

}  // namespace

void CmpNum(BinaryOp op, const NumSlice& a, const NumSlice& b, TriVec* out) {
  GlobalStats().kernel_compare.fetch_add(1, std::memory_order_relaxed);
  switch (op) {
    case BinaryOp::kEq:
      CmpNumLoop(a, b, out, [](bool, bool, bool eq) { return eq; });
      return;
    case BinaryOp::kNe:
      CmpNumLoop(a, b, out, [](bool, bool, bool eq) { return !eq; });
      return;
    case BinaryOp::kLt:
      CmpNumLoop(a, b, out, [](bool lt, bool, bool) { return lt; });
      return;
    case BinaryOp::kGe:
      CmpNumLoop(a, b, out, [](bool lt, bool, bool) { return !lt; });
      return;
    case BinaryOp::kGt:
      CmpNumLoop(a, b, out, [](bool, bool gt, bool) { return gt; });
      return;
    case BinaryOp::kLe:
      CmpNumLoop(a, b, out, [](bool, bool gt, bool) { return !gt; });
      return;
    default:
      FillUnknown(a.null.size(), out);
      return;
  }
}

void CmpStr(BinaryOp op, const StrSlice& a, const StrSlice& b, TriVec* out) {
  GlobalStats().kernel_compare.fetch_add(1, std::memory_order_relaxed);
  switch (op) {
    case BinaryOp::kEq:
      CmpStrLoop(a, b, out, [](bool, bool, bool eq) { return eq; });
      return;
    case BinaryOp::kNe:
      CmpStrLoop(a, b, out, [](bool, bool, bool eq) { return !eq; });
      return;
    case BinaryOp::kLt:
      CmpStrLoop(a, b, out, [](bool lt, bool, bool) { return lt; });
      return;
    case BinaryOp::kGe:
      CmpStrLoop(a, b, out, [](bool lt, bool, bool) { return !lt; });
      return;
    case BinaryOp::kGt:
      CmpStrLoop(a, b, out, [](bool, bool gt, bool) { return gt; });
      return;
    case BinaryOp::kLe:
      CmpStrLoop(a, b, out, [](bool, bool gt, bool) { return !gt; });
      return;
    default:
      FillUnknown(a.null.size(), out);
      return;
  }
}

void CmpBool(BinaryOp op, const BoolSlice& a, const BoolSlice& b,
             TriVec* out) {
  const size_t n = a.null.size();
  if (op != BinaryOp::kEq && op != BinaryOp::kNe) {
    // SqlLess over booleans is kUnknown, and so is TriNot of it.
    FillUnknown(n, out);
    return;
  }
  GlobalStats().kernel_compare.fetch_add(1, std::memory_order_relaxed);
  out->resize(n);
  TriBool* o = out->data();
  const bool want_eq = op == BinaryOp::kEq;
  for (size_t i = 0; i < n; ++i) {
    const bool eq = a.b[i] == b.b[i];
    o[i] = (a.null[i] | b.null[i]) ? TriBool::kUnknown
                                   : kTriByBool[eq == want_eq];
  }
}

void FillUnknown(size_t n, TriVec* out) {
  out->assign(n, TriBool::kUnknown);
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

namespace {

/// Shared Add/Sub/Mul shape: int x int lanes stay exact unless the
/// checked operation overflows, in which case the lane promotes to the
/// already-widened double result — precisely Value::Add/Subtract/Multiply.
template <typename IntOp, typename DblOp>
bool ArithLoop(const NumSlice& a, const NumSlice& b, NumSlice* out,
               IntOp int_op, DblOp dbl_op) {
  const size_t n = a.null.size();
  if (a.all_int && b.all_int) {
    // Pure int pipeline: two output streams, f64 stays lazy. Overflow
    // (rare) falls through to the widened loop below for the remaining
    // lanes, backfilling the f64 shadow for the lanes already done.
    out->null.resize(n);
    out->is_int.assign(n, 1);
    out->i64.resize(n);
    out->f64.clear();
    out->f64_valid = false;
    out->all_double = false;
    size_t i = 0;
    for (; i < n; ++i) {
      out->null[i] = a.null[i] | b.null[i];
      int64_t r;
      if (int_op(a.i64[i], b.i64[i], &r)) break;  // overflow: promote
      out->i64[i] = r;
    }
    if (i == n) {
      out->all_int = true;
      return false;
    }
    out->f64.resize(n);
    for (size_t j = 0; j < i; ++j) {
      out->f64[j] = static_cast<double>(out->i64[j]);
    }
    out->f64_valid = true;
    out->all_int = false;
    for (; i < n; ++i) {
      out->null[i] = a.null[i] | b.null[i];
      int64_t r;
      if (!int_op(a.i64[i], b.i64[i], &r)) {
        out->i64[i] = r;
        out->f64[i] = static_cast<double>(r);
      } else {
        // Overflow: the lane's authoritative value is the double
        // result over the widened operands (Value::Add et al.).
        out->is_int[i] = 0;
        out->f64[i] = dbl_op(static_cast<double>(a.i64[i]),
                             static_cast<double>(b.i64[i]));
      }
    }
    return true;
  }

  a.EnsureF64();
  b.EnsureF64();
  out->Resize(n);
  bool promoted = false;
  for (size_t i = 0; i < n; ++i) {
    out->null[i] = a.null[i] | b.null[i];
    if (a.is_int[i] & b.is_int[i]) {
      int64_t r;
      if (!int_op(a.i64[i], b.i64[i], &r)) {
        out->is_int[i] = 1;
        out->i64[i] = r;
        // Widen from the exact int result (NOT from the widened
        // operands): they differ above 2^53 and the f64 lane must match
        // NumericAsDouble of the Value the scalar path would produce.
        out->f64[i] = static_cast<double>(r);
        continue;
      }
      // Overflow: the lane's authoritative value is the double result.
      promoted = true;
    }
    out->f64[i] = dbl_op(a.f64[i], b.f64[i]);
  }
  out->all_int = a.all_int && b.all_int && !promoted;
  out->all_double = a.all_double && b.all_double;
  return promoted;
}

}  // namespace

Status ArithNum(BinaryOp op, const NumSlice& a, const NumSlice& b,
                NumSlice* out) {
  GlobalStats().kernel_arith.fetch_add(1, std::memory_order_relaxed);
  const size_t n = a.null.size();
  switch (op) {
    case BinaryOp::kAdd:
      ArithLoop(
          a, b, out,
          [](int64_t x, int64_t y, int64_t* r) {
            return __builtin_add_overflow(x, y, r);
          },
          [](double x, double y) { return x + y; });
      return Status::OK();
    case BinaryOp::kSub:
      ArithLoop(
          a, b, out,
          [](int64_t x, int64_t y, int64_t* r) {
            return __builtin_sub_overflow(x, y, r);
          },
          [](double x, double y) { return x - y; });
      return Status::OK();
    case BinaryOp::kMul:
      ArithLoop(
          a, b, out,
          [](int64_t x, int64_t y, int64_t* r) {
            return __builtin_mul_overflow(x, y, r);
          },
          [](double x, double y) { return x * y; });
      return Status::OK();
    case BinaryOp::kDiv: {
      // Exactness is decided per lane, so the division loop always
      // works in the widened representation.
      a.EnsureF64();
      b.EnsureF64();
      out->Resize(n);
      for (size_t i = 0; i < n; ++i) {
        const uint8_t is_null = a.null[i] | b.null[i];
        out->null[i] = is_null;
        if (is_null) continue;  // NULL propagates before the zero check.
        const double y = b.f64[i];
        if (y == 0.0) return Status::ExecutionError("division by zero");
        if ((a.is_int[i] & b.is_int[i]) &&
            !(a.i64[i] == INT64_MIN && b.i64[i] == -1) &&
            a.i64[i] % b.i64[i] == 0) {
          out->is_int[i] = 1;
          out->i64[i] = a.i64[i] / b.i64[i];
          out->f64[i] = static_cast<double>(out->i64[i]);
        } else {
          out->f64[i] = a.f64[i] / y;
        }
      }
      // Exactness is per-lane, so no slice-wide int/double promise.
      return Status::OK();
    }
    default:
      return Status::Internal("not an arithmetic operator");
  }
}

void NegNum(const NumSlice& a, NumSlice* out) {
  GlobalStats().kernel_arith.fetch_add(1, std::memory_order_relaxed);
  const size_t n = a.null.size();
  a.EnsureF64();
  out->Resize(n);
  bool promoted = false;
  for (size_t i = 0; i < n; ++i) {
    out->null[i] = a.null[i];
    out->f64[i] = -a.f64[i];
    if (a.is_int[i]) {
      if (a.i64[i] == INT64_MIN) {
        promoted = true;  // -INT64_MIN promotes to double.
      } else {
        out->is_int[i] = 1;
        out->i64[i] = -a.i64[i];
      }
    }
  }
  out->all_int = a.all_int && !promoted;
  out->all_double = a.all_double;
}

// ---------------------------------------------------------------------------
// Null checks
// ---------------------------------------------------------------------------

void IsNullMask(const std::vector<uint8_t>& null, bool negated, TriVec* out) {
  GlobalStats().kernel_null_check.fetch_add(1, std::memory_order_relaxed);
  const size_t n = null.size();
  out->resize(n);
  TriBool* o = out->data();
  const uint8_t want = negated ? 0 : 1;
  for (size_t i = 0; i < n; ++i) o[i] = kTriByBool[null[i] == want];
}

}  // namespace exec
}  // namespace sopr
