#ifndef SOPR_EXEC_ROW_BATCH_H_
#define SOPR_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <vector>

// ExecStats historically lived here; it moved to exec/stats.h when the
// columnar layer grew per-kernel counters. Kept included so existing
// `#include "exec/row_batch.h"` users still see GlobalStats().
#include "exec/stats.h"
#include "types/row.h"

namespace sopr {
namespace exec {

/// Rows per batch in the vectorized pipeline (docs/EXECUTION.md). Matches
/// the executor's cancellation-check granularity so every batch boundary
/// is also a kill-delivery point.
constexpr size_t kBatchRows = 1024;

/// Selection vector: ascending positions into a RowBatch that are still
/// live. Operators evaluate only selected positions; filters narrow the
/// vector instead of compacting the batch.
using SelVec = std::vector<uint32_t>;

/// A batch of composed rows over the FROM bindings of one scope level.
/// Storage stays row-major (Row objects owned by the materialized
/// relations); the batch holds per-binding arrays of row pointers, so
/// column access is a gather with no Value copies. A binding whose rows
/// are not bound at this pipeline stage (e.g. the other relations during
/// a pushed single-relation filter) holds nullptr entries, which
/// reproduces the scalar path's "referenced outside row context" error.
class RowBatch {
 public:
  explicit RowBatch(size_t num_bindings) : rows_(num_bindings) {}

  size_t num_bindings() const { return rows_.size(); }
  size_t size() const { return size_; }

  void Clear() {
    for (auto& v : rows_) v.clear();
    size_ = 0;
  }
  void Reserve(size_t n) {
    for (auto& v : rows_) v.reserve(n);
  }

  /// Appends one position; every binding gets a pointer (may be null).
  void AppendAllNull() {
    for (auto& v : rows_) v.push_back(nullptr);
    ++size_;
  }

  /// Sets binding `b` of the last-appended position.
  void SetBack(size_t b, const Row* row) { rows_[b].back() = row; }

  const Row* row(size_t binding, uint32_t pos) const {
    return rows_[binding][pos];
  }

 private:
  std::vector<std::vector<const Row*>> rows_;  // [binding][position]
  size_t size_ = 0;
};

}  // namespace exec
}  // namespace sopr

#endif  // SOPR_EXEC_ROW_BATCH_H_
