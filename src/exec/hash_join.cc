#include "exec/hash_join.h"

#include <cstring>

#include "common/cancel.h"
#include "common/digest.h"
#include "exec/row_batch.h"

namespace sopr {
namespace exec {

uint64_t HashJoinKeyValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;  // never inserted or probed; any constant is fine
    case ValueType::kBool:
      return digest::Finalize(
          digest::MixU64(digest::kFnvOffset, v.AsBool() ? 2 : 1));
    case ValueType::kInt:
    case ValueType::kDouble: {
      double d = v.NumericAsDouble();
      if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0 (they SqlEquals)
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return digest::Finalize(digest::MixU64(digest::kFnvOffset, bits));
    }
    case ValueType::kString:
      return digest::Finalize(
          digest::MixString(digest::kFnvOffset, v.AsString()));
  }
  return 0;
}

namespace {

uint64_t CombineKeyHash(uint64_t h, const Value& v) {
  return digest::MixU64(h, HashJoinKeyValue(v));
}

}  // namespace

Result<bool> JoinHashTable::Build(const std::vector<Row>& rows,
                                  std::vector<size_t> key_cols,
                                  size_t max_build_rows) {
  if (max_build_rows != 0 && rows.size() > max_build_rows) {
    GlobalStats().hash_join_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  rows_ = &rows;
  key_cols_ = std::move(key_cols);
  buckets_.clear();
  buckets_.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r % kBatchRows == 0) {
      SOPR_RETURN_NOT_OK(CheckCancel("hash join build"));
    }
    uint64_t h = digest::kFnvOffset;
    bool has_null = false;
    for (size_t col : key_cols_) {
      const Value& v = rows[r].at(col);
      if (v.is_null()) {
        has_null = true;
        break;
      }
      h = CombineKeyHash(h, v);
    }
    if (has_null) continue;
    buckets_[digest::Finalize(h)].push_back(static_cast<uint32_t>(r));
  }
  GlobalStats().hash_join_builds.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Result<bool> JoinHashTable::BuildColumnar(
    const std::vector<Row>& rows, std::vector<size_t> key_cols,
    size_t max_build_rows, const std::vector<const ColumnVector*>& key_vecs) {
  if (max_build_rows != 0 && rows.size() > max_build_rows) {
    GlobalStats().hash_join_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const size_t n = rows.size();
  rows_ = &rows;
  key_cols_ = std::move(key_cols);
  buckets_.clear();
  buckets_.reserve(n);

  // Column-major digest accumulation: one monomorphic pass per key
  // column, no per-row type dispatch. Must stay bit-compatible with
  // Build's per-row CombineKeyHash fold.
  std::vector<uint64_t> h(n, digest::kFnvOffset);
  std::vector<uint8_t> null_key(n, 0);
  for (const ColumnVector* cv : key_vecs) {
    const uint8_t* nulls = cv->nulls();
    switch (cv->tag()) {
      case ColumnVector::Tag::kInt64: {
        const int64_t* vals = cv->i64();
        for (size_t r = 0; r < n; ++r) {
          null_key[r] |= nulls[r];
          // (double)int is never -0.0, so no collapse needed here.
          const double d = static_cast<double>(vals[r]);
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          h[r] = digest::MixU64(
              h[r], digest::Finalize(digest::MixU64(digest::kFnvOffset, bits)));
        }
        break;
      }
      case ColumnVector::Tag::kDouble: {
        const double* vals = cv->f64();
        for (size_t r = 0; r < n; ++r) {
          null_key[r] |= nulls[r];
          double d = vals[r];
          if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          h[r] = digest::MixU64(
              h[r], digest::Finalize(digest::MixU64(digest::kFnvOffset, bits)));
        }
        break;
      }
      case ColumnVector::Tag::kString: {
        const std::string* const* vals = cv->str();
        for (size_t r = 0; r < n; ++r) {
          null_key[r] |= nulls[r];
          if (nulls[r]) continue;  // no string to digest at NULL rows
          h[r] = digest::MixU64(
              h[r], digest::Finalize(
                        digest::MixString(digest::kFnvOffset, *vals[r])));
        }
        break;
      }
      case ColumnVector::Tag::kBool: {
        const uint8_t* vals = cv->b8();
        for (size_t r = 0; r < n; ++r) {
          null_key[r] |= nulls[r];
          h[r] = digest::MixU64(
              h[r], digest::Finalize(digest::MixU64(digest::kFnvOffset,
                                                    vals[r] ? 2 : 1)));
        }
        break;
      }
    }
  }

  for (size_t r = 0; r < n; ++r) {
    if (r % kBatchRows == 0) {
      SOPR_RETURN_NOT_OK(CheckCancel("hash join build"));
    }
    if (null_key[r]) continue;  // NULL keys are never inserted
    buckets_[digest::Finalize(h[r])].push_back(static_cast<uint32_t>(r));
  }
  GlobalStats().hash_join_builds.fetch_add(1, std::memory_order_relaxed);
  GlobalStats().hash_join_columnar_builds.fetch_add(1,
                                                    std::memory_order_relaxed);
  return true;
}

void JoinHashTable::Probe(const std::vector<const Value*>& probe_key,
                          std::vector<uint32_t>* out) const {
  uint64_t h = digest::kFnvOffset;
  for (const Value* v : probe_key) {
    if (v->is_null()) return;
    h = CombineKeyHash(h, *v);
  }
  auto it = buckets_.find(digest::Finalize(h));
  if (it == buckets_.end()) return;
  for (uint32_t r : it->second) {
    bool match = true;
    for (size_t k = 0; k < key_cols_.size(); ++k) {
      if ((*rows_)[r].at(key_cols_[k]).SqlEquals(*probe_key[k]) !=
          TriBool::kTrue) {
        match = false;
        break;
      }
    }
    if (match) out->push_back(r);
  }
}

}  // namespace exec
}  // namespace sopr
