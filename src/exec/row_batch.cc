#include "exec/row_batch.h"

namespace sopr {
namespace exec {

ExecStats& GlobalStats() {
  static ExecStats stats;
  return stats;
}

}  // namespace exec
}  // namespace sopr
