#include "net/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace sopr {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

Result<std::unique_ptr<EventLoop>> EventLoop::Listen(const Options& options,
                                                     Handler* handler) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return Errno("socket");
  int on = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options.bind_address);
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Errno("bind");
    ::close(listen_fd);
    return st;
  }
  if (::listen(listen_fd, options.listen_backlog) < 0) {
    Status st = Errno("listen");
    ::close(listen_fd);
    return st;
  }
  Status nb = SetNonBlocking(listen_fd);
  if (!nb.ok()) {
    ::close(listen_fd);
    return nb;
  }
  // Recover the actual port for ephemeral binds.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    Status st = Errno("getsockname");
    ::close(listen_fd);
    return st;
  }

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    Status st = Errno("epoll_create1");
    ::close(listen_fd);
    return st;
  }
  const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    Status st = Errno("eventfd");
    ::close(listen_fd);
    ::close(epoll_fd);
    return st;
  }

  auto loop = std::unique_ptr<EventLoop>(
      new EventLoop(options, handler, listen_fd, epoll_fd, wake_fd,
                    ntohs(bound.sin_port)));

  // Register the two permanent fds. Connection ids start at 1, so 0 and
  // UINT64_MAX are free to tag the listener and the wakeup fd.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = UINT64_MAX;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }
  return loop;
}

EventLoop::EventLoop(Options options, Handler* handler, int listen_fd,
                     int epoll_fd, int wake_fd, uint16_t port)
    : options_(std::move(options)),
      handler_(handler),
      listen_fd_(listen_fd),
      epoll_fd_(epoll_fd),
      wake_fd_(wake_fd),
      port_(port) {}

EventLoop::~EventLoop() {
  Stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
  ::close(listen_fd_);
}

void EventLoop::Start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  // The exchange elects exactly one joiner: concurrent Stop() calls (or
  // Stop racing the destructor) must not both reach thread_.join().
  if (!running_.exchange(false)) return;
  stop_requested_.store(true);
  Wake();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Wake() {
  uint64_t one = 1;
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN means a wakeup is already pending — good enough
}

void EventLoop::Send(uint64_t conn_id, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    control_.push_back({ControlOp::kSend, conn_id, std::move(bytes)});
  }
  Wake();
}

void EventLoop::CloseConnection(uint64_t conn_id, bool after_flush) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    control_.push_back(
        {after_flush ? ControlOp::kCloseAfterFlush : ControlOp::kClose,
         conn_id, std::string()});
  }
  Wake();
}

void EventLoop::SetReadPaused(uint64_t conn_id, bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    control_.push_back({paused ? ControlOp::kPause : ControlOp::kResume,
                        conn_id, std::string()});
  }
  Wake();
}

EventLoop::Counters EventLoop::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; Stop() tears down below
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == UINT64_MAX) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (tag == 0) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // torn down earlier this batch
      Conn* conn = &it->second;
      const uint32_t mask = events[i].events;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        Teardown(tag, Status::OK());  // peer went away
        continue;
      }
      if (mask & EPOLLOUT) {
        WriteReady(tag, conn);
        if (conns_.find(tag) == conns_.end()) continue;
      }
      if (mask & (EPOLLIN | EPOLLRDHUP)) {
        ReadReady(tag, conn);
      }
    }
    HandleControlOps();
  }
  // Teardown every remaining connection so the handler sees a close for
  // each (workers may still hold ids; their sends become no-ops).
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) Teardown(id, Status::OK());
}

void EventLoop::HandleControlOps() {
  std::deque<ControlOp> ops;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ops.swap(control_);
  }
  for (ControlOp& op : ops) {
    auto it = conns_.find(op.conn_id);
    if (it == conns_.end()) continue;  // connection already gone
    Conn* conn = &it->second;
    switch (op.kind) {
      case ControlOp::kSend:
        conn->output.append(op.bytes);
        if (conn->output.size() > options_.output_hard_cap) {
          Teardown(op.conn_id,
                   Status::ResourceExhausted(
                       "connection dropped: output buffer exceeded " +
                       std::to_string(options_.output_hard_cap) + " bytes"));
          break;
        }
        WriteReady(op.conn_id, conn);
        break;
      case ControlOp::kClose:
        Teardown(op.conn_id, Status::OK());
        break;
      case ControlOp::kCloseAfterFlush:
        conn->close_after_flush = true;
        WriteReady(op.conn_id, conn);
        break;
      case ControlOp::kPause:
        conn->read_paused = true;
        UpdateInterest(op.conn_id, conn);
        break;
      case ControlOp::kResume:
        conn->read_paused = false;
        // Frames decoded off the socket but held back by the pause sit in
        // the decoder buffer; dispatch them now — the socket alone would
        // never re-deliver them.
        if (!DrainDecoder(op.conn_id, conn)) break;
        UpdateInterest(op.conn_id, conn);
        break;
    }
  }
}

void EventLoop::AcceptReady() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.accept_failures;
      return;
    }
    // Chaos: an injected accept failure refuses the connection at the
    // door — the client sees a clean close, the engine sees nothing.
    if (!SOPR_FAILPOINT("net.accept").ok()) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.accept_failures;
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));

    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns_.emplace(id, std::move(conn));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.accepted;
      counters_.active = conns_.size();
    }
    handler_->OnOpen(id);
  }
}

void EventLoop::ReadReady(uint64_t conn_id, Conn* conn) {
  char buf[kReadChunk];
  while (!conn->read_paused && !conn->output_paused_read) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Teardown(conn_id, Errno("read"));
      return;
    }
    if (n == 0) {
      // Peer closed. Anything buffered but incomplete is a truncated
      // frame — not an error by itself, the client just went away.
      Teardown(conn_id, Status::OK());
      return;
    }
    conn->decoder.Feed(buf, static_cast<size_t>(n));
    if (!DrainDecoder(conn_id, conn)) return;
    if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained the socket
  }
  UpdateInterest(conn_id, conn);
}

bool EventLoop::DrainDecoder(uint64_t conn_id, Conn* conn) {
  // Decode every complete frame before reading more: a pipelined burst
  // arrives as one read and must dispatch as individual frames. The
  // handler's return value is hard backpressure — it is honored between
  // frames, so the dispatch queue can never overshoot by more than the
  // one frame in flight; the rest stays buffered until Resume.
  while (!conn->read_paused) {
    auto next = conn->decoder.Next(options_.max_frame_payload);
    Status decode =
        next.ok() ? SOPR_FAILPOINT("net.frame.decode") : next.status();
    if (!decode.ok()) {
      // Oversized header (or injected decode fault): answer with one
      // error frame and close — the stream cannot be resynchronized.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.protocol_errors;
      }
      conn->output.append(EncodeFrame(
          FrameType::kError,
          EncodeError(Status::InvalidArgument("protocol error: " +
                                              decode.message()),
                      0)));
      conn->close_after_flush = true;
      WriteReady(conn_id, conn);
      return false;
    }
    if (!next.value().has_value()) break;
    const bool keep_reading =
        handler_->OnFrame(conn_id, std::move(*next.value()));
    // The handler may have closed the connection.
    if (conns_.find(conn_id) == conns_.end()) return false;
    if (!keep_reading) conn->read_paused = true;
  }
  return true;
}

void EventLoop::WriteReady(uint64_t conn_id, Conn* conn) {
  while (!conn->output.empty()) {
    Status inject = SOPR_FAILPOINT("net.conn.write");
    if (!inject.ok()) {
      // An injected write fault models a dead peer: the bytes cannot be
      // delivered, so the connection is torn down (cancelling any
      // statement still running for it, exactly like a real EPIPE).
      Teardown(conn_id, inject);
      return;
    }
    // MSG_NOSIGNAL: a peer that hard-closed (RST) mid-flush must surface
    // as EPIPE -> Teardown, not a process-killing SIGPIPE.
    const ssize_t n = ::send(conn->fd, conn->output.data(),
                             conn->output.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Teardown(conn_id, Errno("send"));
      return;
    }
    conn->output.erase(0, static_cast<size_t>(n));
  }
  if (conn->output.empty() && conn->close_after_flush) {
    Teardown(conn_id, Status::OK());
    return;
  }
  // Output-watermark backpressure: stop reading new requests while the
  // peer is slow to drain responses; resume below half the mark.
  if (conn->output.size() > options_.output_high_watermark) {
    conn->output_paused_read = true;
  } else if (conn->output.size() < options_.output_high_watermark / 2) {
    conn->output_paused_read = false;
  }
  conn->want_write = !conn->output.empty();
  UpdateInterest(conn_id, conn);
}

void EventLoop::UpdateInterest(uint64_t conn_id, Conn* conn) {
  epoll_event ev{};
  ev.data.u64 = conn_id;
  ev.events = EPOLLRDHUP;  // always watch for peer close
  if (!conn->read_paused && !conn->output_paused_read) ev.events |= EPOLLIN;
  if (conn->want_write) ev.events |= EPOLLOUT;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void EventLoop::Teardown(uint64_t conn_id, const Status& why) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  const int fd = it->second.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.closed;
    counters_.active = conns_.size();
  }
  handler_->OnClose(conn_id, why);
}

}  // namespace net
}  // namespace sopr
