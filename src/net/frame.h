#ifndef SOPR_NET_FRAME_H_
#define SOPR_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "expr/evaluator.h"
#include "types/row.h"
#include "types/value.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace net {

/// The wire protocol (docs/NETWORK.md): length-prefixed binary frames,
/// all integers little-endian.
///
///   frame   = u32 payload_len | u8 type | payload[payload_len]
///
/// A frame whose payload_len exceeds kMaxPayloadBytes is a protocol
/// error: the server answers with one kError frame and closes the
/// connection without reading further (the declared length cannot be
/// trusted). Unknown frame types and short payloads are protocol errors
/// too — detected after the frame boundary, so the error names the type.
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 5;
inline constexpr size_t kMaxPayloadBytes = 8u << 20;  // 8 MiB

enum class FrameType : uint8_t {
  // Requests (client -> server). kHello must be the first frame on a
  // connection; everything else is refused until the handshake is done.
  kHello = 0x01,    // u32 protocol_version, str client_name
  kExecute = 0x02,  // str sql  (autocommit script: DDL, DML, or selects)
  kQuery = 0x03,    // str sql  (single select, snapshot read -> kRows)
  kPin = 0x04,      // (empty)  pin a snapshot for this connection
  kQueryAt = 0x05,  // str sql  (select at the connection's pinned snapshot)
  kUnpin = 0x06,    // (empty)  release the connection's pin
  kKill = 0x07,     // u64 session_id (0 = self), str reason
  kStats = 0x08,    // (empty)  admin: front-end + group-commit counters
  kPing = 0x09,     // (empty)
  kGoodbye = 0x0a,  // (empty)  orderly close: server flushes, then closes

  // Responses (server -> client).
  kHelloOk = 0x81,     // u32 protocol_version, u64 session_id
  kOk = 0x82,          // u64 commit_lsn, u64 lsn (pin LSN for kPin; else 0)
  kRows = 0x83,        // result set (columns + typed rows)
  kError = 0x84,       // u8 status_code, u32 retry_after_ms, str message
  kStatsReply = 0x85,  // WireStats
  kPong = 0x86,        // (empty)
};

/// True for types a client may send (the server-side validity check).
bool IsRequestType(uint8_t type);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

// --- Payload primitives ---------------------------------------------------

/// Appends payload primitives to a byte buffer.
class PayloadWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// u32 length + bytes.
  void Str(std::string_view s);
  /// u8 type tag + value bytes (null/bool/int/double/string).
  void Val(const Value& v);
  void PutRow(const Row& row);
  void PutResult(const QueryResult& result);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a payload. Every accessor fails with
/// kInvalidArgument on truncation — a malformed payload can never read
/// out of bounds or crash the server.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<std::string> Str();
  Result<Value> Val();
  Result<Row> GetRow();
  Result<QueryResult> GetResult();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;
  std::string_view data_;
  size_t pos_ = 0;
};

// --- Frame encode / decode ------------------------------------------------

/// Appends one complete frame (header + payload) to `out`.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

inline std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  AppendFrame(type, payload, &out);
  return out;
}

/// Incremental frame decoder over a connection's input buffer. Feed
/// bytes as they arrive; Next() pops complete frames.
class FrameDecoder {
 public:
  void Feed(const char* data, size_t n) { buffer_.append(data, n); }

  /// The next complete frame, std::nullopt when more bytes are needed,
  /// or kInvalidArgument when the buffered header declares a payload
  /// over `max_payload` (the stream is unrecoverable from that point:
  /// the declared length cannot be skipped safely).
  Result<std::optional<Frame>> Next(size_t max_payload = kMaxPayloadBytes);

  size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

// --- Typed payload helpers ------------------------------------------------

/// kError payload: the Status code + message, plus the retry-after hint
/// (milliseconds, 0 = none) the overload machinery attached.
std::string EncodeError(const Status& status, uint32_t retry_after_ms);
/// Reconstructs the Status (and hint) a kError frame carries. A payload
/// carrying an unknown status code decodes as kInternal.
Status DecodeError(std::string_view payload, uint32_t* retry_after_ms);

/// Extracts the "retry-after-ms=<n>" hint the admission controller and
/// session-limit refusals embed in their messages (0 if absent).
uint32_t ParseRetryAfterMs(const std::string& message);

/// Front-end + group-commit counters served by the kStats admin frame
/// (SessionManager::Inspect + wal::GroupCommitStats + connection-level
/// counters), flattened for the wire.
struct WireStats {
  uint64_t num_sessions = 0;
  uint64_t max_sessions = 0;
  // Writer admission (AdmissionStats).
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_queue_deadline = 0;
  uint64_t shed_cancelled = 0;
  uint64_t admission_inflight = 0;
  uint64_t admission_queued = 0;
  // Group commit (GroupCommitStats).
  wal::GroupCommitStats group_commit;
  // Connection server.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t protocol_errors = 0;
  // Per-session counters (SessionManager::SessionInfo).
  struct SessionStats {
    uint64_t id = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t statements = 0;
    uint64_t inflight_statements = 0;
    bool killed = false;
  };
  std::vector<SessionStats> sessions;
};

std::string EncodeStats(const WireStats& stats);
Result<WireStats> DecodeStats(std::string_view payload);

}  // namespace net
}  // namespace sopr

#endif  // SOPR_NET_FRAME_H_
