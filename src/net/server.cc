#include "net/server.h"

#include <utility>

#include "wal/wal_writer.h"

namespace sopr {
namespace net {

namespace server_ns = sopr::server;

/// Bridges EventLoop callbacks (loop thread) into the Server. A separate
/// object so the Server's public surface stays free of Handler methods.
class Server::LoopHandler : public EventLoop::Handler {
 public:
  explicit LoopHandler(Server* server) : server_(server) {}
  void OnOpen(uint64_t conn_id) override { server_->OnOpen(conn_id); }
  bool OnFrame(uint64_t conn_id, Frame frame) override {
    return server_->OnFrame(conn_id, std::move(frame));
  }
  void OnClose(uint64_t conn_id, const Status& why) override {
    server_->OnClose(conn_id, why);
  }

 private:
  Server* const server_;
};

Result<std::unique_ptr<Server>> Server::Start(
    sopr::server::SessionManager* manager, Options options) {
  auto server =
      std::unique_ptr<Server>(new Server(manager, std::move(options)));
  server->handler_ = std::make_unique<LoopHandler>(server.get());
  auto loop = EventLoop::Listen(server->options_.loop, server->handler_.get());
  if (!loop.ok()) return loop.status();
  server->loop_ = std::move(loop).value();
  server->loop_->Start();
  const size_t workers =
      server->options_.workers > 0 ? server->options_.workers : 1;
  server->workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerMain(); });
  }
  return server;
}

Server::Server(sopr::server::SessionManager* manager, Options options)
    : manager_(manager), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  // call_once makes concurrent Shutdown calls safe: exactly one caller
  // runs the body (stopping the loop and joining the workers — a join
  // must never race another join of the same thread); late callers block
  // until it finishes, so "returned from Shutdown" always means "down".
  std::call_once(shutdown_once_, [this] {
    // Stop the loop first: every connection tears down, each OnClose
    // cancels any in-flight statement and marks its Conn closed, so the
    // workers drain fast.
    if (loop_) loop_->Stop();
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    // Workers are gone; reap whatever connections they never got to.
    std::vector<std::pair<uint64_t, ConnPtr>> leftover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      leftover.assign(conns_.begin(), conns_.end());
    }
    for (auto& [id, conn] : leftover) ReapConn(id, conn);
  });
}

uint64_t Server::dispatch_protocol_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatch_protocol_errors_;
}

void Server::OnOpen(uint64_t conn_id) {
  auto conn = std::make_shared<Conn>();
  std::lock_guard<std::mutex> lock(mu_);
  conns_.emplace(conn_id, std::move(conn));
}

void Server::OnClose(uint64_t conn_id, const Status& /*why*/) {
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = it->second;
  }
  bool reap_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    conn->requests.clear();
    if (conn->busy) {
      // Mid-statement disconnect: the worker is inside the session right
      // now. Cancel so the statement rolls back at its next cancellation
      // point; the worker reaps when it returns.
      if (conn->session != nullptr) {
        conn->session->Cancel("client disconnected");
      }
    } else if (!conn->scheduled) {
      reap_now = true;
    }
    // If scheduled-but-not-busy, the worker that pops it observes
    // `closed` and reaps.
  }
  if (reap_now) ReapConn(conn_id, conn);
}

void Server::ReapConn(uint64_t conn_id, const ConnPtr& conn) {
  uint64_t session_id = 0;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    session_id = conn->session_id;
    // Null out under the conn mutex: every other reader checks `closed`
    // (already set) under this mutex before touching the session.
    conn->session = nullptr;
    conn->pin.reset();
  }
  if (session_id != 0) {
    (void)manager_->CloseSession(session_id);
  }
  std::lock_guard<std::mutex> lock(mu_);
  conns_.erase(conn_id);
}

void Server::SendError(uint64_t conn_id, const Status& status, bool close) {
  const uint32_t retry = ParseRetryAfterMs(status.message());
  loop_->Send(conn_id,
              EncodeFrame(FrameType::kError, EncodeError(status, retry)));
  if (close) loop_->CloseConnection(conn_id, /*after_flush=*/true);
}

bool Server::HandleHello(uint64_t conn_id, const ConnPtr& conn,
                         const Frame& frame) {
  PayloadReader reader(frame.payload);
  auto version = reader.U32();
  auto client = version.ok() ? reader.Str()
                             : Result<std::string>(version.status());
  if (!client.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++dispatch_protocol_errors_;
  }
  if (!client.ok() || frame.type != FrameType::kHello) {
    SendError(conn_id,
              Status::InvalidArgument("protocol error: malformed HELLO"),
              /*close=*/true);
    return false;
  }
  if (version.value() != kProtocolVersion) {
    SendError(conn_id,
              Status::InvalidArgument(
                  "protocol version mismatch: client speaks v" +
                  std::to_string(version.value()) + ", server speaks v" +
                  std::to_string(kProtocolVersion)),
              /*close=*/true);
    return false;
  }
  // The session-limit refusal is the handshake's structured error: the
  // kError frame carries kResourceExhausted plus the escalating
  // retry-after hint CreateSession embedded, then the connection closes.
  auto session = manager_->CreateSession();
  if (!session.ok()) {
    SendError(conn_id, session.status(), /*close=*/true);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->session = session.value();
    conn->session_id = session.value()->id();
    conn->hello_done = true;
  }
  PayloadWriter ok;
  ok.U32(kProtocolVersion);
  ok.U64(session.value()->id());
  loop_->Send(conn_id, EncodeFrame(FrameType::kHelloOk, ok.bytes()));
  return true;
}

bool Server::OnFrame(uint64_t conn_id, Frame frame) {
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return true;
    conn = it->second;
  }
  if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++dispatch_protocol_errors_;
    }
    SendError(conn_id,
              Status::InvalidArgument(
                  "protocol error: unknown or non-request frame type " +
                  std::to_string(static_cast<unsigned>(frame.type))),
              /*close=*/true);
    return false;  // the connection is closing — stop decoding
  }
  bool hello_done;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    hello_done = conn->hello_done;
  }
  if (!hello_done) {
    // First frame must be the handshake; it runs right here on the loop
    // thread (CreateSession is a bounded map insert, never SQL).
    if (frame.type != FrameType::kHello) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++dispatch_protocol_errors_;
      }
      SendError(conn_id,
                Status::InvalidArgument(
                    "protocol error: expected HELLO as first frame"),
                /*close=*/true);
      return false;
    }
    return HandleHello(conn_id, conn, frame);
  }
  if (frame.type == FrameType::kHello) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++dispatch_protocol_errors_;
    }
    SendError(conn_id,
              Status::InvalidArgument("protocol error: duplicate HELLO"),
              /*close=*/true);
    return false;
  }
  // Queue for a worker; pause the socket (via the return value — honored
  // before the loop decodes the next frame) when the connection is
  // further ahead of its worker than the queue allows.
  bool schedule = false;
  bool keep_reading = true;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return true;
    conn->requests.push_back(std::move(frame));
    if (!conn->busy && !conn->scheduled) {
      conn->scheduled = true;
      schedule = true;
    }
    if (conn->requests.size() >= options_.max_queued_requests) {
      conn->read_paused = true;
    }
    keep_reading = !conn->read_paused;
  }
  if (schedule) ScheduleConn(conn_id, conn);
  return keep_reading;
}

void Server::ScheduleConn(uint64_t conn_id, const ConnPtr& /*conn*/) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.push_back(conn_id);
  }
  work_cv_.notify_one();
}

void Server::WorkerMain() {
  while (true) {
    uint64_t conn_id = 0;
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !ready_.empty(); });
      if (shutdown_) return;
      conn_id = ready_.front();
      ready_.pop_front();
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;  // reaped while queued
      conn = it->second;
    }
    DriveConn(conn_id, conn);
  }
}

void Server::DriveConn(uint64_t conn_id, const ConnPtr& conn) {
  while (true) {
    // Claim the next batch under the conn mutex. Consecutive EXECUTE
    // frames become one pipelined run — that is the whole point of the
    // queue: back-to-back commits stage together and share a
    // group-commit cohort (Session::ExecutePipelined).
    std::vector<Frame> batch;
    bool pipelined = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->scheduled = false;
      if (conn->closed) {
        conn->busy = false;
        break;  // reap below
      }
      if (conn->requests.empty()) {
        conn->busy = false;
        return;
      }
      conn->busy = true;
      if (conn->requests.front().type == FrameType::kExecute) {
        pipelined = true;
        while (!conn->requests.empty() &&
               conn->requests.front().type == FrameType::kExecute &&
               batch.size() < options_.max_pipeline) {
          batch.push_back(std::move(conn->requests.front()));
          conn->requests.pop_front();
        }
      } else {
        batch.push_back(std::move(conn->requests.front()));
        conn->requests.pop_front();
      }
      // Queue drained below the resume threshold: let the socket read
      // again.
      if (conn->read_paused &&
          conn->requests.size() < options_.max_queued_requests / 2) {
        conn->read_paused = false;
        loop_->SetReadPaused(conn_id, false);
      }
    }

    std::string out;
    if (pipelined) {
      server_ns::Session* session;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        session = conn->closed ? nullptr : conn->session;
      }
      if (session != nullptr) {
        std::vector<std::string> scripts;
        scripts.reserve(batch.size());
        for (Frame& f : batch) {
          PayloadReader reader(f.payload);
          auto sql = reader.Str();
          scripts.push_back(sql.ok() ? std::move(sql).value() : std::string());
        }
        auto results = session->ExecutePipelined(scripts);
        for (size_t i = 0; i < batch.size(); ++i) {
          PayloadReader reader(batch[i].payload);
          if (!reader.Str().ok()) {
            AppendFrame(FrameType::kError,
                        EncodeError(Status::InvalidArgument(
                                        "protocol error: malformed EXECUTE"),
                                    0),
                        &out);
            continue;
          }
          const auto& r = results[i];
          if (r.status.ok()) {
            PayloadWriter ok;
            ok.U64(r.receipt.commit_lsn);
            ok.U64(0);
            AppendFrame(FrameType::kOk, ok.bytes(), &out);
          } else {
            AppendFrame(FrameType::kError,
                        EncodeError(r.status,
                                    ParseRetryAfterMs(r.status.message())),
                        &out);
          }
        }
      }
    } else {
      out = HandleRequest(conn_id, conn, batch.front());
    }
    if (!out.empty()) loop_->Send(conn_id, std::move(out));
  }
  ReapConn(conn_id, conn);
}

std::string Server::HandleRequest(uint64_t conn_id, const ConnPtr& conn,
                                  const Frame& frame) {
  server_ns::Session* session;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    session = conn->closed ? nullptr : conn->session;
  }
  if (session == nullptr) return std::string();

  auto error_frame = [](const Status& status) {
    return EncodeFrame(FrameType::kError,
                       EncodeError(status, ParseRetryAfterMs(status.message())));
  };
  auto ok_frame = [](uint64_t commit_lsn, uint64_t lsn) {
    PayloadWriter w;
    w.U64(commit_lsn);
    w.U64(lsn);
    return EncodeFrame(FrameType::kOk, w.bytes());
  };
  auto protocol_error = [&](const std::string& what) {
    std::lock_guard<std::mutex> lock(mu_);
    ++dispatch_protocol_errors_;
    return error_frame(Status::InvalidArgument("protocol error: " + what));
  };

  switch (frame.type) {
    case FrameType::kQuery: {
      PayloadReader reader(frame.payload);
      auto sql = reader.Str();
      if (!sql.ok()) return protocol_error("malformed QUERY");
      auto result = session->ExecuteQuery(sql.value());
      if (!result.ok()) return error_frame(result.status());
      PayloadWriter w;
      w.PutResult(result.value());
      return EncodeFrame(FrameType::kRows, w.bytes());
    }
    case FrameType::kPin: {
      auto pin = session->PinSnapshot();
      if (!pin.ok()) return error_frame(pin.status());
      const uint64_t lsn = pin.value().lsn();
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->pin = std::move(pin).value();
      }
      return ok_frame(0, lsn);
    }
    case FrameType::kQueryAt: {
      PayloadReader reader(frame.payload);
      auto sql = reader.Str();
      if (!sql.ok()) return protocol_error("malformed QUERY_AT");
      // The pin lives in the conn, but QueryAt only reads its LSN; the
      // worker is the only thread that assigns it, so borrowing the
      // optional outside the lock is safe.
      server_ns::Session::Snapshot* pin = nullptr;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->pin.has_value()) pin = &*conn->pin;
      }
      if (pin == nullptr) {
        return error_frame(Status::InvalidArgument(
            "QUERY_AT without a pinned snapshot (send PIN first)"));
      }
      auto result = session->QueryAt(*pin, sql.value());
      if (!result.ok()) return error_frame(result.status());
      PayloadWriter w;
      w.PutResult(result.value());
      return EncodeFrame(FrameType::kRows, w.bytes());
    }
    case FrameType::kUnpin: {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->pin.reset();
      return ok_frame(0, 0);
    }
    case FrameType::kKill: {
      PayloadReader reader(frame.payload);
      auto sid = reader.U64();
      auto reason = sid.ok() ? reader.Str() : Result<std::string>(sid.status());
      if (!reason.ok()) return protocol_error("malformed KILL");
      const uint64_t target =
          sid.value() == 0 ? session->id() : sid.value();
      // Resolve the target session through the server's own connection
      // table: the KILL control plane reaches any wire session, self
      // included. Cancel() must run while the victim conn's mutex is
      // still held: a Session is destroyed only after ReapConn nulls the
      // pointer under that mutex, so a non-null pointer observed here is
      // alive for exactly as long as the lock is — releasing first would
      // let a concurrent disconnect free the Session under us. Cancel is
      // a non-blocking token flip, safe under both locks and from this
      // (foreign) thread.
      const std::string why = reason.value().empty() ? "killed via wire KILL"
                                                     : reason.value();
      bool killed = false;
      {
        std::lock_guard<std::mutex> server_lock(mu_);
        for (auto& [id, other] : conns_) {
          std::lock_guard<std::mutex> other_lock(other->mu);
          if (!other->closed && other->session != nullptr &&
              other->session_id == target) {
            other->session->Cancel(why);
            killed = true;
            break;
          }
        }
      }
      if (!killed) {
        return error_frame(Status::InvalidArgument(
            "KILL: no connected session with id " + std::to_string(target)));
      }
      return ok_frame(0, 0);
    }
    case FrameType::kStats:
      return EncodeFrame(FrameType::kStatsReply, StatsReply());
    case FrameType::kPing:
      return EncodeFrame(FrameType::kPong, std::string());
    case FrameType::kGoodbye:
      // Orderly close: flush everything already queued, then close. No
      // response frame — the close is the response.
      loop_->CloseConnection(conn_id, /*after_flush=*/true);
      return std::string();
    case FrameType::kExecute:
    case FrameType::kHello:
    default:
      return protocol_error("unexpected frame type " +
                            std::to_string(static_cast<unsigned>(frame.type)));
  }
}

std::string Server::StatsReply() const {
  WireStats stats;
  const auto snapshot = manager_->Inspect();
  stats.num_sessions = snapshot.num_sessions;
  stats.max_sessions = snapshot.max_sessions;
  stats.admitted = snapshot.admission.admitted;
  stats.shed_queue_full = snapshot.admission.shed_queue_full;
  stats.shed_queue_deadline = snapshot.admission.shed_queue_deadline;
  stats.shed_cancelled = snapshot.admission.shed_cancelled;
  stats.admission_inflight = snapshot.admission.inflight;
  stats.admission_queued = snapshot.admission.queued;
  stats.sessions.reserve(snapshot.sessions.size());
  for (const auto& info : snapshot.sessions) {
    WireStats::SessionStats s;
    s.id = info.id;
    s.commits = info.commits;
    s.aborts = info.aborts;
    s.statements = info.statements;
    s.inflight_statements = info.inflight_statements;
    s.killed = info.killed;
    stats.sessions.push_back(s);
  }
  if (wal::WalWriter* wal = manager_->engine().wal()) {
    stats.group_commit = wal->group_stats();
  }
  const EventLoop::Counters loop = loop_->counters();
  stats.connections_accepted = loop.accepted;
  stats.connections_active = loop.active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.protocol_errors = loop.protocol_errors + dispatch_protocol_errors_;
  }
  return EncodeStats(stats);
}

}  // namespace net
}  // namespace sopr
