#ifndef SOPR_NET_SERVER_H_
#define SOPR_NET_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "server/session_manager.h"

namespace sopr {
namespace net {

/// The network front-end (docs/NETWORK.md): multiplexes every TCP
/// connection accepted by the EventLoop onto the SessionManager's
/// bounded session pool and a bounded worker pool.
///
/// Lifecycle of a connection:
///   accept -> kHello handshake -> SessionManager::CreateSession
///     (a max_sessions refusal becomes a structured kError handshake
///      response carrying the escalating retry-after hint, then close)
///   -> request frames queue per connection; a worker drains one
///      connection's queue at a time (the Session threading contract:
///      one session, one driving thread), so a pipelined run of EXECUTE
///      frames goes through Session::ExecutePipelined and rides one (or
///      few) group-commit cohorts
///   -> close / kKill -> Session::Cancel (the in-flight statement rolls
///      back through the normal structural path) -> CloseSession.
///
/// Threading: the EventLoop thread decodes frames and runs the
/// handshake; workers run SQL. Everything they share lives behind the
/// server mutex or the per-connection state mutex.
class Server {
 public:
  struct Options {
    EventLoop::Options loop;
    /// Worker threads driving sessions. The bound on concurrent SQL
    /// execution from the wire — connections beyond this simply queue.
    size_t workers = 4;
    /// Longest pipelined run handed to one ExecutePipelined call. Also
    /// the per-connection request-queue length above which the loop
    /// stops reading from the socket (input backpressure).
    size_t max_pipeline = 64;
    size_t max_queued_requests = 128;
  };

  /// Creates the loop (bound + listening) and the worker pool. The
  /// manager must outlive the server.
  static Result<std::unique_ptr<Server>> Start(
      sopr::server::SessionManager* manager, Options options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, closes every connection (cancelling in-flight
  /// statements), and joins the workers. Idempotent.
  void Shutdown();

  uint16_t port() const { return loop_->port(); }
  EventLoop::Counters loop_counters() const { return loop_->counters(); }
  /// Protocol errors counted at the dispatch layer (bad frame type,
  /// malformed payload, handshake violations) — the loop counts framing
  /// errors separately.
  uint64_t dispatch_protocol_errors() const;

 private:
  /// Per-connection dispatch state. `mu` guards the queue and flags;
  /// the Session pointer is written once at handshake.
  struct Conn {
    std::mutex mu;
    std::deque<Frame> requests;
    bool busy = false;        // a worker is driving this connection
    bool scheduled = false;   // queued for a worker
    bool closed = false;      // loop tore the socket down
    bool hello_done = false;
    bool read_paused = false;
    sopr::server::Session* session = nullptr;
    uint64_t session_id = 0;
    /// The connection's pinned snapshot (kPin/kQueryAt/kUnpin).
    std::optional<sopr::server::Session::Snapshot> pin;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  class LoopHandler;

  Server(sopr::server::SessionManager* manager, Options options);
  void WorkerMain();
  /// Loop thread: handshake + enqueue; schedules the connection. The
  /// return value is the loop's keep-reading signal — false pauses the
  /// decode loop before the next frame (input backpressure, fatal
  /// protocol errors, handshake refusals).
  bool OnFrame(uint64_t conn_id, Frame frame);
  void OnOpen(uint64_t conn_id);
  void OnClose(uint64_t conn_id, const Status& why);
  bool HandleHello(uint64_t conn_id, const ConnPtr& conn, const Frame& frame);
  /// Worker thread: drains one scheduled connection.
  void DriveConn(uint64_t conn_id, const ConnPtr& conn);
  /// Executes one non-EXECUTE request (query, pin, kill, stats, ...).
  std::string HandleRequest(uint64_t conn_id, const ConnPtr& conn,
                            const Frame& frame);
  std::string StatsReply() const;
  void SendError(uint64_t conn_id, const Status& status, bool close);
  /// Removes the session + conn map entries (worker or loop thread,
  /// whoever gets there after both "closed" and "not busy" hold).
  void ReapConn(uint64_t conn_id, const ConnPtr& conn);
  void ScheduleConn(uint64_t conn_id, const ConnPtr& conn);

  sopr::server::SessionManager* const manager_;
  const Options options_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<LoopHandler> handler_;

  mutable std::mutex mu_;  // guards conns_, ready_, counters
  std::condition_variable work_cv_;
  std::unordered_map<uint64_t, ConnPtr> conns_;
  std::deque<uint64_t> ready_;
  std::once_flag shutdown_once_;
  bool shutdown_ = false;
  uint64_t dispatch_protocol_errors_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace net
}  // namespace sopr

#endif  // SOPR_NET_SERVER_H_
