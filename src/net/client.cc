#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sopr {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + options.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }

  auto client = std::unique_ptr<Client>(new Client(fd));
  PayloadWriter hello;
  hello.U32(kProtocolVersion);
  hello.Str(options.client_name);
  auto reply = client->RoundTrip(FrameType::kHello, hello.bytes());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kHelloOk) {
    // Handshake refusal (session limit, version mismatch): hand the
    // server's structured error up; retry_after_ms_ is already stashed,
    // but the Client itself is dead — the server closed after sending.
    Status refused = client->ErrorFrom(reply.value());
    uint32_t hint = client->retry_after_ms_;
    if (hint != 0 && refused.message().find("retry-after-ms=") ==
                         std::string::npos) {
      refused = Status(refused.code(), refused.message() +
                                           " retry-after-ms=" +
                                           std::to_string(hint));
    }
    return refused;
  }
  PayloadReader reader(reply.value().payload);
  auto version = reader.U32();
  auto sid = version.ok() ? reader.U64() : Result<uint64_t>(version.status());
  if (!sid.ok()) return sid.status();
  client->session_id_ = sid.value();
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::Close() {
  if (fd_ < 0) return;
  (void)SendFrame(FrameType::kGoodbye, std::string_view());
  // Wait for the server's close so in-flight responses drain: read until
  // EOF, discarding frames.
  char buf[4096];
  while (::read(fd_, buf, sizeof(buf)) > 0) {
  }
  ::close(fd_);
  fd_ = -1;
}

void Client::Abort() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Unavailable("client closed");
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed the connection mid-send must
    // surface as an EPIPE Status, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendFrame(FrameType type, std::string_view payload) {
  return SendRaw(EncodeFrame(type, payload));
}

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::Unavailable("client closed");
  while (true) {
    auto next = decoder_.Next();
    if (!next.ok()) return next.status();
    if (next.value().has_value()) return std::move(*next.value());
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<Frame> Client::RoundTrip(FrameType type, std::string_view payload) {
  Status sent = SendFrame(type, payload);
  if (!sent.ok()) return sent;
  return ReadFrame();
}

Status Client::ErrorFrom(const Frame& frame) {
  if (frame.type == FrameType::kError) {
    uint32_t hint = 0;
    Status status = DecodeError(frame.payload, &hint);
    retry_after_ms_ = hint;
    return status;
  }
  return Status::Internal(
      "unexpected response frame type " +
      std::to_string(static_cast<unsigned>(frame.type)));
}

Result<uint64_t> Client::Execute(const std::string& sql) {
  PayloadWriter w;
  w.Str(sql);
  auto reply = RoundTrip(FrameType::kExecute, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kOk) return ErrorFrom(reply.value());
  PayloadReader reader(reply.value().payload);
  return reader.U64();
}

Result<std::vector<Client::ExecOutcome>> Client::ExecutePipelined(
    const std::vector<std::string>& scripts) {
  // Write every request before reading anything — that burst is what the
  // server coalesces into one staged run / one group-commit cohort.
  std::string burst;
  for (const std::string& sql : scripts) {
    PayloadWriter w;
    w.Str(sql);
    AppendFrame(FrameType::kExecute, w.bytes(), &burst);
  }
  Status sent = SendRaw(burst);
  if (!sent.ok()) return sent;

  std::vector<ExecOutcome> outcomes;
  outcomes.reserve(scripts.size());
  for (size_t i = 0; i < scripts.size(); ++i) {
    auto reply = ReadFrame();
    if (!reply.ok()) return reply.status();
    ExecOutcome outcome;
    if (reply.value().type == FrameType::kOk) {
      PayloadReader reader(reply.value().payload);
      auto lsn = reader.U64();
      if (!lsn.ok()) return lsn.status();
      outcome.commit_lsn = lsn.value();
    } else {
      outcome.status = ErrorFrom(reply.value());
      if (outcome.status.ok()) {
        return Status::Internal("kError frame decoded to an OK status");
      }
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

Result<QueryResult> Client::Query(const std::string& sql) {
  PayloadWriter w;
  w.Str(sql);
  auto reply = RoundTrip(FrameType::kQuery, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kRows) return ErrorFrom(reply.value());
  PayloadReader reader(reply.value().payload);
  return reader.GetResult();
}

Result<uint64_t> Client::Pin() {
  auto reply = RoundTrip(FrameType::kPin, std::string_view());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kOk) return ErrorFrom(reply.value());
  PayloadReader reader(reply.value().payload);
  auto commit_lsn = reader.U64();
  if (!commit_lsn.ok()) return commit_lsn.status();
  return reader.U64();  // the pin LSN rides in the second slot
}

Result<QueryResult> Client::QueryAt(const std::string& sql) {
  PayloadWriter w;
  w.Str(sql);
  auto reply = RoundTrip(FrameType::kQueryAt, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kRows) return ErrorFrom(reply.value());
  PayloadReader reader(reply.value().payload);
  return reader.GetResult();
}

Status Client::Unpin() {
  auto reply = RoundTrip(FrameType::kUnpin, std::string_view());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kOk) return ErrorFrom(reply.value());
  return Status::OK();
}

Status Client::Kill(uint64_t session_id, const std::string& reason) {
  PayloadWriter w;
  w.U64(session_id);
  w.Str(reason);
  auto reply = RoundTrip(FrameType::kKill, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kOk) return ErrorFrom(reply.value());
  return Status::OK();
}

Result<WireStats> Client::Stats() {
  auto reply = RoundTrip(FrameType::kStats, std::string_view());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kStatsReply) {
    return ErrorFrom(reply.value());
  }
  return DecodeStats(reply.value().payload);
}

Status Client::Ping() {
  auto reply = RoundTrip(FrameType::kPing, std::string_view());
  if (!reply.ok()) return reply.status();
  if (reply.value().type != FrameType::kPong) return ErrorFrom(reply.value());
  return Status::OK();
}

}  // namespace net
}  // namespace sopr
