#include "net/frame.h"

#include <bit>
#include <cstring>

namespace sopr {
namespace net {

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kGoodbye);
}

// --- PayloadWriter --------------------------------------------------------

void PayloadWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PayloadWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PayloadWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void PayloadWriter::Val(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      U8(0);
      break;
    case ValueType::kBool:
      U8(1);
      U8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      U8(2);
      U64(static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble:
      U8(3);
      U64(std::bit_cast<uint64_t>(v.AsDouble()));
      break;
    case ValueType::kString:
      U8(4);
      Str(v.AsString());
      break;
  }
}

void PayloadWriter::PutRow(const Row& row) {
  U32(static_cast<uint32_t>(row.size()));
  for (size_t i = 0; i < row.size(); ++i) Val(row.at(i));
}

void PayloadWriter::PutResult(const QueryResult& result) {
  U32(static_cast<uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) Str(c);
  U32(static_cast<uint32_t>(result.rows.size()));
  for (const Row& r : result.rows) PutRow(r);
}

// --- PayloadReader --------------------------------------------------------

Status PayloadReader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument(
        "truncated payload: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + " of " + std::to_string(data_.size()));
  }
  return Status::OK();
}

Result<uint8_t> PayloadReader::U8() {
  SOPR_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> PayloadReader::U32() {
  SOPR_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::U64() {
  SOPR_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::string> PayloadReader::Str() {
  SOPR_ASSIGN_OR_RETURN(uint32_t len, U32());
  SOPR_RETURN_NOT_OK(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> PayloadReader::Val() {
  SOPR_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      SOPR_ASSIGN_OR_RETURN(uint8_t b, U8());
      return Value::Bool(b != 0);
    }
    case 2: {
      SOPR_ASSIGN_OR_RETURN(uint64_t v, U64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case 3: {
      SOPR_ASSIGN_OR_RETURN(uint64_t v, U64());
      return Value::Double(std::bit_cast<double>(v));
    }
    case 4: {
      SOPR_ASSIGN_OR_RETURN(std::string s, Str());
      return Value::String(std::move(s));
    }
    default:
      return Status::InvalidArgument("unknown value tag " +
                                     std::to_string(tag));
  }
}

Result<Row> PayloadReader::GetRow() {
  SOPR_ASSIGN_OR_RETURN(uint32_t n, U32());
  // A row is at least one byte per value on the wire; a declared count
  // beyond the remaining bytes is malformed, not an allocation request.
  if (n > remaining()) {
    return Status::InvalidArgument("row declares " + std::to_string(n) +
                                   " values but only " +
                                   std::to_string(remaining()) +
                                   " payload bytes remain");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SOPR_ASSIGN_OR_RETURN(Value v, Val());
    values.push_back(std::move(v));
  }
  return Row(std::move(values));
}

Result<QueryResult> PayloadReader::GetResult() {
  QueryResult result;
  SOPR_ASSIGN_OR_RETURN(uint32_t ncols, U32());
  if (ncols > remaining()) {
    return Status::InvalidArgument("result declares " +
                                   std::to_string(ncols) + " columns");
  }
  result.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    SOPR_ASSIGN_OR_RETURN(std::string c, Str());
    result.columns.push_back(std::move(c));
  }
  SOPR_ASSIGN_OR_RETURN(uint32_t nrows, U32());
  if (nrows > remaining()) {
    return Status::InvalidArgument("result declares " +
                                   std::to_string(nrows) + " rows");
  }
  result.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    SOPR_ASSIGN_OR_RETURN(Row r, GetRow());
    result.rows.push_back(std::move(r));
  }
  return result;
}

// --- Frame encode / decode ------------------------------------------------

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
}

Result<std::optional<Frame>> FrameDecoder::Next(size_t max_payload) {
  if (buffer_.size() < kFrameHeaderBytes) return std::optional<Frame>();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buffer_[i])) << (8 * i);
  }
  if (len > max_payload) {
    return Status::InvalidArgument(
        "oversized frame: declared payload " + std::to_string(len) +
        " bytes exceeds the limit of " + std::to_string(max_payload));
  }
  if (buffer_.size() < kFrameHeaderBytes + len) return std::optional<Frame>();
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(buffer_[4]));
  frame.payload = buffer_.substr(kFrameHeaderBytes, len);
  buffer_.erase(0, kFrameHeaderBytes + len);
  return std::optional<Frame>(std::move(frame));
}

// --- Typed payload helpers ------------------------------------------------

std::string EncodeError(const Status& status, uint32_t retry_after_ms) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.U32(retry_after_ms);
  w.Str(status.message());
  return w.Take();
}

Status DecodeError(std::string_view payload, uint32_t* retry_after_ms) {
  PayloadReader r(payload);
  auto code = r.U8();
  auto retry = r.U32();
  auto message = r.Str();
  if (!code.ok() || !retry.ok() || !message.ok()) {
    return Status::Internal("malformed error frame from server");
  }
  if (retry_after_ms != nullptr) *retry_after_ms = retry.value();
  uint8_t c = code.value();
  if (c > static_cast<uint8_t>(StatusCode::kInternal)) {
    c = static_cast<uint8_t>(StatusCode::kInternal);
  }
  return Status(static_cast<StatusCode>(c), std::move(message).value());
}

uint32_t ParseRetryAfterMs(const std::string& message) {
  static constexpr char kKey[] = "retry-after-ms=";
  const size_t pos = message.find(kKey);
  if (pos == std::string::npos) return 0;
  uint64_t ms = 0;
  size_t i = pos + sizeof(kKey) - 1;
  bool any = false;
  while (i < message.size() && message[i] >= '0' && message[i] <= '9') {
    ms = ms * 10 + static_cast<uint64_t>(message[i] - '0');
    if (ms > 0xffffffffull) return 0xffffffffu;
    ++i;
    any = true;
  }
  return any ? static_cast<uint32_t>(ms) : 0;
}

std::string EncodeStats(const WireStats& stats) {
  PayloadWriter w;
  w.U64(stats.num_sessions);
  w.U64(stats.max_sessions);
  w.U64(stats.admitted);
  w.U64(stats.shed_queue_full);
  w.U64(stats.shed_queue_deadline);
  w.U64(stats.shed_cancelled);
  w.U64(stats.admission_inflight);
  w.U64(stats.admission_queued);
  w.U64(stats.group_commit.cohorts);
  w.U64(stats.group_commit.batches);
  w.U64(stats.group_commit.largest_cohort);
  w.U32(static_cast<uint32_t>(stats.group_commit.cohort_size_hist.size()));
  for (uint64_t bucket : stats.group_commit.cohort_size_hist) w.U64(bucket);
  w.U64(stats.connections_accepted);
  w.U64(stats.connections_active);
  w.U64(stats.protocol_errors);
  w.U32(static_cast<uint32_t>(stats.sessions.size()));
  for (const WireStats::SessionStats& s : stats.sessions) {
    w.U64(s.id);
    w.U64(s.commits);
    w.U64(s.aborts);
    w.U64(s.statements);
    w.U64(s.inflight_statements);
    w.U8(s.killed ? 1 : 0);
  }
  return w.Take();
}

Result<WireStats> DecodeStats(std::string_view payload) {
  PayloadReader r(payload);
  WireStats s;
  SOPR_ASSIGN_OR_RETURN(s.num_sessions, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.max_sessions, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.admitted, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.shed_queue_full, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.shed_queue_deadline, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.shed_cancelled, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.admission_inflight, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.admission_queued, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.group_commit.cohorts, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.group_commit.batches, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.group_commit.largest_cohort, r.U64());
  SOPR_ASSIGN_OR_RETURN(uint32_t hist_len, r.U32());
  for (uint32_t i = 0; i < hist_len; ++i) {
    SOPR_ASSIGN_OR_RETURN(uint64_t bucket, r.U64());
    if (i < s.group_commit.cohort_size_hist.size()) {
      s.group_commit.cohort_size_hist[i] = bucket;
    }
  }
  SOPR_ASSIGN_OR_RETURN(s.connections_accepted, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.connections_active, r.U64());
  SOPR_ASSIGN_OR_RETURN(s.protocol_errors, r.U64());
  SOPR_ASSIGN_OR_RETURN(uint32_t nsessions, r.U32());
  if (nsessions > r.remaining()) {
    return Status::InvalidArgument("stats payload declares " +
                                   std::to_string(nsessions) + " sessions");
  }
  s.sessions.reserve(nsessions);
  for (uint32_t i = 0; i < nsessions; ++i) {
    WireStats::SessionStats e;
    SOPR_ASSIGN_OR_RETURN(e.id, r.U64());
    SOPR_ASSIGN_OR_RETURN(e.commits, r.U64());
    SOPR_ASSIGN_OR_RETURN(e.aborts, r.U64());
    SOPR_ASSIGN_OR_RETURN(e.statements, r.U64());
    SOPR_ASSIGN_OR_RETURN(e.inflight_statements, r.U64());
    SOPR_ASSIGN_OR_RETURN(uint8_t killed, r.U8());
    e.killed = killed != 0;
    s.sessions.push_back(e);
  }
  return s;
}

}  // namespace net
}  // namespace sopr
