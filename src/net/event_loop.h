#ifndef SOPR_NET_EVENT_LOOP_H_
#define SOPR_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/frame.h"

namespace sopr {
namespace net {

/// Single-threaded epoll reactor (docs/NETWORK.md): owns the listening
/// socket, every connection fd, and their input/output buffers. All
/// socket I/O happens on the loop thread; workers interact with it only
/// through the thread-safe Send / CloseConnection / SetReadPaused
/// entry points, which enqueue control operations and wake the loop via
/// an eventfd.
///
/// Responsibilities split (vs net::Server): the loop knows bytes and
/// frames — nonblocking accept, edge-level read, incremental frame
/// decoding, write flushing with backpressure, teardown. It knows
/// nothing of sessions or SQL; every decoded frame is handed to the
/// Handler (on the loop thread — handlers must not block; the Server's
/// handler only queues work for its worker pool).
class EventLoop {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; see EventLoop::port()
    int listen_backlog = 511;
    size_t max_frame_payload = kMaxPayloadBytes;
    /// Write backpressure: above the high watermark the loop stops
    /// READING from the connection (a client that does not drain its
    /// responses eventually blocks in its own send path — TCP's own
    /// flow control, surfaced). Reading resumes below half the mark.
    size_t output_high_watermark = 4u << 20;
    /// A connection whose output buffer exceeds the hard cap is dropped:
    /// it has stopped reading entirely and the buffer would otherwise
    /// grow without bound.
    size_t output_hard_cap = 64u << 20;
  };

  struct Handler {
    virtual ~Handler() = default;
    /// A new connection completed accept. Loop thread.
    virtual void OnOpen(uint64_t conn_id) = 0;
    /// One decoded frame. Loop thread — must not block. Returns false to
    /// pause reading (dispatch backpressure): the loop stops decoding
    /// immediately — before the next buffered frame — and reads no more
    /// bytes until SetReadPaused(id, false), so the dispatch queue never
    /// overshoots its bound by more than the frame just delivered.
    virtual bool OnFrame(uint64_t conn_id, Frame frame) = 0;
    /// The connection is gone (peer closed, I/O error, protocol error,
    /// server-initiated close). Last callback for this id; `why` is OK
    /// for an orderly close.
    virtual void OnClose(uint64_t conn_id, const Status& why) = 0;
  };

  /// Binds and listens (no thread yet — Start()). The bound port is
  /// available immediately, so tests can Listen on port 0 and connect
  /// to port() after Start.
  static Result<std::unique_ptr<EventLoop>> Listen(const Options& options,
                                                   Handler* handler);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void Start();
  /// Stops the loop thread and closes every connection (emitting OnClose
  /// for each). Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  // --- Thread-safe entry points (any thread) ---

  /// Queues response bytes for `conn_id` and wakes the loop to flush.
  /// Silently drops if the connection is already gone (the client that
  /// would have read the response no longer exists).
  void Send(uint64_t conn_id, std::string bytes);
  /// Closes `conn_id`. With `after_flush`, pending output is written
  /// first (the orderly kGoodbye / handshake-refusal path); otherwise
  /// the close is immediate.
  void CloseConnection(uint64_t conn_id, bool after_flush);
  /// Input backpressure for the dispatch layer: while paused, the loop
  /// keeps watching for peer close (EPOLLRDHUP) but reads no more
  /// request bytes from this connection.
  void SetReadPaused(uint64_t conn_id, bool paused);

  struct Counters {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t protocol_errors = 0;
    uint64_t accept_failures = 0;  // incl. injected net.accept faults
    size_t active = 0;
  };
  Counters counters() const;

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    std::string output;
    bool read_paused = false;       // dispatch-layer backpressure
    bool output_paused_read = false;  // output watermark backpressure
    bool close_after_flush = false;
    bool want_write = false;  // EPOLLOUT currently registered
  };

  EventLoop(Options options, Handler* handler, int listen_fd, int epoll_fd,
            int wake_fd, uint16_t port);
  void Run();
  void HandleControlOps();
  void AcceptReady();
  void ReadReady(uint64_t conn_id, Conn* conn);
  /// Dispatches every complete frame in the decode buffer, honoring the
  /// handler's pause signal between frames. Returns false when the
  /// connection was torn down or is closing (conn must not be touched).
  bool DrainDecoder(uint64_t conn_id, Conn* conn);
  void WriteReady(uint64_t conn_id, Conn* conn);
  /// Recomputes the epoll interest set from the Conn flags.
  void UpdateInterest(uint64_t conn_id, Conn* conn);
  void Teardown(uint64_t conn_id, const Status& why);
  void Wake();

  const Options options_;
  Handler* const handler_;
  const int listen_fd_;
  const int epoll_fd_;
  const int wake_fd_;
  const uint16_t port_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Connections live on the loop thread only.
  std::unordered_map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 1;

  /// Cross-thread mailbox: (conn_id, op). Bytes to send, closes, pause
  /// toggles. Drained by the loop thread on wakeup.
  struct ControlOp {
    enum Kind { kSend, kClose, kCloseAfterFlush, kPause, kResume } kind;
    uint64_t conn_id;
    std::string bytes;
  };
  mutable std::mutex mu_;
  std::deque<ControlOp> control_;
  Counters counters_;  // guarded by mu_ (written by loop, read by any)
};

}  // namespace net
}  // namespace sopr

#endif  // SOPR_NET_EVENT_LOOP_H_
