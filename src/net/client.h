#ifndef SOPR_NET_CLIENT_H_
#define SOPR_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.h"

namespace sopr {
namespace net {

/// Blocking client for the wire protocol (docs/NETWORK.md) — the library
/// behind examples/sopr_client, the network tests, and bench_network.
///
/// One Client is one connection is one server-side session: Connect()
/// performs the kHello handshake (so a max_sessions refusal surfaces as
/// Connect's error, retry hint included), and the session dies with the
/// socket. Not thread-safe — a connection is a single-threaded handle on
/// both ends of the wire.
class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string client_name = "sopr-client";
  };

  /// Connects and completes the handshake. A server-side session-limit
  /// refusal returns the structured kResourceExhausted error here; its
  /// retry-after hint is in retry_after_ms().
  static Result<std::unique_ptr<Client>> Connect(const Options& options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  uint64_t session_id() const { return session_id_; }

  /// Executes one autocommit script; returns its commit LSN (0 for reads
  /// and DDL). A kError response decodes back into the server's Status.
  Result<uint64_t> Execute(const std::string& sql);

  struct ExecOutcome {
    Status status;
    uint64_t commit_lsn = 0;
  };
  /// Pipelines all scripts before reading any response: the server sees
  /// them back-to-back, batches them into one ExecutePipelined run, and
  /// their commits share a group-commit cohort. Returns one outcome per
  /// script, in order; fails as a whole only on transport errors.
  Result<std::vector<ExecOutcome>> ExecutePipelined(
      const std::vector<std::string>& scripts);

  /// Snapshot read (kQuery).
  Result<QueryResult> Query(const std::string& sql);

  /// Pins a server-side snapshot for this connection; returns its LSN.
  /// Subsequent QueryAt calls read that frozen state until Unpin.
  Result<uint64_t> Pin();
  Result<QueryResult> QueryAt(const std::string& sql);
  Status Unpin();

  /// Kills a session by id (0 = this connection's own session).
  Status Kill(uint64_t session_id, const std::string& reason);

  Result<WireStats> Stats();
  Status Ping();

  /// Orderly goodbye: the server flushes pending responses, then closes.
  /// The socket is closed locally afterwards; the Client is done.
  void Close();
  /// Drops the socket with no goodbye — the mid-statement-disconnect
  /// path tests and chaos use.
  void Abort();

  bool connected() const { return fd_ >= 0; }
  /// Retry-after hint (ms) carried by the most recent kError response;
  /// 0 when the last error had none.
  uint32_t retry_after_ms() const { return retry_after_ms_; }

  // --- Low-level access (tests that speak raw protocol) ---

  /// Writes one frame; does not read a response.
  Status SendFrame(FrameType type, std::string_view payload);
  /// Writes pre-encoded bytes verbatim (malformed-frame tests).
  Status SendRaw(std::string_view bytes);
  /// Blocks until one complete frame arrives (or the peer closes —
  /// kUnavailable).
  Result<Frame> ReadFrame();

 private:
  explicit Client(int fd) : fd_(fd) {}
  /// One request frame, one response frame.
  Result<Frame> RoundTrip(FrameType type, std::string_view payload);
  /// Decodes a kError response into its Status (stashing the hint);
  /// kInternal for unexpected response types.
  Status ErrorFrom(const Frame& frame);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint32_t retry_after_ms_ = 0;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace sopr

#endif  // SOPR_NET_CLIENT_H_
