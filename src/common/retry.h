#ifndef SOPR_COMMON_RETRY_H_
#define SOPR_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <random>

#include "common/status.h"

namespace sopr {

/// Bounded exponential backoff with jitter, for retrying transient
/// (kUnavailable) failures — a stalled replication primary, a torn WAL
/// tail that has not been completed yet, a mid-rotation log.
///
/// The delay for attempt k is
///   min(initial * multiplier^k, max_delay) * (1 - jitter + U[0, 2*jitter))
/// i.e. a uniformly jittered exponential, capped. Jitter decorrelates
/// pollers that woke on the same event so they do not stampede the
/// primary's filesystem in lockstep.
struct RetryPolicy {
  std::chrono::microseconds initial_delay{std::chrono::microseconds(200)};
  std::chrono::microseconds max_delay{std::chrono::milliseconds(50)};
  double multiplier = 2.0;
  /// Fraction of the nominal delay randomized in each direction; 0.2
  /// means the actual delay is nominal * [0.8, 1.2). Must be in [0, 1].
  double jitter = 0.2;
  /// Attempts before giving up (0 = retry forever). An "attempt" is one
  /// failed try; NextDelay() counts them.
  uint64_t max_attempts = 0;
};

class Backoff {
 public:
  /// `seed` feeds the jitter PRNG; a fixed seed makes delay sequences
  /// reproducible in tests.
  explicit Backoff(RetryPolicy policy, uint64_t seed = 0x5eed);

  /// Delay to sleep before the next retry, advancing the schedule.
  /// Returns a zero duration when max_attempts is exhausted (callers
  /// should then surface the last failure instead of sleeping).
  std::chrono::microseconds NextDelay();

  /// NextDelay() + a cancellation-aware sleep (common/cancel.h): the
  /// sleep is clipped to the ambient deadline and cut short by a kill,
  /// returning that failure — so a detached-rule retry can never sleep
  /// past its transaction's budget. OK when the delay fully elapsed.
  Status Sleep(const char* where);

  /// True while another attempt is allowed under max_attempts.
  bool ShouldRetry() const;

  void Reset();

  uint64_t attempts() const { return attempts_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  std::mt19937_64 rng_;
  uint64_t attempts_ = 0;
  double current_us_;
};

/// Runs `fn` until it returns a status that is OK or non-retryable
/// (anything but kUnavailable), sleeping `backoff` delays between
/// attempts. Returns the last status when attempts run out.
Status RetryWithBackoff(Backoff* backoff, const std::function<Status()>& fn);

}  // namespace sopr

#endif  // SOPR_COMMON_RETRY_H_
