#include "common/status.h"

namespace sopr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCatalogError:
      return "CatalogError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kConstraintError:
      return "ConstraintError";
    case StatusCode::kRolledBack:
      return "RolledBack";
    case StatusCode::kLimitExceeded:
      return "LimitExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInjectedFault:
      return "InjectedFault";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kLockTimeout:
      return "LockTimeout";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kReadOnlyReplica:
      return "ReadOnlyReplica";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sopr
