#ifndef SOPR_COMMON_FAILPOINT_H_
#define SOPR_COMMON_FAILPOINT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sopr {

/// Fault-injection registry in the style of RocksDB's SyncPoint / the Rust
/// `fail` crate. Code under test is instrumented with named sites:
///
///   SOPR_FAILPOINT_RETURN("storage.insert.pre");
///
/// A site is inert until a trigger is armed for its name, either
/// programmatically (FailpointRegistry::Instance().Arm(...)) or via the
/// environment variable SOPR_FAILPOINTS (parsed once, lazily, on the first
/// hit of any site — intended for CI):
///
///   SOPR_FAILPOINTS="storage.insert.pre=nth:3;rules.action.post=every:5"
///
/// Spec grammar (sites separated by ';' or ','):
///   site=off          disarm
///   site=always       fail on every hit
///   site=once         fail on the first hit only
///   site=nth:N        fail on the Nth hit (1-based) only
///   site=every:K      fail on every Kth hit
/// An optional '@code' suffix selects the injected StatusCode by name,
/// e.g. "storage.insert.pre=once@ResourceExhausted" (default InjectedFault).
/// The special code '@Crash' kills the process with _Exit(42) at the
/// firing site instead of returning a Status — the crash-recovery harness
/// uses it to simulate power loss at exact code locations.
///
/// Compiling with -DSOPR_FAILPOINTS_DISABLED turns every site into a
/// constant-OK no-op with zero runtime cost. When enabled, an unarmed
/// registry costs one relaxed atomic load per site hit.
/// Exit code of a process killed by a '@Crash' failpoint (distinct from
/// common test-runner and sanitizer exit codes so harnesses can tell an
/// intentional simulated crash from an accidental death).
inline constexpr int kFailpointCrashExitCode = 42;

class FailpointRegistry {
 public:
  enum class Mode { kOff, kAlways, kOnce, kNth, kEveryK };

  struct Trigger {
    Mode mode = Mode::kOff;
    uint64_t n = 1;  // N for kNth, K for kEveryK
    StatusCode code = StatusCode::kInjectedFault;
    /// When true, a firing site calls _Exit(kFailpointCrashExitCode)
    /// instead of returning a Status: a simulated process crash.
    bool crash = false;
  };

  static FailpointRegistry& Instance();

  /// RAII guard: while alive on this thread, armed sites do not fire (and
  /// suppressed hits are not counted). Used by recovery paths — rollback
  /// replays the undo log through the same Table mutation code the sites
  /// instrument, and a rollback that can fail would leave a third state
  /// between "committed" and "restored to S0".
  class SuppressScope {
   public:
    SuppressScope() { ++suppress_depth(); }
    ~SuppressScope() { --suppress_depth(); }
    SuppressScope(const SuppressScope&) = delete;
    SuppressScope& operator=(const SuppressScope&) = delete;
  };

  /// Arms (or re-arms) a site. Resets the site's hit counter.
  void Arm(const std::string& site, Trigger trigger);
  void Disarm(const std::string& site);
  /// Disarms everything and resets all counters (test isolation).
  void DisarmAll();

  /// Parses and applies a SOPR_FAILPOINTS-style spec string.
  Status ArmFromSpec(const std::string& spec);

  /// Parses and applies the SOPR_FAILPOINTS environment variable exactly
  /// once per process; every later call returns the recorded parse
  /// status. Site hits trigger it lazily (and ignore the status, so a
  /// malformed spec does not fail every instrumented operation); the
  /// Engine entry points check it so a malformed spec surfaces as a hard
  /// kInvalidArgument error at startup instead of being silently ignored.
  Status EnsureEnvArmed();

  /// Test hook: forget the recorded environment parse so the next
  /// EnsureEnvArmed() re-reads SOPR_FAILPOINTS.
  void ResetEnvForTest();

  /// --- Blocking sync points (deterministic concurrency schedules) ---
  /// Orthogonal to failure triggers: a site armed as blocking makes every
  /// thread that hits it WAIT (not fail) until Release. A test thread
  /// drives an exact interleaving with
  ///
  ///   ArmBlocking("rules.commit.pre");     // writer will park here
  ///   ... start the writer thread ...
  ///   WaitForBlocked("rules.commit.pre");  // writer is now mid-commit
  ///   ... probe state from another thread ...
  ///   Release("rules.commit.pre");         // writer proceeds
  ///
  /// No sleeps anywhere — the schedule is exact. SuppressScope bypasses
  /// blocks like it bypasses triggers. DisarmAll releases every blocked
  /// thread (test cleanup can't deadlock). Deliberately not reachable
  /// from the SOPR_FAILPOINTS env spec: an armed block with no releasing
  /// thread would wedge the process.
  void ArmBlocking(const std::string& site);
  /// Blocks the CALLER until at least `count` threads are parked at
  /// `site`.
  void WaitForBlocked(const std::string& site, uint64_t count = 1);
  /// Unparks every thread blocked at `site` and disarms the block.
  void Release(const std::string& site);

  /// Evaluates a hit at `site`; returns a non-OK Status when the armed
  /// trigger fires. Unarmed sites return OK via a lock-free fast path.
  Status Hit(const char* site);

  /// Times `site` was evaluated since it was last armed (0 if never
  /// armed; unarmed sites are not counted — the fast path skips them).
  uint64_t HitCount(const std::string& site) const;

  /// The static catalog of every site compiled into the engine, for chaos
  /// tests that must attack each one. Kept in failpoint.cc next to the
  /// instrumented code; a site string not in this list still works.
  static const std::vector<std::string>& KnownSites();

 private:
  FailpointRegistry() = default;

  struct SiteState {
    Trigger trigger;
    uint64_t hits = 0;
    bool fired_once = false;
    /// Blocking sync point state: while `block` is set, hitting threads
    /// park on cv_. `epoch` distinguishes arm generations so a parked
    /// thread never waits across a Release + re-arm.
    bool block = false;
    uint64_t blocked = 0;
    uint64_t epoch = 0;
  };

  Status HitSlow(const char* site);
  Status EnsureEnvArmedSlow();
  void ArmLocked(const std::string& site, Trigger trigger);
  void RecountArmedLocked();
  static Status ParseSpec(const std::string& spec,
                          std::vector<std::pair<std::string, Trigger>>* out);
  static int& suppress_depth();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, SiteState> sites_;
  std::atomic<int> armed_count_{0};
  std::atomic<bool> env_checked_{false};
  Status env_status_;  // guarded by mu_
};

#ifdef SOPR_FAILPOINTS_DISABLED
#define SOPR_FAILPOINT(site) ::sopr::Status::OK()
#else
#define SOPR_FAILPOINT(site) ::sopr::FailpointRegistry::Instance().Hit(site)
#endif

/// Propagates the injected failure out of the enclosing function.
#define SOPR_FAILPOINT_RETURN(site) SOPR_RETURN_NOT_OK(SOPR_FAILPOINT(site))

}  // namespace sopr

#endif  // SOPR_COMMON_FAILPOINT_H_
