#include "common/retry.h"

#include <algorithm>

#include "common/cancel.h"

namespace sopr {

Backoff::Backoff(RetryPolicy policy, uint64_t seed)
    : policy_(policy),
      rng_(seed),
      current_us_(static_cast<double>(policy.initial_delay.count())) {
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  policy_.multiplier = std::max(policy_.multiplier, 1.0);
}

bool Backoff::ShouldRetry() const {
  return policy_.max_attempts == 0 || attempts_ < policy_.max_attempts;
}

std::chrono::microseconds Backoff::NextDelay() {
  if (!ShouldRetry()) return std::chrono::microseconds(0);
  ++attempts_;
  const double max_us = static_cast<double>(policy_.max_delay.count());
  const double nominal = std::min(current_us_, max_us);
  current_us_ = std::min(current_us_ * policy_.multiplier, max_us);
  double factor = 1.0;
  if (policy_.jitter > 0.0) {
    std::uniform_real_distribution<double> u(1.0 - policy_.jitter,
                                             1.0 + policy_.jitter);
    factor = u(rng_);
  }
  return std::chrono::microseconds(
      static_cast<int64_t>(std::max(nominal * factor, 0.0)));
}

void Backoff::Reset() {
  attempts_ = 0;
  current_us_ = static_cast<double>(policy_.initial_delay.count());
}

Status Backoff::Sleep(const char* where) {
  return CancellableSleep(NextDelay(), where);
}

Status RetryWithBackoff(Backoff* backoff, const std::function<Status()>& fn) {
  for (;;) {
    Status attempt = fn();
    if (attempt.code() != StatusCode::kUnavailable) return attempt;
    if (!backoff->ShouldRetry()) return attempt;
    // A cancelled/expired budget beats the retry schedule: surface the
    // cancellation, not the transient failure being retried.
    SOPR_RETURN_NOT_OK(backoff->Sleep("retry backoff"));
  }
}

}  // namespace sopr
