#include "common/failpoint.h"

#include <cstdlib>

#include "common/string_util.h"

namespace sopr {

namespace {

/// Every failpoint site compiled into the engine, grouped by layer. Keep
/// in sync with the SOPR_FAILPOINT uses and docs/FAILURE_SEMANTICS.md.
const char* const kSiteCatalog[] = {
    // Database mutation paths (database.cc). `pre` fires before any state
    // change; `post` fires after the mutation and its undo record exist.
    "storage.insert.pre",
    "storage.insert.post",
    "storage.delete.pre",
    "storage.delete.post",
    "storage.update.pre",
    "storage.update.post",
    // Heap/index split points (table.cc). `mid` fires between the heap
    // mutation and index maintenance; the table must locally revert.
    "table.insert.mid",
    "table.erase.mid",
    "table.replace.mid",
    // Undo-log append (undo_log.cc): simulates log-space exhaustion. The
    // database must revert the just-applied mutation it cannot log.
    "undo.append",
    // Rule engine (rule_engine.cc).
    "rules.block.pre",
    "rules.block.post",
    "rules.action.pre",
    "rules.action.post",
    "rules.deferred.dispatch",
    "rules.commit.pre",
    // Facade (engine.cc).
    "engine.execute.pre",
    "engine.ddl.pre",
    // Concurrent front-end (server/): `submit.pre` fires as a session's
    // transaction enters the commit scheduler (before the single-writer
    // critical section); `session.create` before a new session is
    // admitted.
    "server.submit.pre",
    "server.session.create",
    // Record-level lock manager (storage/lock_manager.cc): `lock.acquire`
    // fires on entry to every table/record acquisition (an armed failure
    // aborts the statement cleanly — chaos uses it to seed lock-order
    // trouble); `lock.wait` (and the dynamic per-table "lock.wait.<t>")
    // fires when a request is about to block on a conflicting holder;
    // `lock.deadlock` fires as a victim aborts with kDeadlock.
    "lock.acquire",
    "lock.wait",
    "lock.deadlock",
    // `lock.wait.timeout` fires as a waiter gives up on a lock (deadline
    // or cancellation) — after its wait-for edges are removed, before the
    // kLockTimeout/kCancelled status propagates to the caller.
    "lock.wait.timeout",
    // Cancellation delivery (common/cancel.cc): fires at every
    // CheckCancel() point — rule-firing boundaries, scan batches,
    // cancellable sleeps. An armed failure models an asynchronous kill
    // arriving at exactly that check; the enclosing txn must abort to S0.
    "cancel.deliver",
    // Vectorized execution layer (query/executor.cc, src/exec/):
    // `exec.batch` fires at every batch boundary of the vectorized
    // pipeline (pushed filters, residual filters, DML predicate scans)
    // just before the boundary's cancellation check; `exec.hashjoin.build`
    // fires as a build/probe hash join is about to build its table. An
    // armed failure at either site aborts the statement mid-query; the
    // enclosing transaction must roll back to S0 (docs/EXECUTION.md).
    "exec.batch",
    "exec.hashjoin.build",
    // Writer admission control (server/admission.cc): fires as a writer
    // enters the admission queue, before any queueing decision. An armed
    // failure models an admission-layer shed (@code Overloaded in chaos);
    // the statement must fail without touching data.
    "server.admit.queue",
    // Write-ahead log (wal/wal_writer.cc). `wal.append` fires once per
    // record as a commit/DDL batch is encoded; `wal.write` before each
    // file write; `wal.write.mid` between the two halves of a batch write
    // (a @Crash here leaves a genuinely torn record on disk);
    // `wal.commit.pre` / `wal.commit.sync` bracket the group-commit
    // durability point; `wal.ddl.append` before a logical DDL record.
    "wal.append",
    "wal.write",
    "wal.write.mid",
    "wal.sync",
    "wal.commit.pre",
    "wal.commit.sync",
    "wal.ddl.append",
    // Group-commit pipeline (wal/wal_writer.cc): `lead` fires when a
    // thread takes cohort leadership (before the cohort's file write);
    // `sync` at the cohort durability point just before the leader's
    // single fsync. `wal.lock.acquire` fires before the wal-directory
    // LOCK file is flocked (wal/dir_lock.cc).
    "wal.group_commit.lead",
    "wal.group_commit.sync",
    "wal.lock.acquire",
    // Checkpointing (wal/checkpoint.cc): begin, snapshot write, snapshot
    // fsync, atomic install (rename), and post-install log truncation.
    "wal.checkpoint.begin",
    "wal.checkpoint.write",
    "wal.checkpoint.sync",
    "wal.checkpoint.install",
    "wal.checkpoint.truncate",
    // Recovery (wal/recovery.cc): startup, each replayed record/DDL, and
    // the torn-tail truncation step.
    "wal.recover.begin",
    "wal.recover.replay",
    "wal.recover.truncate",
    // Replication (src/replication/, docs/REPLICATION.md). `tail.read`
    // fires before each tailer read of the primary's wal.log (an armed
    // failure models a short read / EINTR storm and surfaces as
    // retryable kUnavailable); `tail.apply` before a replicated group or
    // DDL record is applied on the follower; `bootstrap.load` before the
    // follower replays the primary's checkpoint (models a checkpoint
    // read failing mid-rotation). The promote.* sites bracket failover:
    // `begin` on entry, `truncate` before the newly-owned log's torn
    // tail is cut, `attach` between truncation and opening the writer —
    // @Crash at any of them must leave a directory a plain Engine::Open
    // still recovers.
    "repl.tail.read",
    "repl.tail.apply",
    "repl.bootstrap.load",
    "repl.promote.begin",
    "repl.promote.truncate",
    "repl.promote.attach",
    // Network front-end (src/net/event_loop.cc, docs/NETWORK.md).
    // `net.accept` fires after a TCP accept succeeds but before the
    // connection is registered — an armed failure refuses it at the door
    // (clean close, engine untouched). `net.frame.decode` fires per
    // decoded frame; an armed failure is reported to the client as a
    // protocol error followed by an orderly close. `net.conn.write`
    // fires before each socket write; an armed failure models a dead
    // peer (EPIPE): the connection tears down and any in-flight
    // statement for it is cancelled.
    "net.accept",
    "net.frame.decode",
    "net.conn.write",
};

Status ParseMode(const std::string& text, FailpointRegistry::Trigger* out) {
  std::string mode = text;
  std::string arg;
  size_t colon = text.find(':');
  if (colon != std::string::npos) {
    mode = text.substr(0, colon);
    arg = text.substr(colon + 1);
  }
  if (mode == "off") {
    out->mode = FailpointRegistry::Mode::kOff;
  } else if (mode == "always") {
    out->mode = FailpointRegistry::Mode::kAlways;
  } else if (mode == "once") {
    out->mode = FailpointRegistry::Mode::kOnce;
  } else if (mode == "nth") {
    out->mode = FailpointRegistry::Mode::kNth;
  } else if (mode == "every") {
    out->mode = FailpointRegistry::Mode::kEveryK;
  } else {
    return Status::InvalidArgument("unknown failpoint mode: " + mode);
  }
  if (out->mode == FailpointRegistry::Mode::kNth ||
      out->mode == FailpointRegistry::Mode::kEveryK) {
    if (arg.empty()) {
      return Status::InvalidArgument("failpoint mode " + mode +
                                     " requires a numeric argument");
    }
    char* end = nullptr;
    unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n == 0) {
      return Status::InvalidArgument("bad failpoint argument: " + arg);
    }
    out->n = n;
  } else if (!arg.empty()) {
    return Status::InvalidArgument("failpoint mode " + mode +
                                   " takes no argument");
  }
  return Status::OK();
}

Status ParseCode(const std::string& name, FailpointRegistry::Trigger* out) {
  static const struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"InjectedFault", StatusCode::kInjectedFault},
      {"ResourceExhausted", StatusCode::kResourceExhausted},
      {"Timeout", StatusCode::kTimeout},
      {"Cancelled", StatusCode::kCancelled},
      {"LockTimeout", StatusCode::kLockTimeout},
      {"Overloaded", StatusCode::kOverloaded},
      {"Deadlock", StatusCode::kDeadlock},
      {"ExecutionError", StatusCode::kExecutionError},
      {"DataLoss", StatusCode::kDataLoss},
      {"IoError", StatusCode::kIoError},
      {"Internal", StatusCode::kInternal},
  };
  if (name == "Crash") {
    out->crash = true;
    return Status::OK();
  }
  for (const auto& entry : kCodes) {
    if (name == entry.name) {
      out->code = entry.code;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown failpoint status code: " + name);
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

const std::vector<std::string>& FailpointRegistry::KnownSites() {
  static const std::vector<std::string>* sites = [] {
    auto* v = new std::vector<std::string>();
    for (const char* site : kSiteCatalog) v->push_back(site);
    return v;
  }();
  return *sites;
}

void FailpointRegistry::Arm(const std::string& site, Trigger trigger) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmLocked(site, trigger);
}

void FailpointRegistry::ArmLocked(const std::string& site, Trigger trigger) {
  SiteState& state = sites_[site];
  state.trigger = trigger;
  state.hits = 0;
  state.fired_once = false;
  RecountArmedLocked();
}

void FailpointRegistry::RecountArmedLocked() {
  int armed = 0;
  for (const auto& [name, s] : sites_) {
    (void)name;
    // A blocking-only site must defeat the lock-free fast path too.
    if (s.trigger.mode != Mode::kOff || s.block) ++armed;
  }
  armed_count_.store(armed, std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& site) {
  Arm(site, Trigger{});
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
  // Any thread parked at a blocking site finds its site gone and
  // proceeds — cleanup can never deadlock a test.
  cv_.notify_all();
}

void FailpointRegistry::ArmBlocking(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.block = true;
  ++state.epoch;
  RecountArmedLocked();
}

void FailpointRegistry::WaitForBlocked(const std::string& site,
                                       uint64_t count) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    auto it = sites_.find(site);
    return it != sites_.end() && it->second.blocked >= count;
  });
}

void FailpointRegistry::Release(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.block = false;
  ++it->second.epoch;
  RecountArmedLocked();
  cv_.notify_all();
}

Status FailpointRegistry::ParseSpec(
    const std::string& spec,
    std::vector<std::pair<std::string, Trigger>>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry(Trim(spec.substr(pos, end - pos)));
    pos = end + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad failpoint spec (missing '='): " +
                                     entry);
    }
    std::string site(Trim(entry.substr(0, eq)));
    if (site.empty()) {
      return Status::InvalidArgument("bad failpoint spec (empty site): " +
                                     entry);
    }
    std::string rhs(Trim(entry.substr(eq + 1)));
    Trigger trigger;
    size_t at = rhs.find('@');
    if (at != std::string::npos) {
      SOPR_RETURN_NOT_OK(ParseCode(rhs.substr(at + 1), &trigger));
      rhs = rhs.substr(0, at);
    }
    SOPR_RETURN_NOT_OK(ParseMode(rhs, &trigger));
    out->emplace_back(std::move(site), trigger);
  }
  return Status::OK();
}

Status FailpointRegistry::ArmFromSpec(const std::string& spec) {
  std::vector<std::pair<std::string, Trigger>> entries;
  SOPR_RETURN_NOT_OK(ParseSpec(spec, &entries));
  for (const auto& [site, trigger] : entries) Arm(site, trigger);
  return Status::OK();
}

Status FailpointRegistry::Hit(const char* site) {
  // Environment arming happens exactly once, before the first site is
  // evaluated. The parse status is ignored *here* (a malformed spec must
  // not fail every instrumented operation) but recorded; the Engine
  // entry points surface it via EnsureEnvArmed().
  if (!env_checked_.load(std::memory_order_acquire)) {
    (void)EnsureEnvArmedSlow();
  }
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::OK();
  if (suppress_depth() > 0) return Status::OK();
  return HitSlow(site);
}

Status FailpointRegistry::EnsureEnvArmed() {
  if (!env_checked_.load(std::memory_order_acquire)) {
    return EnsureEnvArmedSlow();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return env_status_;
}

Status FailpointRegistry::EnsureEnvArmedSlow() {
  std::string spec;
  const char* env = std::getenv("SOPR_FAILPOINTS");
  if (env != nullptr) spec = env;
  std::lock_guard<std::mutex> lock(mu_);
  if (env_checked_.load(std::memory_order_relaxed)) return env_status_;
  env_status_ = Status::OK();
  if (!spec.empty()) {
    std::vector<std::pair<std::string, Trigger>> entries;
    Status parsed = ParseSpec(spec, &entries);
    if (parsed.ok()) {
      for (const auto& [site, trigger] : entries) ArmLocked(site, trigger);
    } else {
      env_status_ =
          Status(parsed.code(), "SOPR_FAILPOINTS: " + parsed.message());
    }
  }
  env_checked_.store(true, std::memory_order_release);
  return env_status_;
}

void FailpointRegistry::ResetEnvForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  env_checked_.store(false, std::memory_order_release);
  env_status_ = Status::OK();
}

int& FailpointRegistry::suppress_depth() {
  thread_local int depth = 0;
  return depth;
}

Status FailpointRegistry::HitSlow(const char* site) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  if (it->second.block) {
    // Park until Release (epoch guards against a release + re-arm race)
    // or until the site disappears entirely (DisarmAll during cleanup).
    ++it->second.blocked;
    const uint64_t epoch = it->second.epoch;
    cv_.notify_all();  // wake WaitForBlocked callers
    const std::string key(site);  // iterators invalidate across wait
    cv_.wait(lock, [&] {
      auto s = sites_.find(key);
      return s == sites_.end() || !s->second.block || s->second.epoch != epoch;
    });
    it = sites_.find(key);
    if (it == sites_.end()) return Status::OK();
    if (it->second.blocked > 0) --it->second.blocked;
    // Fall through: a failure trigger armed on the same site still
    // applies after the block lifts.
  }
  SiteState& state = it->second;
  if (state.trigger.mode == Mode::kOff) return Status::OK();
  ++state.hits;
  bool fire = false;
  switch (state.trigger.mode) {
    case Mode::kOff:
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kOnce:
      fire = !state.fired_once;
      state.fired_once = true;
      break;
    case Mode::kNth:
      fire = (state.hits == state.trigger.n);
      break;
    case Mode::kEveryK:
      fire = (state.hits % state.trigger.n == 0);
      break;
  }
  if (!fire) return Status::OK();
  if (state.trigger.crash) {
    // Simulated power loss: die without flushing buffers, running atexit
    // handlers, or unwinding — the closest a live process gets to a kill.
    std::_Exit(kFailpointCrashExitCode);
  }
  return Status(state.trigger.code,
                "failpoint " + std::string(site) + " fired (hit " +
                    std::to_string(state.hits) + ")");
}

uint64_t FailpointRegistry::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

}  // namespace sopr
