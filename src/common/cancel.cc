#include "common/cancel.h"

#include <algorithm>
#include <thread>

#include "common/failpoint.h"

namespace sopr {

void CancelToken::Cancel(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;  // first wins
    reason_ = std::move(reason);
  }
  cancelled_.store(true, std::memory_order_release);
}

std::string CancelToken::reason() const {
  if (!cancelled()) return "";
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

std::chrono::microseconds Deadline::Remaining() const {
  if (!has_) return std::chrono::microseconds::max();
  auto now = CancelClock::now();
  if (now >= at_) return std::chrono::microseconds(0);
  return std::chrono::duration_cast<std::chrono::microseconds>(at_ - now);
}

Deadline Deadline::Earlier(const Deadline& a, const Deadline& b) {
  if (!a.has_) return b;
  if (!b.has_) return a;
  return a.at_ <= b.at_ ? a : b;
}

CancelContext CancelContext::InheritAmbient() {
  const CancelContext* ambient = CancelScope::Current();
  return ambient != nullptr ? *ambient : CancelContext();
}

void CancelContext::AddToken(CancelTokenPtr token, std::string label) {
  if (token == nullptr) return;
  tokens_.push_back(TokenSource{std::move(token), std::move(label)});
}

void CancelContext::AddDeadline(Deadline deadline, std::string label) {
  if (!deadline.has_deadline()) return;
  deadlines_.push_back(DeadlineSource{deadline, std::move(label)});
}

Deadline CancelContext::deadline() const {
  Deadline earliest = Deadline::Never();
  for (const auto& src : deadlines_) {
    earliest = Deadline::Earlier(earliest, src.deadline);
  }
  return earliest;
}

Status CancelContext::Check(const char* where) const {
  for (const auto& src : tokens_) {
    if (src.token->cancelled()) {
      std::string reason = src.token->reason();
      return Status::Cancelled(src.label + " cancelled at " + where +
                               (reason.empty() ? "" : ": " + reason));
    }
  }
  for (const auto& src : deadlines_) {
    if (src.deadline.Expired()) {
      return Status::Timeout(src.label + " deadline exceeded at " +
                             std::string(where));
    }
  }
  return Status::OK();
}

namespace {

const CancelContext*& AmbientSlot() {
  thread_local const CancelContext* ambient = nullptr;
  return ambient;
}

}  // namespace

CancelScope::CancelScope(const CancelContext* ctx) : prev_(AmbientSlot()) {
  AmbientSlot() = ctx;
}

CancelScope::~CancelScope() { AmbientSlot() = prev_; }

const CancelContext* CancelScope::Current() { return AmbientSlot(); }

Status CheckCancel(const char* where) {
  SOPR_FAILPOINT_RETURN("cancel.deliver");
  const CancelContext* ctx = CancelScope::Current();
  if (ctx == nullptr) return Status::OK();
  return ctx->Check(where);
}

Status CancellableSleep(std::chrono::microseconds dur, const char* where) {
  const CancelContext* ctx = CancelScope::Current();
  if (ctx == nullptr || ctx->empty()) {
    std::this_thread::sleep_for(dur);
    return Status::OK();
  }
  const Deadline wake = Deadline::After(dur);
  for (;;) {
    SOPR_RETURN_NOT_OK(ctx->Check(where));
    // Sleep to the nearest of: requested wake-up, ambient deadline, and
    // (only when a token needs polling) the poll quantum.
    auto remaining = wake.Remaining();
    if (remaining <= std::chrono::microseconds(0)) return Status::OK();
    auto bound = std::min<std::chrono::microseconds>(
        remaining, ctx->deadline().Remaining());
    if (ctx->has_tokens()) {
      bound = std::min<std::chrono::microseconds>(
          bound, std::chrono::duration_cast<std::chrono::microseconds>(
                     kCancelPollQuantum));
    }
    if (bound > std::chrono::microseconds(0)) {
      std::this_thread::sleep_for(bound);
    }
  }
}

}  // namespace sopr
