#ifndef SOPR_COMMON_STRING_UTIL_H_
#define SOPR_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sopr {

/// ASCII lowercase copy (SQL identifiers and keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// True if `a` and `b` are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Join `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

}  // namespace sopr

#endif  // SOPR_COMMON_STRING_UTIL_H_
