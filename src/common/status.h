#ifndef SOPR_COMMON_STATUS_H_
#define SOPR_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sopr {

/// Error categories used across the engine. Mirrors the Status idiom of
/// Arrow/RocksDB: no exceptions cross API boundaries; every fallible
/// operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // SQL text could not be parsed
  kCatalogError,      // unknown/duplicate table, column, or rule
  kTypeError,         // expression typing violation
  kExecutionError,    // runtime evaluation failure (e.g. div by zero)
  kConstraintError,   // declarative constraint violation
  kRolledBack,        // a rule executed `rollback`; transaction undone
  kLimitExceeded,     // rule-cascade runaway guard tripped
  kResourceExhausted, // a resource budget (e.g. undo-log size) was exceeded
  kInjectedFault,     // a fault-injection site (failpoint) fired
  kTimeout,           // the per-transaction wall-clock deadline passed
  kCancelled,         // the session (or statement) was cancelled by a kill
  kLockTimeout,       // a lock wait exceeded its deadline; txn rolled back
  kOverloaded,        // writer admission shed this request; retry later
  kDeadlock,          // this transaction was the victim of a lock cycle
  kDataLoss,          // durable state is corrupt beyond safe recovery
  kIoError,           // the OS rejected a file operation (open/write/fsync)
  kUnavailable,       // transient condition (torn tail, stalled primary);
                      // retrying later may succeed
  kReadOnlyReplica,   // this node is a replication follower; writes must
                      // go to the primary (or wait for promotion)
  kNotImplemented,
  kInternal,
};

/// Human-readable name for a StatusCode (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a message. Cheap to move;
/// OK status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CatalogError(std::string msg) {
    return Status(StatusCode::kCatalogError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status ConstraintError(std::string msg) {
    return Status(StatusCode::kConstraintError, std::move(msg));
  }
  static Status RolledBack(std::string msg) {
    return Status(StatusCode::kRolledBack, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status InjectedFault(std::string msg) {
    return Status(StatusCode::kInjectedFault, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status LockTimeout(std::string msg) {
    return Status(StatusCode::kLockTimeout, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ReadOnlyReplica(std::string msg) {
    return Status(StatusCode::kReadOnlyReplica, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "ParseError: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Value-or-error, in the style of arrow::Result. The error message of a
/// failed Result is available via status().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status from the current function.
#define SOPR_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::sopr::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluate a Result-returning expression; on error propagate the Status,
/// otherwise bind the value to `lhs`.
#define SOPR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SOPR_CONCAT_(a, b) a##b
#define SOPR_CONCAT(a, b) SOPR_CONCAT_(a, b)

#define SOPR_ASSIGN_OR_RETURN(lhs, expr) \
  SOPR_ASSIGN_OR_RETURN_IMPL(SOPR_CONCAT(_sopr_result_, __LINE__), lhs, expr)

}  // namespace sopr

#endif  // SOPR_COMMON_STATUS_H_
