#ifndef SOPR_COMMON_DIGEST_H_
#define SOPR_COMMON_DIGEST_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sopr {
namespace digest {

/// FNV-1a streaming hash plus a splitmix64 avalanche, shared by the
/// state-checksum machinery (Database::Checksum, the rule-set digest, the
/// WAL recovery certification). Per-entry hashes are finalized and then
/// *summed*, which makes the combined digest order-independent; the
/// avalanche keeps structured per-entry differences from cancelling.

inline constexpr uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t Mix(uint64_t h, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t MixU64(uint64_t h, uint64_t v) { return Mix(h, &v, sizeof(v)); }

inline uint64_t MixString(uint64_t h, std::string_view s) {
  h = MixU64(h, s.size());
  return Mix(h, s.data(), s.size());
}

/// Final avalanche (splitmix64).
inline uint64_t Finalize(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Order-sensitive combination of two finalized digests (used to fold the
/// database and rule-set checksums into one engine-state checksum).
inline uint64_t Combine(uint64_t a, uint64_t b) {
  return Finalize(MixU64(MixU64(kFnvOffset, a), b));
}

}  // namespace digest
}  // namespace sopr

#endif  // SOPR_COMMON_DIGEST_H_
