#ifndef SOPR_COMMON_CANCEL_H_
#define SOPR_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sopr {

/// Cooperative cancellation and deadlines (docs/OVERLOAD.md). The paper's
/// set-oriented semantics make a single statement arbitrarily expensive —
/// one UPDATE can cascade through rule firings and detached transactions —
/// so every layer that can block or loop checks an ambient CancelContext:
/// rule-firing boundaries, scan-loop batches, lock waits, WAL durability
/// waits, and retry sleeps. Cancellation is cooperative: nothing is torn
/// down asynchronously; the working thread notices at its next check and
/// aborts through the normal structural-rollback path.

/// The engine's deadline clock. Monotone: immune to NTP steps and
/// clock_settime, so a deadline can never jump backwards into the past
/// (or rescue an expired one).
using CancelClock = std::chrono::steady_clock;

/// Sticky one-way kill switch, shared (via shared_ptr) between the
/// cancelling thread — e.g. an operator calling Session::Cancel from
/// another thread — and the worker that polls it. Once fired it stays
/// fired; there is no "uncancel".
class CancelToken {
 public:
  /// Trips the token. The first caller's reason wins; later calls are
  /// no-ops. Safe from any thread.
  void Cancel(std::string reason);

  /// Lock-free fast path for poll sites.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Reason from the winning Cancel() call ("" while not cancelled).
  std::string reason() const;

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;  // guarded by mu_; written once
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

/// A point on the monotone clock after which work must stop. Value type;
/// Never() compares later than every real deadline.
class Deadline {
 public:
  Deadline() = default;  // no deadline

  static Deadline Never() { return Deadline(); }
  static Deadline At(CancelClock::time_point tp) {
    Deadline d;
    d.has_ = true;
    d.at_ = tp;
    return d;
  }
  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> dur) {
    return At(CancelClock::now() +
              std::chrono::duration_cast<CancelClock::duration>(dur));
  }

  bool has_deadline() const { return has_; }
  CancelClock::time_point at() const { return at_; }
  bool Expired() const { return has_ && CancelClock::now() >= at_; }

  /// Time left before expiry; zero when expired, max() when Never.
  std::chrono::microseconds Remaining() const;

  /// The earlier of two deadlines (Never loses to anything real).
  static Deadline Earlier(const Deadline& a, const Deadline& b);

 private:
  bool has_ = false;
  CancelClock::time_point at_{};
};

/// The composition of every cancellation source in force for the work on
/// the current thread: session kill ∪ statement timeout ∪ txn deadline.
/// Built by the layer that opens a unit of work (Session::Execute, the
/// rule engine's txn frame) and installed thread-ambiently with a
/// CancelScope; inner layers check it without signature changes. A value
/// type — deriving a narrower context is copy + add.
class CancelContext {
 public:
  CancelContext() = default;

  /// Copy of the innermost ambient context (empty if none): the way a
  /// nested layer composes its own sources on top of its caller's.
  static CancelContext InheritAmbient();

  void AddToken(CancelTokenPtr token, std::string label);
  void AddDeadline(Deadline deadline, std::string label);

  bool empty() const { return tokens_.empty() && deadlines_.empty(); }
  bool has_tokens() const { return !tokens_.empty(); }

  /// Earliest deadline across every source (Never if none): the bound a
  /// cv wait_until or sleep must respect.
  Deadline deadline() const;

  /// kCancelled if any token has fired, else kTimeout if any deadline
  /// has passed, else OK. `where` names the check site for the message.
  Status Check(const char* where) const;

 private:
  struct TokenSource {
    CancelTokenPtr token;
    std::string label;
  };
  struct DeadlineSource {
    Deadline deadline;
    std::string label;
  };
  std::vector<TokenSource> tokens_;
  std::vector<DeadlineSource> deadlines_;
};

/// RAII installer of the thread-ambient CancelContext. Scopes nest (a
/// detached rule's retry loop runs under a narrower context than the
/// statement that spawned it); the innermost wins and the destructor
/// restores the outer one. The context must outlive the scope — both
/// normally live in the same stack frame.
class CancelScope {
 public:
  explicit CancelScope(const CancelContext* ctx);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// Innermost installed context on this thread, or nullptr.
  static const CancelContext* Current();

 private:
  const CancelContext* prev_;
};

/// The check every cooperative cancellation point calls: evaluates the
/// ambient context (no-op without one) and the `cancel.deliver` failpoint,
/// so chaos runs can model an asynchronous kill arriving at any check
/// site. Cheap when nothing is armed and no context is installed.
Status CheckCancel(const char* where);

/// Cancellation- and deadline-aware sleep: sleeps up to `dur` but never
/// past the ambient deadline, polling ambient tokens so a kill cuts the
/// sleep short. Returns OK when the full duration elapsed, else the
/// Check() failure. Backoff sleeps (common/retry.h) and detached-rule
/// retries route through this so they cannot outsleep their budget.
Status CancellableSleep(std::chrono::microseconds dur, const char* where);

/// Poll quantum for token-bearing waits: a cv wait or sleep that must
/// notice an asynchronous CancelToken wakes at least this often to check
/// it (tokens have no cv of their own — deliberately, so no cross-cv
/// notification protocol exists to get wrong). Bounds cancel latency.
inline constexpr std::chrono::milliseconds kCancelPollQuantum{2};

}  // namespace sopr

#endif  // SOPR_COMMON_CANCEL_H_
