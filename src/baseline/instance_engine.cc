#include "baseline/instance_engine.h"

#include "expr/evaluator.h"
#include "rules/transition_tables.h"

namespace sopr {

Status InstanceEngine::DefineRule(std::shared_ptr<const CreateRuleStmt> def) {
  if (def->action_is_rollback) {
    return Status::NotImplemented(
        "instance-oriented baseline does not support rollback actions");
  }
  for (const auto& rule : rules_) {
    if (rule->name() == def->name) {
      return Status::CatalogError("rule already exists: " + def->name);
    }
  }
  SOPR_ASSIGN_OR_RETURN(std::shared_ptr<Rule> rule,
                        Rule::Create(std::move(def), db_->catalog()));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

void InstanceEngine::EnqueueMatches(const DmlEffect& op,
                                    std::deque<WorkItem>* queue) const {
  for (const auto& rule : rules_) {
    for (const ResolvedTransPred& pred : rule->when()) {
      if (pred.table != op.table) continue;
      switch (pred.kind) {
        case BasicTransPred::Kind::kInsertedInto:
          for (TupleHandle h : op.inserted) {
            WorkItem item{rule.get(), TransInfo()};
            DmlEffect single;
            single.table = op.table;
            single.inserted.push_back(h);
            item.singleton.ApplyOp(single);
            queue->push_back(std::move(item));
          }
          break;
        case BasicTransPred::Kind::kDeletedFrom:
          for (const auto& [h, row] : op.deleted) {
            WorkItem item{rule.get(), TransInfo()};
            DmlEffect single;
            single.table = op.table;
            single.deleted.emplace_back(h, row);
            item.singleton.ApplyOp(single);
            queue->push_back(std::move(item));
          }
          break;
        case BasicTransPred::Kind::kUpdated:
          for (const DmlEffect::UpdatedTuple& u : op.updated) {
            bool matches = pred.column == ResolvedTransPred::kAnyColumn;
            if (!matches) {
              for (size_t c : u.columns) {
                if (c == pred.column) {
                  matches = true;
                  break;
                }
              }
            }
            if (!matches) continue;
            WorkItem item{rule.get(), TransInfo()};
            DmlEffect single;
            single.table = op.table;
            single.updated.push_back(u);
            item.singleton.ApplyOp(single);
            queue->push_back(std::move(item));
          }
          break;
        case BasicTransPred::Kind::kSelectedFrom:
          break;  // not supported in the baseline
      }
    }
  }
}

Result<InstanceStats> InstanceEngine::ExecuteBlock(
    const std::vector<const Stmt*>& ops) {
  InstanceStats stats;
  UndoLog::Mark mark = db_->UndoMark();

  std::deque<WorkItem> queue;
  DatabaseResolver base_resolver(db_);
  Executor base_executor(db_, &base_resolver);

  auto abort = [&](const Status& cause) -> Status {
    SOPR_RETURN_NOT_OK(db_->RollbackTo(mark));
    return cause;
  };

  for (const Stmt* op : ops) {
    if (op->kind == StmtKind::kSelect) continue;  // retrieval-only
    auto effect = base_executor.ExecuteDml(*op);
    if (!effect.ok()) return abort(effect.status());
    EnqueueMatches(effect.value(), &queue);
  }

  while (!queue.empty()) {
    if (++stats.invocations > max_invocations_) {
      return abort(Status::LimitExceeded(
          "instance-oriented cascade exceeded " +
          std::to_string(max_invocations_) + " invocations"));
    }
    WorkItem item = std::move(queue.front());
    queue.pop_front();

    // For updated/deleted singletons the tuple may already have been
    // deleted by an earlier instance; `inserted`/`new updated` transition
    // tables would dangle. Skip stale work conservatively.
    bool stale = false;
    for (const auto& [table, info] : item.singleton.tables()) {
      SOPR_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(table));
      for (TupleHandle h : info.ins) {
        if (!t->Contains(h)) stale = true;
      }
      for (const auto& [h, u] : info.upd) {
        (void)u;
        if (!t->Contains(h)) stale = true;
      }
    }
    if (stale) continue;

    TransitionTableResolver resolver(db_, &item.singleton);
    Executor executor(db_, &resolver);

    bool holds = true;
    if (item.rule->condition() != nullptr) {
      Scope scope;
      EvalContext ctx;
      ctx.runner = &executor;
      auto held = EvaluatePredicate(*item.rule->condition(), scope, ctx);
      if (!held.ok()) return abort(held.status());
      holds = (held.value() == TriBool::kTrue);
    }
    if (!holds) continue;

    ++stats.actions_executed;
    for (const StmtPtr& op : item.rule->action()) {
      if (op->kind == StmtKind::kSelect) continue;
      auto effect = executor.ExecuteDml(*op);
      if (!effect.ok()) return abort(effect.status());
      EnqueueMatches(effect.value(), &queue);
    }
  }

  db_->CommitAll();
  return stats;
}

}  // namespace sopr
