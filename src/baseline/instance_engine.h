#ifndef SOPR_BASELINE_INSTANCE_ENGINE_H_
#define SOPR_BASELINE_INSTANCE_ENGINE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/executor.h"
#include "rules/rule.h"
#include "rules/trans_info.h"
#include "storage/database.h"

namespace sopr {

/// Statistics of one instance-oriented execution.
struct InstanceStats {
  size_t invocations = 0;       // rule condition evaluations
  size_t actions_executed = 0;  // rule actions run (one per tuple!)
};

/// The instance-oriented comparator (the model of [Esw76, MD89, SJGP90]
/// that §1 of the paper contrasts with): rules are applied *once per
/// affected tuple*. Rule syntax is shared with the set-oriented system;
/// here each triggering tuple is presented to the condition/action as a
/// singleton transition table, so a batch of N affected tuples costs N
/// condition evaluations and up to N action executions, each a full SQL
/// statement — exactly the per-instance overhead set-oriented rules
/// amortize.
///
/// Scope: intended for benchmarks and semantic comparison, so it supports
/// the common core (triggering, conditions, actions, cascades via a FIFO
/// work queue, firing limit) but not priorities or rollback actions.
class InstanceEngine {
 public:
  explicit InstanceEngine(Database* db, size_t max_invocations = 1000000)
      : db_(db), max_invocations_(max_invocations) {}

  Status DefineRule(std::shared_ptr<const CreateRuleStmt> def);

  /// Executes `ops` as one transaction with instance-at-a-time rule
  /// processing, then commits. Returns per-run statistics.
  Result<InstanceStats> ExecuteBlock(const std::vector<const Stmt*>& ops);

 private:
  /// One unit of work: a rule to apply to a single affected tuple.
  struct WorkItem {
    const Rule* rule;
    TransInfo singleton;  // exactly one tuple in one component
  };

  /// Enqueues work items for every rule triggered by each tuple of `op`.
  void EnqueueMatches(const DmlEffect& op, std::deque<WorkItem>* queue) const;

  Database* db_;
  size_t max_invocations_;
  std::vector<std::shared_ptr<Rule>> rules_;
};

}  // namespace sopr

#endif  // SOPR_BASELINE_INSTANCE_ENGINE_H_
