#ifndef SOPR_SQL_LEXER_H_
#define SOPR_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace sopr {

/// Hand-written SQL tokenizer. Identifiers and keywords are
/// case-insensitive; string literals use single quotes with '' escaping;
/// `--` starts a line comment. Numbers with a '.' or exponent lex as
/// doubles, otherwise as 64-bit ints. Suffix `K`/`M` on a number scales by
/// 1e3 / 1e6 — the paper writes salaries as "50K".
class Lexer {
 public:
  explicit Lexer(std::string source) : source_(std::move(source)) {}

  /// Tokenizes the whole input; the final token is always kEof.
  Result<std::vector<Token>> Tokenize();

 private:
  Status LexOne(std::vector<Token>* out);
  char Peek(size_t ahead = 0) const;
  bool AtEnd() const { return pos_ >= source_.size(); }

  std::string source_;
  size_t pos_ = 0;
};

}  // namespace sopr

#endif  // SOPR_SQL_LEXER_H_
