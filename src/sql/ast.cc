#include "sql/ast.h"

#include "common/string_util.h"

namespace sopr {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

std::string UnaryExpr::ToString() const {
  if (op == UnaryOp::kNot) return "not (" + operand->ToString() + ")";
  return "-(" + operand->ToString() + ")";
}

std::string BinaryExpr::ToString() const {
  return "(" + left->ToString() + " " + BinaryOpName(op) + " " +
         right->ToString() + ")";
}

std::string InListExpr::ToString() const {
  std::string out = operand->ToString();
  out += negated ? " not in (" : " in (";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i]->ToString();
  }
  out += ")";
  return out;
}

InSubqueryExpr::InSubqueryExpr(ExprPtr operand,
                               std::unique_ptr<SelectStmt> subquery,
                               bool negated)
    : Expr(ExprKind::kInSubquery),
      operand(std::move(operand)),
      subquery(std::move(subquery)),
      negated(negated) {}

InSubqueryExpr::~InSubqueryExpr() = default;

std::string InSubqueryExpr::ToString() const {
  return operand->ToString() + (negated ? " not in (" : " in (") +
         subquery->ToString() + ")";
}

ExistsExpr::ExistsExpr(std::unique_ptr<SelectStmt> subquery)
    : Expr(ExprKind::kExists), subquery(std::move(subquery)) {}

ExistsExpr::~ExistsExpr() = default;

std::string ExistsExpr::ToString() const {
  return "exists (" + subquery->ToString() + ")";
}

ScalarSubqueryExpr::ScalarSubqueryExpr(std::unique_ptr<SelectStmt> subquery)
    : Expr(ExprKind::kScalarSubquery), subquery(std::move(subquery)) {}

ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

std::string ScalarSubqueryExpr::ToString() const {
  return "(" + subquery->ToString() + ")";
}

std::string AggregateExpr::ToString() const {
  std::string out = AggFuncName(func);
  out += "(";
  if (distinct) out += "distinct ";
  out += argument ? argument->ToString() : "*";
  out += ")";
  return out;
}

std::string IsNullExpr::ToString() const {
  return operand->ToString() + (negated ? " is not null" : " is null");
}

std::string BetweenExpr::ToString() const {
  return operand->ToString() + (negated ? " not between " : " between ") +
         low->ToString() + " and " + high->ToString();
}

std::string TableRef::ToString() const {
  std::string out;
  switch (kind) {
    case TableRefKind::kBase:
      out = table;
      break;
    case TableRefKind::kInserted:
      out = "inserted " + table;
      break;
    case TableRefKind::kDeleted:
      out = "deleted " + table;
      break;
    case TableRefKind::kOldUpdated:
      out = "old updated " + table;
      if (!column.empty()) out += "." + column;
      break;
    case TableRefKind::kNewUpdated:
      out = "new updated " + table;
      if (!column.empty()) out += "." + column;
      break;
    case TableRefKind::kSelectedTt:
      out = "selected " + table;
      if (!column.empty()) out += "." + column;
      break;
  }
  if (!alias.empty()) out += " " + alias;
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = "select ";
  if (distinct) out += "distinct ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].star) {
      out += "*";
    } else {
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " as " + items[i].alias;
    }
  }
  out += " from ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  if (where) out += " where " + where->ToString();
  if (!group_by.empty()) {
    out += " group by ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " having " + having->ToString();
  if (!order_by.empty()) {
    out += " order by ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " desc";
    }
  }
  return out;
}

std::string InsertStmt::ToString() const {
  std::string out = "insert into " + table;
  if (select) {
    out += " (" + select->ToString() + ")";
    return out;
  }
  out += " values ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i > 0) out += ", ";
      out += rows[r][i]->ToString();
    }
    out += ")";
  }
  return out;
}

std::string DeleteStmt::ToString() const {
  std::string out = "delete from " + table;
  if (where) out += " where " + where->ToString();
  return out;
}

std::string UpdateStmt::ToString() const {
  std::string out = "update " + table + " set ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].column + " = " + assignments[i].value->ToString();
  }
  if (where) out += " where " + where->ToString();
  return out;
}

std::string CreateTableStmt::ToString() const {
  std::string out = "create table " + table + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].first;
    out += " ";
    out += ValueTypeName(columns[i].second);
  }
  out += ")";
  return out;
}

std::string CreateIndexStmt::ToString() const {
  std::string out = "create index ";
  if (!name.empty()) out += name + " ";
  out += "on " + table + " (" + column + ")";
  return out;
}

std::string BasicTransPred::ToString() const {
  switch (kind) {
    case Kind::kInsertedInto:
      return "inserted into " + table;
    case Kind::kDeletedFrom:
      return "deleted from " + table;
    case Kind::kUpdated:
      return column.empty() ? "updated " + table
                            : "updated " + table + "." + column;
    case Kind::kSelectedFrom:
      return column.empty() ? "selected " + table
                            : "selected " + table + "." + column;
  }
  return "?";
}

std::string CreateRuleStmt::ToString() const {
  std::string out = "create rule " + name + " when ";
  for (size_t i = 0; i < when.size(); ++i) {
    if (i > 0) out += " or ";
    out += when[i].ToString();
  }
  if (condition) out += " if " + condition->ToString();
  out += " then ";
  if (action_is_rollback) {
    out += "rollback";
  } else {
    std::vector<std::string> parts;
    parts.reserve(action.size());
    for (const auto& stmt : action) parts.push_back(stmt->ToString());
    out += Join(parts, "; ");
  }
  return out;
}

std::string CreatePriorityStmt::ToString() const {
  return "create rule priority " + higher + " before " + lower;
}

std::string DropRuleStmt::ToString() const { return "drop rule " + name; }

std::string DropTableStmt::ToString() const { return "drop table " + table; }

std::string CallStmt::ToString() const { return "call " + procedure; }

}  // namespace sopr
