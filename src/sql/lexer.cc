#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace sopr {

char Lexer::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  return i < source_.size() ? source_[i] : '\0';
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    // Skip whitespace and `--` comments.
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      } else if (Peek() == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
    if (AtEnd()) {
      out.push_back(Token{TokenType::kEof, "", 0, 0.0, pos_});
      return out;
    }
    SOPR_RETURN_NOT_OK(LexOne(&out));
  }
}

Status Lexer::LexOne(std::vector<Token>* out) {
  size_t start = pos_;
  char c = Peek();

  auto push = [&](TokenType type, size_t len) {
    out->push_back(Token{type, source_.substr(start, len), 0, 0.0, start});
    pos_ += len;
  };

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t len = 0;
    while (std::isalnum(static_cast<unsigned char>(Peek(len))) ||
           Peek(len) == '_') {
      ++len;
    }
    std::string word = source_.substr(start, len);
    std::string lower = ToLower(word);
    TokenType type = LookupKeyword(lower);
    out->push_back(Token{type, lower, 0, 0.0, start});
    pos_ += len;
    return Status::OK();
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    size_t len = 0;
    bool is_double = false;
    while (std::isdigit(static_cast<unsigned char>(Peek(len)))) ++len;
    if (Peek(len) == '.' &&
        std::isdigit(static_cast<unsigned char>(Peek(len + 1)))) {
      is_double = true;
      ++len;
      while (std::isdigit(static_cast<unsigned char>(Peek(len)))) ++len;
    }
    if (Peek(len) == 'e' || Peek(len) == 'E') {
      size_t elen = len + 1;
      if (Peek(elen) == '+' || Peek(elen) == '-') ++elen;
      if (std::isdigit(static_cast<unsigned char>(Peek(elen)))) {
        is_double = true;
        len = elen;
        while (std::isdigit(static_cast<unsigned char>(Peek(len)))) ++len;
      }
    }
    int64_t scale = 1;
    size_t suffix = 0;
    if (Peek(len) == 'K' || Peek(len) == 'k') {
      scale = 1000;
      suffix = 1;
    } else if (Peek(len) == 'M' || Peek(len) == 'm') {
      // Only treat as magnitude suffix if not the start of an identifier.
      if (!std::isalnum(static_cast<unsigned char>(Peek(len + 1))) &&
          Peek(len + 1) != '_') {
        scale = 1000000;
        suffix = 1;
      }
    }
    if (suffix == 1 && scale == 1000 &&
        (std::isalnum(static_cast<unsigned char>(Peek(len + 1))) ||
         Peek(len + 1) == '_')) {
      return Status::ParseError("malformed numeric literal at offset " +
                                std::to_string(start));
    }
    std::string lexeme = source_.substr(start, len);
    Token tok;
    tok.offset = start;
    tok.text = lexeme;
    if (is_double) {
      tok.type = TokenType::kDoubleLiteral;
      tok.double_value = std::strtod(lexeme.c_str(), nullptr) *
                         static_cast<double>(scale);
    } else {
      tok.type = TokenType::kIntLiteral;
      tok.int_value = std::strtoll(lexeme.c_str(), nullptr, 10) * scale;
    }
    out->push_back(std::move(tok));
    pos_ += len + suffix;
    return Status::OK();
  }

  if (c == '\'') {
    std::string text;
    size_t i = pos_ + 1;
    while (true) {
      if (i >= source_.size()) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      if (source_[i] == '\'') {
        if (i + 1 < source_.size() && source_[i + 1] == '\'') {
          text += '\'';  // '' escapes a quote
          i += 2;
          continue;
        }
        break;
      }
      text += source_[i];
      ++i;
    }
    out->push_back(Token{TokenType::kStringLiteral, text, 0, 0.0, start});
    pos_ = i + 1;
    return Status::OK();
  }

  switch (c) {
    case '(': push(TokenType::kLParen, 1); return Status::OK();
    case ')': push(TokenType::kRParen, 1); return Status::OK();
    case ',': push(TokenType::kComma, 1); return Status::OK();
    case ';': push(TokenType::kSemicolon, 1); return Status::OK();
    case '.': push(TokenType::kDot, 1); return Status::OK();
    case '*': push(TokenType::kStar, 1); return Status::OK();
    case '+': push(TokenType::kPlus, 1); return Status::OK();
    case '-': push(TokenType::kMinus, 1); return Status::OK();
    case '/': push(TokenType::kSlash, 1); return Status::OK();
    case '=': push(TokenType::kEq, 1); return Status::OK();
    case '<':
      if (Peek(1) == '>') {
        push(TokenType::kNe, 2);
      } else if (Peek(1) == '=') {
        push(TokenType::kLe, 2);
      } else {
        push(TokenType::kLt, 1);
      }
      return Status::OK();
    case '>':
      if (Peek(1) == '=') {
        push(TokenType::kGe, 2);
      } else {
        push(TokenType::kGt, 1);
      }
      return Status::OK();
    case '!':
      if (Peek(1) == '=') {
        push(TokenType::kNe, 2);
        return Status::OK();
      }
      break;
    default:
      break;
  }
  return Status::ParseError("unexpected character '" + std::string(1, c) +
                            "' at offset " + std::to_string(start));
}

}  // namespace sopr
