#ifndef SOPR_SQL_TOKEN_H_
#define SOPR_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace sopr {

/// Token kinds for the SQL subset of the paper (plus small conveniences:
/// group by / order by / distinct / between / is null).
enum class TokenType {
  kEof = 0,
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,

  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,
  kNe,  // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,

  // Keywords (case-insensitive in source).
  kSelect,
  kFrom,
  kWhere,
  kInsert,
  kInto,
  kValues,
  kDelete,
  kUpdate,
  kSet,
  kAnd,
  kOr,
  kNot,
  kIn,
  kExists,
  kIs,
  kNull,
  kBetween,
  kCreate,
  kDrop,
  kTable,
  kIndex,
  kOn,
  kRule,
  kPriority,
  kBefore,
  kWhen,
  kIf,
  kThen,
  kRollback,
  kCall,
  kProcess,
  kActivate,
  kDeactivate,
  kInserted,
  kDeleted,
  kUpdated,
  kSelected,
  kOld,
  kNew,
  kGroup,
  kBy,
  kHaving,
  kOrder,
  kAsc,
  kDesc,
  kDistinct,
  kAs,
  kTrue,
  kFalse,
};

const char* TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;      // identifier/keyword spelling or literal lexeme
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  // byte offset into the source, for error messages

  std::string ToString() const;
};

/// Keyword lookup: returns kIdentifier when `word` is not a keyword.
TokenType LookupKeyword(const std::string& lower_word);

}  // namespace sopr

#endif  // SOPR_SQL_TOKEN_H_
