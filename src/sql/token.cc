#include "sql/token.h"

#include <map>

namespace sopr {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEof: return "<eof>";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kIntLiteral: return "int literal";
    case TokenType::kDoubleLiteral: return "double literal";
    case TokenType::kStringLiteral: return "string literal";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kComma: return ",";
    case TokenType::kSemicolon: return ";";
    case TokenType::kDot: return ".";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kSelect: return "select";
    case TokenType::kFrom: return "from";
    case TokenType::kWhere: return "where";
    case TokenType::kInsert: return "insert";
    case TokenType::kInto: return "into";
    case TokenType::kValues: return "values";
    case TokenType::kDelete: return "delete";
    case TokenType::kUpdate: return "update";
    case TokenType::kSet: return "set";
    case TokenType::kAnd: return "and";
    case TokenType::kOr: return "or";
    case TokenType::kNot: return "not";
    case TokenType::kIn: return "in";
    case TokenType::kExists: return "exists";
    case TokenType::kIs: return "is";
    case TokenType::kNull: return "null";
    case TokenType::kBetween: return "between";
    case TokenType::kCreate: return "create";
    case TokenType::kDrop: return "drop";
    case TokenType::kTable: return "table";
    case TokenType::kIndex: return "index";
    case TokenType::kOn: return "on";
    case TokenType::kRule: return "rule";
    case TokenType::kPriority: return "priority";
    case TokenType::kBefore: return "before";
    case TokenType::kWhen: return "when";
    case TokenType::kIf: return "if";
    case TokenType::kThen: return "then";
    case TokenType::kRollback: return "rollback";
    case TokenType::kCall: return "call";
    case TokenType::kProcess: return "process";
    case TokenType::kActivate: return "activate";
    case TokenType::kDeactivate: return "deactivate";
    case TokenType::kInserted: return "inserted";
    case TokenType::kDeleted: return "deleted";
    case TokenType::kUpdated: return "updated";
    case TokenType::kSelected: return "selected";
    case TokenType::kOld: return "old";
    case TokenType::kNew: return "new";
    case TokenType::kGroup: return "group";
    case TokenType::kBy: return "by";
    case TokenType::kHaving: return "having";
    case TokenType::kOrder: return "order";
    case TokenType::kAsc: return "asc";
    case TokenType::kDesc: return "desc";
    case TokenType::kDistinct: return "distinct";
    case TokenType::kAs: return "as";
    case TokenType::kTrue: return "true";
    case TokenType::kFalse: return "false";
  }
  return "?";
}

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdentifier:
    case TokenType::kIntLiteral:
    case TokenType::kDoubleLiteral:
      return text;
    case TokenType::kStringLiteral:
      return "'" + text + "'";
    default:
      return TokenTypeName(type);
  }
}

TokenType LookupKeyword(const std::string& lower_word) {
  static const std::map<std::string, TokenType>* kKeywords =
      new std::map<std::string, TokenType>{
          {"select", TokenType::kSelect},
          {"from", TokenType::kFrom},
          {"where", TokenType::kWhere},
          {"insert", TokenType::kInsert},
          {"into", TokenType::kInto},
          {"values", TokenType::kValues},
          {"delete", TokenType::kDelete},
          {"update", TokenType::kUpdate},
          {"set", TokenType::kSet},
          {"and", TokenType::kAnd},
          {"or", TokenType::kOr},
          {"not", TokenType::kNot},
          {"in", TokenType::kIn},
          {"exists", TokenType::kExists},
          {"is", TokenType::kIs},
          {"null", TokenType::kNull},
          {"between", TokenType::kBetween},
          {"create", TokenType::kCreate},
          {"drop", TokenType::kDrop},
          {"table", TokenType::kTable},
          {"index", TokenType::kIndex},
          {"on", TokenType::kOn},
          {"rule", TokenType::kRule},
          {"priority", TokenType::kPriority},
          {"before", TokenType::kBefore},
          {"when", TokenType::kWhen},
          {"if", TokenType::kIf},
          {"then", TokenType::kThen},
          {"rollback", TokenType::kRollback},
          {"call", TokenType::kCall},
          {"process", TokenType::kProcess},
          {"activate", TokenType::kActivate},
          {"deactivate", TokenType::kDeactivate},
          {"inserted", TokenType::kInserted},
          {"deleted", TokenType::kDeleted},
          {"updated", TokenType::kUpdated},
          {"selected", TokenType::kSelected},
          {"old", TokenType::kOld},
          {"new", TokenType::kNew},
          {"group", TokenType::kGroup},
          {"by", TokenType::kBy},
          {"having", TokenType::kHaving},
          {"order", TokenType::kOrder},
          {"asc", TokenType::kAsc},
          {"desc", TokenType::kDesc},
          {"distinct", TokenType::kDistinct},
          {"as", TokenType::kAs},
          {"true", TokenType::kTrue},
          {"false", TokenType::kFalse},
      };
  auto it = kKeywords->find(lower_word);
  return it == kKeywords->end() ? TokenType::kIdentifier : it->second;
}

}  // namespace sopr
