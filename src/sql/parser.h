#ifndef SOPR_SQL_PARSER_H_
#define SOPR_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace sopr {

/// Recursive-descent parser for the paper's SQL subset:
///
///   op-block   ::= sql-op ; sql-op ; ... ; sql-op
///   sql-op     ::= insert-op | delete-op | update-op | select-op
///   ddl        ::= create table | create rule | create rule priority
///                | drop rule
///
/// plus transition-table references (`inserted t`, `deleted t`,
/// `old updated t[.c]`, `new updated t[.c]`, `selected t[.c]`) in FROM
/// clauses, per §3 / §5.1 of the paper.
///
/// Identifiers are case-insensitive and normalized to lowercase.
class Parser {
 public:
  /// Parses a script: one or more statements separated by `;`. Inside a
  /// `create rule ... then` action, subsequent DML statements after `;`
  /// are consumed greedily into the action (the paper's op-block syntax),
  /// so a rule definition should be submitted on its own.
  static Result<std::vector<StmtPtr>> ParseScript(const std::string& sql);

  /// Parses exactly one statement (trailing `;` allowed).
  static Result<StmtPtr> ParseStatement(const std::string& sql);

  /// Parses a standalone expression (used by tests and the constraint
  /// compiler).
  static Result<ExprPtr> ParseExpression(const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type);
  Status Expect(TokenType type, const char* context);
  Status ErrorHere(const std::string& message) const;

  Result<StmtPtr> ParseOneStatement();
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<StmtPtr> ParseInsert();
  Result<StmtPtr> ParseDelete();
  Result<StmtPtr> ParseUpdate();
  Result<StmtPtr> ParseCreate();
  Result<StmtPtr> ParseCreateTable();
  Result<StmtPtr> ParseCreateIndex();
  Result<StmtPtr> ParseCreateRule();
  Result<StmtPtr> ParseDrop();
  Result<TableRef> ParseTableRef();
  Result<BasicTransPred> ParseBasicTransPred();

  Result<ExprPtr> ParseExpr();        // or-level
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();   // comparisons, in, between, is null
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sopr

#endif  // SOPR_SQL_PARSER_H_
