#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace sopr {

namespace {

/// Column type names accepted by `create table`. These are ordinary
/// identifiers, not keywords.
Result<ValueType> ParseTypeName(const std::string& name) {
  if (name == "int" || name == "integer" || name == "bigint") {
    return ValueType::kInt;
  }
  if (name == "double" || name == "float" || name == "real" ||
      name == "numeric" || name == "decimal") {
    return ValueType::kDouble;
  }
  if (name == "string" || name == "varchar" || name == "text" ||
      name == "char") {
    return ValueType::kString;
  }
  if (name == "bool" || name == "boolean") {
    return ValueType::kBool;
  }
  return Status::ParseError("unknown column type: " + name);
}

bool IsDmlStart(TokenType type) {
  return type == TokenType::kInsert || type == TokenType::kDelete ||
         type == TokenType::kUpdate || type == TokenType::kSelect ||
         type == TokenType::kCall;
}

/// Statements that may appear inside a rule action's op-block do NOT
/// include `process rules` (a triggering point inside an action has no
/// defined semantics), so the greedy action parse stops before it.

}  // namespace

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // EOF token
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenType type) {
  if (Check(type)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const char* context) {
  if (Match(type)) return Status::OK();
  return ErrorHere(std::string("expected ") + TokenTypeName(type) + " in " +
                   context + ", got '" + Peek().ToString() + "'");
}

Status Parser::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + " (at offset " +
                            std::to_string(Peek().offset) + ")");
}

Result<std::vector<StmtPtr>> Parser::ParseScript(const std::string& sql) {
  Lexer lexer(sql);
  SOPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  std::vector<StmtPtr> out;
  while (!parser.Check(TokenType::kEof)) {
    SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, parser.ParseOneStatement());
    out.push_back(std::move(stmt));
    if (!parser.Match(TokenType::kSemicolon)) break;
  }
  if (!parser.Check(TokenType::kEof)) {
    return parser.ErrorHere("unexpected trailing input");
  }
  if (out.empty()) {
    return Status::ParseError("empty statement");
  }
  return out;
}

Result<StmtPtr> Parser::ParseStatement(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, ParseScript(sql));
  if (stmts.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

Result<ExprPtr> Parser::ParseExpression(const std::string& sql) {
  Lexer lexer(sql);
  SOPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  SOPR_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  if (!parser.Check(TokenType::kEof)) {
    return parser.ErrorHere("unexpected trailing input after expression");
  }
  return expr;
}

Result<StmtPtr> Parser::ParseOneStatement() {
  switch (Peek().type) {
    case TokenType::kSelect: {
      SOPR_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
      return StmtPtr(std::move(sel));
    }
    case TokenType::kInsert:
      return ParseInsert();
    case TokenType::kDelete:
      return ParseDelete();
    case TokenType::kUpdate:
      return ParseUpdate();
    case TokenType::kCreate:
      return ParseCreate();
    case TokenType::kDrop:
      return ParseDrop();
    case TokenType::kCall: {
      Advance();
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected procedure name after 'call'");
      }
      auto stmt = std::make_unique<CallStmt>();
      stmt->procedure = Advance().text;
      return StmtPtr(std::move(stmt));
    }
    case TokenType::kProcess: {
      Advance();
      // `process rules` ("rules" lexes as an identifier).
      if (!Check(TokenType::kIdentifier) || Peek().text != "rules") {
        return ErrorHere("expected 'rules' after 'process'");
      }
      Advance();
      return StmtPtr(std::make_unique<ProcessRulesStmt>());
    }
    case TokenType::kActivate:
    case TokenType::kDeactivate: {
      bool enabled = Advance().type == TokenType::kActivate;
      SOPR_RETURN_NOT_OK(Expect(TokenType::kRule, "activate/deactivate"));
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected rule name");
      }
      auto stmt = std::make_unique<SetRuleEnabledStmt>();
      stmt->enabled = enabled;
      stmt->name = Advance().text;
      return StmtPtr(std::move(stmt));
    }
    default:
      return ErrorHere("expected a statement, got '" + Peek().ToString() +
                       "'");
  }
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kSelect, "select"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = Match(TokenType::kDistinct);

  // Select list: `*` or expr [as alias] (, ...).
  if (Match(TokenType::kStar)) {
    SelectItem item;
    item.star = true;
    stmt->items.push_back(std::move(item));
  } else {
    while (true) {
      SelectItem item;
      SOPR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Match(TokenType::kAs)) {
        if (!Check(TokenType::kIdentifier)) {
          return ErrorHere("expected alias after 'as'");
        }
        item.alias = Advance().text;
      } else if (Check(TokenType::kIdentifier)) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  SOPR_RETURN_NOT_OK(Expect(TokenType::kFrom, "select"));
  while (true) {
    SOPR_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    stmt->from.push_back(std::move(ref));
    if (!Match(TokenType::kComma)) break;
  }

  if (Match(TokenType::kWhere)) {
    SOPR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (Match(TokenType::kGroup)) {
    SOPR_RETURN_NOT_OK(Expect(TokenType::kBy, "group by"));
    while (true) {
      SOPR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
  }
  if (Match(TokenType::kHaving)) {
    SOPR_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (Match(TokenType::kOrder)) {
    SOPR_RETURN_NOT_OK(Expect(TokenType::kBy, "order by"));
    while (true) {
      OrderByItem item;
      SOPR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Match(TokenType::kDesc)) {
        item.ascending = false;
      } else {
        Match(TokenType::kAsc);
      }
      stmt->order_by.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }
  return stmt;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  switch (Peek().type) {
    case TokenType::kInserted:
      Advance();
      ref.kind = TableRefKind::kInserted;
      break;
    case TokenType::kDeleted:
      Advance();
      ref.kind = TableRefKind::kDeleted;
      break;
    case TokenType::kOld:
      Advance();
      SOPR_RETURN_NOT_OK(Expect(TokenType::kUpdated, "old updated table"));
      ref.kind = TableRefKind::kOldUpdated;
      break;
    case TokenType::kNew:
      Advance();
      SOPR_RETURN_NOT_OK(Expect(TokenType::kUpdated, "new updated table"));
      ref.kind = TableRefKind::kNewUpdated;
      break;
    case TokenType::kSelected:
      Advance();
      ref.kind = TableRefKind::kSelectedTt;
      break;
    default:
      ref.kind = TableRefKind::kBase;
      break;
  }
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name, got '" + Peek().ToString() + "'");
  }
  ref.table = Advance().text;
  // `old updated t.c` / `new updated t.c` / `selected t.c` may name a
  // column.
  if ((ref.kind == TableRefKind::kOldUpdated ||
       ref.kind == TableRefKind::kNewUpdated ||
       ref.kind == TableRefKind::kSelectedTt) &&
      Match(TokenType::kDot)) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name after '.'");
    }
    ref.column = Advance().text;
  }
  if (Check(TokenType::kIdentifier)) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<StmtPtr> Parser::ParseInsert() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kInsert, "insert"));
  SOPR_RETURN_NOT_OK(Expect(TokenType::kInto, "insert"));
  auto stmt = std::make_unique<InsertStmt>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name in insert");
  }
  stmt->table = Advance().text;

  if (Match(TokenType::kValues)) {
    // values (e, e, ...) [, (e, e, ...)]*  — multi-row is a convenience
    // extension; the paper shows single-row values. Bare `values e, e, ...`
    // (no parens) is also accepted, matching the paper's typography.
    bool parens = Check(TokenType::kLParen);
    while (true) {
      std::vector<ExprPtr> row;
      if (parens) {
        SOPR_RETURN_NOT_OK(Expect(TokenType::kLParen, "insert values"));
      }
      while (true) {
        SOPR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!Match(TokenType::kComma)) break;
      }
      if (parens) {
        SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "insert values"));
      }
      stmt->rows.push_back(std::move(row));
      if (!parens || !Match(TokenType::kComma)) break;
    }
    return StmtPtr(std::move(stmt));
  }

  // insert into t (select ...) — also accept without parens.
  bool paren = Match(TokenType::kLParen);
  SOPR_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
  if (paren) {
    SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "insert select"));
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseDelete() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kDelete, "delete"));
  SOPR_RETURN_NOT_OK(Expect(TokenType::kFrom, "delete"));
  auto stmt = std::make_unique<DeleteStmt>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name in delete");
  }
  stmt->table = Advance().text;
  if (Match(TokenType::kWhere)) {
    SOPR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseUpdate() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kUpdate, "update"));
  auto stmt = std::make_unique<UpdateStmt>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name in update");
  }
  stmt->table = Advance().text;
  SOPR_RETURN_NOT_OK(Expect(TokenType::kSet, "update"));
  while (true) {
    UpdateStmt::Assignment assignment;
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name in update set");
    }
    assignment.column = Advance().text;
    SOPR_RETURN_NOT_OK(Expect(TokenType::kEq, "update set"));
    SOPR_ASSIGN_OR_RETURN(assignment.value, ParseExpr());
    stmt->assignments.push_back(std::move(assignment));
    if (!Match(TokenType::kComma)) break;
  }
  if (Match(TokenType::kWhere)) {
    SOPR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseCreate() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kCreate, "create"));
  if (Check(TokenType::kTable)) return ParseCreateTable();
  if (Check(TokenType::kRule)) return ParseCreateRule();
  if (Check(TokenType::kIndex)) return ParseCreateIndex();
  return ErrorHere("expected 'table', 'rule', or 'index' after 'create'");
}

Result<StmtPtr> Parser::ParseCreateTable() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kTable, "create table"));
  auto stmt = std::make_unique<CreateTableStmt>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name in create table");
  }
  stmt->table = Advance().text;
  SOPR_RETURN_NOT_OK(Expect(TokenType::kLParen, "create table"));
  while (true) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name in create table");
    }
    std::string column = Advance().text;
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column type in create table");
    }
    SOPR_ASSIGN_OR_RETURN(ValueType type, ParseTypeName(Advance().text));
    stmt->columns.emplace_back(std::move(column), type);
    if (!Match(TokenType::kComma)) break;
  }
  SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "create table"));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseCreateIndex() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kIndex, "create index"));
  auto stmt = std::make_unique<CreateIndexStmt>();
  if (Check(TokenType::kIdentifier)) {
    stmt->name = Advance().text;
  }
  SOPR_RETURN_NOT_OK(Expect(TokenType::kOn, "create index"));
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name in create index");
  }
  stmt->table = Advance().text;
  SOPR_RETURN_NOT_OK(Expect(TokenType::kLParen, "create index"));
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected column name in create index");
  }
  stmt->column = Advance().text;
  SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "create index"));
  return StmtPtr(std::move(stmt));
}

Result<BasicTransPred> Parser::ParseBasicTransPred() {
  BasicTransPred pred;
  if (Match(TokenType::kInserted)) {
    SOPR_RETURN_NOT_OK(Expect(TokenType::kInto, "transition predicate"));
    pred.kind = BasicTransPred::Kind::kInsertedInto;
  } else if (Match(TokenType::kDeleted)) {
    SOPR_RETURN_NOT_OK(Expect(TokenType::kFrom, "transition predicate"));
    pred.kind = BasicTransPred::Kind::kDeletedFrom;
  } else if (Match(TokenType::kUpdated)) {
    pred.kind = BasicTransPred::Kind::kUpdated;
  } else if (Match(TokenType::kSelected)) {
    pred.kind = BasicTransPred::Kind::kSelectedFrom;
  } else {
    return ErrorHere(
        "expected 'inserted into', 'deleted from', 'updated', or 'selected' "
        "in when clause");
  }
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name in transition predicate");
  }
  pred.table = Advance().text;
  if ((pred.kind == BasicTransPred::Kind::kUpdated ||
       pred.kind == BasicTransPred::Kind::kSelectedFrom) &&
      Match(TokenType::kDot)) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name in transition predicate");
    }
    pred.column = Advance().text;
  }
  return pred;
}

Result<StmtPtr> Parser::ParseCreateRule() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kRule, "create rule"));

  // `create rule priority A before B`.
  if (Check(TokenType::kPriority)) {
    Advance();
    auto stmt = std::make_unique<CreatePriorityStmt>();
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected rule name in create rule priority");
    }
    stmt->higher = Advance().text;
    SOPR_RETURN_NOT_OK(Expect(TokenType::kBefore, "create rule priority"));
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected rule name after 'before'");
    }
    stmt->lower = Advance().text;
    return StmtPtr(std::move(stmt));
  }

  auto stmt = std::make_unique<CreateRuleStmt>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected rule name in create rule");
  }
  stmt->name = Advance().text;

  SOPR_RETURN_NOT_OK(Expect(TokenType::kWhen, "create rule"));
  while (true) {
    SOPR_ASSIGN_OR_RETURN(BasicTransPred pred, ParseBasicTransPred());
    stmt->when.push_back(std::move(pred));
    if (!Match(TokenType::kOr)) break;
  }

  if (Match(TokenType::kIf)) {
    SOPR_ASSIGN_OR_RETURN(stmt->condition, ParseExpr());
  }

  SOPR_RETURN_NOT_OK(Expect(TokenType::kThen, "create rule"));
  if (Match(TokenType::kRollback)) {
    stmt->action_is_rollback = true;
    return StmtPtr(std::move(stmt));
  }

  // The action is an op-block: DML statements separated by `;`. We consume
  // greedily while the token after `;` starts a DML statement.
  while (true) {
    if (!IsDmlStart(Peek().type)) {
      return ErrorHere("expected a DML statement in rule action");
    }
    SOPR_ASSIGN_OR_RETURN(StmtPtr op, ParseOneStatement());
    stmt->action.push_back(std::move(op));
    if (Check(TokenType::kSemicolon) && IsDmlStart(Peek(1).type)) {
      Advance();  // consume ';', continue the op-block
      continue;
    }
    break;
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseDrop() {
  SOPR_RETURN_NOT_OK(Expect(TokenType::kDrop, "drop"));
  if (Match(TokenType::kRule)) {
    auto stmt = std::make_unique<DropRuleStmt>();
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected rule name in drop rule");
    }
    stmt->name = Advance().text;
    return StmtPtr(std::move(stmt));
  }
  if (Match(TokenType::kTable)) {
    auto stmt = std::make_unique<DropTableStmt>();
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected table name in drop table");
    }
    stmt->table = Advance().text;
    return StmtPtr(std::move(stmt));
  }
  return ErrorHere("expected 'rule' or 'table' after 'drop'");
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  SOPR_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Check(TokenType::kOr)) {
    Advance();
    SOPR_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  SOPR_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Check(TokenType::kAnd)) {
    Advance();
    SOPR_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Match(TokenType::kNot)) {
    SOPR_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  SOPR_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

  // `is [not] null`
  if (Match(TokenType::kIs)) {
    bool negated = Match(TokenType::kNot);
    SOPR_RETURN_NOT_OK(Expect(TokenType::kNull, "is null"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
  }

  bool negated = false;
  if (Check(TokenType::kNot) &&
      (Peek(1).type == TokenType::kIn || Peek(1).type == TokenType::kBetween)) {
    Advance();
    negated = true;
  }

  if (Match(TokenType::kIn)) {
    SOPR_RETURN_NOT_OK(Expect(TokenType::kLParen, "in"));
    if (Check(TokenType::kSelect)) {
      SOPR_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
      SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "in subquery"));
      return ExprPtr(std::make_unique<InSubqueryExpr>(
          std::move(left), std::move(sub), negated));
    }
    std::vector<ExprPtr> items;
    while (true) {
      SOPR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      items.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
    SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "in list"));
    return ExprPtr(std::make_unique<InListExpr>(std::move(left),
                                                std::move(items), negated));
  }

  if (Match(TokenType::kBetween)) {
    SOPR_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    SOPR_RETURN_NOT_OK(Expect(TokenType::kAnd, "between"));
    SOPR_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    return ExprPtr(std::make_unique<BetweenExpr>(
        std::move(left), std::move(low), std::move(high), negated));
  }

  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNe: op = BinaryOp::kNe; break;
    case TokenType::kLt: op = BinaryOp::kLt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGt: op = BinaryOp::kGt; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    default:
      return left;
  }
  Advance();
  SOPR_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return ExprPtr(
      std::make_unique<BinaryExpr>(op, std::move(left), std::move(right)));
}

Result<ExprPtr> Parser::ParseAdditive() {
  SOPR_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    BinaryOp op =
        Advance().type == TokenType::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    SOPR_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  SOPR_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    BinaryOp op =
        Advance().type == TokenType::kStar ? BinaryOp::kMul : BinaryOp::kDiv;
    SOPR_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    SOPR_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
  }
  if (Match(TokenType::kPlus)) {
    return ParseUnary();
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntLiteral:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Int(tok.int_value)));
    case TokenType::kDoubleLiteral:
      Advance();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Double(tok.double_value)));
    case TokenType::kStringLiteral:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::String(tok.text)));
    case TokenType::kNull:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
    case TokenType::kTrue:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(true)));
    case TokenType::kFalse:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(false)));
    case TokenType::kExists: {
      Advance();
      SOPR_RETURN_NOT_OK(Expect(TokenType::kLParen, "exists"));
      SOPR_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
      SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "exists"));
      return ExprPtr(std::make_unique<ExistsExpr>(std::move(sub)));
    }
    case TokenType::kLParen: {
      Advance();
      if (Check(TokenType::kSelect)) {
        SOPR_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
        SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "scalar subquery"));
        return ExprPtr(std::make_unique<ScalarSubqueryExpr>(std::move(sub)));
      }
      SOPR_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "parenthesized expr"));
      return inner;
    }
    case TokenType::kIdentifier: {
      // Aggregate call?
      if (Peek(1).type == TokenType::kLParen) {
        AggFunc func;
        bool is_agg = true;
        if (tok.text == "count") {
          func = AggFunc::kCount;
        } else if (tok.text == "sum") {
          func = AggFunc::kSum;
        } else if (tok.text == "avg") {
          func = AggFunc::kAvg;
        } else if (tok.text == "min") {
          func = AggFunc::kMin;
        } else if (tok.text == "max") {
          func = AggFunc::kMax;
        } else {
          is_agg = false;
          func = AggFunc::kCount;
        }
        if (is_agg) {
          Advance();  // function name
          Advance();  // '('
          bool distinct = Match(TokenType::kDistinct);
          ExprPtr argument;
          if (Match(TokenType::kStar)) {
            if (func != AggFunc::kCount) {
              return ErrorHere("'*' argument only valid for count");
            }
          } else {
            SOPR_ASSIGN_OR_RETURN(argument, ParseExpr());
          }
          SOPR_RETURN_NOT_OK(Expect(TokenType::kRParen, "aggregate"));
          return ExprPtr(std::make_unique<AggregateExpr>(
              func, std::move(argument), distinct));
        }
        return ErrorHere("unknown function: " + tok.text);
      }
      // Column reference: ident or ident.ident.
      Advance();
      if (Match(TokenType::kDot)) {
        if (Check(TokenType::kStar)) {
          return ErrorHere("qualified '*' is not supported in expressions");
        }
        if (!Check(TokenType::kIdentifier)) {
          return ErrorHere("expected column name after '.'");
        }
        std::string column = Advance().text;
        return ExprPtr(std::make_unique<ColumnRefExpr>(tok.text, column));
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>("", tok.text));
    }
    default:
      return ErrorHere("expected an expression, got '" + tok.ToString() + "'");
  }
}

}  // namespace sopr
