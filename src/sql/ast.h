#ifndef SOPR_SQL_AST_H_
#define SOPR_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace sopr {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct SelectStmt;  // forward: subqueries embed selects

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kInList,
  kInSubquery,
  kExists,
  kScalarSubquery,
  kAggregate,
  kIsNull,
  kBetween,
};

/// Base of all expression nodes. Nodes are immutable after parsing and are
/// shared by pointer between the statement that owns them and the
/// evaluator; the owner holds unique_ptrs.
struct Expr {
  explicit Expr(ExprKind kind) : kind(kind) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Round-trippable SQL-ish rendering (for traces/tests).
  virtual std::string ToString() const = 0;

  const ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::string ToString() const override { return value.ToString(); }

  Value value;
};

/// `salary`, `e1.salary`, `t.*` is not an expression (handled in select
/// lists separately).
struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string qualifier, std::string column)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(qualifier)),
        column(std::move(column)) {}
  std::string ToString() const override {
    return qualifier.empty() ? column : qualifier + "." + column;
  }

  std::string qualifier;  // table name or alias; may be empty
  std::string column;
};

enum class UnaryOp { kNeg, kNot };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op(op), operand(std::move(operand)) {}
  std::string ToString() const override;

  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* BinaryOpName(BinaryOp op);

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op(op),
        left(std::move(left)),
        right(std::move(right)) {}
  std::string ToString() const override;

  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// `x in (1, 2, 3)` / `x not in (...)`.
struct InListExpr : Expr {
  InListExpr(ExprPtr operand, std::vector<ExprPtr> items, bool negated)
      : Expr(ExprKind::kInList),
        operand(std::move(operand)),
        items(std::move(items)),
        negated(negated) {}
  std::string ToString() const override;

  ExprPtr operand;
  std::vector<ExprPtr> items;
  bool negated;
};

/// `x in (select ...)` / `x not in (select ...)`.
struct InSubqueryExpr : Expr {
  InSubqueryExpr(ExprPtr operand, std::unique_ptr<SelectStmt> subquery,
                 bool negated);
  ~InSubqueryExpr() override;
  std::string ToString() const override;

  ExprPtr operand;
  std::unique_ptr<SelectStmt> subquery;
  bool negated;
};

/// `exists (select ...)` / `not exists (...)` is parsed as kNot of this.
struct ExistsExpr : Expr {
  explicit ExistsExpr(std::unique_ptr<SelectStmt> subquery);
  ~ExistsExpr() override;
  std::string ToString() const override;

  std::unique_ptr<SelectStmt> subquery;
};

/// `(select ...)` used as a scalar: must yield ≤1 row, 1 column; empty →
/// NULL.
struct ScalarSubqueryExpr : Expr {
  explicit ScalarSubqueryExpr(std::unique_ptr<SelectStmt> subquery);
  ~ScalarSubqueryExpr() override;
  std::string ToString() const override;

  std::unique_ptr<SelectStmt> subquery;
};

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// `sum(salary)`, `count(*)` (argument == nullptr), `count(distinct x)`.
struct AggregateExpr : Expr {
  AggregateExpr(AggFunc func, ExprPtr argument, bool distinct)
      : Expr(ExprKind::kAggregate),
        func(func),
        argument(std::move(argument)),
        distinct(distinct) {}
  std::string ToString() const override;

  AggFunc func;
  ExprPtr argument;  // nullptr for count(*)
  bool distinct;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr operand, bool negated)
      : Expr(ExprKind::kIsNull), operand(std::move(operand)), negated(negated) {}
  std::string ToString() const override;

  ExprPtr operand;
  bool negated;
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr operand, ExprPtr low, ExprPtr high, bool negated)
      : Expr(ExprKind::kBetween),
        operand(std::move(operand)),
        low(std::move(low)),
        high(std::move(high)),
        negated(negated) {}
  std::string ToString() const override;

  ExprPtr operand;
  ExprPtr low;
  ExprPtr high;
  bool negated;
};

// ---------------------------------------------------------------------------
// Table references (FROM items)
// ---------------------------------------------------------------------------

/// What a FROM item denotes: a stored table or one of the paper's
/// transition tables (§3).
enum class TableRefKind {
  kBase,        // emp
  kInserted,    // inserted emp
  kDeleted,     // deleted emp
  kOldUpdated,  // old updated emp[.salary]
  kNewUpdated,  // new updated emp[.salary]
  kSelectedTt,  // selected emp[.salary]   (§5.1 extension)
};

struct TableRef {
  TableRefKind kind = TableRefKind::kBase;
  std::string table;   // underlying table name
  std::string column;  // only for [old|new] updated t.c / selected t.c
  std::string alias;   // binding name; defaults to `table` when empty

  /// The name this FROM item is referenced by in expressions.
  const std::string& binding_name() const {
    return alias.empty() ? table : alias;
  }

  std::string ToString() const;

  bool is_transition() const { return kind != TableRefKind::kBase; }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kSelect,
  kInsert,
  kDelete,
  kUpdate,
  kCreateTable,
  kCreateIndex,
  kCreateRule,
  kCreatePriority,
  kDropRule,
  kDropTable,
  kCall,
  kProcessRules,
  kSetRuleEnabled,
};

struct Stmt {
  explicit Stmt(StmtKind kind) : kind(kind) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  virtual std::string ToString() const = 0;

  const StmtKind kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// One item of a select list: an expression with an optional alias, or the
/// bare `*` (star == true, expr == nullptr).
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool star = false;
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt : Stmt {
  SelectStmt() : Stmt(StmtKind::kSelect) {}
  std::string ToString() const override;

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderByItem> order_by;
};

struct InsertStmt : Stmt {
  InsertStmt() : Stmt(StmtKind::kInsert) {}
  std::string ToString() const override;

  std::string table;
  /// Either one or more literal rows...
  std::vector<std::vector<ExprPtr>> rows;
  /// ...or a source query (insert into t (select ...)).
  std::unique_ptr<SelectStmt> select;
};

struct DeleteStmt : Stmt {
  DeleteStmt() : Stmt(StmtKind::kDelete) {}
  std::string ToString() const override;

  std::string table;
  ExprPtr where;  // may be null (delete all)
};

struct UpdateStmt : Stmt {
  UpdateStmt() : Stmt(StmtKind::kUpdate) {}
  std::string ToString() const override;

  struct Assignment {
    std::string column;
    ExprPtr value;
  };

  std::string table;
  std::vector<Assignment> assignments;
  ExprPtr where;  // may be null (update all)
};

struct CreateTableStmt : Stmt {
  CreateTableStmt() : Stmt(StmtKind::kCreateTable) {}
  std::string ToString() const override;

  std::string table;
  std::vector<std::pair<std::string, ValueType>> columns;
};

/// `create index [name] on t (c)` — equality index used by the executor
/// for `c = literal` predicates.
struct CreateIndexStmt : Stmt {
  CreateIndexStmt() : Stmt(StmtKind::kCreateIndex) {}
  std::string ToString() const override;

  std::string name;  // optional
  std::string table;
  std::string column;
};

/// One basic transition predicate of a rule's `when` list (§3).
struct BasicTransPred {
  enum class Kind { kInsertedInto, kDeletedFrom, kUpdated, kSelectedFrom };
  Kind kind = Kind::kInsertedInto;
  std::string table;
  std::string column;  // only for `updated t.c` / `selected t.c`; empty = any

  std::string ToString() const;
};

struct CreateRuleStmt : Stmt {
  CreateRuleStmt() : Stmt(StmtKind::kCreateRule) {}
  std::string ToString() const override;

  std::string name;
  std::vector<BasicTransPred> when;
  ExprPtr condition;  // null = `if true`
  bool action_is_rollback = false;
  std::vector<StmtPtr> action;  // DML statements; empty iff rollback
};

/// `create rule priority A before B`.
struct CreatePriorityStmt : Stmt {
  CreatePriorityStmt() : Stmt(StmtKind::kCreatePriority) {}
  std::string ToString() const override;

  std::string higher;  // considered before `lower`
  std::string lower;
};

struct DropRuleStmt : Stmt {
  DropRuleStmt() : Stmt(StmtKind::kDropRule) {}
  std::string ToString() const override;

  std::string name;
};

struct DropTableStmt : Stmt {
  DropTableStmt() : Stmt(StmtKind::kDropTable) {}
  std::string ToString() const override;

  std::string table;
};

/// `process rules` — the §5.3 extension at SQL level: inside an
/// operation-block script it marks a rule triggering point (the
/// externally-generated transition so far is considered complete and
/// rules run to quiescence before the block continues).
struct ProcessRulesStmt : Stmt {
  ProcessRulesStmt() : Stmt(StmtKind::kProcessRules) {}
  std::string ToString() const override { return "process rules"; }
};

/// `activate rule <name>` / `deactivate rule <name>` — temporarily
/// disable a rule without dropping it.
struct SetRuleEnabledStmt : Stmt {
  SetRuleEnabledStmt() : Stmt(StmtKind::kSetRuleEnabled) {}
  std::string ToString() const override {
    return (enabled ? "activate rule " : "deactivate rule ") + name;
  }

  std::string name;
  bool enabled = true;
};

/// `call <procedure>` — the §5.2 extension: a rule action may invoke a
/// registered external procedure. The procedure's database effects (run
/// through its ProcedureContext) still correspond to a sequence of DML
/// operations, so rule semantics are unchanged.
struct CallStmt : Stmt {
  CallStmt() : Stmt(StmtKind::kCall) {}
  std::string ToString() const override;

  std::string procedure;
};

}  // namespace sopr

#endif  // SOPR_SQL_AST_H_
