#include "constraints/constraint.h"

#include <cctype>

namespace sopr {

const char* ViolationActionName(ViolationAction action) {
  switch (action) {
    case ViolationAction::kRollback:
      return "rollback";
    case ViolationAction::kCascade:
      return "cascade";
    case ViolationAction::kSetNull:
      return "set-null";
  }
  return "?";
}

Status ValidateIdentifier(const std::string& id, const char* what) {
  if (id.empty()) {
    return Status::InvalidArgument(std::string(what) + " must be non-empty");
  }
  if (!std::isalpha(static_cast<unsigned char>(id[0])) && id[0] != '_') {
    return Status::InvalidArgument(std::string(what) + " '" + id +
                                   "' must start with a letter or '_'");
  }
  for (char c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return Status::InvalidArgument(std::string(what) + " '" + id +
                                     "' contains invalid character");
    }
  }
  return Status::OK();
}

}  // namespace sopr
