#include "constraints/compiler.h"

namespace sopr {

Status ConstraintCompiler::Install(const std::string& sql) {
  SOPR_RETURN_NOT_OK(engine_->Execute(sql));
  generated_sql_.push_back(sql);
  return Status::OK();
}

Result<std::vector<std::string>> ConstraintCompiler::AddReferential(
    const ReferentialConstraint& c) {
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.name, "constraint name"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.child_table, "child table"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.child_column, "child column"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.parent_table, "parent table"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.parent_column, "parent column"));

  std::vector<std::string> names;

  // (a) Parent deletion.
  std::string del_rule = c.name + "_parent_delete";
  std::string deleted_keys = "(select " + c.parent_column + " from deleted " +
                             c.parent_table + ")";
  switch (c.on_parent_delete) {
    case ViolationAction::kCascade:
      SOPR_RETURN_NOT_OK(Install(
          "create rule " + del_rule + " when deleted from " + c.parent_table +
          " then delete from " + c.child_table + " where " + c.child_column +
          " in " + deleted_keys));
      break;
    case ViolationAction::kSetNull:
      SOPR_RETURN_NOT_OK(Install(
          "create rule " + del_rule + " when deleted from " + c.parent_table +
          " then update " + c.child_table + " set " + c.child_column +
          " = null where " + c.child_column + " in " + deleted_keys));
      break;
    case ViolationAction::kRollback:
      SOPR_RETURN_NOT_OK(Install(
          "create rule " + del_rule + " when deleted from " + c.parent_table +
          " if exists (select * from " + c.child_table + " where " +
          c.child_column + " in " + deleted_keys + ") then rollback"));
      break;
  }
  names.push_back(del_rule);

  // (b) Child insert / FK update must reference an existing parent.
  std::string chk_rule = c.name + "_child_check";
  std::string parent_keys =
      "(select " + c.parent_column + " from " + c.parent_table + ")";
  SOPR_RETURN_NOT_OK(Install(
      "create rule " + chk_rule + " when inserted into " + c.child_table +
      " or updated " + c.child_table + "." + c.child_column +
      " if exists (select * from inserted " + c.child_table + " where " +
      c.child_column + " is not null and " + c.child_column + " not in " +
      parent_keys + ") or exists (select * from new updated " +
      c.child_table + "." + c.child_column + " where " + c.child_column +
      " is not null and " + c.child_column + " not in " + parent_keys +
      ") then rollback"));
  names.push_back(chk_rule);

  // (c) Parent key updates may not orphan children (conservative:
  // rollback whenever a referenced key value disappears).
  std::string upd_rule = c.name + "_parent_update";
  SOPR_RETURN_NOT_OK(Install(
      "create rule " + upd_rule + " when updated " + c.parent_table + "." +
      c.parent_column + " if exists (select * from " + c.child_table +
      " where " + c.child_column + " is not null and " + c.child_column +
      " not in " + parent_keys + ") then rollback"));
  names.push_back(upd_rule);

  return names;
}

Result<std::vector<std::string>> ConstraintCompiler::AddDomain(
    const DomainConstraint& c) {
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.name, "constraint name"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.table, "table"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.column, "column"));
  if (c.predicate_sql.empty()) {
    return Status::InvalidArgument("domain predicate must be non-empty");
  }

  std::string rule = c.name + "_domain";
  SOPR_RETURN_NOT_OK(Install(
      "create rule " + rule + " when inserted into " + c.table +
      " or updated " + c.table + "." + c.column +
      " if exists (select * from inserted " + c.table + " where not (" +
      c.predicate_sql + ")) or exists (select * from new updated " + c.table +
      "." + c.column + " where not (" + c.predicate_sql +
      ")) then rollback"));
  return std::vector<std::string>{rule};
}

Result<std::vector<std::string>> ConstraintCompiler::AddUnique(
    const UniqueConstraint& c) {
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.name, "constraint name"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.table, "table"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.column, "column"));

  std::string rule = c.name + "_unique";
  SOPR_RETURN_NOT_OK(Install(
      "create rule " + rule + " when inserted into " + c.table +
      " or updated " + c.table + "." + c.column + " if exists (select " +
      c.column + " from " + c.table + " where " + c.column +
      " is not null group by " + c.column +
      " having count(*) > 1) then rollback"));
  return std::vector<std::string>{rule};
}

Result<std::vector<std::string>> ConstraintCompiler::AddAggregate(
    const AggregateConstraint& c) {
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.name, "constraint name"));
  SOPR_RETURN_NOT_OK(ValidateIdentifier(c.table, "table"));
  if (c.predicate_sql.empty()) {
    return Status::InvalidArgument("aggregate predicate must be non-empty");
  }

  std::string rule = c.name + "_aggregate";
  SOPR_RETURN_NOT_OK(Install(
      "create rule " + rule + " when inserted into " + c.table +
      " or deleted from " + c.table + " or updated " + c.table +
      " if not (" + c.predicate_sql + ") then rollback"));
  return std::vector<std::string>{rule};
}

}  // namespace sopr
