#ifndef SOPR_CONSTRAINTS_COMPILER_H_
#define SOPR_CONSTRAINTS_COMPILER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/constraint.h"
#include "engine/engine.h"

namespace sopr {

/// Semi-automatic translation of high-level integrity constraints into
/// sets of production rules, following the direction of §6 and [CW90]
/// ("Deriving production rules for constraint maintenance"). Each Add*
/// call compiles the constraint to one or more `create rule` statements,
/// installs them in the engine, and returns the installed rule names.
class ConstraintCompiler {
 public:
  explicit ConstraintCompiler(Engine* engine) : engine_(engine) {}

  Result<std::vector<std::string>> AddReferential(
      const ReferentialConstraint& constraint);
  Result<std::vector<std::string>> AddDomain(const DomainConstraint& constraint);
  Result<std::vector<std::string>> AddUnique(const UniqueConstraint& constraint);
  Result<std::vector<std::string>> AddAggregate(
      const AggregateConstraint& constraint);

  /// Every `create rule` statement this compiler has issued, in order
  /// (useful for inspection, docs, and tests).
  const std::vector<std::string>& generated_sql() const {
    return generated_sql_;
  }

 private:
  /// Installs one generated rule; records the SQL on success.
  Status Install(const std::string& sql);

  Engine* engine_;
  std::vector<std::string> generated_sql_;
};

}  // namespace sopr

#endif  // SOPR_CONSTRAINTS_COMPILER_H_
