#ifndef SOPR_CONSTRAINTS_CONSTRAINT_H_
#define SOPR_CONSTRAINTS_CONSTRAINT_H_

#include <string>

#include "common/status.h"

namespace sopr {

/// What a generated enforcement rule does when the constraint would be
/// violated.
enum class ViolationAction {
  kRollback,  // abort the transaction (the paper's rollback action)
  kCascade,   // referential only: propagate the delete to children
  kSetNull,   // referential only: orphan children by nulling the FK
};

const char* ViolationActionName(ViolationAction action);

/// child.child_column references parent.parent_column. Generated rules
/// enforce: (a) the chosen action when parent rows are deleted, and
/// (b) rollback when a child is inserted/updated with a dangling
/// reference. NULL child values are always allowed (SQL convention).
struct ReferentialConstraint {
  std::string name;
  std::string child_table;
  std::string child_column;
  std::string parent_table;
  std::string parent_column;
  ViolationAction on_parent_delete = ViolationAction::kRollback;
};

/// `predicate_sql` must hold for every row of `table` (checked on insert
/// and on update of `column`). The predicate references columns of the
/// table directly, e.g. "salary >= 0".
struct DomainConstraint {
  std::string name;
  std::string table;
  std::string column;         // the column whose updates re-check
  std::string predicate_sql;  // e.g. "salary >= 0 and salary < 10000000"
};

/// No two non-NULL rows of `table` may share a value of `column`.
struct UniqueConstraint {
  std::string name;
  std::string table;
  std::string column;
};

/// A database-wide predicate over aggregates that must hold after every
/// transition touching `table`, e.g. "(select sum(salary) from emp) <
/// 10000000".
struct AggregateConstraint {
  std::string name;
  std::string table;          // triggering table
  std::string predicate_sql;  // full SQL predicate (self-contained)
};

/// Basic identifier sanity for constraint/table/column names used when
/// splicing SQL.
Status ValidateIdentifier(const std::string& id, const char* what);

}  // namespace sopr

#endif  // SOPR_CONSTRAINTS_CONSTRAINT_H_
