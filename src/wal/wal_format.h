#ifndef SOPR_WAL_WAL_FORMAT_H_
#define SOPR_WAL_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/tuple_handle.h"
#include "types/row.h"

namespace sopr {
namespace wal {

/// On-disk record framing (all integers little-endian, fixed width):
///
///   +----------------+----------------+------------------------+
///   | u32 payload_len| u32 crc32c     | payload (payload_len B)|
///   +----------------+----------------+------------------------+
///   payload = u64 lsn | u8 type | type-specific body
///
/// The CRC covers exactly the payload bytes. LSNs are strictly
/// monotonically increasing within a file and never reset across
/// restarts or checkpoint rotations. A healthy log is a sequence of
///   (BEGIN redo* COMMIT) | ABORT-terminated groups | DDL | snapshot
/// records; uncommitted groups can only appear as a (truncatable) torn
/// tail because commit batches are written as one contiguous group.
///
/// Record bodies:
///   kBegin           u64 txn_id
///   kCommit          u64 txn_id | u64 next_handle
///   kAbort           u64 txn_id
///   kInsert          u64 txn_id | str table | u64 handle | row after
///   kDelete          u64 txn_id | str table | u64 handle | row before
///   kUpdate          u64 txn_id | str table | u64 handle
///                      | row before | row after
///   kDdl             str sql           (logical: schema / rule catalog)
///   kSnapshotHeader  u64 covers_lsn | u64 next_handle
///                      (first record of a snapshot file only)
///
/// str = u32 length + bytes. row = u32 arity + values; value = u8 type
/// tag + scalar (bool: u8; int: u64 two's complement; double: 8 raw
/// bytes; string: str; null: empty).
enum class RecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,
  kDelete = 5,
  kUpdate = 6,
  kDdl = 7,
  kSnapshotHeader = 8,
};

const char* RecordTypeName(RecordType type);

/// Framing constants.
inline constexpr size_t kHeaderSize = 8;          // len + crc
inline constexpr size_t kMinPayload = 9;          // lsn + type
inline constexpr size_t kMaxPayload = 1u << 26;   // 64 MiB sanity cap

/// A decoded WAL record. One struct covers every type; unused fields are
/// value-initialized (a tagged union buys nothing at this scale).
struct WalRecord {
  uint64_t lsn = 0;
  RecordType type = RecordType::kBegin;
  uint64_t txn_id = 0;        // Begin/Commit/Abort/Insert/Delete/Update
  uint64_t next_handle = 0;   // Commit, SnapshotHeader
  uint64_t covers_lsn = 0;    // SnapshotHeader: log LSNs <= this are stale
  std::string table;          // Insert/Delete/Update (lowercased)
  TupleHandle handle = kInvalidHandle;
  Row before;                 // Delete/Update pre-image
  Row after;                  // Insert/Update post-image
  std::string sql;            // Ddl
  /// Absolute file offset of this record's header. Filled in by the
  /// scanner (zero in hand-built records); the replication tailer uses
  /// it to compute durable resume points at record granularity.
  uint64_t offset = 0;

  static WalRecord Begin(uint64_t lsn, uint64_t txn);
  static WalRecord Commit(uint64_t lsn, uint64_t txn, uint64_t next_handle);
  static WalRecord Abort(uint64_t lsn, uint64_t txn);
  static WalRecord Insert(uint64_t lsn, uint64_t txn, std::string table,
                          TupleHandle handle, Row after);
  static WalRecord Delete(uint64_t lsn, uint64_t txn, std::string table,
                          TupleHandle handle, Row before);
  static WalRecord Update(uint64_t lsn, uint64_t txn, std::string table,
                          TupleHandle handle, Row before, Row after);
  static WalRecord Ddl(uint64_t lsn, std::string sql);
  static WalRecord SnapshotHeader(uint64_t lsn, uint64_t covers_lsn,
                                  uint64_t next_handle);
};

/// Serializes `rec` (header + checksummed payload) onto `out`.
void AppendRecord(std::string* out, const WalRecord& rec);

/// Payload codec (no framing); exposed for tests and the scanner.
std::string EncodePayload(const WalRecord& rec);
Status DecodePayload(std::string_view payload, WalRecord* out);

/// How a scan of a log ended.
enum class ScanEnd {
  kClean,      // file ends exactly at a record boundary
  kTornTail,   // trailing partial/corrupt record reaching EOF (truncatable)
  kCorrupt,    // mid-log damage with valid-looking data after it (fatal)
};

struct ScanResult {
  std::vector<WalRecord> records;  // the well-formed prefix
  uint64_t valid_bytes = 0;        // absolute end offset of that prefix
  uint64_t file_bytes = 0;         // absolute end offset of examined bytes
  ScanEnd end = ScanEnd::kClean;
  std::string detail;              // human-readable reason for torn/corrupt
};

/// Resume point for an incremental scan: a previous scan (or recovery)
/// ends at a record boundary; a tailer restarts there instead of
/// re-reading the whole log. `last_lsn` seeds the LSN-monotonicity check
/// so a regression across the seam is still caught (it also catches a
/// log that was rotated underneath the tailer: the fresh log's first
/// record would decode at offset 0, not at the stale resume offset).
struct ScanOptions {
  uint64_t start_offset = 0;  // must be a record boundary
  uint64_t last_lsn = 0;      // highest LSN consumed before start_offset
};

/// Scans a serialized log image, verifying framing, checksums, and LSN
/// monotonicity. Classification: a record whose extent reaches EOF (or an
/// all-zero remainder) is a torn tail — the expected shape of an
/// interrupted write, safe to truncate; any damage *followed by more
/// data* is mid-log corruption and must be surfaced, never truncated.
///
/// The ScanOptions overloads scan `data` as the file's contents FROM
/// `start_offset` (i.e. data[0] is file offset start_offset); every
/// offset in the result is absolute.
ScanResult ScanLogImage(std::string_view data);
ScanResult ScanLogImage(std::string_view data, const ScanOptions& opts);

/// Reads and scans a log file. A missing file scans as empty and clean.
/// The ScanOptions overload reads from opts.start_offset; an offset past
/// the current end of file is kInvalidArgument (the replication tailer
/// treats a shrunken file as a checkpoint rotation before scanning).
Result<ScanResult> ScanLogFile(const std::string& path);
Result<ScanResult> ScanLogFile(const std::string& path,
                               const ScanOptions& opts);

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_WAL_FORMAT_H_
