#ifndef SOPR_WAL_DIR_LOCK_H_
#define SOPR_WAL_DIR_LOCK_H_

#include <memory>
#include <string>

#include "common/status.h"

namespace sopr {
namespace wal {

/// Single-writer lock on a WAL directory. The WAL format assumes exactly
/// one writer; a second process appending to the same wal.log is silent
/// corruption. Acquire() takes a non-blocking flock on `dir`/LOCK, so a
/// second opener — another process, or a second Engine in this one —
/// gets a clear kIoError instead of undetected UB. The kernel releases
/// the lock when the fd closes, including on crash or kill, so a stale
/// LOCK file left by a dead process never wedges the directory (this is
/// why flock beats O_EXCL-create here).
class DirLock {
 public:
  /// Creates `dir`/LOCK if absent and flocks it exclusively. Fails with
  /// kIoError when another holder exists; the holder's pid (best effort,
  /// written at acquisition) is included in the message.
  static Result<std::unique_ptr<DirLock>> Acquire(const std::string& dir);

  ~DirLock();
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  const std::string& path() const { return path_; }

 private:
  DirLock(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_DIR_LOCK_H_
