#ifndef SOPR_WAL_CRC32C_H_
#define SOPR_WAL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sopr {
namespace wal {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by iSCSI, ext4, LevelDB/RocksDB log formats, and
/// this engine's WAL records. Software slice-by-8 implementation; tables
/// are generated on first use.
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(std::string_view s) {
  return Crc32c(s.data(), s.size());
}

/// Extends a running CRC (crc is the value returned by a previous call).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_CRC32C_H_
