#include "wal/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace wal {

namespace {

/// Re-executes a logged DDL script. The engine has no WAL attached (or,
/// on a follower, replication suppresses re-logging), so rule
/// definitions come back exactly as their original SQL rendered them.
Status ReplayDdl(Engine* engine, const std::string& sql,
                 RecoveryStats* stats) {
  SOPR_FAILPOINT_RETURN("wal.recover.replay");
  Status applied = engine->Execute(sql);
  if (!applied.ok()) {
    return Status::DataLoss("recovery: logged DDL failed to re-execute (" +
                            applied.ToString() + "): " + sql);
  }
  ++stats->ddl_records;
  return Status::OK();
}

Status ReplayMutation(Engine* engine, const WalRecord& rec,
                      RecoveryStats* stats) {
  SOPR_FAILPOINT_RETURN("wal.recover.replay");
  Status applied = Status::OK();
  switch (rec.type) {
    case RecordType::kInsert:
      applied = engine->db().ApplyRedoInsert(rec.table, rec.handle, rec.after);
      break;
    case RecordType::kDelete:
      applied = engine->db().ApplyRedoDelete(rec.table, rec.handle,
                                             rec.before);
      break;
    case RecordType::kUpdate:
      applied = engine->db().ApplyRedoUpdate(rec.table, rec.handle,
                                             rec.before, rec.after);
      break;
    default:
      return Status::Internal("recovery: not a mutation record");
  }
  if (!applied.ok()) {
    if (applied.code() == StatusCode::kDataLoss) return applied;
    return Status::DataLoss("recovery: redo of lsn " +
                            std::to_string(rec.lsn) +
                            " failed: " + applied.ToString());
  }
  ++stats->replayed_records;
  return Status::OK();
}

/// Loads the installed snapshot, if any. Snapshot layout:
///   SnapshotHeader | Ddl(schema script) | Insert* | Ddl(rule script)
/// written to a temp file and renamed into place, so any damage at all is
/// kDataLoss — there is no legitimately torn snapshot.
Status LoadSnapshot(const std::string& dir, Engine* engine,
                    RecoveryStats* stats, uint64_t* covers_lsn,
                    uint64_t* last_lsn) {
  const std::string path = WalWriter::SnapshotPath(dir);
  SOPR_ASSIGN_OR_RETURN(ScanResult scan, ScanLogFile(path));
  if (scan.file_bytes == 0 && scan.records.empty()) return Status::OK();
  if (scan.end != ScanEnd::kClean) {
    return Status::DataLoss("snapshot " + path + " is damaged (" +
                            scan.detail + "); snapshots install atomically, "
                            "so this is corruption, not a torn write");
  }
  if (scan.records.empty() ||
      scan.records[0].type != RecordType::kSnapshotHeader) {
    return Status::DataLoss("snapshot " + path +
                            " does not start with a snapshot header");
  }
  const WalRecord& header = scan.records[0];
  for (size_t i = 1; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    switch (rec.type) {
      case RecordType::kDdl:
        SOPR_RETURN_NOT_OK(ReplayDdl(engine, rec.sql, stats));
        break;
      case RecordType::kInsert:
        SOPR_RETURN_NOT_OK(ReplayMutation(engine, rec, stats));
        break;
      default:
        return Status::DataLoss("snapshot " + path + ": unexpected " +
                                RecordTypeName(rec.type) + " record");
    }
  }
  engine->db().BumpNextHandle(header.next_handle);
  *covers_lsn = header.covers_lsn;
  *last_lsn = scan.records.back().lsn;
  stats->snapshot_loaded = true;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// GroupReplayer
// ---------------------------------------------------------------------------

GroupReplayer::GroupReplayer(Engine* engine, Options options)
    : engine_(engine),
      opts_(std::move(options)),
      applied_lsn_(opts_.applied_lsn) {}

Status GroupReplayer::Apply(bool ddl, uint64_t lsn,
                            const std::function<Status()>& apply_fn) {
  Status applied =
      opts_.around ? opts_.around(ddl, apply_fn) : apply_fn();
  if (!applied.ok()) return applied;
  applied_lsn_ = std::max(applied_lsn_, lsn);
  if (opts_.applied) opts_.applied(lsn);
  return Status::OK();
}

Result<bool> GroupReplayer::Feed(const WalRecord& rec, RecoveryStats* stats) {
  // Bounded replay: a transaction counts iff its COMMIT record (where
  // the group is applied) is within the bound. Mutation records of a
  // later commit stay buffered in open_txns_ until DiscardOpen.
  if (opts_.through_lsn != 0 && rec.lsn > opts_.through_lsn) return false;
  const uint64_t prev_lsn = max_lsn_;
  max_lsn_ = std::max(max_lsn_, rec.lsn);
  max_txn_id_ = std::max(max_txn_id_, rec.txn_id);
  if (rec.lsn <= opts_.covers_lsn) return true;  // baked into the snapshot
  switch (rec.type) {
    case RecordType::kBegin: {
      OpenGroup group;
      group.begin_offset = rec.offset;
      group.prev_lsn = prev_lsn;
      if (!open_txns_.emplace(rec.txn_id, std::move(group)).second) {
        return Status::DataLoss("wal.log: duplicate BEGIN for txn " +
                                std::to_string(rec.txn_id));
      }
      break;
    }
    case RecordType::kInsert:
    case RecordType::kDelete:
    case RecordType::kUpdate: {
      auto it = open_txns_.find(rec.txn_id);
      if (it == open_txns_.end()) {
        return Status::DataLoss("wal.log: redo record at lsn " +
                                std::to_string(rec.lsn) +
                                " for unknown txn " +
                                std::to_string(rec.txn_id));
      }
      it->second.redo.push_back(rec);
      break;
    }
    case RecordType::kCommit: {
      auto it = open_txns_.find(rec.txn_id);
      if (it == open_txns_.end()) {
        return Status::DataLoss("wal.log: COMMIT at lsn " +
                                std::to_string(rec.lsn) +
                                " for unknown txn " +
                                std::to_string(rec.txn_id));
      }
      if (rec.lsn <= applied_lsn_) {
        // Idempotence guard: this group was applied by a previous feed
        // (a tailer re-fed records after a transient failure). Consume
        // without re-applying.
        open_txns_.erase(it);
        break;
      }
      std::vector<WalRecord> redo = std::move(it->second.redo);
      open_txns_.erase(it);
      SOPR_RETURN_NOT_OK(Apply(/*ddl=*/false, rec.lsn, [&]() -> Status {
        for (const WalRecord& r : redo) {
          SOPR_RETURN_NOT_OK(ReplayMutation(engine_, r, stats));
        }
        engine_->db().BumpNextHandle(rec.next_handle);
        if (opts_.stamp_mvcc && engine_->db().mvcc_enabled()) {
          // Stamp the group's MVCC versions at its commit LSN so pinned
          // snapshot readers see exactly the committed prefix (the redo
          // path journals what it touched; see Database::ApplyRedo*).
          engine_->db().CommitAll(rec.lsn);
        }
        return Status::OK();
      }));
      ++stats->committed_txns;
      break;
    }
    case RecordType::kAbort:
      // Aborted transactions write nothing, but tolerate an explicit
      // marker: drop the group unreplayed.
      open_txns_.erase(rec.txn_id);
      break;
    case RecordType::kDdl:
      if (rec.lsn <= applied_lsn_) break;  // idempotence guard (see COMMIT)
      SOPR_RETURN_NOT_OK(Apply(/*ddl=*/true, rec.lsn, [&]() -> Status {
        return ReplayDdl(engine_, rec.sql, stats);
      }));
      break;
    case RecordType::kSnapshotHeader:
      return Status::DataLoss(
          "wal.log: snapshot header in the main log at lsn " +
          std::to_string(rec.lsn));
  }
  return true;
}

void GroupReplayer::DiscardOpen(RecoveryStats* stats) {
  stats->discarded_txns += open_txns_.size();
  open_txns_.clear();
}

void GroupReplayer::ResetOpen() { open_txns_.clear(); }

uint64_t GroupReplayer::resume_offset(uint64_t end_of_feed) const {
  uint64_t offset = end_of_feed;
  for (const auto& [txn_id, group] : open_txns_) {
    offset = std::min(offset, group.begin_offset);
  }
  return offset;
}

uint64_t GroupReplayer::resume_lsn(uint64_t last_fed_lsn) const {
  // The seed must be the highest LSN *before* the resume offset; with
  // open groups that is the LSN preceding the earliest BEGIN.
  uint64_t offset = ~uint64_t{0};
  uint64_t lsn = last_fed_lsn;
  for (const auto& [txn_id, group] : open_txns_) {
    if (group.begin_offset < offset) {
      offset = group.begin_offset;
      lsn = group.prev_lsn;
    }
  }
  return lsn;
}

// ---------------------------------------------------------------------------
// RecoverDatabase
// ---------------------------------------------------------------------------

Result<RecoveryStats> RecoverDatabase(const std::string& dir,
                                      Engine* engine) {
  return RecoverDatabase(dir, engine, RecoverOptions{});
}

Result<RecoveryStats> RecoverDatabase(const std::string& dir, Engine* engine,
                                      const RecoverOptions& opts) {
  SOPR_FAILPOINT_RETURN("wal.recover.begin");
  RecoveryStats stats;

  // A leftover snapshot.tmp is an interrupted checkpoint that never
  // installed; discard it so a later checkpoint starts clean. Never on a
  // read-only (follower) pass: the primary may be mid-checkpoint.
  if (!opts.read_only) {
    ::unlink(WalWriter::SnapshotTmpPath(dir).c_str());
  }

  uint64_t covers_lsn = 0;
  uint64_t last_lsn = 0;
  SOPR_RETURN_NOT_OK(
      LoadSnapshot(dir, engine, &stats, &covers_lsn, &last_lsn));
  stats.covers_lsn = covers_lsn;
  if (opts.through_lsn != 0 && covers_lsn > opts.through_lsn) {
    return Status::InvalidArgument(
        "RecoverDatabase: through_lsn " + std::to_string(opts.through_lsn) +
        " predates the installed checkpoint, whose covers_lsn is " +
        std::to_string(covers_lsn) + "; that prefix is no longer in the "
        "log — bootstrap from the checkpoint (replay the snapshot first) "
        "or request through_lsn >= " + std::to_string(covers_lsn));
  }

  const std::string log_path = WalWriter::LogPath(dir);
  SOPR_ASSIGN_OR_RETURN(ScanResult scan, ScanLogFile(log_path));
  if (scan.end == ScanEnd::kCorrupt) {
    // Valid-looking data follows the damage: committed history would be
    // lost by truncating here. Hard error — never guess.
    return Status::DataLoss("wal.log: " + scan.detail);
  }
  if (scan.end == ScanEnd::kTornTail && !opts.read_only) {
    SOPR_FAILPOINT_RETURN("wal.recover.truncate");
    if (::truncate(log_path.c_str(), static_cast<off_t>(scan.valid_bytes)) !=
        0) {
      return Status::IoError("recovery: cannot truncate torn tail of " +
                             log_path);
    }
    stats.truncated_bytes = scan.file_bytes - scan.valid_bytes;
  }

  // Replay committed transactions in LSN order. Commit batches are
  // written contiguously, so at most the final group can be unfinished —
  // but replay tolerates any interleaving as long as groups are
  // well-formed.
  GroupReplayer::Options replay_opts;
  replay_opts.covers_lsn = covers_lsn;
  replay_opts.through_lsn = opts.through_lsn;
  GroupReplayer replayer(engine, replay_opts);
  uint64_t last_log_lsn = 0;
  for (const WalRecord& rec : scan.records) {
    SOPR_ASSIGN_OR_RETURN(bool consumed, replayer.Feed(rec, &stats));
    if (!consumed) break;
    last_log_lsn = rec.lsn;
  }
  last_lsn = std::max(last_lsn, replayer.max_lsn());

  // Incremental resume point for a tailer continuing this replay: the
  // earliest still-open group's BEGIN (its records must be re-buffered),
  // else the end of the well-formed prefix.
  stats.resume_offset = replayer.resume_offset(scan.valid_bytes);
  stats.resume_lsn = replayer.resume_lsn(last_log_lsn);
  stats.applied_lsn = replayer.applied_lsn();

  // Whatever is still open lost its COMMIT to the torn tail: those
  // transactions never reached their durability point and are discarded
  // (on a read-only pass the primary may still be writing them — the
  // resume point above lets the tailer pick them up).
  replayer.DiscardOpen(&stats);

  // Certify the recovered state before anyone runs on it.
  Status certified = engine->db().CheckInvariants();
  if (!certified.ok()) {
    return Status::DataLoss("recovery certification failed: " +
                            certified.ToString());
  }

  stats.next_lsn = last_lsn + 1;
  stats.next_txn_id = replayer.max_txn_id() + 1;
  return stats;
}

}  // namespace wal
}  // namespace sopr
