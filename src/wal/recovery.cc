#include "wal/recovery.h"

#include <unistd.h>

#include <map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace wal {

namespace {

/// Re-executes a logged DDL script. The engine has no WAL attached yet,
/// so nothing is re-logged; rule definitions come back exactly as their
/// original SQL rendered them.
Status ReplayDdl(Engine* engine, const std::string& sql,
                 RecoveryStats* stats) {
  SOPR_FAILPOINT_RETURN("wal.recover.replay");
  Status applied = engine->Execute(sql);
  if (!applied.ok()) {
    return Status::DataLoss("recovery: logged DDL failed to re-execute (" +
                            applied.ToString() + "): " + sql);
  }
  ++stats->ddl_records;
  return Status::OK();
}

Status ReplayMutation(Engine* engine, const WalRecord& rec,
                      RecoveryStats* stats) {
  SOPR_FAILPOINT_RETURN("wal.recover.replay");
  Status applied = Status::OK();
  switch (rec.type) {
    case RecordType::kInsert:
      applied = engine->db().ApplyRedoInsert(rec.table, rec.handle, rec.after);
      break;
    case RecordType::kDelete:
      applied = engine->db().ApplyRedoDelete(rec.table, rec.handle,
                                             rec.before);
      break;
    case RecordType::kUpdate:
      applied = engine->db().ApplyRedoUpdate(rec.table, rec.handle,
                                             rec.before, rec.after);
      break;
    default:
      return Status::Internal("recovery: not a mutation record");
  }
  if (!applied.ok()) {
    if (applied.code() == StatusCode::kDataLoss) return applied;
    return Status::DataLoss("recovery: redo of lsn " +
                            std::to_string(rec.lsn) +
                            " failed: " + applied.ToString());
  }
  ++stats->replayed_records;
  return Status::OK();
}

/// Loads the installed snapshot, if any. Snapshot layout:
///   SnapshotHeader | Ddl(schema script) | Insert* | Ddl(rule script)
/// written to a temp file and renamed into place, so any damage at all is
/// kDataLoss — there is no legitimately torn snapshot.
Status LoadSnapshot(const std::string& dir, Engine* engine,
                    RecoveryStats* stats, uint64_t* covers_lsn,
                    uint64_t* last_lsn) {
  const std::string path = WalWriter::SnapshotPath(dir);
  SOPR_ASSIGN_OR_RETURN(ScanResult scan, ScanLogFile(path));
  if (scan.file_bytes == 0 && scan.records.empty()) return Status::OK();
  if (scan.end != ScanEnd::kClean) {
    return Status::DataLoss("snapshot " + path + " is damaged (" +
                            scan.detail + "); snapshots install atomically, "
                            "so this is corruption, not a torn write");
  }
  if (scan.records.empty() ||
      scan.records[0].type != RecordType::kSnapshotHeader) {
    return Status::DataLoss("snapshot " + path +
                            " does not start with a snapshot header");
  }
  const WalRecord& header = scan.records[0];
  for (size_t i = 1; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    switch (rec.type) {
      case RecordType::kDdl:
        SOPR_RETURN_NOT_OK(ReplayDdl(engine, rec.sql, stats));
        break;
      case RecordType::kInsert:
        SOPR_RETURN_NOT_OK(ReplayMutation(engine, rec, stats));
        break;
      default:
        return Status::DataLoss("snapshot " + path + ": unexpected " +
                                RecordTypeName(rec.type) + " record");
    }
  }
  engine->db().BumpNextHandle(header.next_handle);
  *covers_lsn = header.covers_lsn;
  *last_lsn = scan.records.back().lsn;
  stats->snapshot_loaded = true;
  return Status::OK();
}

}  // namespace

Result<RecoveryStats> RecoverDatabase(const std::string& dir,
                                      Engine* engine) {
  return RecoverDatabase(dir, engine, RecoverOptions{});
}

Result<RecoveryStats> RecoverDatabase(const std::string& dir, Engine* engine,
                                      const RecoverOptions& opts) {
  SOPR_FAILPOINT_RETURN("wal.recover.begin");
  RecoveryStats stats;

  // A leftover snapshot.tmp is an interrupted checkpoint that never
  // installed; discard it so a later checkpoint starts clean.
  ::unlink(WalWriter::SnapshotTmpPath(dir).c_str());

  uint64_t covers_lsn = 0;
  uint64_t last_lsn = 0;
  SOPR_RETURN_NOT_OK(
      LoadSnapshot(dir, engine, &stats, &covers_lsn, &last_lsn));
  if (opts.through_lsn != 0 && covers_lsn > opts.through_lsn) {
    return Status::InvalidArgument(
        "RecoverDatabase: through_lsn " + std::to_string(opts.through_lsn) +
        " predates the installed checkpoint (covers lsn " +
        std::to_string(covers_lsn) + "); that prefix is no longer in the log");
  }

  const std::string log_path = WalWriter::LogPath(dir);
  SOPR_ASSIGN_OR_RETURN(ScanResult scan, ScanLogFile(log_path));
  if (scan.end == ScanEnd::kCorrupt) {
    // Valid-looking data follows the damage: committed history would be
    // lost by truncating here. Hard error — never guess.
    return Status::DataLoss("wal.log: " + scan.detail);
  }
  if (scan.end == ScanEnd::kTornTail) {
    SOPR_FAILPOINT_RETURN("wal.recover.truncate");
    if (::truncate(log_path.c_str(), static_cast<off_t>(scan.valid_bytes)) !=
        0) {
      return Status::IoError("recovery: cannot truncate torn tail of " +
                             log_path);
    }
    stats.truncated_bytes = scan.file_bytes - scan.valid_bytes;
  }

  // Replay committed transactions in LSN order. Commit batches are
  // written contiguously, so at most the final group can be unfinished —
  // but recovery tolerates any interleaving as long as groups are
  // well-formed.
  std::map<uint64_t, std::vector<WalRecord>> open_txns;
  uint64_t max_txn_id = 0;
  for (WalRecord& rec : scan.records) {
    // Bounded replay: a transaction counts iff its COMMIT record (where
    // the group is applied) is within the bound. Mutation records of a
    // later commit stay buffered in open_txns and are discarded below.
    if (opts.through_lsn != 0 && rec.lsn > opts.through_lsn) break;
    if (rec.lsn > last_lsn) last_lsn = rec.lsn;
    if (rec.txn_id > max_txn_id) max_txn_id = rec.txn_id;
    if (rec.lsn <= covers_lsn) continue;  // baked into the snapshot
    switch (rec.type) {
      case RecordType::kBegin:
        if (!open_txns.emplace(rec.txn_id, std::vector<WalRecord>()).second) {
          return Status::DataLoss("wal.log: duplicate BEGIN for txn " +
                                  std::to_string(rec.txn_id));
        }
        break;
      case RecordType::kInsert:
      case RecordType::kDelete:
      case RecordType::kUpdate: {
        auto it = open_txns.find(rec.txn_id);
        if (it == open_txns.end()) {
          return Status::DataLoss("wal.log: redo record at lsn " +
                                  std::to_string(rec.lsn) +
                                  " for unknown txn " +
                                  std::to_string(rec.txn_id));
        }
        it->second.push_back(std::move(rec));
        break;
      }
      case RecordType::kCommit: {
        auto it = open_txns.find(rec.txn_id);
        if (it == open_txns.end()) {
          return Status::DataLoss("wal.log: COMMIT at lsn " +
                                  std::to_string(rec.lsn) +
                                  " for unknown txn " +
                                  std::to_string(rec.txn_id));
        }
        for (const WalRecord& redo : it->second) {
          SOPR_RETURN_NOT_OK(ReplayMutation(engine, redo, &stats));
        }
        engine->db().BumpNextHandle(rec.next_handle);
        open_txns.erase(it);
        ++stats.committed_txns;
        break;
      }
      case RecordType::kAbort:
        // Aborted transactions write nothing, but tolerate an explicit
        // marker: drop the group unreplayed.
        open_txns.erase(rec.txn_id);
        break;
      case RecordType::kDdl:
        SOPR_RETURN_NOT_OK(ReplayDdl(engine, rec.sql, &stats));
        break;
      case RecordType::kSnapshotHeader:
        return Status::DataLoss(
            "wal.log: snapshot header in the main log at lsn " +
            std::to_string(rec.lsn));
    }
  }
  // Whatever is still open lost its COMMIT to the torn tail: those
  // transactions never reached their durability point and are discarded.
  stats.discarded_txns = open_txns.size();

  // Certify the recovered state before anyone runs on it.
  Status certified = engine->db().CheckInvariants();
  if (!certified.ok()) {
    return Status::DataLoss("recovery certification failed: " +
                            certified.ToString());
  }

  stats.next_lsn = last_lsn + 1;
  stats.next_txn_id = max_txn_id + 1;
  return stats;
}

}  // namespace wal
}  // namespace sopr
