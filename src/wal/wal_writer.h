#ifndef SOPR_WAL_WAL_WRITER_H_
#define SOPR_WAL_WAL_WRITER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/redo_sink.h"
#include "wal/wal_format.h"
#include "wal/wal_options.h"

namespace sopr {
namespace wal {

/// One transaction's claim on the group-commit pipeline. Produced by
/// WalWriter::StageCommitTxn, resolved by whichever thread leads the
/// cohort that writes and syncs the batch. All fields are guarded by the
/// writer's internal mutex until `done` is set (after which they are
/// immutable).
struct CommitTicket {
  bool done = false;
  Status status;
  uint64_t last_lsn = 0;  // the batch's COMMIT record LSN
};
using CommitTicketPtr = std::shared_ptr<CommitTicket>;

/// Counters for the group-commit pipeline (docs/CONCURRENCY.md). A
/// "cohort" is one leader round: one contiguous file write and at most
/// one fsync covering every batch staged at the time the leader drained
/// the queue.
struct GroupCommitStats {
  uint64_t cohorts = 0;         // leader rounds
  uint64_t batches = 0;         // transaction batches written via cohorts
  uint64_t largest_cohort = 0;  // max batches in one round
  /// cohort_size_hist[n] = rounds that carried n batches; sizes above 16
  /// land in the last bucket. Index 0 is unused.
  std::array<uint64_t, 17> cohort_size_hist{};
};

/// Group-commit WAL writer. Redo records for the current transaction are
/// buffered in memory and written as ONE contiguous BEGIN + redo* + COMMIT
/// batch when the transaction commits; an aborted transaction writes
/// nothing. Consequences:
///   - the durable log never contains records of an uncommitted
///     transaction except as a truncatable torn tail of the final batch;
///   - partial rollback (RollbackTo a mid-transaction mark) simply drops
///     the matching buffer suffix — undone work never reaches disk;
///   - recovery replays committed transactions only and never re-fires
///     rules: rule-generated mutations were logged like any other.
///
/// Commit is split into two phases so concurrent sessions can amortize
/// the fsync (the classic group-commit optimization):
///   1. StageCommitTxn encodes the batch and deposits it on a shared
///      queue, returning a CommitTicket. The caller's in-memory commit
///      happens here, inside the front-end's single-writer section.
///   2. AwaitDurable blocks until the ticket resolves. The first waiter
///      that finds the queue non-empty and no leader active becomes the
///      cohort leader: it drains the whole queue, writes every staged
///      batch with one contiguous write, fsyncs ONCE, and wakes all
///      followers. Transactions that stage while a leader is mid-fsync
///      form the next cohort.
/// CommitTxn (stage + await back-to-back) keeps the old single-session
/// behavior: a cohort of one, written and synced inline.
///
/// DDL records are logical (the statement's SQL text) and are written
/// immediately — the engine executes DDL outside rule transactions. DDL,
/// checkpoints, and log truncation first Flush() the staged queue so
/// records always land in LSN order.
///
/// After an fsync failure the writer poisons itself: every later append
/// fails with the sticky error. Post-EIO page-cache state is unknowable,
/// so pretending later syncs succeed would be a lie (the "fsync-gate"
/// lesson). A failed batch *write* for a cohort of one is recovered from
/// instead: the torn tail is truncated back to the last durable size and
/// the writer stays usable (the single caller still holds its undo and
/// rolls back). A failed write for a cohort of SEVERAL batches poisons
/// too: the staging sessions already committed in memory and cannot be
/// individually rolled back, so the in-memory and durable states have
/// diverged for good.
///
/// Thread safety: the transaction-lifecycle half (BeginTxn, redo
/// buffering, AbortTxn, StageCommitTxn) operates on PER-THREAD state —
/// each thread buffers its own transaction, so concurrent writer
/// sessions stage independent batches (record-level locking keeps their
/// row sets disjoint). LSN assignment inside StageCommitTxn must still
/// be externally serialized against other stagers (the rule engine's
/// commit mutex) so file order equals LSN order. AwaitDurable, Flush,
/// and the accessors are safe from any thread.
class WalWriter : public RedoSink {
 public:
  explicit WalWriter(WalFsyncPolicy policy) : policy_(policy) {}
  ~WalWriter() override;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if absent) `dir`/wal.log for appending. `next_lsn`
  /// and `next_txn_id` continue the sequences found by recovery; both are
  /// 1 on a fresh directory. The existing file must already be scanned
  /// and truncated clean by recovery — its current size is taken as the
  /// durable watermark.
  Status Open(const std::string& dir, uint64_t next_lsn,
              uint64_t next_txn_id);
  /// Drains any staged batches (best effort), then closes the file.
  void Close();

  /// --- Transaction lifecycle (driven by the rule engine) ---
  void BeginTxn();
  /// Drops all buffered redo. Nothing was written, so there is nothing to
  /// undo on disk.
  void AbortTxn();
  /// Single-session commit: StageCommitTxn + AwaitDurable. The batch is
  /// written and synced per policy before this returns. On error the
  /// transaction is NOT durable and the caller must roll it back.
  Status CommitTxn(TupleHandle next_handle);
  bool in_txn() const;

  /// --- Group-commit pipeline ---
  /// Encodes the buffered batch (BEGIN + redo* + COMMIT carrying
  /// `next_handle`) and deposits it on the staging queue. Returns a null
  /// ticket for a read-only transaction (empty buffer — nothing to make
  /// durable). On failure the transaction state is left intact so the
  /// caller can abort. Must run inside the front-end's serialized commit
  /// section.
  Result<CommitTicketPtr> StageCommitTxn(TupleHandle next_handle);
  /// Blocks until `ticket`'s cohort has been written and synced, leading
  /// the cohort if no other thread is. Null tickets (read-only) return OK
  /// immediately. Safe from any thread, with no engine lock held.
  Status AwaitDurable(const CommitTicketPtr& ticket);
  /// Drains the staging queue completely (leading cohorts as needed).
  /// Returns the poison status if the writer is poisoned; individual
  /// batch failures are reported on their tickets, not here.
  Status Flush();

  /// --- RedoSink ---
  Status RedoInsert(UndoLog::Mark pos, std::string_view table,
                    TupleHandle handle, const Row& after) override;
  Status RedoDelete(UndoLog::Mark pos, std::string_view table,
                    TupleHandle handle, const Row& before) override;
  Status RedoUpdate(UndoLog::Mark pos, std::string_view table,
                    TupleHandle handle, const Row& before,
                    const Row& after) override;
  void RedoDiscardAfter(UndoLog::Mark mark) override;

  /// Logs a DDL statement (schema or rule catalog change) and syncs per
  /// policy. The statement has already been applied in memory; its
  /// durability point is this call returning OK. Must not be called with
  /// buffered DML (DDL never executes inside a rule transaction). Flushes
  /// the staged queue first so the record lands in LSN order.
  Status AppendDdl(std::string_view sql);

  /// --- Checkpoint support ---
  uint64_t AllocateLsn() {
    return next_lsn_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t next_lsn() const { return next_lsn_.load(std::memory_order_relaxed); }
  /// Last LSN actually durable in the main log (0 if none).
  uint64_t durable_lsn() const;
  uint64_t commits_since_checkpoint() const;
  /// Truncates the main log to empty after a snapshot covering it has
  /// been installed. LSNs keep counting — they never reset. The caller
  /// (checkpoint writer) must have Flush()ed already — it needs the
  /// drained durable_lsn for the snapshot's covers_lsn anyway.
  Status StartNewLog();

  WalFsyncPolicy policy() const { return policy_; }
  const std::string& dir() const { return dir_; }
  /// Sticky failure after a lost fsync (OK while the writer is usable).
  Status poison_status() const;
  GroupCommitStats group_stats() const;

  /// Syncs `path`'s bytes to stable storage per `policy` (no-op for
  /// kOff). Exposed for the checkpoint writer.
  static Status SyncFile(const std::string& path, WalFsyncPolicy policy,
                         const char* failpoint_site);
  static Status SyncDir(const std::string& dir, WalFsyncPolicy policy);

  static std::string LogPath(const std::string& dir);
  static std::string SnapshotPath(const std::string& dir);
  static std::string SnapshotTmpPath(const std::string& dir);

 private:
  struct Pending {
    UndoLog::Mark pos;  // undo-log index; RedoDiscardAfter key
    WalRecord rec;      // lsn assigned at commit time
  };
  /// One encoded transaction batch waiting for a cohort leader.
  struct StagedBatch {
    std::string bytes;
    uint64_t last_lsn = 0;
    CommitTicketPtr ticket;
  };

  /// One thread's in-flight transaction: its id and buffered redo.
  struct TxnBuf {
    bool in_txn = false;
    uint64_t txn_id = 0;
    std::vector<Pending> buffer;
  };
  /// The calling thread's buffer for THIS writer (created on demand).
  TxnBuf& tls() const;
  /// Drops the calling thread's slot (transaction over).
  void DropTls() const;

  Status BufferRedo(UndoLog::Mark pos, WalRecord rec);
  /// Writes `bytes` at `offset` (split in two for the wal.write.mid
  /// torn-write site). On failure truncates the file back to `offset`;
  /// *poison is set when even that fails (tail unknowable — the caller
  /// must poison the writer). Pure file I/O — no writer bookkeeping;
  /// called without the mutex.
  Status WriteAt(uint64_t offset, const std::string& bytes, Status* poison);
  /// fsync guarded by the `failpoint_site` then wal.sync sites; a real or
  /// injected wal.sync failure poisons the writer. Called without the
  /// mutex.
  Status SyncSelf(const char* failpoint_site);
  /// Leads one cohort: drains the whole staging queue, writes it as one
  /// contiguous extent, syncs once, resolves every ticket. Expects
  /// `*lock` held and no leader active; temporarily releases the lock for
  /// file I/O and reacquires before returning.
  void LeadCohortLocked(std::unique_lock<std::mutex>* lock);
  Status CheckUsableLocked() const;

  const WalFsyncPolicy policy_;
  std::string dir_;  // set at Open
  int fd_ = -1;      // set at Open/Close only (quiesced transitions)

  // LSN / txn-id sequences: fetch_add from the serialized commit section
  // and the checkpoint writer; read anywhere.
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> next_txn_id_{1};

  // Group-commit state, guarded by mu_.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t durable_size_ = 0;  // bytes of wal.log known well-formed
  uint64_t durable_lsn_ = 0;
  uint64_t commits_since_checkpoint_ = 0;
  std::vector<StagedBatch> staged_;
  bool leader_active_ = false;
  Status poisoned_ = Status::OK();
  GroupCommitStats stats_;
};

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_WAL_WRITER_H_
