#ifndef SOPR_WAL_WAL_WRITER_H_
#define SOPR_WAL_WAL_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/redo_sink.h"
#include "wal/wal_format.h"
#include "wal/wal_options.h"

namespace sopr {
namespace wal {

/// Group-commit WAL writer. Redo records for the current transaction are
/// buffered in memory and written as ONE contiguous BEGIN + redo* + COMMIT
/// batch when the transaction commits; an aborted transaction writes
/// nothing. Consequences:
///   - the durable log never contains records of an uncommitted
///     transaction except as a truncatable torn tail of the final batch;
///   - partial rollback (RollbackTo a mid-transaction mark) simply drops
///     the matching buffer suffix — undone work never reaches disk;
///   - recovery replays committed transactions only and never re-fires
///     rules: rule-generated mutations were logged like any other.
///
/// DDL records are logical (the statement's SQL text) and are written
/// immediately — the engine executes DDL outside rule transactions.
///
/// After an fsync failure the writer poisons itself: every later append
/// fails with the sticky error. Post-EIO page-cache state is unknowable,
/// so pretending later syncs succeed would be a lie (the "fsync-gate"
/// lesson). A failed batch *write* is recovered from instead: the torn
/// tail is truncated back to the last durable size and the writer stays
/// usable.
class WalWriter : public RedoSink {
 public:
  explicit WalWriter(WalFsyncPolicy policy) : policy_(policy) {}
  ~WalWriter() override;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if absent) `dir`/wal.log for appending. `next_lsn`
  /// and `next_txn_id` continue the sequences found by recovery; both are
  /// 1 on a fresh directory. The existing file must already be scanned
  /// and truncated clean by recovery — its current size is taken as the
  /// durable watermark.
  Status Open(const std::string& dir, uint64_t next_lsn,
              uint64_t next_txn_id);
  void Close();

  /// --- Transaction lifecycle (driven by the rule engine) ---
  void BeginTxn();
  /// Drops all buffered redo. Nothing was written, so there is nothing to
  /// undo on disk.
  void AbortTxn();
  /// Writes the buffered batch (BEGIN + redo* + COMMIT carrying
  /// `next_handle`) and syncs per policy. A read-only transaction (empty
  /// buffer) writes nothing. On error the transaction is NOT durable and
  /// the caller must roll it back.
  Status CommitTxn(TupleHandle next_handle);
  bool in_txn() const { return in_txn_; }

  /// --- RedoSink ---
  Status RedoInsert(UndoLog::Mark pos, std::string_view table,
                    TupleHandle handle, const Row& after) override;
  Status RedoDelete(UndoLog::Mark pos, std::string_view table,
                    TupleHandle handle, const Row& before) override;
  Status RedoUpdate(UndoLog::Mark pos, std::string_view table,
                    TupleHandle handle, const Row& before,
                    const Row& after) override;
  void RedoDiscardAfter(UndoLog::Mark mark) override;

  /// Logs a DDL statement (schema or rule catalog change) and syncs per
  /// policy. The statement has already been applied in memory; its
  /// durability point is this call returning OK. Must not be called with
  /// buffered DML (DDL never executes inside a rule transaction).
  Status AppendDdl(std::string_view sql);

  /// --- Checkpoint support ---
  uint64_t AllocateLsn() { return next_lsn_++; }
  uint64_t next_lsn() const { return next_lsn_; }
  /// Last LSN actually durable in the main log (0 if none).
  uint64_t durable_lsn() const { return durable_lsn_; }
  uint64_t commits_since_checkpoint() const {
    return commits_since_checkpoint_;
  }
  /// Truncates the main log to empty after a snapshot covering it has
  /// been installed. LSNs keep counting — they never reset.
  Status StartNewLog();

  WalFsyncPolicy policy() const { return policy_; }
  const std::string& dir() const { return dir_; }

  /// Syncs `path`'s bytes to stable storage per `policy` (no-op for
  /// kOff). Exposed for the checkpoint writer.
  static Status SyncFile(const std::string& path, WalFsyncPolicy policy,
                         const char* failpoint_site);
  static Status SyncDir(const std::string& dir, WalFsyncPolicy policy);

  static std::string LogPath(const std::string& dir);
  static std::string SnapshotPath(const std::string& dir);
  static std::string SnapshotTmpPath(const std::string& dir);

 private:
  struct Pending {
    UndoLog::Mark pos;  // undo-log index; RedoDiscardAfter key
    WalRecord rec;      // lsn assigned at commit time
  };

  Status BufferRedo(UndoLog::Mark pos, WalRecord rec);
  /// Writes `batch` at the durable watermark (split in two for the
  /// wal.write.mid torn-write site) and advances the watermark. On a
  /// partial write, truncates back to the watermark.
  Status WriteBatch(const std::string& batch, uint64_t last_lsn);
  Status SyncSelf(const char* failpoint_site);
  Status CheckUsable() const;

  WalFsyncPolicy policy_;
  std::string dir_;
  int fd_ = -1;
  uint64_t durable_size_ = 0;  // bytes of wal.log known well-formed
  uint64_t durable_lsn_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t next_txn_id_ = 1;
  uint64_t commits_since_checkpoint_ = 0;
  bool in_txn_ = false;
  uint64_t txn_id_ = 0;
  std::vector<Pending> buffer_;
  Status poisoned_ = Status::OK();
};

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_WAL_WRITER_H_
