#include "wal/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "engine/engine.h"
#include "io/dump.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace wal {

namespace {

Status WriteFileAtomicPrep(const std::string& path,
                           const std::string& bytes) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s =
          Status::IoError("write " + path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::close(fd) != 0) {
    return Status::IoError("close " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(Engine* engine, WalWriter* wal) {
  SOPR_FAILPOINT_RETURN("wal.checkpoint.begin");
  if (engine->in_transaction()) {
    return Status::Internal("checkpoint inside a transaction");
  }

  // Drain the group-commit staging queue first: a batch that is staged
  // but unwritten is already part of the in-memory state the snapshot
  // captures; leaving it to be written to the post-truncation log would
  // replay it on top of the snapshot (double-apply -> kDataLoss).
  SOPR_RETURN_NOT_OK(wal->Flush());

  // The snapshot covers everything durable in the main log right now;
  // stale records (lsn <= covers_lsn) become recovery no-ops the moment
  // the snapshot installs.
  const uint64_t covers_lsn = wal->durable_lsn();

  std::string image;
  AppendRecord(&image,
               WalRecord::SnapshotHeader(wal->AllocateLsn(), covers_lsn,
                                         engine->db().next_handle()));
  SOPR_ASSIGN_OR_RETURN(std::string schema_sql, DumpSchemaSql(engine));
  if (!schema_sql.empty()) {
    AppendRecord(&image, WalRecord::Ddl(wal->AllocateLsn(), schema_sql));
  }
  for (const std::string& name : engine->db().catalog().TableNames()) {
    SOPR_ASSIGN_OR_RETURN(const Table* table, engine->db().GetTable(name));
    for (const auto& [handle, row] : table->rows()) {
      AppendRecord(&image, WalRecord::Insert(wal->AllocateLsn(), 0,
                                             ToLower(name), handle, row));
    }
  }
  SOPR_ASSIGN_OR_RETURN(std::string rules_sql, DumpRulesSql(engine));
  if (!rules_sql.empty()) {
    AppendRecord(&image, WalRecord::Ddl(wal->AllocateLsn(), rules_sql));
  }

  const std::string& dir = wal->dir();
  const std::string tmp = WalWriter::SnapshotTmpPath(dir);
  SOPR_FAILPOINT_RETURN("wal.checkpoint.write");
  SOPR_RETURN_NOT_OK(WriteFileAtomicPrep(tmp, image));
  SOPR_RETURN_NOT_OK(
      WalWriter::SyncFile(tmp, wal->policy(), "wal.checkpoint.sync"));

  SOPR_FAILPOINT_RETURN("wal.checkpoint.install");
  const std::string final_path = WalWriter::SnapshotPath(dir);
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + final_path + ": " +
                           std::strerror(errno));
  }
  SOPR_RETURN_NOT_OK(WalWriter::SyncDir(dir, wal->policy()));

  // The snapshot is durable and installed; the log it covers can go.
  SOPR_RETURN_NOT_OK(wal->StartNewLog());

  // MVCC garbage collection rides the checkpoint wall: drop row versions
  // no pinned snapshot can still see. With no readers the floor is the
  // commit head — all superseded versions go.
  if (engine->db().mvcc_enabled()) {
    engine->db().PruneVersions(engine->db().snapshots().OldestPinnedOr(
        engine->db().last_commit_lsn()));
  }
  return Status::OK();
}

}  // namespace wal
}  // namespace sopr
