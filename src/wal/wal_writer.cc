#include "wal/wal_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace sopr {
namespace wal {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Full-buffer pwrite loop (short writes retried).
Status PWriteAll(int fd, const char* data, size_t len, uint64_t offset,
                 const char* what) {
  while (len > 0) {
    ssize_t n = ::pwrite(fd, data, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno(what);
    }
    data += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

}  // namespace

WalWriter::~WalWriter() { Close(); }

std::string WalWriter::LogPath(const std::string& dir) {
  return dir + "/wal.log";
}
std::string WalWriter::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.wal";
}
std::string WalWriter::SnapshotTmpPath(const std::string& dir) {
  return dir + "/snapshot.tmp";
}

Status WalWriter::Open(const std::string& dir, uint64_t next_lsn,
                       uint64_t next_txn_id) {
  if (fd_ >= 0) return Status::Internal("WalWriter::Open: already open");
  dir_ = dir;
  const std::string path = LogPath(dir);
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat " + path);
    ::close(fd);
    return s;
  }
  fd_ = fd;
  durable_size_ = static_cast<uint64_t>(st.st_size);
  next_lsn_ = next_lsn;
  durable_lsn_ = next_lsn > 0 ? next_lsn - 1 : 0;
  next_txn_id_ = next_txn_id;
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::CheckUsable() const {
  if (fd_ < 0) return Status::Internal("WalWriter: not open");
  if (!poisoned_.ok()) return poisoned_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transaction lifecycle + redo buffering
// ---------------------------------------------------------------------------

void WalWriter::BeginTxn() {
  in_txn_ = true;
  txn_id_ = next_txn_id_++;
  buffer_.clear();
}

void WalWriter::AbortTxn() {
  in_txn_ = false;
  buffer_.clear();
}

Status WalWriter::BufferRedo(UndoLog::Mark pos, WalRecord rec) {
  SOPR_RETURN_NOT_OK(CheckUsable());
  if (!in_txn_) {
    return Status::Internal("wal: redo for " + rec.table +
                            " outside a transaction");
  }
  SOPR_FAILPOINT_RETURN("wal.append");
  buffer_.push_back(Pending{pos, std::move(rec)});
  return Status::OK();
}

Status WalWriter::RedoInsert(UndoLog::Mark pos, std::string_view table,
                             TupleHandle handle, const Row& after) {
  return BufferRedo(
      pos, WalRecord::Insert(0, txn_id_, std::string(table), handle, after));
}

Status WalWriter::RedoDelete(UndoLog::Mark pos, std::string_view table,
                             TupleHandle handle, const Row& before) {
  return BufferRedo(
      pos, WalRecord::Delete(0, txn_id_, std::string(table), handle, before));
}

Status WalWriter::RedoUpdate(UndoLog::Mark pos, std::string_view table,
                             TupleHandle handle, const Row& before,
                             const Row& after) {
  return BufferRedo(pos, WalRecord::Update(0, txn_id_, std::string(table),
                                           handle, before, after));
}

void WalWriter::RedoDiscardAfter(UndoLog::Mark mark) {
  while (!buffer_.empty() && buffer_.back().pos >= mark) {
    buffer_.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Durable writes
// ---------------------------------------------------------------------------

Status WalWriter::SyncSelf(const char* failpoint_site) {
  SOPR_FAILPOINT_RETURN(failpoint_site);
  if (policy_ == WalFsyncPolicy::kOff) return Status::OK();
  Status injected = SOPR_FAILPOINT("wal.sync");
  if (injected.ok() && ::fsync(fd_) == 0) return Status::OK();
  // After a failed fsync the page-cache state is unknowable: the kernel
  // may have dropped the dirty pages while the file still looks written.
  // Poison the writer so no later commit claims durability it lacks.
  poisoned_ = injected.ok() ? Errno("fsync wal.log") : injected;
  return poisoned_;
}

Status WalWriter::WriteBatch(const std::string& batch, uint64_t last_lsn) {
  SOPR_FAILPOINT_RETURN("wal.write");
  // The batch is written in two halves with a failpoint between them, so
  // the crash harness can interrupt a commit mid-write and recovery must
  // see a torn tail. With the site unarmed the extra pwrite is noise.
  const size_t half = batch.size() / 2;
  Status s = PWriteAll(fd_, batch.data(), half, durable_size_, "write wal.log");
  if (s.ok()) {
    s = SOPR_FAILPOINT("wal.write.mid");
  }
  if (s.ok()) {
    s = PWriteAll(fd_, batch.data() + half, batch.size() - half,
                  durable_size_ + half, "write wal.log");
  }
  if (!s.ok()) {
    // Scrub the torn garbage so later commits append to a clean log. If
    // even that fails the file tail is unknowable — poison the writer.
    FailpointRegistry::SuppressScope no_failpoints;
    if (::ftruncate(fd_, static_cast<off_t>(durable_size_)) != 0) {
      poisoned_ = Errno("ftruncate wal.log after failed write");
    }
    return s;
  }
  durable_size_ += batch.size();
  durable_lsn_ = last_lsn;
  return Status::OK();
}

Status WalWriter::CommitTxn(TupleHandle next_handle) {
  if (!in_txn_) return Status::Internal("wal: commit outside a transaction");
  SOPR_RETURN_NOT_OK(CheckUsable());
  if (buffer_.empty()) {
    // Read-only transaction: nothing to make durable. (Handles consumed
    // by rolled-back inserts may be re-consumed after a crash; an aborted
    // transaction's tuples exist nowhere durable, so this is
    // unobservable.)
    in_txn_ = false;
    return Status::OK();
  }
  SOPR_FAILPOINT_RETURN("wal.commit.pre");
  std::string batch;
  uint64_t lsn = 0;
  AppendRecord(&batch, WalRecord::Begin(lsn = AllocateLsn(), txn_id_));
  for (Pending& p : buffer_) {
    p.rec.lsn = lsn = AllocateLsn();
    AppendRecord(&batch, p.rec);
  }
  AppendRecord(&batch,
               WalRecord::Commit(lsn = AllocateLsn(), txn_id_, next_handle));
  SOPR_RETURN_NOT_OK(WriteBatch(batch, lsn));
  if (policy_ != WalFsyncPolicy::kOff) {
    SOPR_RETURN_NOT_OK(SyncSelf("wal.commit.sync"));
  } else {
    SOPR_FAILPOINT_RETURN("wal.commit.sync");
  }
  buffer_.clear();
  in_txn_ = false;
  ++commits_since_checkpoint_;
  return Status::OK();
}

Status WalWriter::AppendDdl(std::string_view sql) {
  SOPR_RETURN_NOT_OK(CheckUsable());
  if (!buffer_.empty()) {
    return Status::Internal(
        "wal: DDL with buffered DML (DDL must not run inside a rule "
        "transaction)");
  }
  SOPR_FAILPOINT_RETURN("wal.ddl.append");
  std::string batch;
  const uint64_t lsn = AllocateLsn();
  AppendRecord(&batch, WalRecord::Ddl(lsn, std::string(sql)));
  SOPR_RETURN_NOT_OK(WriteBatch(batch, lsn));
  if (policy_ != WalFsyncPolicy::kOff) {
    SOPR_RETURN_NOT_OK(SyncSelf("wal.sync"));
  }
  return Status::OK();
}

Status WalWriter::StartNewLog() {
  SOPR_RETURN_NOT_OK(CheckUsable());
  SOPR_FAILPOINT_RETURN("wal.checkpoint.truncate");
  if (::ftruncate(fd_, 0) != 0) {
    return Errno("ftruncate wal.log");
  }
  durable_size_ = 0;
  commits_since_checkpoint_ = 0;
  if (policy_ != WalFsyncPolicy::kOff) {
    SOPR_RETURN_NOT_OK(SyncSelf("wal.sync"));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Static sync helpers (checkpoint install)
// ---------------------------------------------------------------------------

Status WalWriter::SyncFile(const std::string& path, WalFsyncPolicy policy,
                           const char* failpoint_site) {
  SOPR_FAILPOINT_RETURN(failpoint_site);
  if (policy == WalFsyncPolicy::kOff) return Status::OK();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open " + path);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = Errno("fsync " + path);
  ::close(fd);
  return s;
}

Status WalWriter::SyncDir(const std::string& dir, WalFsyncPolicy policy) {
  if (policy == WalFsyncPolicy::kOff) return Status::OK();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir " + dir);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = Errno("fsync dir " + dir);
  ::close(fd);
  return s;
}

}  // namespace wal
}  // namespace sopr
