#include "wal/wal_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/cancel.h"
#include "common/failpoint.h"

namespace sopr {
namespace wal {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Full-buffer pwrite loop (short writes retried).
Status PWriteAll(int fd, const char* data, size_t len, uint64_t offset,
                 const char* what) {
  while (len > 0) {
    ssize_t n = ::pwrite(fd, data, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno(what);
    }
    data += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

}  // namespace

WalWriter::~WalWriter() { Close(); }

std::string WalWriter::LogPath(const std::string& dir) {
  return dir + "/wal.log";
}
std::string WalWriter::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.wal";
}
std::string WalWriter::SnapshotTmpPath(const std::string& dir) {
  return dir + "/snapshot.tmp";
}

Status WalWriter::Open(const std::string& dir, uint64_t next_lsn,
                       uint64_t next_txn_id) {
  if (fd_ >= 0) return Status::Internal("WalWriter::Open: already open");
  dir_ = dir;
  const std::string path = LogPath(dir);
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat " + path);
    ::close(fd);
    return s;
  }
  fd_ = fd;
  durable_size_ = static_cast<uint64_t>(st.st_size);
  next_lsn_.store(next_lsn, std::memory_order_relaxed);
  durable_lsn_ = next_lsn > 0 ? next_lsn - 1 : 0;
  next_txn_id_.store(next_txn_id, std::memory_order_relaxed);
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    // Best effort: resolve any batches still on the staging queue so no
    // AwaitDurable caller is left blocked against a closed file.
    (void)Flush();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::CheckUsableLocked() const {
  if (fd_ < 0) return Status::Internal("WalWriter: not open");
  if (!poisoned_.ok()) return poisoned_;
  return Status::OK();
}

Status WalWriter::poison_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t WalWriter::commits_since_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commits_since_checkpoint_;
}

GroupCommitStats WalWriter::group_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Transaction lifecycle + redo buffering
// ---------------------------------------------------------------------------

// Per-thread transaction slots, one per writer this thread drives. The
// key is the writer's address; a slot is reset when its transaction ends
// (and a fresh BeginTxn fully resets one anyway).
WalWriter::TxnBuf& WalWriter::tls() const {
  thread_local std::vector<std::pair<const WalWriter*, TxnBuf>> slots;
  for (auto& [writer, buf] : slots) {
    if (writer == this) return buf;
  }
  slots.emplace_back(this, TxnBuf{});
  return slots.back().second;
}

void WalWriter::DropTls() const {
  // Reset rather than erase: tls() hands out references into the vector,
  // and a same-thread re-Begin recreates identical state anyway.
  TxnBuf& buf = tls();
  buf.in_txn = false;
  buf.txn_id = 0;
  buf.buffer.clear();
}

void WalWriter::BeginTxn() {
  TxnBuf& buf = tls();
  buf.in_txn = true;
  buf.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  buf.buffer.clear();
}

void WalWriter::AbortTxn() { DropTls(); }

bool WalWriter::in_txn() const { return tls().in_txn; }

Status WalWriter::BufferRedo(UndoLog::Mark pos, WalRecord rec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SOPR_RETURN_NOT_OK(CheckUsableLocked());
  }
  TxnBuf& buf = tls();
  if (!buf.in_txn) {
    return Status::Internal("wal: redo for " + rec.table +
                            " outside a transaction");
  }
  SOPR_FAILPOINT_RETURN("wal.append");
  buf.buffer.push_back(Pending{pos, std::move(rec)});
  return Status::OK();
}

Status WalWriter::RedoInsert(UndoLog::Mark pos, std::string_view table,
                             TupleHandle handle, const Row& after) {
  return BufferRedo(pos, WalRecord::Insert(0, tls().txn_id,
                                           std::string(table), handle, after));
}

Status WalWriter::RedoDelete(UndoLog::Mark pos, std::string_view table,
                             TupleHandle handle, const Row& before) {
  return BufferRedo(pos, WalRecord::Delete(0, tls().txn_id,
                                           std::string(table), handle,
                                           before));
}

Status WalWriter::RedoUpdate(UndoLog::Mark pos, std::string_view table,
                             TupleHandle handle, const Row& before,
                             const Row& after) {
  return BufferRedo(pos, WalRecord::Update(0, tls().txn_id,
                                           std::string(table), handle, before,
                                           after));
}

void WalWriter::RedoDiscardAfter(UndoLog::Mark mark) {
  TxnBuf& buf = tls();
  while (!buf.buffer.empty() && buf.buffer.back().pos >= mark) {
    buf.buffer.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Durable writes
// ---------------------------------------------------------------------------

Status WalWriter::SyncSelf(const char* failpoint_site) {
  SOPR_FAILPOINT_RETURN(failpoint_site);
  if (policy_ == WalFsyncPolicy::kOff) return Status::OK();
  Status injected = SOPR_FAILPOINT("wal.sync");
  if (injected.ok() && ::fsync(fd_) == 0) return Status::OK();
  // After a failed fsync the page-cache state is unknowable: the kernel
  // may have dropped the dirty pages while the file still looks written.
  // Poison the writer so no later commit claims durability it lacks.
  Status failure = injected.ok() ? Errno("fsync wal.log") : injected;
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_.ok()) poisoned_ = failure;
  return failure;
}

Status WalWriter::WriteAt(uint64_t offset, const std::string& bytes,
                          Status* poison) {
  SOPR_FAILPOINT_RETURN("wal.write");
  // The extent is written in two halves with a failpoint between them, so
  // the crash harness can interrupt a commit mid-write and recovery must
  // see a torn tail. With the site unarmed the extra pwrite is noise.
  const size_t half = bytes.size() / 2;
  Status s = PWriteAll(fd_, bytes.data(), half, offset, "write wal.log");
  if (s.ok()) {
    s = SOPR_FAILPOINT("wal.write.mid");
  }
  if (s.ok()) {
    s = PWriteAll(fd_, bytes.data() + half, bytes.size() - half, offset + half,
                  "write wal.log");
  }
  if (!s.ok()) {
    // Scrub the torn garbage so later commits append to a clean log. If
    // even that fails the file tail is unknowable — the caller must
    // poison the writer.
    FailpointRegistry::SuppressScope no_failpoints;
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      *poison = Errno("ftruncate wal.log after failed write");
    }
  }
  return s;
}

Result<CommitTicketPtr> WalWriter::StageCommitTxn(TupleHandle next_handle) {
  TxnBuf& buf = tls();
  if (!buf.in_txn) {
    return Status::Internal("wal: commit outside a transaction");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    SOPR_RETURN_NOT_OK(CheckUsableLocked());
  }
  if (buf.buffer.empty()) {
    // Read-only transaction: nothing to make durable. (Handles consumed
    // by rolled-back inserts may be re-consumed after a crash; an aborted
    // transaction's tuples exist nowhere durable, so this is
    // unobservable.)
    DropTls();
    return CommitTicketPtr();
  }
  SOPR_FAILPOINT_RETURN("wal.commit.pre");
  std::string batch;
  uint64_t lsn = 0;
  AppendRecord(&batch, WalRecord::Begin(lsn = AllocateLsn(), buf.txn_id));
  for (Pending& p : buf.buffer) {
    p.rec.lsn = lsn = AllocateLsn();
    AppendRecord(&batch, p.rec);
  }
  AppendRecord(&batch,
               WalRecord::Commit(lsn = AllocateLsn(), buf.txn_id, next_handle));
  auto ticket = std::make_shared<CommitTicket>();
  ticket->last_lsn = lsn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    staged_.push_back(StagedBatch{std::move(batch), lsn, ticket});
  }
  DropTls();
  return ticket;
}

void WalWriter::LeadCohortLocked(std::unique_lock<std::mutex>* lock) {
  leader_active_ = true;
  std::vector<StagedBatch> cohort = std::move(staged_);
  staged_.clear();
  const uint64_t offset = durable_size_;
  Status verdict = poisoned_;
  Status write_poison = Status::OK();
  bool sync_failed = false;
  uint64_t last_lsn = 0;
  size_t total = 0;
  if (verdict.ok()) {
    lock->unlock();
    std::string bytes;
    for (const StagedBatch& b : cohort) total += b.bytes.size();
    bytes.reserve(total);
    for (const StagedBatch& b : cohort) {
      bytes += b.bytes;
      last_lsn = b.last_lsn;
    }
    verdict = SOPR_FAILPOINT("wal.group_commit.lead");
    if (verdict.ok()) verdict = WriteAt(offset, bytes, &write_poison);
    if (verdict.ok()) {
      // The cohort's durability point. Site order matches the historical
      // single-writer path: wal.commit.sync fires under every policy; the
      // real fsync (and its wal.sync site) only when syncing is on.
      verdict = SOPR_FAILPOINT("wal.commit.sync");
      if (verdict.ok()) verdict = SOPR_FAILPOINT("wal.group_commit.sync");
      if (verdict.ok() && policy_ != WalFsyncPolicy::kOff) {
        Status injected = SOPR_FAILPOINT("wal.sync");
        if (!injected.ok() || ::fsync(fd_) != 0) {
          verdict = injected.ok() ? Errno("fsync wal.log") : injected;
          sync_failed = true;
          // Best-effort scrub of the unsynced tail so a later restart of
          // this still-running process cannot resurrect commits every
          // ticket here reports as failed. The writer poisons below
          // regardless — after a lost fsync nothing about the file can
          // be trusted — so a failed ftruncate changes nothing.
          (void)::ftruncate(fd_, static_cast<off_t>(offset));
        }
      }
    }
    lock->lock();
  }
  if (verdict.ok()) {
    durable_size_ = offset + total;
    durable_lsn_ = last_lsn;
    commits_since_checkpoint_ += cohort.size();
    ++stats_.cohorts;
    stats_.batches += cohort.size();
    stats_.largest_cohort =
        std::max<uint64_t>(stats_.largest_cohort, cohort.size());
    ++stats_.cohort_size_hist[std::min<size_t>(cohort.size(), 16)];
  } else if (poisoned_.ok()) {
    if (!write_poison.ok()) {
      // The torn tail could not even be scrubbed: the file's end is
      // unknowable.
      poisoned_ = write_poison;
    } else if (sync_failed || cohort.size() > 1) {
      // A lost fsync always poisons (page-cache state unknowable). A
      // failed WRITE poisons only for a multi-batch cohort: those
      // sessions already committed in memory and cannot be individually
      // rolled back, so in-memory and durable state have diverged. A
      // cohort of one keeps the legacy behavior — the single caller
      // still holds its undo log and rolls back.
      poisoned_ = verdict;
    }
  }
  for (StagedBatch& b : cohort) {
    b.ticket->status = verdict;
    b.ticket->done = true;
  }
  leader_active_ = false;
  cv_.notify_all();
}

Status WalWriter::AwaitDurable(const CommitTicketPtr& ticket) {
  if (ticket == nullptr) return Status::OK();  // read-only transaction
  const CancelContext* cancel = CancelScope::Current();
  std::unique_lock<std::mutex> lock(mu_);
  while (!ticket->done) {
    if (!leader_active_ && !staged_.empty()) {
      // Leading is bounded work (one write + one fsync) and makes the
      // whole cohort durable — never skipped for cancellation, or a
      // cancelled waiter could abandon OTHER sessions' staged batches.
      LeadCohortLocked(&lock);
      continue;
    }
    if (cancel == nullptr || cancel->empty()) {
      cv_.wait(lock);
      continue;
    }
    // Another leader is mid-fsync and this waiter's budget may expire.
    // Giving up does NOT unstage the batch — it is already on the queue
    // (or in the running cohort) and a later leader/Flush completes it.
    // So the verdict is "outcome unknown, durability pending", not
    // "failed": the transaction is committed in memory and must NOT be
    // rolled back or treated as a durability fault (docs/OVERLOAD.md).
    Status interrupted = cancel->Check("durability wait");
    if (!interrupted.ok()) {
      return Status(interrupted.code(),
                    "durability wait interrupted; commit outcome unknown "
                    "(batch remains staged): " + interrupted.message());
    }
    const Deadline bound = cancel->deadline();
    CancelClock::time_point until =
        bound.has_deadline() ? bound.at() : CancelClock::time_point::max();
    if (cancel->has_tokens()) {
      until = std::min(until, CancelClock::now() + kCancelPollQuantum);
    }
    cv_.wait_until(lock, until);
  }
  return ticket->status;
}

Status WalWriter::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  while (leader_active_ || !staged_.empty()) {
    if (!leader_active_) {
      LeadCohortLocked(&lock);
    } else {
      cv_.wait(lock);
    }
  }
  return poisoned_;
}

Status WalWriter::CommitTxn(TupleHandle next_handle) {
  SOPR_ASSIGN_OR_RETURN(CommitTicketPtr ticket, StageCommitTxn(next_handle));
  return AwaitDurable(ticket);
}

Status WalWriter::AppendDdl(std::string_view sql) {
  if (!tls().buffer.empty()) {
    return Status::Internal(
        "wal: DDL with buffered DML (DDL must not run inside a rule "
        "transaction)");
  }
  // Drain staged commits first: their LSNs precede this record's.
  SOPR_RETURN_NOT_OK(Flush());
  {
    std::lock_guard<std::mutex> lock(mu_);
    SOPR_RETURN_NOT_OK(CheckUsableLocked());
  }
  SOPR_FAILPOINT_RETURN("wal.ddl.append");
  std::string batch;
  const uint64_t lsn = AllocateLsn();
  AppendRecord(&batch, WalRecord::Ddl(lsn, std::string(sql)));
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    offset = durable_size_;
  }
  Status write_poison = Status::OK();
  Status written = WriteAt(offset, batch, &write_poison);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!write_poison.ok() && poisoned_.ok()) poisoned_ = write_poison;
    if (written.ok()) {
      durable_size_ = offset + batch.size();
      durable_lsn_ = lsn;
    }
  }
  SOPR_RETURN_NOT_OK(written);
  if (policy_ != WalFsyncPolicy::kOff) {
    SOPR_RETURN_NOT_OK(SyncSelf("wal.sync"));
  }
  return Status::OK();
}

Status WalWriter::StartNewLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SOPR_RETURN_NOT_OK(CheckUsableLocked());
    if (leader_active_ || !staged_.empty()) {
      return Status::Internal(
          "wal: StartNewLog with staged commits pending (Flush first)");
    }
  }
  SOPR_FAILPOINT_RETURN("wal.checkpoint.truncate");
  if (::ftruncate(fd_, 0) != 0) {
    return Errno("ftruncate wal.log");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    durable_size_ = 0;
    commits_since_checkpoint_ = 0;
  }
  if (policy_ != WalFsyncPolicy::kOff) {
    SOPR_RETURN_NOT_OK(SyncSelf("wal.sync"));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Static sync helpers (checkpoint install)
// ---------------------------------------------------------------------------

Status WalWriter::SyncFile(const std::string& path, WalFsyncPolicy policy,
                           const char* failpoint_site) {
  SOPR_FAILPOINT_RETURN(failpoint_site);
  if (policy == WalFsyncPolicy::kOff) return Status::OK();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open " + path);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = Errno("fsync " + path);
  ::close(fd);
  return s;
}

Status WalWriter::SyncDir(const std::string& dir, WalFsyncPolicy policy) {
  if (policy == WalFsyncPolicy::kOff) return Status::OK();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir " + dir);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = Errno("fsync dir " + dir);
  ::close(fd);
  return s;
}

}  // namespace wal
}  // namespace sopr
