#ifndef SOPR_WAL_CHECKPOINT_H_
#define SOPR_WAL_CHECKPOINT_H_

#include "common/status.h"

namespace sopr {

class Engine;

namespace wal {

class WalWriter;

/// Writes a snapshot checkpoint of the engine's full durable state and
/// truncates the main log it covers, bounding recovery replay.
///
/// Snapshot layout (WAL record format, one file):
///   SnapshotHeader(covers_lsn, next_handle)
///   Ddl(schema script: create table / create index)
///   Insert(table, handle, row) for every live tuple — PHYSICAL records,
///     so tuple handles survive the round trip (a SQL re-insert would
///     renumber them and change the state checksum)
///   Ddl(rule script: create rule / deactivate rule / priorities)
///
/// Install sequence: write snapshot.tmp → fsync → rename over
/// snapshot.wal → fsync dir → truncate wal.log. A crash at any point is
/// safe: before the rename the old snapshot + full log still recover;
/// after the rename the new snapshot covers everything the (not yet
/// truncated) log holds, and `covers_lsn` makes the stale records
/// no-ops. Recovery deletes a leftover snapshot.tmp.
///
/// Must be called between transactions. Snapshot record LSNs come from
/// the writer's global sequence, so LSNs never reset.
Status WriteCheckpoint(Engine* engine, WalWriter* wal);

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_CHECKPOINT_H_
