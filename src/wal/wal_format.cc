#include "wal/wal_format.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "wal/crc32c.h"

namespace sopr {
namespace wal {

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kBegin:
      return "BEGIN";
    case RecordType::kCommit:
      return "COMMIT";
    case RecordType::kAbort:
      return "ABORT";
    case RecordType::kInsert:
      return "INSERT";
    case RecordType::kDelete:
      return "DELETE";
    case RecordType::kUpdate:
      return "UPDATE";
    case RecordType::kDdl:
      return "DDL";
    case RecordType::kSnapshotHeader:
      return "SNAPSHOT";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------------

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

void PutRow(std::string* out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (size_t i = 0; i < row.size(); ++i) PutValue(out, row.at(i));
}

/// Bounds-checked sequential reader over a payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  Status GetU32(uint32_t* out) {
    if (data_.size() - pos_ < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status GetU64(uint64_t* out) {
    if (data_.size() - pos_ < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status GetU8(uint8_t* out) {
    if (pos_ >= data_.size()) return Truncated("u8");
    *out = static_cast<unsigned char>(data_[pos_++]);
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint32_t len = 0;
    SOPR_RETURN_NOT_OK(GetU32(&len));
    if (data_.size() - pos_ < len) return Truncated("string body");
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status GetValue(Value* out) {
    uint8_t tag = 0;
    SOPR_RETURN_NOT_OK(GetU8(&tag));
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        *out = Value::Null();
        return Status::OK();
      case ValueType::kBool: {
        uint8_t b = 0;
        SOPR_RETURN_NOT_OK(GetU8(&b));
        *out = Value::Bool(b != 0);
        return Status::OK();
      }
      case ValueType::kInt: {
        uint64_t v = 0;
        SOPR_RETURN_NOT_OK(GetU64(&v));
        *out = Value::Int(static_cast<int64_t>(v));
        return Status::OK();
      }
      case ValueType::kDouble: {
        uint64_t bits = 0;
        SOPR_RETURN_NOT_OK(GetU64(&bits));
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        *out = Value::Double(d);
        return Status::OK();
      }
      case ValueType::kString: {
        std::string s;
        SOPR_RETURN_NOT_OK(GetString(&s));
        *out = Value::String(std::move(s));
        return Status::OK();
      }
    }
    return Status::DataLoss("wal record: unknown value tag " +
                            std::to_string(tag));
  }

  Status GetRow(Row* out) {
    uint32_t arity = 0;
    SOPR_RETURN_NOT_OK(GetU32(&arity));
    if (arity > data_.size() - pos_) {
      // Each value costs at least one tag byte; an arity larger than the
      // remaining bytes cannot be well-formed.
      return Truncated("row arity");
    }
    std::vector<Value> values;
    values.reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) {
      Value v;
      SOPR_RETURN_NOT_OK(GetValue(&v));
      values.push_back(std::move(v));
    }
    *out = Row(std::move(values));
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  static Status Truncated(const char* what) {
    return Status::DataLoss(std::string("wal record payload truncated (") +
                            what + ")");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Record constructors
// ---------------------------------------------------------------------------

WalRecord WalRecord::Begin(uint64_t lsn, uint64_t txn) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kBegin;
  r.txn_id = txn;
  return r;
}

WalRecord WalRecord::Commit(uint64_t lsn, uint64_t txn,
                            uint64_t next_handle) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kCommit;
  r.txn_id = txn;
  r.next_handle = next_handle;
  return r;
}

WalRecord WalRecord::Abort(uint64_t lsn, uint64_t txn) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kAbort;
  r.txn_id = txn;
  return r;
}

WalRecord WalRecord::Insert(uint64_t lsn, uint64_t txn, std::string table,
                            TupleHandle handle, Row after) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kInsert;
  r.txn_id = txn;
  r.table = std::move(table);
  r.handle = handle;
  r.after = std::move(after);
  return r;
}

WalRecord WalRecord::Delete(uint64_t lsn, uint64_t txn, std::string table,
                            TupleHandle handle, Row before) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kDelete;
  r.txn_id = txn;
  r.table = std::move(table);
  r.handle = handle;
  r.before = std::move(before);
  return r;
}

WalRecord WalRecord::Update(uint64_t lsn, uint64_t txn, std::string table,
                            TupleHandle handle, Row before, Row after) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kUpdate;
  r.txn_id = txn;
  r.table = std::move(table);
  r.handle = handle;
  r.before = std::move(before);
  r.after = std::move(after);
  return r;
}

WalRecord WalRecord::Ddl(uint64_t lsn, std::string sql) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kDdl;
  r.sql = std::move(sql);
  return r;
}

WalRecord WalRecord::SnapshotHeader(uint64_t lsn, uint64_t covers_lsn,
                                    uint64_t next_handle) {
  WalRecord r;
  r.lsn = lsn;
  r.type = RecordType::kSnapshotHeader;
  r.covers_lsn = covers_lsn;
  r.next_handle = next_handle;
  return r;
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

std::string EncodePayload(const WalRecord& rec) {
  std::string out;
  PutU64(&out, rec.lsn);
  out.push_back(static_cast<char>(rec.type));
  switch (rec.type) {
    case RecordType::kBegin:
    case RecordType::kAbort:
      PutU64(&out, rec.txn_id);
      break;
    case RecordType::kCommit:
      PutU64(&out, rec.txn_id);
      PutU64(&out, rec.next_handle);
      break;
    case RecordType::kInsert:
      PutU64(&out, rec.txn_id);
      PutString(&out, rec.table);
      PutU64(&out, rec.handle);
      PutRow(&out, rec.after);
      break;
    case RecordType::kDelete:
      PutU64(&out, rec.txn_id);
      PutString(&out, rec.table);
      PutU64(&out, rec.handle);
      PutRow(&out, rec.before);
      break;
    case RecordType::kUpdate:
      PutU64(&out, rec.txn_id);
      PutString(&out, rec.table);
      PutU64(&out, rec.handle);
      PutRow(&out, rec.before);
      PutRow(&out, rec.after);
      break;
    case RecordType::kDdl:
      PutString(&out, rec.sql);
      break;
    case RecordType::kSnapshotHeader:
      PutU64(&out, rec.covers_lsn);
      PutU64(&out, rec.next_handle);
      break;
  }
  return out;
}

Status DecodePayload(std::string_view payload, WalRecord* out) {
  PayloadReader r(payload);
  *out = WalRecord();
  SOPR_RETURN_NOT_OK(r.GetU64(&out->lsn));
  uint8_t type = 0;
  SOPR_RETURN_NOT_OK(r.GetU8(&type));
  if (type < static_cast<uint8_t>(RecordType::kBegin) ||
      type > static_cast<uint8_t>(RecordType::kSnapshotHeader)) {
    return Status::DataLoss("wal record: unknown type " +
                            std::to_string(type));
  }
  out->type = static_cast<RecordType>(type);
  switch (out->type) {
    case RecordType::kBegin:
    case RecordType::kAbort:
      SOPR_RETURN_NOT_OK(r.GetU64(&out->txn_id));
      break;
    case RecordType::kCommit:
      SOPR_RETURN_NOT_OK(r.GetU64(&out->txn_id));
      SOPR_RETURN_NOT_OK(r.GetU64(&out->next_handle));
      break;
    case RecordType::kInsert:
      SOPR_RETURN_NOT_OK(r.GetU64(&out->txn_id));
      SOPR_RETURN_NOT_OK(r.GetString(&out->table));
      SOPR_RETURN_NOT_OK(r.GetU64(&out->handle));
      SOPR_RETURN_NOT_OK(r.GetRow(&out->after));
      break;
    case RecordType::kDelete:
      SOPR_RETURN_NOT_OK(r.GetU64(&out->txn_id));
      SOPR_RETURN_NOT_OK(r.GetString(&out->table));
      SOPR_RETURN_NOT_OK(r.GetU64(&out->handle));
      SOPR_RETURN_NOT_OK(r.GetRow(&out->before));
      break;
    case RecordType::kUpdate:
      SOPR_RETURN_NOT_OK(r.GetU64(&out->txn_id));
      SOPR_RETURN_NOT_OK(r.GetString(&out->table));
      SOPR_RETURN_NOT_OK(r.GetU64(&out->handle));
      SOPR_RETURN_NOT_OK(r.GetRow(&out->before));
      SOPR_RETURN_NOT_OK(r.GetRow(&out->after));
      break;
    case RecordType::kDdl:
      SOPR_RETURN_NOT_OK(r.GetString(&out->sql));
      break;
    case RecordType::kSnapshotHeader:
      SOPR_RETURN_NOT_OK(r.GetU64(&out->covers_lsn));
      SOPR_RETURN_NOT_OK(r.GetU64(&out->next_handle));
      break;
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("wal record: trailing bytes after " +
                            std::string(RecordTypeName(out->type)) +
                            " body");
  }
  return Status::OK();
}

void AppendRecord(std::string* out, const WalRecord& rec) {
  std::string payload = EncodePayload(rec);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload));
  out->append(payload);
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

namespace {

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

bool AllZero(std::string_view data) {
  for (char c : data) {
    if (c != 0) return false;
  }
  return true;
}

std::string AtOffset(uint64_t off) {
  return " at offset " + std::to_string(off);
}

}  // namespace

ScanResult ScanLogImage(std::string_view data) {
  return ScanLogImage(data, ScanOptions{});
}

ScanResult ScanLogImage(std::string_view data, const ScanOptions& opts) {
  // `off` is absolute: data[0] sits at file offset opts.start_offset.
  // The bounds arithmetic below therefore compares against `end_off`.
  const uint64_t base = opts.start_offset;
  ScanResult result;
  result.file_bytes = base + data.size();
  result.valid_bytes = base;
  uint64_t off = base;
  uint64_t last_lsn = opts.last_lsn;
  const uint64_t end_off = base + data.size();
  const auto at = [&](uint64_t abs) { return data.data() + (abs - base); };
  while (off < end_off) {
    const uint64_t remaining = end_off - off;
    if (remaining < kHeaderSize) {
      result.end = ScanEnd::kTornTail;
      result.detail = "partial record header" + AtOffset(off);
      return result;
    }
    const uint32_t len = ReadU32(at(off));
    const uint32_t crc = ReadU32(at(off) + 4);
    const uint64_t extent = off + kHeaderSize + len;
    if (len < kMinPayload || len > kMaxPayload) {
      // A zero-filled remainder is the signature of filesystem
      // preallocation after a crash: a torn tail, not corruption.
      if (len == 0 && crc == 0 && AllZero(data.substr(off - base))) {
        result.end = ScanEnd::kTornTail;
        result.detail = "zero-filled tail" + AtOffset(off);
        return result;
      }
      if (extent >= end_off) {
        result.end = ScanEnd::kTornTail;
        result.detail = "implausible record length " + std::to_string(len) +
                        " reaching EOF" + AtOffset(off);
        return result;
      }
      result.end = ScanEnd::kCorrupt;
      result.detail = "implausible record length " + std::to_string(len) +
                      " mid-log" + AtOffset(off);
      return result;
    }
    if (extent > end_off) {
      result.end = ScanEnd::kTornTail;
      result.detail = "record extends past EOF" + AtOffset(off);
      return result;
    }
    std::string_view payload = data.substr(off - base + kHeaderSize, len);
    if (Crc32c(payload) != crc) {
      if (extent == end_off) {
        result.end = ScanEnd::kTornTail;
        result.detail = "checksum mismatch on final record" + AtOffset(off);
      } else {
        result.end = ScanEnd::kCorrupt;
        result.detail = "checksum mismatch mid-log" + AtOffset(off) + " (" +
                        std::to_string(end_off - extent) +
                        " valid-looking bytes follow)";
      }
      return result;
    }
    WalRecord rec;
    Status decoded = DecodePayload(payload, &rec);
    if (!decoded.ok()) {
      // The checksum passed, so these bytes are what was written: a
      // structurally bad record is corruption (or a version skew), never
      // a torn write.
      result.end = ScanEnd::kCorrupt;
      result.detail = decoded.message() + AtOffset(off);
      return result;
    }
    if (rec.lsn <= last_lsn) {
      result.end = ScanEnd::kCorrupt;
      result.detail = "LSN regression (" + std::to_string(rec.lsn) +
                      " after " + std::to_string(last_lsn) + ")" +
                      AtOffset(off);
      return result;
    }
    last_lsn = rec.lsn;
    rec.offset = off;
    result.records.push_back(std::move(rec));
    off = extent;
    result.valid_bytes = off;
  }
  result.end = ScanEnd::kClean;
  return result;
}

Result<ScanResult> ScanLogFile(const std::string& path) {
  return ScanLogFile(path, ScanOptions{});
}

Result<ScanResult> ScanLogFile(const std::string& path,
                               const ScanOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (opts.start_offset != 0) {
      return Status::InvalidArgument(
          "ScanLogFile: resume offset " + std::to_string(opts.start_offset) +
          " into missing file " + path);
    }
    return ScanResult{};  // missing file: empty, clean
  }
  in.seekg(0, std::ios::end);
  const auto size = static_cast<uint64_t>(in.tellg());
  if (opts.start_offset > size) {
    return Status::InvalidArgument(
        "ScanLogFile: resume offset " + std::to_string(opts.start_offset) +
        " past end of " + path + " (" + std::to_string(size) +
        " bytes) — was the log rotated?");
  }
  in.seekg(static_cast<std::streamoff>(opts.start_offset));
  std::string buf(size - opts.start_offset, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (in.bad() || static_cast<uint64_t>(in.gcount()) != buf.size()) {
    return Status::DataLoss("cannot read wal file " + path);
  }
  return ScanLogImage(buf, opts);
}

}  // namespace wal
}  // namespace sopr
