#include "wal/crc32c.h"

namespace sopr {
namespace wal {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables* t = new Tables();
  return *t;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const Tables& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Slice-by-8 over aligned-size middle; byte-at-a-time head and tail.
  while (len >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24));
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace wal
}  // namespace sopr
