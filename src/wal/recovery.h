#ifndef SOPR_WAL_RECOVERY_H_
#define SOPR_WAL_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sopr {

class Engine;

namespace wal {

/// What recovery found and did (surfaced for logging and tests).
struct RecoveryStats {
  uint64_t next_lsn = 1;     // continue the LSN sequence from here
  uint64_t next_txn_id = 1;  // continue the transaction-id sequence
  uint64_t committed_txns = 0;   // transaction groups replayed
  uint64_t replayed_records = 0;  // physical redo records applied
  uint64_t ddl_records = 0;       // logical DDL statements re-executed
  uint64_t discarded_txns = 0;    // uncommitted (torn-tail) groups dropped
  uint64_t truncated_bytes = 0;   // torn tail removed from wal.log
  bool snapshot_loaded = false;
};

/// Rebuilds `engine`'s state (catalog, heaps, indexes, rule set) from the
/// WAL directory: loads the snapshot if one is installed, then replays
/// the main log's committed transactions in LSN order.
///
/// Contract (docs/DURABILITY.md):
///   - `engine` must be empty and must NOT yet have a WAL attached —
///     replay applies physical redo directly and re-executes DDL, and
///     neither may be re-logged.
///   - Rules are never re-fired: the log already contains every
///     rule-generated mutation of each committed transaction.
///   - A torn tail (an interrupted final write) is truncated off wal.log
///     and its uncommitted group discarded. Damage anywhere BEFORE the
///     tail — a checksum mismatch or structural error with more data
///     after it — is kDataLoss: recovery refuses to guess and never
///     silently truncates committed history. A damaged snapshot is
///     always kDataLoss (snapshots are installed atomically; there is no
///     legitimate torn state).
///   - After replay the recovered state is certified with
///     Database::CheckInvariants(); the crash harness additionally
///     compares Engine::StateChecksum() against its committed-prefix
///     oracle.
///
/// Replay bounds. Default: everything committed.
struct RecoverOptions {
  /// When non-zero, stop replaying at the first record whose LSN exceeds
  /// this — a transaction counts iff its COMMIT record's LSN is within
  /// the bound, which reconstructs exactly the state an MVCC snapshot at
  /// that LSN sees (snapshot_property_test relies on this). The log file
  /// itself is untouched. An installed checkpoint snapshot covering LSNs
  /// beyond the bound makes the prefix unreachable: kInvalidArgument.
  uint64_t through_lsn = 0;
};

/// A missing directory or empty log recovers to an empty engine. The
/// returned stats carry the LSN/txn-id watermarks the WalWriter must
/// continue from.
Result<RecoveryStats> RecoverDatabase(const std::string& dir,
                                      Engine* engine);
Result<RecoveryStats> RecoverDatabase(const std::string& dir, Engine* engine,
                                      const RecoverOptions& opts);

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_RECOVERY_H_
