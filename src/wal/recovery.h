#ifndef SOPR_WAL_RECOVERY_H_
#define SOPR_WAL_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace sopr {

class Engine;

namespace wal {

struct WalRecord;

/// What recovery found and did (surfaced for logging and tests).
struct RecoveryStats {
  uint64_t next_lsn = 1;     // continue the LSN sequence from here
  uint64_t next_txn_id = 1;  // continue the transaction-id sequence
  uint64_t committed_txns = 0;   // transaction groups replayed
  uint64_t replayed_records = 0;  // physical redo records applied
  uint64_t ddl_records = 0;       // logical DDL statements re-executed
  uint64_t discarded_txns = 0;    // uncommitted (torn-tail) groups dropped
  uint64_t truncated_bytes = 0;   // torn tail removed from wal.log
  bool snapshot_loaded = false;
  /// covers_lsn of the loaded checkpoint snapshot (0 when none): log
  /// records at or below it are already baked into the snapshot.
  uint64_t covers_lsn = 0;
  /// Incremental resume point (docs/REPLICATION.md): a tailer continuing
  /// this recovery scans wal.log from `resume_offset` with the scanner's
  /// LSN-monotonicity check seeded at `resume_lsn`, and skips any group
  /// or DDL record whose LSN is <= `applied_lsn` (already applied here).
  /// The offset points at the earliest still-open (uncommitted) group if
  /// one exists — re-scanning from there rebuilds its buffered records —
  /// otherwise at the end of the last well-formed record.
  uint64_t resume_offset = 0;
  uint64_t resume_lsn = 0;
  uint64_t applied_lsn = 0;
};

/// Rebuilds `engine`'s state (catalog, heaps, indexes, rule set) from the
/// WAL directory: loads the snapshot if one is installed, then replays
/// the main log's committed transactions in LSN order.
///
/// Contract (docs/DURABILITY.md):
///   - `engine` must be empty and must NOT yet have a WAL attached —
///     replay applies physical redo directly and re-executes DDL, and
///     neither may be re-logged.
///   - Rules are never re-fired: the log already contains every
///     rule-generated mutation of each committed transaction.
///   - A torn tail (an interrupted final write) is truncated off wal.log
///     and its uncommitted group discarded. Damage anywhere BEFORE the
///     tail — a checksum mismatch or structural error with more data
///     after it — is kDataLoss: recovery refuses to guess and never
///     silently truncates committed history. A damaged snapshot is
///     always kDataLoss (snapshots are installed atomically; there is no
///     legitimate torn state).
///   - After replay the recovered state is certified with
///     Database::CheckInvariants(); the crash harness additionally
///     compares Engine::StateChecksum() against its committed-prefix
///     oracle.
///
/// Replay bounds. Default: everything committed.
struct RecoverOptions {
  /// When non-zero, stop replaying at the first record whose LSN exceeds
  /// this — a transaction counts iff its COMMIT record's LSN is within
  /// the bound, which reconstructs exactly the state an MVCC snapshot at
  /// that LSN sees (snapshot_property_test relies on this). The log file
  /// itself is untouched. An installed checkpoint snapshot covering LSNs
  /// beyond the bound makes the prefix unreachable: kInvalidArgument
  /// naming the snapshot's covers_lsn (bootstrap from the checkpoint
  /// first — the replication Follower does).
  uint64_t through_lsn = 0;
  /// Follower bootstrap mode (docs/REPLICATION.md): the WAL directory
  /// belongs to a live primary, so recovery must leave it untouched — no
  /// snapshot.tmp unlink, no torn-tail truncation (the tail is the
  /// primary's in-flight write; it is simply not replayed). The stats'
  /// resume point lets the caller tail the log from where replay ended.
  bool read_only = false;
};

/// A missing directory or empty log recovers to an empty engine. The
/// returned stats carry the LSN/txn-id watermarks the WalWriter must
/// continue from.
Result<RecoveryStats> RecoverDatabase(const std::string& dir,
                                      Engine* engine);
Result<RecoveryStats> RecoverDatabase(const std::string& dir, Engine* engine,
                                      const RecoverOptions& opts);

/// Incremental committed-group replay — the machinery RecoverDatabase
/// and the replication Follower share. Feed scanned WAL records in log
/// order (recovery feeds one whole scan; a tailer feeds records as they
/// become durable, across many polls); each transaction group is applied
/// the moment its COMMIT record arrives, DDL records apply immediately.
/// Rules are never re-fired: the log already contains every
/// rule-generated mutation.
///
/// Idempotence: groups/DDL whose LSN is <= the highest LSN already
/// applied (seeded via Options::applied_lsn, self-advancing afterwards)
/// are consumed but not re-applied, so a tailer that re-feeds records
/// after a transient failure cannot double-apply. ResetOpen() forgets
/// buffered open groups so such a re-feed can rebuild them.
class GroupReplayer {
 public:
  struct Options {
    /// Records at or below this LSN are baked into the bootstrap
    /// snapshot and skipped.
    uint64_t covers_lsn = 0;
    /// Non-zero: Feed returns false (stop) for records beyond this LSN.
    uint64_t through_lsn = 0;
    /// Groups/DDL with LSN <= this were applied by a previous replay.
    uint64_t applied_lsn = 0;
    /// When true, each applied group's MVCC versions are stamped at the
    /// COMMIT record's LSN (Database::CommitAll), so snapshot readers at
    /// the published LSN see exactly the committed prefix. Recovery
    /// leaves this off (MVCC is enabled after recovery); the Follower
    /// needs it on because it applies groups while readers are live.
    bool stamp_mvcc = false;
    /// Wraps the application of one committed group (ddl=false) or one
    /// DDL record (ddl=true); default invokes apply() directly. The
    /// Follower injects its scheduler's writer/schema locks here.
    std::function<Status(bool ddl, const std::function<Status()>& apply)>
        around;
    /// Called after a group or DDL record applied; `lsn` is the COMMIT
    /// (or DDL) record's LSN — the Follower publishes it as replayed_lsn.
    std::function<void(uint64_t lsn)> applied;
  };

  GroupReplayer(Engine* engine, Options options);

  /// Consumes one record. Returns false when the record lies beyond
  /// through_lsn (nothing consumed; the caller stops feeding).
  Result<bool> Feed(const WalRecord& rec, RecoveryStats* stats);

  /// Drops buffered uncommitted groups (their COMMIT is lost to a torn
  /// tail), counting them in stats->discarded_txns.
  void DiscardOpen(RecoveryStats* stats);

  /// Forgets buffered open groups WITHOUT counting them as discarded: a
  /// tailer calls this after a failed poll, then re-feeds from
  /// resume_offset() to rebuild them.
  void ResetOpen();

  bool HasOpen() const { return !open_txns_.empty(); }

  /// Resume point covering buffered open groups: where a rescan must
  /// restart (earliest open group's BEGIN record, else `end_of_feed`)
  /// and the LSN seed for the scanner at that offset.
  uint64_t resume_offset(uint64_t end_of_feed) const;
  uint64_t resume_lsn(uint64_t last_fed_lsn) const;

  uint64_t max_lsn() const { return max_lsn_; }
  uint64_t max_txn_id() const { return max_txn_id_; }
  /// Highest group/DDL LSN applied (the idempotence watermark).
  uint64_t applied_lsn() const { return applied_lsn_; }

 private:
  struct OpenGroup {
    std::vector<WalRecord> redo;
    uint64_t begin_offset = 0;  // file offset of the BEGIN record
    uint64_t prev_lsn = 0;      // last LSN consumed before the BEGIN
  };

  Status Apply(bool ddl, uint64_t lsn,
               const std::function<Status()>& apply_fn);

  Engine* engine_;
  Options opts_;
  std::map<uint64_t, OpenGroup> open_txns_;
  uint64_t max_lsn_ = 0;
  uint64_t max_txn_id_ = 0;
  uint64_t applied_lsn_ = 0;
};

}  // namespace wal
}  // namespace sopr

#endif  // SOPR_WAL_RECOVERY_H_
