#ifndef SOPR_WAL_WAL_OPTIONS_H_
#define SOPR_WAL_WAL_OPTIONS_H_

namespace sopr {

/// When the WAL file is fsync'd. The durability point of a transaction is
/// its COMMIT record reaching stable storage; with kOff the log survives
/// a process crash (the page cache is intact) but not an OS crash or
/// power loss. The tier-1 suite and the crash harness run with kOff
/// (process kills only); production defaults to kCommit.
enum class WalFsyncPolicy {
  kOff,     // never fsync (fast mode; SOPR_WAL_FSYNC=off)
  kCommit,  // one fsync per commit / DDL / checkpoint batch (group commit)
  kAlways,  // fsync after every record write (paranoid)
};

}  // namespace sopr

#endif  // SOPR_WAL_WAL_OPTIONS_H_
