#include "wal/dir_lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace sopr {
namespace wal {

Result<std::unique_ptr<DirLock>> DirLock::Acquire(const std::string& dir) {
  SOPR_FAILPOINT_RETURN("wal.lock.acquire");
  const std::string path = dir + "/LOCK";
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    Status s;
    if (errno == EWOULDBLOCK || errno == EAGAIN) {
      // Read the holder's pid for the diagnostic (best effort; the file
      // may be empty if the holder died mid-write — harmless).
      char pid_buf[32] = {0};
      ssize_t n = ::pread(fd, pid_buf, sizeof(pid_buf) - 1, 0);
      std::string holder = n > 0 ? std::string(pid_buf, n) : std::string();
      while (!holder.empty() && (holder.back() == '\n' || holder.back() == ' '))
        holder.pop_back();
      s = Status::IoError(
          "wal directory " + dir + " is locked by another engine" +
          (holder.empty() ? "" : " (pid " + holder + ")") +
          "; the WAL is single-writer — close the other instance first");
    } else {
      s = Status::IoError("flock " + path + ": " + std::strerror(errno));
    }
    ::close(fd);
    return s;
  }
  // Record our pid for diagnostics. Failure here doesn't affect the lock
  // itself (the flock, not the content, is the lock).
  std::string pid = std::to_string(::getpid()) + "\n";
  if (::ftruncate(fd, 0) == 0) {
    (void)!::pwrite(fd, pid.data(), pid.size(), 0);
  }
  return std::unique_ptr<DirLock>(new DirLock(fd, path));
}

DirLock::~DirLock() {
  if (fd_ >= 0) {
    // closing drops the flock; leave the LOCK file itself in place
    // (unlinking would race a concurrent Acquire on the old inode).
    ::close(fd_);
  }
}

}  // namespace wal
}  // namespace sopr
