#include "replication/wal_tailer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace replication {

const char* TailOutcomeName(TailOutcome outcome) {
  switch (outcome) {
    case TailOutcome::kProgress:
      return "progress";
    case TailOutcome::kIdle:
      return "idle";
    case TailOutcome::kRetryLater:
      return "retry-later";
    case TailOutcome::kRotated:
      return "rotated";
  }
  return "?";
}

WalTailer::WalTailer(std::string dir, uint64_t start_offset,
                     uint64_t last_lsn)
    : path_(wal::WalWriter::LogPath(dir)),
      offset_(start_offset),
      last_lsn_(last_lsn) {}

void WalTailer::Reposition(uint64_t offset, uint64_t last_lsn) {
  offset_ = offset;
  last_lsn_ = last_lsn;
}

Result<TailBatch> WalTailer::Poll() {
  // Models a short read / EINTR storm on the primary's filesystem; arm
  // with kUnavailable for retry coverage or @Crash for kill coverage.
  SOPR_FAILPOINT_RETURN("repl.tail.read");

  // A fresh open every poll: the fd must see the current inode even if
  // the primary checkpoint-rotated the log since the last poll.
  int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      if (offset_ == 0) {
        // The primary has not created a log yet: caught up with nothing.
        TailBatch batch;
        batch.outcome = TailOutcome::kIdle;
        return batch;
      }
      TailBatch batch;
      batch.outcome = TailOutcome::kRotated;
      batch.detail = "wal.log vanished under the resume offset";
      return batch;
    }
    return Status::Unavailable("tail open " + path_ + ": " +
                               std::strerror(errno));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    return Status::Unavailable("tail fstat " + path_ + ": " +
                               std::strerror(errno));
  }
  const auto size = static_cast<uint64_t>(st.st_size);
  if (size < offset_) {
    TailBatch batch;
    batch.outcome = TailOutcome::kRotated;
    batch.detail = "wal.log shrank to " + std::to_string(size) +
                   " bytes below resume offset " + std::to_string(offset_);
    return batch;
  }
  if (size == offset_) {
    TailBatch batch;
    batch.outcome = TailOutcome::kIdle;
    return batch;
  }

  std::string buf(size - offset_, '\0');
  uint64_t got = 0;
  while (got < buf.size()) {
    ssize_t n = ::pread(fd, buf.data() + got, buf.size() - got,
                        static_cast<off_t>(offset_ + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("tail pread " + path_ + ": " +
                                 std::strerror(errno));
    }
    if (n == 0) break;  // concurrently truncated; scan what we got
    got += static_cast<uint64_t>(n);
  }
  buf.resize(got);
  bytes_read_ += got;

  wal::ScanOptions opts;
  opts.start_offset = offset_;
  opts.last_lsn = last_lsn_;
  wal::ScanResult scan = wal::ScanLogImage(buf, opts);
  if (scan.end == wal::ScanEnd::kCorrupt) {
    // Either genuine mid-log damage or a rotation that slid new records
    // under a stale offset; the Follower disambiguates against the
    // checkpoint's covers_lsn before treating this as data loss.
    return Status::DataLoss("tail of " + path_ + ": " + scan.detail);
  }

  TailBatch batch;
  batch.records = std::move(scan.records);
  if (!batch.records.empty()) {
    offset_ = scan.valid_bytes;
    last_lsn_ = batch.records.back().lsn;
    batch.outcome = TailOutcome::kProgress;
  } else {
    batch.outcome = scan.end == wal::ScanEnd::kTornTail
                        ? TailOutcome::kRetryLater
                        : TailOutcome::kIdle;
  }
  if (scan.end == wal::ScanEnd::kTornTail) batch.detail = scan.detail;
  batch.lag_bytes = scan.file_bytes - offset_;
  return batch;
}

}  // namespace replication
}  // namespace sopr
