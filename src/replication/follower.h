#ifndef SOPR_REPLICATION_FOLLOWER_H_
#define SOPR_REPLICATION_FOLLOWER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "engine/engine.h"
#include "replication/wal_tailer.h"
#include "server/commit_scheduler.h"
#include "wal/recovery.h"

namespace sopr {
namespace replication {

/// One bootstrapped replica generation: engine + scheduler + tailer +
/// replayer (defined in follower.cc). A checkpoint-rotation re-bootstrap
/// creates a new generation; old ones live until their last pin drops.
struct Replica;

struct FollowerOptions {
  /// Engine options for the replica. `engine.wal_dir` names the PRIMARY's
  /// WAL directory — the follower tails it read-only and never takes its
  /// DirLock until promotion.
  RuleEngineOptions engine;
  /// Backoff policy for CatchUp and the promotion drain. max_attempts = 0
  /// retries forever; set a bound to surface kUnavailable (with the stale
  /// LSN the follower keeps serving) when the primary stays unreachable.
  RetryPolicy retry;
};

/// One tailer poll as the follower saw it.
struct PollResult {
  uint64_t groups_applied = 0;  // committed groups + DDL records applied
  bool caught_up = false;       // the log ended cleanly at the resume point
  bool rebootstrapped = false;  // a checkpoint rotation forced a re-anchor
  TailOutcome outcome = TailOutcome::kIdle;
};

/// The staleness the follower currently admits to (docs/REPLICATION.md):
/// reads are consistent as of `replayed_lsn`, and at most `lag_bytes` of
/// durable-but-unapplied log lie beyond it. When the primary is
/// unreachable the bytes bound is the last one observed — the follower
/// keeps serving stale-but-consistent reads and says so.
struct LagBound {
  uint64_t replayed_lsn = 0;
  uint64_t lag_bytes = 0;
  bool primary_reachable = true;
};

/// A log-shipping replication follower (docs/REPLICATION.md): bootstraps
/// from the primary's latest checkpoint, tails wal.log for committed
/// groups, applies them through the shared GroupReplayer WITHOUT
/// re-firing rules, and serves read-only snapshot sessions pinned at the
/// monotone replayed LSN. Writes are refused with kReadOnlyReplica until
/// Promote() turns the replica into a full primary.
///
/// Threading: Poll/CatchUp/Promote serialize on an internal apply mutex
/// (one applier at a time); Query/PinSnapshot/QueryAt/Lag are safe from
/// any thread concurrently with the applier — they ride the scheduler's
/// MVCC snapshot machinery, so readers never block replay.
class Follower {
 public:
  /// Bootstraps a replica of `options.engine.wal_dir`: loads the
  /// installed checkpoint (if any) plus the committed log prefix, via
  /// read-only recovery that leaves the primary's files untouched.
  static Result<std::unique_ptr<Follower>> Open(FollowerOptions options);

  ~Follower();

  /// One incremental tailing step: read newly durable records, apply
  /// complete groups, publish the new replayed LSN. Transient conditions
  /// (torn tail, unreadable primary) are kUnavailable; a checkpoint
  /// rotation re-anchors automatically (possibly re-bootstrapping).
  Result<PollResult> PollOnce();

  /// Polls with bounded exponential backoff until caught up. Progress
  /// resets the backoff; options.retry.max_attempts consecutive barren
  /// polls give up with kUnavailable (reads keep working, pinned at the
  /// stale replayed LSN the message names).
  Status CatchUp();

  /// Highest LSN whose group/DDL has been applied here — the snapshot
  /// point read-only sessions see. Monotone, never regresses.
  uint64_t replayed_lsn() const {
    return replayed_lsn_.load(std::memory_order_acquire);
  }

  LagBound Lag() const;

  /// A pinned read point: holds both the snapshot pin and the replica
  /// state it belongs to, so a checkpoint-rotation re-bootstrap (which
  /// swaps in a fresh replica) cannot pull the data out from under an
  /// open session — stale replicas live until their last pin drops.
  struct Snapshot {
    // Order matters: the pin must be destroyed BEFORE the replica that
    // owns its registry.
    std::shared_ptr<Replica> replica;
    SnapshotRegistry::Pin pin;
    uint64_t lsn() const { return pin.lsn(); }
  };

  Snapshot PinSnapshot();
  /// Runs a select against a pinned snapshot. After promotion the pinned
  /// replica's engine has moved out: kUnavailable.
  Result<QueryResult> QueryAt(const Snapshot& snapshot,
                              const std::string& sql);
  /// One-shot snapshot read at the current replayed LSN.
  Result<QueryResult> Query(const std::string& sql);

  /// Routes a statement the way a session would: selects run as snapshot
  /// reads; DML and DDL are refused with kReadOnlyReplica (this is the
  /// follower's write path — there deliberately isn't one).
  Status Execute(const std::string& sql);

  /// Failover: takes the WAL directory's single-writer lock (fails while
  /// the primary lives — flock outlives nothing), drains the remaining
  /// committed log, truncates the dead primary's torn tail, certifies
  /// invariants, and attaches a WalWriter continuing the LSN sequence.
  /// Returns the promoted engine — a full primary whose commits append
  /// to the same log. The follower keeps serving already-pinned
  /// snapshots but accepts no new work.
  Result<std::unique_ptr<Engine>> Promote();

  bool promoted() const { return promoted_.load(std::memory_order_acquire); }
  const std::string& dir() const { return dir_; }

  /// Digest of the live replica's full state (Engine::StateChecksum) —
  /// the failover litmus compares this bit-exactly against its
  /// committed-prefix oracle. 0 after promotion (the engine moved out).
  uint64_t StateChecksum() const;

 private:
  explicit Follower(FollowerOptions options);

  Result<std::shared_ptr<Replica>> Bootstrap();
  std::shared_ptr<Replica> live() const;
  Result<PollResult> PollLocked(std::shared_ptr<Replica>* replica);
  Result<PollResult> HandleRotation(const std::shared_ptr<Replica>& replica);
  void PublishReplayed(uint64_t lsn);

  FollowerOptions options_;
  std::string dir_;

  /// Serializes replay (PollOnce/CatchUp/Promote): one applier at a time.
  std::mutex apply_mu_;
  /// Guards the live_ pointer swap only (readers copy the shared_ptr).
  mutable std::mutex live_mu_;
  std::shared_ptr<Replica> live_;

  std::atomic<uint64_t> replayed_lsn_{0};
  std::atomic<uint64_t> lag_bytes_{0};
  std::atomic<bool> primary_reachable_{true};
  std::atomic<bool> promoted_{false};
};

}  // namespace replication
}  // namespace sopr

#endif  // SOPR_REPLICATION_FOLLOWER_H_
