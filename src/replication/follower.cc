#include "replication/follower.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "sql/parser.h"
#include "wal/dir_lock.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace replication {

namespace {

/// Same override the Engine applies at Open (engine/engine.cc): the
/// SOPR_WAL_FSYNC environment variable beats the configured policy, so a
/// fast-mode test run covers the promotion path too.
Result<WalFsyncPolicy> FsyncPolicyFromEnv(WalFsyncPolicy fallback) {
  const char* env = std::getenv("SOPR_WAL_FSYNC");
  if (env == nullptr || *env == '\0') return fallback;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "off") return WalFsyncPolicy::kOff;
  if (v == "commit") return WalFsyncPolicy::kCommit;
  if (v == "always") return WalFsyncPolicy::kAlways;
  return Status::InvalidArgument("SOPR_WAL_FSYNC: unknown policy '" +
                                 std::string(env) +
                                 "' (expected off, commit, or always)");
}

/// Reads just the SnapshotHeader record of `dir`/snapshot.wal — enough to
/// learn the installed checkpoint's covers_lsn without loading the image.
/// Returns 0 when no snapshot is installed. Snapshots install via atomic
/// rename, so a readable file always has a complete header.
Result<uint64_t> PeekSnapshotCoversLsn(const std::string& dir) {
  std::ifstream in(wal::WalWriter::SnapshotPath(dir), std::ios::binary);
  if (!in) return static_cast<uint64_t>(0);
  char header[wal::kHeaderSize];
  if (!in.read(header, sizeof(header))) {
    return Status::DataLoss("snapshot header truncated in " + dir);
  }
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, header, sizeof(payload_len));
  if (payload_len < wal::kMinPayload || payload_len > wal::kMaxPayload) {
    return Status::DataLoss("snapshot header length is implausible in " +
                            dir);
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    return Status::DataLoss("snapshot header truncated in " + dir);
  }
  wal::WalRecord rec;
  SOPR_RETURN_NOT_OK(wal::DecodePayload(payload, &rec));
  if (rec.type != wal::RecordType::kSnapshotHeader) {
    return Status::DataLoss("snapshot in " + dir +
                            " does not start with a SnapshotHeader");
  }
  return rec.covers_lsn;
}

}  // namespace

/// One bootstrapped generation of the replica. Everything a read session
/// touches hangs off this object, and sessions hold it via shared_ptr
/// (see Follower::Snapshot), so swapping in a fresh generation after a
/// checkpoint rotation never invalidates an open session — the old
/// generation serves its stale-but-consistent snapshot until unpinned.
struct Replica {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<server::CommitScheduler> scheduler;
  std::unique_ptr<WalTailer> tailer;
  std::unique_ptr<wal::GroupReplayer> replayer;
  uint64_t covers_lsn = 0;     // checkpoint this generation loaded
  uint64_t base_next_lsn = 1;  // LSN watermark recovery handed over
  uint64_t base_next_txn = 1;
};

Follower::Follower(FollowerOptions options)
    : options_(std::move(options)), dir_(options_.engine.wal_dir) {}

Follower::~Follower() = default;

Result<std::unique_ptr<Follower>> Follower::Open(FollowerOptions options) {
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  if (options.engine.wal_dir.empty()) {
    return Status::InvalidArgument(
        "Follower::Open: options.engine.wal_dir must name the primary's "
        "WAL directory");
  }
  std::unique_ptr<Follower> follower(new Follower(std::move(options)));
  SOPR_ASSIGN_OR_RETURN(follower->live_, follower->Bootstrap());
  return follower;
}

std::shared_ptr<Replica> Follower::live() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  return live_;
}

void Follower::PublishReplayed(uint64_t lsn) {
  uint64_t seen = replayed_lsn_.load(std::memory_order_relaxed);
  while (lsn > seen &&
         !replayed_lsn_.compare_exchange_weak(seen, lsn,
                                              std::memory_order_release,
                                              std::memory_order_relaxed)) {
  }
}

Result<std::shared_ptr<Replica>> Follower::Bootstrap() {
  SOPR_FAILPOINT_RETURN("repl.bootstrap.load");
  // A plain in-memory engine: the follower must NOT Engine::Open the
  // primary's directory — that would take its DirLock and attach a second
  // writer to its log. Replay goes through read-only recovery instead.
  RuleEngineOptions engine_opts = options_.engine;
  engine_opts.wal_dir.clear();
  auto replica = std::make_shared<Replica>();
  replica->engine = std::make_unique<Engine>(engine_opts);

  wal::RecoverOptions recover_opts;
  recover_opts.read_only = true;
  SOPR_ASSIGN_OR_RETURN(
      wal::RecoveryStats stats,
      wal::RecoverDatabase(dir_, replica->engine.get(), recover_opts));
  // MVCC on AFTER bootstrap replay (like the primary's startup): rows
  // already replayed carry no versions and are visible at any snapshot;
  // every group applied from the tail onward is stamped at its commit
  // LSN, so pinned readers see exactly a committed prefix.
  replica->engine->EnableMvcc();
  replica->scheduler =
      std::make_unique<server::CommitScheduler>(replica->engine.get());
  replica->scheduler->EnterReplicaMode();
  replica->covers_lsn = stats.covers_lsn;
  replica->base_next_lsn = stats.next_lsn;
  replica->base_next_txn = stats.next_txn_id;
  replica->tailer =
      std::make_unique<WalTailer>(dir_, stats.resume_offset, stats.resume_lsn);

  wal::GroupReplayer::Options replay_opts;
  replay_opts.covers_lsn = stats.covers_lsn;
  replay_opts.applied_lsn = stats.applied_lsn;
  replay_opts.stamp_mvcc = true;
  server::CommitScheduler* scheduler = replica->scheduler.get();
  replay_opts.around = [scheduler](
                           bool ddl,
                           const std::function<Status()>& apply) -> Status {
    SOPR_FAILPOINT_RETURN("repl.tail.apply");
    return scheduler->ApplyReplicated(ddl, apply);
  };
  replay_opts.applied = [this, scheduler](uint64_t lsn) {
    scheduler->PublishReplicaLsn(lsn);
    PublishReplayed(lsn);
  };
  replica->replayer = std::make_unique<wal::GroupReplayer>(
      replica->engine.get(), replay_opts);

  const uint64_t bootstrapped = std::max(stats.covers_lsn, stats.applied_lsn);
  scheduler->PublishReplicaLsn(bootstrapped);
  PublishReplayed(bootstrapped);
  return replica;
}

Result<PollResult> Follower::PollOnce() {
  std::lock_guard<std::mutex> lock(apply_mu_);
  if (promoted()) {
    return Status::InvalidArgument(
        "this follower has been promoted; use the promoted engine");
  }
  std::shared_ptr<Replica> replica = live();
  return PollLocked(&replica);
}

Result<PollResult> Follower::PollLocked(std::shared_ptr<Replica>* replica) {
  WalTailer* tailer = (*replica)->tailer.get();
  wal::GroupReplayer* replayer = (*replica)->replayer.get();
  // Rewind point BEFORE this poll: covers any group whose BEGIN is
  // buffered but whose COMMIT has not arrived. If the feed below fails
  // midway, the tailer rewinds here and the next poll re-feeds the same
  // bytes — the replayer's applied-LSN watermark makes the re-feed
  // idempotent, so nothing double-applies.
  const uint64_t rewind_offset = replayer->resume_offset(tailer->offset());
  const uint64_t rewind_lsn = replayer->resume_lsn(tailer->last_lsn());

  Result<TailBatch> polled = tailer->Poll();
  if (!polled.ok()) {
    if (polled.status().code() == StatusCode::kDataLoss) {
      // Mid-log damage — or a checkpoint rotation that slid a fresh log
      // under the stale resume offset, where new records decode as
      // garbage. A newer installed snapshot means rotation.
      Result<uint64_t> covers = PeekSnapshotCoversLsn(dir_);
      if (covers.ok() && covers.value() > (*replica)->covers_lsn) {
        return HandleRotation(*replica);
      }
    }
    if (polled.status().code() == StatusCode::kUnavailable) {
      primary_reachable_.store(false, std::memory_order_release);
    }
    return polled.status();
  }
  primary_reachable_.store(true, std::memory_order_release);
  TailBatch batch = std::move(polled.value());
  if (batch.outcome == TailOutcome::kRotated) {
    return HandleRotation(*replica);
  }

  PollResult result;
  result.outcome = batch.outcome;
  wal::RecoveryStats stats;
  for (const wal::WalRecord& rec : batch.records) {
    Result<bool> fed = replayer->Feed(rec, &stats);
    if (!fed.ok()) {
      // Apply failed (transient injected fault, or real trouble). Forget
      // half-buffered groups and rewind the tailer so the next poll
      // re-reads from the last group boundary.
      replayer->ResetOpen();
      tailer->Reposition(rewind_offset, rewind_lsn);
      return fed.status();
    }
  }
  result.groups_applied = stats.committed_txns + stats.ddl_records;
  // Caught up = nothing durable remains unapplied. A torn tail counts as
  // lag: the bytes are durable, their COMMIT is not yet — CatchUp keeps
  // backing off until it completes (live primary) or gives up with the
  // stale-but-consistent LSN (dead primary; Promote drops the tail).
  result.caught_up = batch.lag_bytes == 0;
  lag_bytes_.store(batch.lag_bytes, std::memory_order_release);
  return result;
}

Result<PollResult> Follower::HandleRotation(
    const std::shared_ptr<Replica>& replica) {
  SOPR_ASSIGN_OR_RETURN(uint64_t covers, PeekSnapshotCoversLsn(dir_));
  const uint64_t applied =
      std::max(replica->covers_lsn, replica->replayer->applied_lsn());
  if (covers <= applied && !replica->replayer->HasOpen()) {
    // Cheap re-anchor: everything the new snapshot bakes in is already
    // applied here, so just tail the fresh log from the top. The
    // replayer's applied watermark keeps any overlap idempotent.
    replica->tailer->Reposition(0, covers);
    replica->covers_lsn = covers;
    PollResult result;
    result.outcome = TailOutcome::kRotated;
    return result;
  }
  // The checkpoint covers groups this follower never saw (or interrupts
  // a group it had half-buffered): the missing prefix lives only in the
  // snapshot now. Re-bootstrap a fresh generation from it; open pinned
  // sessions keep the old generation alive until they finish.
  Result<std::shared_ptr<Replica>> boot = Bootstrap();
  if (!boot.ok()) {
    // Degrade, don't die: the current generation keeps serving
    // stale-but-consistent reads while the primary's directory is
    // unreadable; the caller retries.
    primary_reachable_.store(false, std::memory_order_release);
    return Status::Unavailable(
        "follower re-bootstrap after checkpoint rotation failed (" +
        boot.status().message() + "); still serving reads at lsn " +
        std::to_string(replayed_lsn()));
  }
  {
    std::lock_guard<std::mutex> live_lock(live_mu_);
    live_ = std::move(boot.value());
  }
  PollResult result;
  result.outcome = TailOutcome::kRotated;
  result.rebootstrapped = true;
  return result;
}

Status Follower::CatchUp() {
  Backoff backoff(options_.retry);
  while (true) {
    Result<PollResult> polled = PollOnce();
    bool barren;
    if (polled.ok()) {
      if (polled.value().caught_up) return Status::OK();
      barren = polled.value().groups_applied == 0 &&
               !polled.value().rebootstrapped;
    } else if (polled.status().code() == StatusCode::kUnavailable) {
      barren = true;
    } else {
      return polled.status();
    }
    if (!barren) {
      backoff.Reset();
      continue;
    }
    if (!backoff.ShouldRetry()) {
      return Status::Unavailable(
          "follower catch-up gave up after " +
          std::to_string(backoff.attempts()) +
          " barren polls; reads stay available, pinned at lsn " +
          std::to_string(replayed_lsn()));
    }
    std::this_thread::sleep_for(backoff.NextDelay());
  }
}

uint64_t Follower::StateChecksum() const {
  std::shared_ptr<Replica> replica = live();
  return replica->engine == nullptr ? 0 : replica->engine->StateChecksum();
}

LagBound Follower::Lag() const {
  LagBound bound;
  bound.replayed_lsn = replayed_lsn();
  bound.lag_bytes = lag_bytes_.load(std::memory_order_acquire);
  bound.primary_reachable =
      primary_reachable_.load(std::memory_order_acquire);
  return bound;
}

Follower::Snapshot Follower::PinSnapshot() {
  std::shared_ptr<Replica> replica = live();
  SnapshotRegistry::Pin pin = replica->scheduler->PinSnapshot();
  return Snapshot{std::move(replica), std::move(pin)};
}

Result<QueryResult> Follower::QueryAt(const Snapshot& snapshot,
                                      const std::string& sql) {
  if (snapshot.replica == nullptr || snapshot.replica->engine == nullptr) {
    return Status::Unavailable(
        "this snapshot's replica was promoted; re-pin against the "
        "promoted engine");
  }
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::ReadOnlyReplica(
        "snapshot sessions on a follower are read-only");
  }
  return snapshot.replica->scheduler->QueryAt(
      snapshot.pin, static_cast<const SelectStmt&>(*stmt));
}

Result<QueryResult> Follower::Query(const std::string& sql) {
  std::shared_ptr<Replica> replica = live();
  if (replica->engine == nullptr) {
    return Status::Unavailable(
        "this follower has been promoted; query the promoted engine");
  }
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::ReadOnlyReplica(
        "this node is a read-only replication follower; send writes to "
        "the primary (or promote this follower first)");
  }
  return replica->scheduler->QuerySnapshot(
      static_cast<const SelectStmt&>(*stmt));
}

Status Follower::Execute(const std::string& sql) {
  std::shared_ptr<Replica> replica = live();
  if (replica->engine == nullptr) {
    return Status::Unavailable(
        "this follower has been promoted; use the promoted engine");
  }
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts,
                        Parser::ParseScript(sql));
  if (stmts.empty()) return Status::OK();
  if (stmts.size() == 1 && stmts[0]->kind == StmtKind::kSelect) {
    return Query(sql).status();
  }
  // Route through the scheduler's write paths so the refusal is the same
  // one a network session would get.
  if (Engine::IsDdlStmt(*stmts[0])) {
    return replica->scheduler->ExecuteDdl(std::move(stmts));
  }
  return replica->scheduler->ExecuteBlock(stmts).status();
}

Result<std::unique_ptr<Engine>> Follower::Promote() {
  std::lock_guard<std::mutex> lock(apply_mu_);
  if (promoted()) {
    return Status::InvalidArgument("this follower is already promoted");
  }
  SOPR_FAILPOINT_RETURN("repl.promote.begin");
  // The single-writer lock is the fencing token: it cannot be acquired
  // while the primary lives (flock releases only when its holder's fd
  // closes — including on kill), and once held the log is frozen.
  SOPR_ASSIGN_OR_RETURN(std::unique_ptr<wal::DirLock> dir_lock,
                        wal::DirLock::Acquire(dir_));

  // Final drain: the log is static now, so poll until it ends cleanly or
  // in a torn tail (the dead primary's interrupted last write — it will
  // never complete). Transient read failures back off and retry.
  std::shared_ptr<Replica> replica = live();
  Backoff backoff(options_.retry);
  while (true) {
    Result<PollResult> polled = PollLocked(&replica);
    if (!polled.ok()) {
      if (polled.status().code() == StatusCode::kUnavailable &&
          backoff.ShouldRetry()) {
        std::this_thread::sleep_for(backoff.NextDelay());
        continue;
      }
      return polled.status();
    }
    if (polled.value().rebootstrapped) {
      replica = live();
      continue;
    }
    if (polled.value().groups_applied > 0) {
      backoff.Reset();
      continue;
    }
    if (polled.value().outcome == TailOutcome::kIdle ||
        polled.value().outcome == TailOutcome::kRetryLater) {
      break;
    }
  }

  SOPR_FAILPOINT_RETURN("repl.promote.truncate");
  // Now this node owns the log: drop the torn tail exactly like primary
  // recovery would, and discard the matching half-buffered groups.
  const std::string log_path = wal::WalWriter::LogPath(dir_);
  if (::truncate(log_path.c_str(),
                 static_cast<off_t>(replica->tailer->offset())) != 0 &&
      !(errno == ENOENT && replica->tailer->offset() == 0)) {
    return Status::IoError("promote: truncate " + log_path + ": " +
                           std::strerror(errno));
  }
  wal::RecoveryStats discard_stats;
  replica->replayer->DiscardOpen(&discard_stats);
  SOPR_RETURN_NOT_OK(replica->engine->CheckInvariants());

  SOPR_FAILPOINT_RETURN("repl.promote.attach");
  SOPR_ASSIGN_OR_RETURN(WalFsyncPolicy policy,
                        FsyncPolicyFromEnv(options_.engine.wal_fsync));
  auto writer = std::make_unique<wal::WalWriter>(policy);
  const uint64_t next_lsn =
      std::max(replica->base_next_lsn, replica->replayer->max_lsn() + 1);
  const uint64_t next_txn =
      std::max(replica->base_next_txn, replica->replayer->max_txn_id() + 1);
  SOPR_RETURN_NOT_OK(writer->Open(dir_, next_lsn, next_txn));
  replica->engine->AdoptDurability(std::move(dir_lock), std::move(writer));
  promoted_.store(true, std::memory_order_release);
  // The engine moves out to the caller; pinned sessions on this replica
  // see the null engine and refuse with a pointer to the promoted one.
  return std::move(replica->engine);
}

}  // namespace replication
}  // namespace sopr
