#ifndef SOPR_REPLICATION_WAL_TAILER_H_
#define SOPR_REPLICATION_WAL_TAILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/wal_format.h"

namespace sopr {
namespace replication {

/// How one tailer poll of the primary's wal.log ended.
enum class TailOutcome {
  kProgress,    // new well-formed records were delivered
  kIdle,        // caught up: the log ends cleanly at the resume point
  kRetryLater,  // the log ends in a torn record — the primary is mid-write
                // (or died mid-write); poll again after a backoff
  kRotated,     // the log shrank below the resume point: a checkpoint
                // truncated it (the follower re-anchors on the snapshot)
};

const char* TailOutcomeName(TailOutcome outcome);

struct TailBatch {
  std::vector<wal::WalRecord> records;  // newly durable, in LSN order
  TailOutcome outcome = TailOutcome::kIdle;
  /// Durable bytes past the consumed prefix (torn-tail bytes the poll
  /// could not yet deliver) — the byte component of the follower's
  /// reported lag bound.
  uint64_t lag_bytes = 0;
  std::string detail;  // scanner classification for torn tails
};

/// Incrementally follows a wal.log that another process (the primary) is
/// appending to. Each Poll() reads only [offset, EOF) — never the whole
/// file — verifies framing/checksums/LSN continuity from the resume
/// seed, and advances the resume point past every well-formed record
/// (docs/REPLICATION.md). The tailer never writes: torn tails are the
/// primary's business until promotion.
///
/// Failure taxonomy: a read failure or an armed `repl.tail.read`
/// failpoint surfaces as retryable kUnavailable; mid-log damage is
/// kDataLoss (the Follower re-checks the checkpoint before believing
/// it — a concurrent rotation misaligns the resume offset and decodes
/// as garbage).
class WalTailer {
 public:
  WalTailer(std::string dir, uint64_t start_offset, uint64_t last_lsn);

  /// One incremental read of the log. Never blocks on the primary.
  Result<TailBatch> Poll();

  /// Resume point: the absolute offset just past the last well-formed
  /// record consumed, and that record's LSN (the scanner seed).
  uint64_t offset() const { return offset_; }
  uint64_t last_lsn() const { return last_lsn_; }

  /// Rewinds or re-anchors the resume point (after a failed apply, or
  /// onto a fresh post-rotation log).
  void Reposition(uint64_t offset, uint64_t last_lsn);

  /// Cumulative bytes delivered by Poll reads — the torn-tail test uses
  /// this to prove a completed record is picked up without rescanning.
  uint64_t bytes_read() const { return bytes_read_; }

  const std::string& log_path() const { return path_; }

 private:
  std::string path_;
  uint64_t offset_;
  uint64_t last_lsn_;
  uint64_t bytes_read_ = 0;
};

}  // namespace replication
}  // namespace sopr

#endif  // SOPR_REPLICATION_WAL_TAILER_H_
