#include "engine/engine.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/digest.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "query/snapshot_resolver.h"
#include "wal/checkpoint.h"
#include "wal/dir_lock.h"
#include "wal/recovery.h"
#include "wal/wal_writer.h"

namespace sopr {

namespace {

bool IsDdl(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kCreateTable:
    case StmtKind::kCreateIndex:
    case StmtKind::kCreateRule:
    case StmtKind::kCreatePriority:
    case StmtKind::kDropRule:
    case StmtKind::kDropTable:
    case StmtKind::kSetRuleEnabled:
      return true;
    default:
      return false;
  }
}

Result<WalFsyncPolicy> FsyncPolicyFromEnv(WalFsyncPolicy fallback) {
  const char* env = std::getenv("SOPR_WAL_FSYNC");
  if (env == nullptr || *env == '\0') return fallback;
  std::string v = ToLower(env);
  if (v == "off") return WalFsyncPolicy::kOff;
  if (v == "commit") return WalFsyncPolicy::kCommit;
  if (v == "always") return WalFsyncPolicy::kAlways;
  return Status::InvalidArgument("SOPR_WAL_FSYNC: unknown policy '" +
                                 std::string(env) +
                                 "' (expected off, commit, or always)");
}

}  // namespace

Engine::Engine(RuleEngineOptions options)
    : db_(std::make_unique<Database>()),
      rules_(std::make_unique<RuleEngine>(db_.get(), options)) {}

Engine::~Engine() {
  // Detach before the writer is destroyed so nothing dangles if member
  // destruction order ever changes.
  db_->set_wal(nullptr);
  rules_->set_wal(nullptr);
}

Result<std::unique_ptr<Engine>> Engine::Open(RuleEngineOptions options) {
  // A malformed SOPR_FAILPOINTS spec is a hard startup error here — the
  // lazy site-hit path deliberately ignores it, so without this check a
  // typo would silently disable the requested fault injection.
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  SOPR_ASSIGN_OR_RETURN(options.wal_fsync,
                        FsyncPolicyFromEnv(options.wal_fsync));
  auto engine = std::make_unique<Engine>(options);
  if (options.wal_dir.empty()) return engine;

  if (::mkdir(options.wal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + options.wal_dir + ": " +
                           std::strerror(errno));
  }
  // Take the single-writer directory lock before touching the log: a
  // second engine (this process or another) on the same wal_dir would be
  // silent log corruption. Held until the engine is destroyed.
  SOPR_ASSIGN_OR_RETURN(engine->dir_lock_,
                        wal::DirLock::Acquire(options.wal_dir));
  // Recovery runs before the writer attaches: replay must not re-log.
  SOPR_ASSIGN_OR_RETURN(wal::RecoveryStats stats,
                        wal::RecoverDatabase(options.wal_dir, engine.get()));
  auto writer = std::make_unique<wal::WalWriter>(options.wal_fsync);
  SOPR_RETURN_NOT_OK(
      writer->Open(options.wal_dir, stats.next_lsn, stats.next_txn_id));
  engine->AttachWal(std::move(writer));
  return engine;
}

void Engine::AttachWal(std::unique_ptr<wal::WalWriter> wal) {
  wal_ = std::move(wal);
  db_->set_wal(wal_.get());
  rules_->set_wal(wal_.get());
}

void Engine::AdoptDurability(std::unique_ptr<wal::DirLock> lock,
                             std::unique_ptr<wal::WalWriter> wal) {
  dir_lock_ = std::move(lock);
  db_->set_incremental_prune_floor({});
  AttachWal(std::move(wal));
}

Status Engine::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("Checkpoint: no WAL attached");
  }
  return wal::WriteCheckpoint(this, wal_.get());
}

Status Engine::MaybeCheckpoint() {
  if (wal_ == nullptr) return Status::OK();
  const uint64_t interval = rules_->options().wal_checkpoint_interval;
  if (interval == 0 || wal_->commits_since_checkpoint() < interval) {
    return Status::OK();
  }
  Status ok = Checkpoint();
  if (!ok.ok()) {
    // The triggering transaction COMMITTED; only the snapshot failed.
    // Say so rather than letting the error read like a lost commit.
    return Status(ok.code(),
                  "post-commit checkpoint failed (the transaction itself "
                  "is durable): " +
                      ok.message());
  }
  return Status::OK();
}

uint64_t Engine::StateChecksum() const {
  return digest::Combine(db_->Checksum(), rules_->RuleSetChecksum());
}

Status Engine::CheckInvariants() const { return db_->CheckInvariants(); }

Status Engine::LogDdl(const std::string& sql) {
  if (wal_ == nullptr) return Status::OK();
  Status logged = wal_->AppendDdl(sql);
  if (!logged.ok()) {
    return Status(logged.code(), "DDL applied in memory but not durable (" +
                                     sql + "): " + logged.message());
  }
  return Status::OK();
}

Status Engine::ExecuteDdl(const Stmt& stmt) {
  // Fires before any catalog or storage change: an injected DDL failure
  // leaves the schema exactly as it was.
  SOPR_FAILPOINT_RETURN("engine.ddl.pre");
  switch (stmt.kind) {
    case StmtKind::kCreateTable: {
      const auto& ct = static_cast<const CreateTableStmt&>(stmt);
      std::vector<ColumnDef> columns;
      columns.reserve(ct.columns.size());
      for (const auto& [name, type] : ct.columns) {
        columns.push_back(ColumnDef{name, type});
      }
      return db_->CreateTable(TableSchema(ct.table, std::move(columns)));
    }
    case StmtKind::kCreateIndex: {
      const auto& ci = static_cast<const CreateIndexStmt&>(stmt);
      SOPR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(ci.table));
      auto column = table->schema().FindColumn(ci.column);
      if (!column) {
        return Status::CatalogError("no column " + ci.column + " in table " +
                                    ci.table);
      }
      return table->CreateIndex(*column);
    }
    case StmtKind::kSetRuleEnabled: {
      const auto& sre = static_cast<const SetRuleEnabledStmt&>(stmt);
      return rules_->SetRuleEnabled(sre.name, sre.enabled);
    }
    case StmtKind::kCreatePriority: {
      const auto& cp = static_cast<const CreatePriorityStmt&>(stmt);
      return rules_->AddPriority(cp.higher, cp.lower);
    }
    case StmtKind::kDropRule: {
      const auto& dr = static_cast<const DropRuleStmt&>(stmt);
      return rules_->DropRule(dr.name);
    }
    case StmtKind::kDropTable: {
      const auto& dt = static_cast<const DropTableStmt&>(stmt);
      // A table still referenced by a rule cannot be dropped: the rule
      // would dangle (its predicates and transition tables name it).
      for (const std::string& rule_name : rules_->RuleNames()) {
        auto rule = rules_->GetRule(rule_name);
        if (!rule.ok()) continue;
        if (RuleReferencesTable(*rule.value(), dt.table)) {
          return Status::InvalidArgument("cannot drop table " + dt.table +
                                         ": referenced by rule " + rule_name);
        }
      }
      return db_->DropTable(dt.table);
    }
    default:
      return Status::Internal("not DDL");
  }
}

bool Engine::IsDdlStmt(const Stmt& stmt) { return IsDdl(stmt); }

Status Engine::ExecuteDdlScript(std::vector<StmtPtr>& stmts) {
  for (StmtPtr& stmt : stmts) {
    if (!IsDdl(*stmt)) {
      return Status::InvalidArgument(
          "cannot mix DDL and DML in one script: " + stmt->ToString());
    }
    // Apply-then-log: the statement's durability point is the log
    // append returning OK. Render the SQL first — defining a rule
    // hands the AST over to the rule engine.
    std::string sql_text = stmt->ToString();
    if (stmt->kind == StmtKind::kCreateRule) {
      std::shared_ptr<const CreateRuleStmt> def(
          static_cast<const CreateRuleStmt*>(stmt.release()));
      SOPR_RETURN_NOT_OK(rules_->DefineRule(std::move(def)));
    } else {
      SOPR_RETURN_NOT_OK(ExecuteDdl(*stmt));
    }
    SOPR_RETURN_NOT_OK(LogDdl(sql_text));
  }
  return Status::OK();
}

Status Engine::Execute(const std::string& sql) {
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));

  if (IsDdl(*stmts[0])) {
    return ExecuteDdlScript(stmts);
  }

  SOPR_ASSIGN_OR_RETURN(ExecutionTrace trace, ExecuteBlockParsed(stmts));
  if (trace.rolled_back) {
    return Status::RolledBack("transaction rolled back by rule " +
                              trace.rollback_rule);
  }
  return Status::OK();
}

Result<ExecutionTrace> Engine::ExecuteBlock(const std::string& sql) {
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  for (const StmtPtr& stmt : stmts) {
    if (IsDdl(*stmt)) {
      return Status::InvalidArgument("ExecuteBlock expects DML, got: " +
                                     stmt->ToString());
    }
  }
  return ExecuteBlockParsed(stmts);
}

Result<ExecutionTrace> Engine::ExecuteBlockParsed(
    const std::vector<StmtPtr>& stmts) {
  // Fires before Begin: an injected failure here rejects the block before
  // any transaction exists.
  SOPR_FAILPOINT_RETURN("engine.execute.pre");
  std::vector<const Stmt*> ops;
  ops.reserve(stmts.size());
  for (const StmtPtr& stmt : stmts) ops.push_back(stmt.get());
  auto trace = rules_->ExecuteBlock(ops);
  if (trace.ok()) SOPR_RETURN_NOT_OK(MaybeCheckpoint());
  return trace;
}

Result<QueryResult> Engine::Query(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("Query expects a select statement");
  }
  return QueryParsed(static_cast<const SelectStmt&>(*stmt));
}

Result<QueryResult> Engine::QueryParsed(const SelectStmt& stmt) {
  DatabaseResolver resolver(db_.get());
  Executor executor(db_.get(), &resolver, ExecOptionsFrom(rules_->options()));
  return executor.ExecuteSelect(stmt);
}

Result<QueryResult> Engine::QueryAtSnapshot(const SelectStmt& stmt,
                                            uint64_t lsn) const {
  SnapshotResolver resolver(db_.get(), lsn);
  // The select path never touches the Executor's Database (that member
  // exists for DML), so a null db keeps this path trivially read-only.
  Executor executor(nullptr, &resolver, ExecOptionsFrom(rules_->options()));
  return executor.ExecuteSelect(stmt);
}

Result<ExecutionTrace> Engine::ExecuteStaged(
    const std::vector<StmtPtr>& stmts,
    std::shared_ptr<wal::CommitTicket>* ticket) {
  *ticket = nullptr;
  SOPR_FAILPOINT_RETURN("engine.execute.pre");
  std::vector<const Stmt*> ops;
  ops.reserve(stmts.size());
  for (const StmtPtr& stmt : stmts) ops.push_back(stmt.get());
  // No MaybeCheckpoint here: checkpointing needs the front-end's
  // exclusive section AND a drained group queue — the scheduler owns it.
  return rules_->ExecuteBlockStaged(ops, ticket);
}

Status Engine::AwaitDurable(const std::shared_ptr<wal::CommitTicket>& ticket) {
  if (wal_ == nullptr) return Status::OK();
  return wal_->AwaitDurable(ticket);
}

Status Engine::Run(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  std::vector<const Stmt*> ops;
  ops.reserve(stmts.size());
  for (const StmtPtr& stmt : stmts) {
    if (IsDdl(*stmt)) {
      return Status::InvalidArgument("Run expects DML, got: " +
                                     stmt->ToString());
    }
    ops.push_back(stmt.get());
  }
  return rules_->RunOps(ops);
}

Result<ExecutionTrace> Engine::ProcessRules() {
  ExecutionTrace trace;
  SOPR_RETURN_NOT_OK(rules_->ProcessRules(&trace));
  return trace;
}

Result<ExecutionTrace> Engine::Commit() {
  ExecutionTrace trace;
  SOPR_RETURN_NOT_OK(rules_->Commit(&trace));
  SOPR_RETURN_NOT_OK(MaybeCheckpoint());
  return trace;
}

Result<size_t> Engine::TableSize(const std::string& table) const {
  SOPR_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(table));
  return t->size();
}

}  // namespace sopr
