#include "engine/engine.h"

#include "common/failpoint.h"

namespace sopr {

namespace {

bool IsDdl(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kCreateTable:
    case StmtKind::kCreateIndex:
    case StmtKind::kCreateRule:
    case StmtKind::kCreatePriority:
    case StmtKind::kDropRule:
    case StmtKind::kDropTable:
    case StmtKind::kSetRuleEnabled:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status Engine::ExecuteDdl(const Stmt& stmt) {
  // Fires before any catalog or storage change: an injected DDL failure
  // leaves the schema exactly as it was.
  SOPR_FAILPOINT_RETURN("engine.ddl.pre");
  switch (stmt.kind) {
    case StmtKind::kCreateTable: {
      const auto& ct = static_cast<const CreateTableStmt&>(stmt);
      std::vector<ColumnDef> columns;
      columns.reserve(ct.columns.size());
      for (const auto& [name, type] : ct.columns) {
        columns.push_back(ColumnDef{name, type});
      }
      return db_->CreateTable(TableSchema(ct.table, std::move(columns)));
    }
    case StmtKind::kCreateIndex: {
      const auto& ci = static_cast<const CreateIndexStmt&>(stmt);
      SOPR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(ci.table));
      auto column = table->schema().FindColumn(ci.column);
      if (!column) {
        return Status::CatalogError("no column " + ci.column + " in table " +
                                    ci.table);
      }
      return table->CreateIndex(*column);
    }
    case StmtKind::kSetRuleEnabled: {
      const auto& sre = static_cast<const SetRuleEnabledStmt&>(stmt);
      return rules_->SetRuleEnabled(sre.name, sre.enabled);
    }
    case StmtKind::kCreatePriority: {
      const auto& cp = static_cast<const CreatePriorityStmt&>(stmt);
      return rules_->AddPriority(cp.higher, cp.lower);
    }
    case StmtKind::kDropRule: {
      const auto& dr = static_cast<const DropRuleStmt&>(stmt);
      return rules_->DropRule(dr.name);
    }
    case StmtKind::kDropTable: {
      const auto& dt = static_cast<const DropTableStmt&>(stmt);
      // A table still referenced by a rule cannot be dropped: the rule
      // would dangle (its predicates and transition tables name it).
      for (const std::string& rule_name : rules_->RuleNames()) {
        auto rule = rules_->GetRule(rule_name);
        if (!rule.ok()) continue;
        if (RuleReferencesTable(*rule.value(), dt.table)) {
          return Status::InvalidArgument("cannot drop table " + dt.table +
                                         ": referenced by rule " + rule_name);
        }
      }
      return db_->DropTable(dt.table);
    }
    default:
      return Status::Internal("not DDL");
  }
}

Status Engine::Execute(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));

  if (IsDdl(*stmts[0])) {
    for (StmtPtr& stmt : stmts) {
      if (!IsDdl(*stmt)) {
        return Status::InvalidArgument(
            "cannot mix DDL and DML in one script: " + stmt->ToString());
      }
      if (stmt->kind == StmtKind::kCreateRule) {
        std::shared_ptr<const CreateRuleStmt> def(
            static_cast<const CreateRuleStmt*>(stmt.release()));
        SOPR_RETURN_NOT_OK(rules_->DefineRule(std::move(def)));
      } else {
        SOPR_RETURN_NOT_OK(ExecuteDdl(*stmt));
      }
    }
    return Status::OK();
  }

  SOPR_ASSIGN_OR_RETURN(ExecutionTrace trace, ExecuteBlockParsed(stmts));
  if (trace.rolled_back) {
    return Status::RolledBack("transaction rolled back by rule " +
                              trace.rollback_rule);
  }
  return Status::OK();
}

Result<ExecutionTrace> Engine::ExecuteBlock(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  for (const StmtPtr& stmt : stmts) {
    if (IsDdl(*stmt)) {
      return Status::InvalidArgument("ExecuteBlock expects DML, got: " +
                                     stmt->ToString());
    }
  }
  return ExecuteBlockParsed(stmts);
}

Result<ExecutionTrace> Engine::ExecuteBlockParsed(
    const std::vector<StmtPtr>& stmts) {
  // Fires before Begin: an injected failure here rejects the block before
  // any transaction exists.
  SOPR_FAILPOINT_RETURN("engine.execute.pre");
  std::vector<const Stmt*> ops;
  ops.reserve(stmts.size());
  for (const StmtPtr& stmt : stmts) ops.push_back(stmt.get());
  return rules_->ExecuteBlock(ops);
}

Result<QueryResult> Engine::Query(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("Query expects a select statement");
  }
  DatabaseResolver resolver(db_.get());
  Executor executor(db_.get(), &resolver,
                    rules_->options().optimize_queries);
  return executor.ExecuteSelect(static_cast<const SelectStmt&>(*stmt));
}

Status Engine::Run(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  std::vector<const Stmt*> ops;
  ops.reserve(stmts.size());
  for (const StmtPtr& stmt : stmts) {
    if (IsDdl(*stmt)) {
      return Status::InvalidArgument("Run expects DML, got: " +
                                     stmt->ToString());
    }
    ops.push_back(stmt.get());
  }
  return rules_->RunOps(ops);
}

Result<ExecutionTrace> Engine::ProcessRules() {
  ExecutionTrace trace;
  SOPR_RETURN_NOT_OK(rules_->ProcessRules(&trace));
  return trace;
}

Result<ExecutionTrace> Engine::Commit() {
  ExecutionTrace trace;
  SOPR_RETURN_NOT_OK(rules_->Commit(&trace));
  return trace;
}

Result<size_t> Engine::TableSize(const std::string& table) const {
  SOPR_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(table));
  return t->size();
}

}  // namespace sopr
