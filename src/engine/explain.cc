#include "engine/explain.h"

#include "query/planner.h"
#include "sql/parser.h"

namespace sopr {

Result<std::string> ExplainSelect(Engine* engine, const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("explain expects a select statement");
  }
  const auto& select = static_cast<const SelectStmt&>(*stmt);

  DatabaseResolver resolver(&engine->db());
  std::vector<QueryPlan::BindingInfo> bindings;
  bindings.reserve(select.from.size());
  for (const TableRef& ref : select.from) {
    SOPR_ASSIGN_OR_RETURN(const TableSchema* schema,
                          resolver.ResolveSchema(ref));
    bindings.push_back(QueryPlan::BindingInfo{ref.binding_name(), schema});
  }
  QueryPlan plan = QueryPlan::Analyze(select.where.get(), bindings);

  std::string out;

  out += "from:     ";
  for (size_t i = 0; i < select.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += select.from[i].ToString();
    auto size = engine->TableSize(select.from[i].table);
    if (size.ok()) {
      out += " [" + std::to_string(size.value()) + " rows]";
    }
  }
  out += "\n";

  out += "pushed:   ";
  if (plan.pushed().empty()) {
    out += "(none)";
  } else {
    bool first = true;
    for (const QueryPlan::PushedFilter& filter : plan.pushed()) {
      if (!first) out += "; ";
      first = false;
      out += bindings[filter.binding].name + ": " +
             filter.conjunct->ToString();
      // Report index-assisted scans for `col = literal`.
      if (auto hint =
              FindEqLiteral(filter.conjunct,
                            *bindings[filter.binding].schema)) {
        auto table = engine->db().GetTable(select.from[filter.binding].table);
        if (table.ok() && select.from[filter.binding].kind ==
                              TableRefKind::kBase &&
            table.value()->GetIndex(hint->first) != nullptr) {
          out += " [index scan]";
        }
      }
    }
  }
  out += "\n";

  out += "join:     ";
  if (plan.joins().empty()) {
    out += select.from.size() > 1 ? "(cross product)" : "(single table)";
  } else {
    bool first = true;
    for (const QueryPlan::JoinEdge& edge : plan.joins()) {
      if (!first) out += "; ";
      first = false;
      out += bindings[edge.left_binding].name + "." +
             bindings[edge.left_binding].schema->columns()[edge.left_column]
                 .name +
             " = " + bindings[edge.right_binding].name + "." +
             bindings[edge.right_binding]
                 .schema->columns()[edge.right_column]
                 .name +
             " (hash)";
    }
  }
  out += "\n";

  out += "order:    ";
  std::vector<size_t> order = plan.JoinOrder(bindings.size());
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += ", ";
    out += bindings[order[i]].name;
  }
  out += "\n";

  out += "residual: ";
  if (plan.residual().empty()) {
    out += "(none)";
  } else {
    bool first = true;
    for (const Expr* conjunct : plan.residual()) {
      if (!first) out += "; ";
      first = false;
      out += conjunct->ToString();
    }
  }
  out += "\n";
  return out;
}

}  // namespace sopr
