#ifndef SOPR_ENGINE_EXPLAIN_H_
#define SOPR_ENGINE_EXPLAIN_H_

#include <string>

#include "common/status.h"
#include "engine/engine.h"

namespace sopr {

/// Renders the query plan the optimizer would use for a select statement:
/// per-relation pushed filters (with index usage), hash-join edges, the
/// greedy join order, and residual predicates. Purely analytical — the
/// query is not executed.
///
///   explain> select * from emp e, dept d
///            where e.dept_no = d.dept_no and salary > 5
///   from:     emp e [2 rows], dept d [4 rows]
///   pushed:   e: (salary > 5)
///   join:     e.dept_no = d.dept_no (hash)
///   order:    e, d
///   residual: (none)
Result<std::string> ExplainSelect(Engine* engine, const std::string& sql);

}  // namespace sopr

#endif  // SOPR_ENGINE_EXPLAIN_H_
