#ifndef SOPR_ENGINE_ENGINE_H_
#define SOPR_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/executor.h"
#include "rules/rule_engine.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace sopr {

namespace wal {
class DirLock;
class WalWriter;
struct CommitTicket;
}  // namespace wal

/// Top-level facade: a single-user relational database with the paper's
/// set-oriented production rules, driven by SQL text.
///
/// Usage:
///   Engine engine;
///   engine.Execute("create table emp (name string, emp_no int, "
///                  "salary double, dept_no int)");
///   engine.Execute("create rule r1 when deleted from dept then ...");
///   engine.Execute("insert into emp values ('Jane', 1, 50000, 2)");
///   auto result = engine.Query("select * from emp");
///
/// Every call to Execute with DML runs as one transaction: the statements
/// form a single externally-generated operation block, after which rules
/// are processed to quiescence and the transaction commits (§4). DDL
/// (create table / create rule / priorities / drop rule) executes
/// immediately and is not transactional.
///
/// The plain constructor builds a purely in-memory engine. For a durable
/// one use Open() with options.wal_dir set: it surfaces SOPR_FAILPOINTS
/// parse errors, runs crash recovery on the directory, and attaches a
/// write-ahead log so every later commit and DDL statement is logged
/// (docs/DURABILITY.md).
class Engine {
 public:
  explicit Engine(RuleEngineOptions options = {});
  ~Engine();

  /// Factory with durability. Recovery rebuilds catalog, data, and rules
  /// from options.wal_dir (created if missing; empty wal_dir = in-memory
  /// engine, still validating the failpoint environment). The effective
  /// fsync policy is options.wal_fsync unless SOPR_WAL_FSYNC=
  /// off|commit|always overrides it.
  static Result<std::unique_ptr<Engine>> Open(RuleEngineOptions options);

  /// Executes DDL or a DML operation block. Returns
  /// StatusCode::kRolledBack if a rule's rollback action fired.
  Status Execute(const std::string& sql);

  /// Like Execute for DML, but returns the full execution trace (rule
  /// considerations, firings, retrieved result sets).
  Result<ExecutionTrace> ExecuteBlock(const std::string& sql);

  /// Runs a read-only query outside any transaction. Does not trigger
  /// rules (use ExecuteBlock with a select inside a transaction for the
  /// §5.1 select-triggering extension).
  Result<QueryResult> Query(const std::string& sql);

  // --- §5.3 explicit transaction control with rule triggering points ---
  Status Begin() { return rules_->Begin(); }
  /// Executes DML statements in the open transaction without processing
  /// rules.
  Status Run(const std::string& sql);
  /// Explicit rule triggering point.
  Result<ExecutionTrace> ProcessRules();
  /// Final rule processing + commit.
  Result<ExecutionTrace> Commit();
  Status Rollback() { return rules_->RollbackTransaction(); }
  bool in_transaction() const { return rules_->in_transaction(); }

  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  RuleEngine& rules() { return *rules_; }
  const RuleEngine& rules() const { return *rules_; }

  /// Convenience for tests/examples: number of rows currently in `table`.
  Result<size_t> TableSize(const std::string& table) const;

  // --- Concurrent front-end support (src/server/, docs/CONCURRENCY.md).
  // The Engine itself takes no locks: callers (the CommitScheduler) must
  // serialize ExecuteStaged / ExecuteDdlScript / Checkpoint exclusively
  // and may run QueryParsed concurrently under a shared lock.
  /// True if `stmt` is DDL (schema or rule catalog change) — the routing
  /// predicate sessions use to pick ExecuteDdlScript vs ExecuteStaged.
  static bool IsDdlStmt(const Stmt& stmt);
  /// Executes a parsed DML block as one transaction whose durable batch
  /// is STAGED on the WAL's group-commit queue instead of synced inline.
  /// *ticket receives the commit ticket (null when read-only or
  /// in-memory); the caller must AwaitDurable it after leaving the
  /// serialized section. Never checkpoints — the scheduler owns that.
  Result<ExecutionTrace> ExecuteStaged(
      const std::vector<StmtPtr>& stmts,
      std::shared_ptr<wal::CommitTicket>* ticket);
  /// Blocks until `ticket`'s group-commit cohort is durable (OK for null
  /// tickets and in-memory engines). Safe from any thread.
  Status AwaitDurable(const std::shared_ptr<wal::CommitTicket>& ticket);
  /// Applies a parsed all-DDL script (apply-then-log, like Execute's DDL
  /// path). Consumes create-rule statements from `stmts`.
  Status ExecuteDdlScript(std::vector<StmtPtr>& stmts);
  /// Runs an already-parsed select.
  Result<QueryResult> QueryParsed(const SelectStmt& stmt);

  // --- MVCC snapshot reads (docs/CONCURRENCY.md) ---
  /// Turns on version tracking. Call after recovery and before concurrent
  /// readers exist (the SessionManager does this).
  void EnableMvcc() { db_->EnableMvcc(); }
  bool mvcc_enabled() const { return db_->mvcc_enabled(); }

  // --- Record-level write locking (docs/CONCURRENCY.md) ---
  /// Turns on record-level write locking so writer sessions touching
  /// disjoint rows can run concurrently (the CommitScheduler then admits
  /// writers under the shared side of its lock). Requires MVCC — rollback
  /// of a lock-victim transaction rides the MVCC undo/journal machinery,
  /// and readers need version latches once writers overlap. Call before
  /// concurrent writers exist (the SessionManager does this).
  void EnableConcurrentWriters() {
    db_->EnableWriteLocking();
    // Bound every lock wait by the configured timeout (docs/OVERLOAD.md);
    // zero disables the per-wait bound.
    db_->lock_manager()->set_wait_timeout(
        std::chrono::duration_cast<std::chrono::microseconds>(
            rules_->options().lock_wait_timeout));
  }
  bool concurrent_writers() const { return db_->lock_manager() != nullptr; }
  /// LSN of the most recent commit — the newest snapshot point.
  uint64_t last_commit_lsn() const { return db_->last_commit_lsn(); }
  /// Runs an already-parsed select against the state as of snapshot
  /// `lsn`, entirely under the tables' shared version latches — safe
  /// concurrently with ExecuteStaged on another thread. Caller must hold
  /// the scheduler's schema lock (shared) to exclude DDL.
  Result<QueryResult> QueryAtSnapshot(const SelectStmt& stmt,
                                      uint64_t lsn) const;

  // --- Durability ---
  /// Takes ownership of an opened writer and routes redo/commit/DDL
  /// through it (used by Open(); exposed for tests that build the parts
  /// by hand). Passing nullptr detaches.
  void AttachWal(std::unique_ptr<wal::WalWriter> wal);
  /// Promotion seam (src/replication/): installs the WAL-directory lock
  /// and an opened writer on an engine built by follower replay, which
  /// ran without either (the primary held the lock). Also clears any
  /// incremental prune floor the follower's scheduler installed — the
  /// promoted engine's own front end sets a fresh one. After this call
  /// the engine is indistinguishable from one produced by Open().
  void AdoptDurability(std::unique_ptr<wal::DirLock> lock,
                       std::unique_ptr<wal::WalWriter> wal);
  bool durable() const { return wal_ != nullptr; }
  wal::WalWriter* wal() { return wal_.get(); }

  /// Writes a snapshot checkpoint now (see wal/checkpoint.h). Fails if no
  /// WAL is attached or a transaction is open.
  Status Checkpoint();

  /// Digest over the full recoverable state: database (catalog + heaps +
  /// indexes) combined with the rule set (definitions, activation,
  /// priorities). The crash harness compares this across restarts.
  uint64_t StateChecksum() const;
  /// Physical invariants of the underlying database (recovery
  /// certification re-runs this).
  Status CheckInvariants() const;

 private:
  Status ExecuteDdl(const Stmt& stmt);
  Result<ExecutionTrace> ExecuteBlockParsed(const std::vector<StmtPtr>& stmts);
  /// Appends a logical DDL record for an applied statement. A failure
  /// means "applied in memory but not durable" and is surfaced as such.
  Status LogDdl(const std::string& sql);
  /// Checkpoints when wal_checkpoint_interval commits have accumulated.
  Status MaybeCheckpoint();

  std::unique_ptr<Database> db_;
  std::unique_ptr<RuleEngine> rules_;
  // Declared before wal_ so the writer closes (draining staged commits)
  // while the directory lock is still held.
  std::unique_ptr<wal::DirLock> dir_lock_;  // null = in-memory engine
  std::unique_ptr<wal::WalWriter> wal_;     // null = in-memory engine
};

}  // namespace sopr

#endif  // SOPR_ENGINE_ENGINE_H_
