#include "server/admission.h"

#include <algorithm>
#include <string>

#include "common/failpoint.h"

namespace sopr {
namespace server {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options), hint_(options.retry_hint) {}

void AdmissionController::set_options(AdmissionOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  hint_ = Backoff(options.retry_hint);
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.shed_queue_full = shed_queue_full_;
  s.shed_queue_deadline = shed_queue_deadline_;
  s.shed_cancelled = shed_cancelled_;
  s.inflight = inflight_;
  s.queued = queued_;
  return s;
}

Status AdmissionController::ShedLocked(const char* why) {
  auto delay = std::chrono::duration_cast<std::chrono::milliseconds>(
      hint_.NextDelay());
  return Status::Overloaded(
      std::string("writer admission shed (") + why + "): " +
      std::to_string(inflight_) + " in flight, " + std::to_string(queued_) +
      " queued; retry-after-ms=" + std::to_string(delay.count()));
}

Result<AdmissionController::Slot> AdmissionController::Admit() {
  // Chaos injects a shed here; litmus schedules park a writer here with a
  // blocking arm before it ever touches the queue counters.
  SOPR_FAILPOINT_RETURN("server.admit.queue");

  const CancelContext* cancel = CancelScope::Current();
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < options_.max_inflight_writers) {
    ++inflight_;
    ++admitted_;
    hint_.Reset();
    return Slot(this);
  }
  if (queued_ >= options_.max_queued_writers) {
    ++shed_queue_full_;
    return ShedLocked("queue full");
  }

  ++queued_;
  const Deadline queue_deadline =
      options_.queue_deadline.count() > 0
          ? Deadline::After(options_.queue_deadline)
          : Deadline::Never();
  while (inflight_ >= options_.max_inflight_writers) {
    // Bound the park by whichever gives up first: the queue deadline, the
    // ambient statement/transaction deadline, or (when a kill token is in
    // scope) the cancellation poll quantum.
    const Deadline bound = Deadline::Earlier(
        queue_deadline, cancel != nullptr ? cancel->deadline()
                                          : Deadline::Never());
    const bool poll = cancel != nullptr && cancel->has_tokens();
    if (!bound.has_deadline() && !poll) {
      cv_.wait(lock);
    } else {
      CancelClock::time_point until =
          bound.has_deadline() ? bound.at() : CancelClock::time_point::max();
      if (poll) {
        until = std::min(until, CancelClock::now() + kCancelPollQuantum);
      }
      cv_.wait_until(lock, until);
    }
    Status interrupted =
        cancel != nullptr ? cancel->Check("admission queue") : Status::OK();
    if (!interrupted.ok()) {
      --queued_;
      ++shed_cancelled_;
      cv_.notify_all();
      return interrupted;
    }
    if (queue_deadline.Expired() &&
        inflight_ >= options_.max_inflight_writers) {
      --queued_;
      ++shed_queue_deadline_;
      Status shed = ShedLocked("queue deadline");
      cv_.notify_all();
      return shed;
    }
  }
  --queued_;
  ++inflight_;
  ++admitted_;
  hint_.Reset();
  return Slot(this);
}

Result<AdmissionController::Slot> AdmissionController::TryAdmit() {
  SOPR_FAILPOINT_RETURN("server.admit.queue");
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ < options_.max_inflight_writers) {
    ++inflight_;
    ++admitted_;
    hint_.Reset();
    return Slot(this);
  }
  return Status::Unavailable("writer admission busy (would queue)");
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --inflight_;
  cv_.notify_all();
}

void AdmissionController::Slot::Release() {
  if (ctrl_ != nullptr) {
    ctrl_->Release();
    ctrl_ = nullptr;
  }
}

}  // namespace server
}  // namespace sopr
