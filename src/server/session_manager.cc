#include "server/session_manager.h"

#include <algorithm>

#include "common/failpoint.h"

namespace sopr {
namespace server {

Result<std::unique_ptr<SessionManager>> SessionManager::Open(
    RuleEngineOptions options, bool concurrent_writers) {
  SOPR_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        Engine::Open(std::move(options)));
  return std::make_unique<SessionManager>(std::move(engine),
                                          concurrent_writers);
}

Result<Session*> SessionManager::CreateSession() {
  SOPR_FAILPOINT_RETURN("server.session.create");
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= max_sessions_) {
    const auto delay = std::chrono::duration_cast<std::chrono::milliseconds>(
        create_hint_.NextDelay());
    return Status::ResourceExhausted(
        "session limit reached: " + std::to_string(sessions_.size()) + "/" +
        std::to_string(max_sessions_) +
        " open; close a session or retry-after-ms=" +
        std::to_string(delay.count()));
  }
  create_hint_.Reset();
  sessions_.push_back(std::make_unique<Session>(this, next_session_id_++));
  return sessions_.back().get();
}

Status SessionManager::CloseSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [id](const std::unique_ptr<Session>& s) { return s->id() == id; });
  if (it == sessions_.end()) {
    return Status::InvalidArgument("no session with id " + std::to_string(id));
  }
  sessions_.erase(it);
  return Status::OK();
}

size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

SessionManager::Snapshot SessionManager::Inspect() const {
  Snapshot snap;
  snap.max_sessions = max_sessions_;
  snap.admission = scheduler_.admission().stats();
  std::lock_guard<std::mutex> lock(mu_);
  snap.num_sessions = sessions_.size();
  snap.sessions.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    SessionInfo info;
    info.id = s->id();
    info.commits = s->commits();
    info.aborts = s->aborts();
    info.statements = s->statements();
    info.inflight_statements = s->inflight_statements();
    info.killed = s->killed();
    snap.sessions.push_back(info);
  }
  return snap;
}

}  // namespace server
}  // namespace sopr
