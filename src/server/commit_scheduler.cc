#include "server/commit_scheduler.h"

#include "common/failpoint.h"
#include "engine/explain.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace server {

Status CommitScheduler::CheckFatal() const {
  std::lock_guard<std::mutex> lock(fatal_mu_);
  return fatal_;
}

Status CommitScheduler::fatal() const { return CheckFatal(); }

void CommitScheduler::RecordFatal(const Status& failure) {
  std::lock_guard<std::mutex> lock(fatal_mu_);
  if (!fatal_.ok()) return;  // keep the first failure
  fatal_ = Status(failure.code(),
                  "server halted after a lost commit durability point "
                  "(restart to recover to the durable prefix): " +
                      failure.message());
}

Result<ExecutionTrace> CommitScheduler::ExecuteBlock(
    const std::vector<StmtPtr>& stmts, CommitReceipt* receipt) {
  // Stage + await back-to-back: the single-statement path is a pipeline
  // of one. The exclusive/shared section still ends at WAL staging, so
  // the durability wait below overlaps the next transaction's apply.
  StagedCommit staged;
  Result<ExecutionTrace> trace = ExecuteBlockStaged(stmts, &staged);
  if (!trace.ok()) return trace;
  SOPR_RETURN_NOT_OK(AwaitCommit(&staged, receipt));
  return trace;
}

Result<ExecutionTrace> CommitScheduler::ExecuteBlockStaged(
    const std::vector<StmtPtr>& stmts, StagedCommit* staged,
    AdmissionController::Slot slot) {
  SOPR_FAILPOINT_RETURN("server.submit.pre");
  if (replica()) {
    return Status::ReadOnlyReplica(
        "this node is a read-only replication follower; send writes to "
        "the primary (or promote this follower first)");
  }
  SOPR_RETURN_NOT_OK(CheckFatal());

  // Writer admission (docs/OVERLOAD.md): bounded in-flight writers plus a
  // bounded, deadline-shedded queue. The slot is held across the whole
  // block INCLUDING the durability wait — it is the unit of writer work
  // the server agreed to carry. Reads never pass through here, so when
  // writer admission saturates the snapshot-read path keeps serving.
  // Pipelined callers pre-acquire their slot with TryAdmit (never queue
  // while holding staged commits — their own unreleased slots could be
  // what they are queueing for).
  if (!slot.admitted()) {
    SOPR_ASSIGN_OR_RETURN(slot, admission_.Admit());
  }

  std::shared_ptr<wal::CommitTicket> ticket;
  CommitReceipt local;
  Result<ExecutionTrace> trace = [&]() -> Result<ExecutionTrace> {
    // Admission: exclusive in serial mode (one writer at a time), SHARED
    // with record-level locking on — conflicting rows serialize on their
    // locks, disjoint writers overlap, and the exclusive side stays the
    // wall for DDL / checkpoints / baseline reads.
    std::unique_lock<std::shared_mutex> exclusive;
    std::shared_lock<std::shared_mutex> shared;
    if (engine_->concurrent_writers()) {
      shared = std::shared_lock<std::shared_mutex>(state_mu_);
    } else {
      exclusive = std::unique_lock<std::shared_mutex>(state_mu_);
    }
    // Re-check under the lock: a concurrent writer may have gone fatal
    // while this transaction queued for admission.
    SOPR_RETURN_NOT_OK(CheckFatal());
    local.first_handle = engine_->db().next_handle();
    auto result = engine_->ExecuteStaged(stmts, &ticket);
    // Publication point: the commit's versions are stamped (CommitAll
    // ran inside ExecuteStaged), so its LSN may now become visible to
    // snapshot readers. Monotonic via CAS-max — with shared admission
    // several committers publish concurrently, and the engine's commit
    // mutex guarantees any LSN <= last_commit_lsn is fully stamped.
    // Published UNCONDITIONALLY: a block can fail after an
    // inner commit already ran (e.g. the operation block committed and a
    // deferred-rule chain aborted later) — that commit is committed,
    // stamped state regardless of the block's final status, and leaving
    // visible_lsn_ behind last_commit_lsn would let a checkpoint in that
    // window prune above every snapshot subsequently pinned at the stale
    // LSN. last_commit_lsn only moves in CommitAll, so on a clean abort
    // (rolled back to S0) this store is a no-op.
    uint64_t head = engine_->last_commit_lsn();
    uint64_t seen = visible_lsn_.load(std::memory_order_relaxed);
    while (head > seen &&
           !visible_lsn_.compare_exchange_weak(seen, head,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
    }
    return result;
  }();
  if (!trace.ok()) {
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return trace;
  }

  staged->slot_ = std::move(slot);
  staged->ticket_ = std::move(ticket);
  staged->receipt_ = local;
  staged->rolled_back_ = trace.value().rolled_back;
  staged->pending_ = true;
  return trace;
}

Status CommitScheduler::AwaitCommit(StagedCommit* staged,
                                    CommitReceipt* receipt) {
  if (!staged->pending_) {
    return Status::InvalidArgument("AwaitCommit: nothing staged");
  }
  staged->pending_ = false;
  // Release the admission slot when this resolves, success or not.
  AdmissionController::Slot slot = std::move(staged->slot_);

  // Durability wait with NO lock held: the next transaction's apply phase
  // overlaps this fsync, and the WAL's cohort leader syncs once for every
  // batch staged meanwhile.
  Status durable = engine_->AwaitDurable(staged->ticket_);
  if (!durable.ok()) {
    if (durable.code() == StatusCode::kCancelled ||
        durable.code() == StatusCode::kTimeout) {
      // INTERRUPTED, not failed: the session's kill/deadline fired while
      // waiting for the fsync confirmation. The batch remains staged and
      // a later cohort leader will make it durable — the commit outcome
      // is unknown to this caller only, so the server must NOT latch
      // fatal. Counted as committed: the transaction did commit in
      // memory; only the confirmation was abandoned.
      committed_.fetch_add(1, std::memory_order_relaxed);
      return durable;
    }
    // Committed in memory, not durable, no per-transaction undo possible
    // (see class comment): the whole server stops accepting writes.
    aborted_.fetch_add(1, std::memory_order_relaxed);
    RecordFatal(durable);
    return durable;
  }
  // A rolled-back transaction (a rule's rollback action fired) returns
  // an OK trace but committed nothing.
  if (staged->rolled_back_) {
    aborted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    committed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (receipt != nullptr) {
    staged->receipt_.commit_lsn =
        staged->ticket_ != nullptr ? staged->ticket_->last_lsn : 0;
    *receipt = staged->receipt_;
  }
  SOPR_RETURN_NOT_OK(MaybeCheckpoint());
  return Status::OK();
}

Status CommitScheduler::ExecuteDdl(std::vector<StmtPtr> stmts) {
  SOPR_FAILPOINT_RETURN("server.submit.pre");
  if (replica()) {
    return Status::ReadOnlyReplica(
        "this node is a read-only replication follower; send DDL to the "
        "primary (or promote this follower first)");
  }
  SOPR_RETURN_NOT_OK(CheckFatal());
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  // Snapshot readers hold schema_mu_ shared for the duration of a query;
  // DDL must not change the catalog under them. Fixed acquisition order
  // state_mu_ -> schema_mu_ (readers take only schema_mu_).
  std::unique_lock<std::shared_mutex> schema_lock(schema_mu_);
  SOPR_RETURN_NOT_OK(CheckFatal());
  // AppendDdl flushes the group queue itself; no staged batch can be
  // added meanwhile because staging happens under this exclusive lock.
  return engine_->ExecuteDdlScript(stmts);
}

Result<QueryResult> CommitScheduler::Query(const SelectStmt& stmt) {
  // Reads stay available even after a fatal durability failure: the
  // in-memory state is intact, only its durable tail is gone.
  if (engine_->concurrent_writers()) {
    // Writers are admitted shared, so the baseline read path must take
    // the wall: this query must not observe an in-flight transaction's
    // uncommitted rows. (Snapshot reads — QuerySnapshot/QueryAt — remain
    // the never-blocking path.)
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    return engine_->QueryParsed(stmt);
  }
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return engine_->QueryParsed(stmt);
}

SnapshotRegistry::Pin CommitScheduler::PinSnapshot() {
  // The visible-LSN load and the registry insert form ONE critical
  // section of the registry mutex — the same mutex a checkpoint holds
  // while computing its prune floor (wal/checkpoint.cc). A plain
  // load-then-Acquire would leave a window where the floor computation
  // sees no pins, prunes to last_commit_lsn, and the late-registered pin
  // then reads a state whose superseded versions are already gone.
  // Ordering argument for the other interleaving: the floor is computed
  // with state_mu_ held, after every prior commit published its head, so
  // a pin registered after the floor computation loads a visible LSN >=
  // the floor (the publish / state_mu_ / registry-mutex chain carries
  // the newer value to this thread).
  return engine_->db().snapshots().AcquireCurrent([this] {
    // Sync point for the pin-vs-checkpoint litmus schedule; a pin cannot
    // fail, so an armed failure trigger is deliberately swallowed.
    (void)SOPR_FAILPOINT("server.pin.acquire");
    return visible_lsn();
  });
}

Result<QueryResult> CommitScheduler::QueryAt(const SnapshotRegistry::Pin& pin,
                                             const SelectStmt& stmt) {
  // Only the schema lock, shared — never state_mu_: this is the path
  // where readers do not block writers (and vice versa).
  std::shared_lock<std::shared_mutex> schema_lock(schema_mu_);
  return engine_->QueryAtSnapshot(stmt, pin.lsn());
}

Result<QueryResult> CommitScheduler::QuerySnapshot(const SelectStmt& stmt) {
  if (!engine_->mvcc_enabled()) return Query(stmt);
  SnapshotRegistry::Pin pin = PinSnapshot();
  return QueryAt(pin, stmt);
}

Result<std::string> CommitScheduler::Explain(const std::string& sql) {
  if (engine_->concurrent_writers()) {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    return ExplainSelect(engine_, sql);
  }
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return ExplainSelect(engine_, sql);
}

Status CommitScheduler::WithExclusive(const std::function<Status()>& fn) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return fn();
}

Status CommitScheduler::ApplyReplicated(bool ddl,
                                        const std::function<Status()>& fn) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (!ddl) return fn();
  // Fixed acquisition order state_mu_ -> schema_mu_, as in ExecuteDdl:
  // snapshot readers hold schema_mu_ shared for the duration of a query
  // and must never observe a half-applied catalog change.
  std::unique_lock<std::shared_mutex> schema_lock(schema_mu_);
  return fn();
}

void CommitScheduler::PublishReplicaLsn(uint64_t lsn) {
  uint64_t seen = visible_lsn_.load(std::memory_order_relaxed);
  while (lsn > seen &&
         !visible_lsn_.compare_exchange_weak(seen, lsn,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
  }
}

Status CommitScheduler::MaybeCheckpoint() {
  if (!engine_->durable()) return Status::OK();
  const uint64_t interval =
      engine_->rules().options().wal_checkpoint_interval;
  if (interval == 0) return Status::OK();
  // Cheap pre-check without the exclusive lock; the vast majority of
  // commits are nowhere near the interval.
  if (engine_->wal()->commits_since_checkpoint() < interval) {
    return Status::OK();
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  // Re-check under the lock: a concurrent committer may have already
  // taken the checkpoint this interval asked for.
  if (engine_->wal()->commits_since_checkpoint() < interval) {
    return Status::OK();
  }
  Status ok = engine_->Checkpoint();
  if (!ok.ok()) {
    // The triggering transaction COMMITTED; only the snapshot failed.
    return Status(ok.code(),
                  "post-commit checkpoint failed (the transaction itself "
                  "is durable): " +
                      ok.message());
  }
  return Status::OK();
}

}  // namespace server
}  // namespace sopr
