#ifndef SOPR_SERVER_SESSION_MANAGER_H_
#define SOPR_SERVER_SESSION_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/retry.h"
#include "server/admission.h"
#include "server/commit_scheduler.h"
#include "server/session.h"

namespace sopr {
namespace server {

/// The concurrent front-end (docs/CONCURRENCY.md): owns the shared
/// Engine, the commit scheduler in front of it, and N client sessions.
///
///   auto manager = SessionManager::Open(options).value();
///   Session* s = manager->CreateSession().value();
///   s->Execute("insert into emp values (...)");   // any thread
///
/// CreateSession/CloseSession are thread-safe; each returned Session is
/// a single-threaded connection handle. The manager must outlive its
/// sessions' use. Destroying the manager closes the engine (draining
/// staged group commits and releasing the WAL directory lock).
class SessionManager {
 public:
  /// Builds the engine via Engine::Open (recovery + WAL attach + wal-dir
  /// lock when options.wal_dir is set; plain in-memory engine otherwise).
  /// `concurrent_writers` (default on) enables record-level write
  /// locking, letting disjoint-row writer sessions overlap end-to-end;
  /// pass false for the serial-section baseline (bench comparisons).
  static Result<std::unique_ptr<SessionManager>> Open(
      RuleEngineOptions options, bool concurrent_writers = true);

  /// Wraps an already-opened engine (tests that build the parts by hand).
  /// Turns on MVCC: recovery (if any) already ran inside Engine::Open, so
  /// recovered rows stay unversioned — visible at every snapshot — and
  /// version tracking starts with the first post-open commit.
  explicit SessionManager(std::unique_ptr<Engine> engine,
                          bool concurrent_writers = true)
      : engine_(std::move(engine)), scheduler_(engine_.get()) {
    engine_->EnableMvcc();
    if (concurrent_writers) engine_->EnableConcurrentWriters();
  }
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits a new session. Fails (kResourceExhausted) beyond
  /// max_sessions with a structured message carrying the current/max
  /// counts and a "retry-after-ms=<n>" hint that escalates while the
  /// limit stays saturated and resets once a slot frees up.
  Result<Session*> CreateSession();
  /// Closes (destroys) a session by id. The caller must be done driving
  /// it; outstanding pointers to it dangle.
  Status CloseSession(uint64_t id);

  size_t num_sessions() const;
  void set_max_sessions(size_t n) { max_sessions_ = n; }
  size_t max_sessions() const { return max_sessions_; }

  /// Point-in-time view of the front end for operator tooling and tests
  /// (docs/OVERLOAD.md): session slots, per-session statement counters,
  /// and the writer-admission stats.
  struct SessionInfo {
    uint64_t id = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t statements = 0;
    size_t inflight_statements = 0;
    bool killed = false;
  };
  struct Snapshot {
    size_t num_sessions = 0;
    size_t max_sessions = 0;
    AdmissionStats admission;
    std::vector<SessionInfo> sessions;
  };
  Snapshot Inspect() const;

  Engine& engine() { return *engine_; }
  CommitScheduler& scheduler() { return scheduler_; }

 private:
  std::unique_ptr<Engine> engine_;
  CommitScheduler scheduler_;
  size_t max_sessions_ = 256;

  mutable std::mutex mu_;  // guards sessions_ / next_session_id_ / hint
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  /// Retry-after escalation for CreateSession refusals; jitter-free so
  /// the hints in error messages are deterministic.
  Backoff create_hint_{RetryPolicy{std::chrono::milliseconds(10),
                                   std::chrono::milliseconds(500), 2.0, 0.0,
                                   0}};
};

}  // namespace server
}  // namespace sopr

#endif  // SOPR_SERVER_SESSION_MANAGER_H_
