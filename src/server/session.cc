#include "server/session.h"

#include "common/failpoint.h"
#include "server/session_manager.h"
#include "sql/parser.h"

namespace sopr {
namespace server {

CommitScheduler& Session::scheduler() { return manager_->scheduler(); }

Status Session::Execute(const std::string& sql) {
  // Parsing happens here, on the session's thread, with no engine lock
  // held — the concurrent half of the parse/plan-then-serialize pipeline.
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  if (Engine::IsDdlStmt(*stmts[0])) {
    return scheduler().ExecuteDdl(std::move(stmts));
  }
  for (const StmtPtr& stmt : stmts) {
    if (Engine::IsDdlStmt(*stmt)) {
      return Status::InvalidArgument(
          "cannot mix DDL and DML in one script: " + stmt->ToString());
    }
  }
  CommitReceipt receipt;
  auto trace = scheduler().ExecuteBlock(stmts, &receipt);
  if (!trace.ok()) {
    ++aborts_;
    return trace.status();
  }
  if (trace.value().rolled_back) {
    ++aborts_;
    return Status::RolledBack("transaction rolled back by rule " +
                              trace.value().rollback_rule);
  }
  ++commits_;
  last_receipt_ = receipt;
  return Status::OK();
}

Result<ExecutionTrace> Session::ExecuteBlock(const std::string& sql) {
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  for (const StmtPtr& stmt : stmts) {
    if (Engine::IsDdlStmt(*stmt)) {
      return Status::InvalidArgument("ExecuteBlock expects DML, got: " +
                                     stmt->ToString());
    }
  }
  CommitReceipt receipt;
  auto trace = scheduler().ExecuteBlock(stmts, &receipt);
  if (!trace.ok()) {
    ++aborts_;
    return trace;
  }
  if (trace.value().rolled_back) {
    ++aborts_;
  } else {
    ++commits_;
    last_receipt_ = receipt;
  }
  return trace;
}

Result<QueryResult> Session::Query(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("Query expects a select statement");
  }
  return scheduler().Query(static_cast<const SelectStmt&>(*stmt));
}

}  // namespace server
}  // namespace sopr
