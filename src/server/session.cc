#include "server/session.h"

#include "common/failpoint.h"
#include "server/session_manager.h"
#include "sql/parser.h"

namespace sopr {
namespace server {

CommitScheduler& Session::scheduler() { return manager_->scheduler(); }

Session::StatementScope::StatementScope(Session* session) : session_(session) {
  // The increment itself is the admission check: a racing second
  // statement sees the count above the limit and is refused before it
  // touches any session state the first statement is using.
  const int inflight =
      session->inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (static_cast<size_t>(inflight) > session->max_inflight_statements_) {
    status_ = Status::Overloaded(
        "session " + std::to_string(session->id()) + " already has " +
        std::to_string(inflight - 1) + " statement(s) in flight (limit " +
        std::to_string(session->max_inflight_statements_) +
        "); a session is a single-threaded connection handle");
    return;
  }
  CancelTokenPtr kill = session->KillToken();
  if (kill->cancelled()) {
    status_ = Status::Cancelled("session " + std::to_string(session->id()) +
                                " was killed: " + kill->reason());
    return;
  }
  session->statements_.fetch_add(1, std::memory_order_relaxed);
  // Compose this statement's cancellation sources on top of whatever the
  // caller installed, and make them ambient for every layer below —
  // admission queue, lock waits, scan batches, rule boundaries, the
  // durability wait.
  ctx_ = CancelContext::InheritAmbient();
  ctx_.AddToken(std::move(kill),
                "session " + std::to_string(session->id()) + " kill");
  if (session->statement_timeout_.count() > 0) {
    ctx_.AddDeadline(Deadline::After(session->statement_timeout_),
                     "statement timeout");
  }
  scope_.emplace(&ctx_);
}

Session::StatementScope::~StatementScope() {
  scope_.reset();
  session_->inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Session::Cancel(const std::string& reason) {
  KillToken()->Cancel(reason);
}

void Session::ResetCancel() {
  std::lock_guard<std::mutex> lock(cancel_mu_);
  kill_ = std::make_shared<CancelToken>();
}

bool Session::killed() const { return KillToken()->cancelled(); }

CancelTokenPtr Session::KillToken() const {
  std::lock_guard<std::mutex> lock(cancel_mu_);
  return kill_;
}

bool Session::IsReadOnlyScript(const std::vector<StmtPtr>& stmts) {
  // With the §5.1 select-triggering extension on, a select is a
  // rule-firing operation like any write: it must run in a transaction
  // through the exclusive section.
  if (scheduler().engine()->rules().options().track_selects) return false;
  for (const StmtPtr& stmt : stmts) {
    if (stmt->kind != StmtKind::kSelect) return false;
  }
  return true;
}

Status Session::Execute(const std::string& sql) {
  StatementScope stmt(this);
  SOPR_RETURN_NOT_OK(stmt.admitted());
  // Parsing happens here, on the session's thread, with no engine lock
  // held — the concurrent half of the parse/plan-then-serialize pipeline.
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  if (Engine::IsDdlStmt(*stmts[0])) {
    return scheduler().ExecuteDdl(std::move(stmts));
  }
  for (const StmtPtr& stmt : stmts) {
    if (Engine::IsDdlStmt(*stmt)) {
      return Status::InvalidArgument(
          "cannot mix DDL and DML in one script: " + stmt->ToString());
    }
  }
  if (IsReadOnlyScript(stmts) && scheduler().engine()->mvcc_enabled()) {
    // All statements read the same pinned snapshot — the read-only
    // transaction is atomic without ever touching the exclusive section.
    // A select into a transition table still fails with the usual
    // catalog error, exactly as it did on the write path. Without MVCC
    // there is no snapshot to make a multi-select script atomic, so the
    // script falls through to ExecuteBlock's exclusive section (the
    // pre-MVCC behavior) instead of running statement-by-statement under
    // separately acquired shared locks.
    Snapshot snapshot = scheduler().PinSnapshot();
    for (const StmtPtr& stmt : stmts) {
      const auto& select = static_cast<const SelectStmt&>(*stmt);
      auto result = scheduler().QueryAt(snapshot, select);
      if (!result.ok()) {
        ++aborts_;
        return result.status();
      }
    }
    // Mirror the old behavior of a select-only block (a committed
    // read-only transaction with an empty receipt).
    ++commits_;
    last_receipt_ = CommitReceipt{};
    return Status::OK();
  }
  CommitReceipt receipt;
  auto trace = scheduler().ExecuteBlock(stmts, &receipt);
  if (!trace.ok()) {
    ++aborts_;
    return trace.status();
  }
  if (trace.value().rolled_back) {
    ++aborts_;
    return Status::RolledBack("transaction rolled back by rule " +
                              trace.value().rollback_rule);
  }
  ++commits_;
  last_receipt_ = receipt;
  return Status::OK();
}

std::vector<Session::PipelineResult> Session::ExecutePipelined(
    const std::vector<std::string>& scripts) {
  std::vector<PipelineResult> out(scripts.size());
  if (scripts.empty()) return out;

  // The whole run occupies ONE in-flight statement slot: a pipeline is
  // still a single thread driving the session, and the slot is what
  // enforces that contract (a racing statement on another thread is
  // refused, not raced). Mirrors StatementScope's admission check.
  const int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (static_cast<size_t>(inflight) > max_inflight_statements_) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    Status refused = Status::Overloaded(
        "session " + std::to_string(id()) + " already has " +
        std::to_string(inflight - 1) + " statement(s) in flight (limit " +
        std::to_string(max_inflight_statements_) +
        "); a session is a single-threaded connection handle");
    for (PipelineResult& r : out) r.status = refused;
    return out;
  }

  // One staged-but-unawaited transaction per consecutive DML script.
  // Each keeps its own CancelContext alive from stage start through its
  // durability wait so the per-script timeout means the same thing it
  // does for sequential Execute.
  struct PendingEntry {
    size_t index = 0;
    std::unique_ptr<CancelContext> ctx;
    CommitScheduler::StagedCommit staged;
    bool rolled_back = false;
    std::string rollback_rule;
  };
  std::vector<PendingEntry> pending;

  // Awaits every staged commit in stage order. The FIRST wait's cohort
  // leader writes and fsyncs every batch staged so far in one round —
  // that is the pipelining win; the rest find their tickets resolved.
  auto flush = [&] {
    for (PendingEntry& entry : pending) {
      CancelScope scope(entry.ctx.get());
      CommitReceipt receipt;
      Status durable = scheduler().AwaitCommit(&entry.staged, &receipt);
      if (!durable.ok()) {
        ++aborts_;
        out[entry.index].status = durable;
        continue;
      }
      if (entry.rolled_back) {
        ++aborts_;
        out[entry.index].status = Status::RolledBack(
            "transaction rolled back by rule " + entry.rollback_rule);
        continue;
      }
      ++commits_;
      last_receipt_ = receipt;
      out[entry.index].receipt = receipt;
    }
    pending.clear();
  };

  for (size_t i = 0; i < scripts.size(); ++i) {
    CancelTokenPtr kill = KillToken();
    if (kill->cancelled()) {
      out[i].status =
          Status::Cancelled("session " + std::to_string(id()) +
                            " was killed: " + kill->reason());
      continue;
    }
    statements_.fetch_add(1, std::memory_order_relaxed);
    auto ctx = std::make_unique<CancelContext>(CancelContext::InheritAmbient());
    ctx->AddToken(std::move(kill), "session " + std::to_string(id()) + " kill");
    if (statement_timeout_.count() > 0) {
      ctx->AddDeadline(Deadline::After(statement_timeout_),
                       "statement timeout");
    }
    CancelScope scope(ctx.get());

    Status env = FailpointRegistry::Instance().EnsureEnvArmed();
    if (!env.ok()) {
      out[i].status = env;
      continue;
    }
    auto parsed = Parser::ParseScript(scripts[i]);
    if (!parsed.ok()) {
      out[i].status = parsed.status();
      continue;
    }
    std::vector<StmtPtr> stmts = std::move(parsed).value();

    if (Engine::IsDdlStmt(*stmts[0])) {
      // DDL drains the WAL group queue itself (AppendDdl flushes), so
      // the pending tickets resolve under its exclusive section; the
      // later AwaitCommit calls find them done. No barrier needed.
      out[i].status = scheduler().ExecuteDdl(std::move(stmts));
      continue;
    }
    bool mixed = false;
    for (const StmtPtr& stmt : stmts) {
      if (Engine::IsDdlStmt(*stmt)) {
        out[i].status = Status::InvalidArgument(
            "cannot mix DDL and DML in one script: " + stmt->ToString());
        mixed = true;
        break;
      }
    }
    if (mixed) continue;

    if (IsReadOnlyScript(stmts) && scheduler().engine()->mvcc_enabled()) {
      // Same as Execute: one pinned snapshot, results discarded (the
      // protocol's QUERY frame is the path that returns rows). Staged
      // commits already published their LSNs, so the pin sees every
      // earlier script in this run.
      Snapshot snapshot = scheduler().PinSnapshot();
      Status read;
      for (const StmtPtr& stmt : stmts) {
        const auto& select = static_cast<const SelectStmt&>(*stmt);
        auto result = scheduler().QueryAt(snapshot, select);
        if (!result.ok()) {
          read = result.status();
          break;
        }
      }
      if (!read.ok()) {
        ++aborts_;
        out[i].status = read;
      } else {
        ++commits_;
        last_receipt_ = CommitReceipt{};
      }
      continue;
    }

    // DML: stage without awaiting. Admission must not QUEUE while we
    // hold staged commits — the in-flight slots we would queue for may
    // be our own, which release only when we await. TryAdmit either
    // hands us a free slot now or tells us to drain first.
    AdmissionController::Slot slot;
    auto try_slot = scheduler().admission().TryAdmit();
    if (try_slot.ok()) {
      slot = std::move(try_slot).value();
    } else if (!pending.empty()) {
      flush();
    }
    CommitScheduler::StagedCommit staged;
    auto trace =
        scheduler().ExecuteBlockStaged(stmts, &staged, std::move(slot));
    if (!trace.ok()) {
      ++aborts_;
      out[i].status = trace.status();
      continue;
    }
    PendingEntry entry;
    entry.index = i;
    entry.ctx = std::move(ctx);
    entry.staged = std::move(staged);
    entry.rolled_back = trace.value().rolled_back;
    entry.rollback_rule = trace.value().rollback_rule;
    pending.push_back(std::move(entry));
  }
  flush();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return out;
}

Result<ExecutionTrace> Session::ExecuteBlock(const std::string& sql) {
  StatementScope stmt(this);
  SOPR_RETURN_NOT_OK(stmt.admitted());
  SOPR_RETURN_NOT_OK(FailpointRegistry::Instance().EnsureEnvArmed());
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  for (const StmtPtr& stmt : stmts) {
    if (Engine::IsDdlStmt(*stmt)) {
      return Status::InvalidArgument("ExecuteBlock expects DML, got: " +
                                     stmt->ToString());
    }
  }
  CommitReceipt receipt;
  auto trace = scheduler().ExecuteBlock(stmts, &receipt);
  if (!trace.ok()) {
    ++aborts_;
    return trace;
  }
  if (trace.value().rolled_back) {
    ++aborts_;
  } else {
    ++commits_;
    last_receipt_ = receipt;
  }
  return trace;
}

Result<QueryResult> Session::Query(const std::string& sql) {
  return ExecuteQuery(sql);
}

Result<QueryResult> Session::ExecuteQuery(const std::string& sql) {
  StatementScope stmt_scope(this);
  SOPR_RETURN_NOT_OK(stmt_scope.admitted());
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("Query expects a select statement");
  }
  // QuerySnapshot pins the newest published snapshot and runs outside
  // the exclusive section; without MVCC it degrades to the shared-lock
  // read path.
  return scheduler().QuerySnapshot(static_cast<const SelectStmt&>(*stmt));
}

Result<Session::Snapshot> Session::PinSnapshot() {
  if (!scheduler().engine()->mvcc_enabled()) {
    return Status::InvalidArgument(
        "PinSnapshot requires MVCC (enabled by the SessionManager)");
  }
  return scheduler().PinSnapshot();
}

Result<QueryResult> Session::QueryAt(const Snapshot& snapshot,
                                     const std::string& sql) {
  StatementScope stmt_scope(this);
  SOPR_RETURN_NOT_OK(stmt_scope.admitted());
  if (!snapshot.pinned()) {
    return Status::InvalidArgument("QueryAt: snapshot is not pinned");
  }
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("Query expects a select statement");
  }
  return scheduler().QueryAt(snapshot, static_cast<const SelectStmt&>(*stmt));
}

Result<std::string> Session::Explain(const std::string& sql) {
  return scheduler().Explain(sql);
}

}  // namespace server
}  // namespace sopr
