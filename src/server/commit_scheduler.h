#ifndef SOPR_SERVER_COMMIT_SCHEDULER_H_
#define SOPR_SERVER_COMMIT_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "server/admission.h"
#include "storage/mvcc.h"

namespace sopr {
namespace server {

/// Receipt a session gets back for a committed block.
struct CommitReceipt {
  /// LSN of the batch's COMMIT record; 0 for a read-only block or an
  /// in-memory engine.
  uint64_t commit_lsn = 0;
  /// db.next_handle() when the transaction entered the critical section
  /// (before any of its statements ran). Lets a serial-replay oracle
  /// reproduce handle assignment exactly — handles consumed by aborted
  /// transactions in between are skipped by bumping to this value.
  uint64_t first_handle = 0;
};

/// The ticketed executor in front of the shared Engine
/// (docs/CONCURRENCY.md). In the default serial mode, transactions are
/// admitted through a single-writer critical section:
///
///   parse (caller's thread, no lock)
///     -> exclusive: apply block + rule fixpoint + stage WAL batch
///     -> no lock:   await group-commit durability
///
/// The exclusive section ends at StageCommitTxn, so the next
/// transaction's apply phase overlaps this one's fsync — that overlap is
/// what lets the WAL's cohort leader batch several commits into one
/// fsync. Read-only queries run under the shared side of the lock,
/// concurrent with each other.
///
/// With record-level write locking enabled
/// (Engine::EnableConcurrentWriters), writers are admitted under the
/// SHARED side instead: record/table locks serialize conflicting rows
/// while disjoint-row transactions overlap end-to-end, and the rule
/// engine's commit mutex keeps LSN assignment and version stamping in
/// one order. The exclusive side becomes the wall reserved for DDL,
/// checkpoints, WithExclusive, and baseline Query/Explain reads (which
/// must not observe in-flight writers' uncommitted rows). §4 semantics
/// per transaction are unchanged: strict two-phase locking holds every
/// lock until the transaction's whole fixpoint commits or aborts, so the
/// record conflict order equals the commit-LSN order and the final state
/// equals a serial replay in commit-LSN order.
///
/// Failure domain: if AwaitDurable fails, the transaction is already
/// committed in memory and later transactions may have built on it, so
/// there is no per-transaction undo. The scheduler records the failure
/// as FATAL: every later write is refused with the sticky status (reads
/// still work — in-memory state is intact). Restarting the engine
/// recovers to the durable prefix. An INTERRUPTED wait is different:
/// kCancelled/kTimeout means the session gave up waiting while the batch
/// remains staged for a later cohort leader — the commit outcome is
/// unknown to that caller only, the server stays healthy, and the fatal
/// latch is NOT tripped (docs/OVERLOAD.md).
class CommitScheduler {
 public:
  explicit CommitScheduler(Engine* engine)
      : engine_(engine), visible_lsn_(engine->last_commit_lsn()) {
    // Commit-time incremental pruning: each committed transaction trims
    // its own touched version chains down to the published visible LSN
    // and the currently pinned snapshots. Any pin acquired later reads
    // the visible LSN inside the registry's critical section, so it can
    // only pin at or above this floor (see PinSnapshot).
    engine_->db().set_incremental_prune_floor(
        [this] { return visible_lsn(); });
  }
  CommitScheduler(const CommitScheduler&) = delete;
  CommitScheduler& operator=(const CommitScheduler&) = delete;

  /// One DML operation block = one transaction (parse upstream). Blocks
  /// until the transaction is durable per the engine's fsync policy.
  Result<ExecutionTrace> ExecuteBlock(const std::vector<StmtPtr>& stmts,
                                      CommitReceipt* receipt = nullptr);

  // --- Pipelined commit (src/net/, docs/NETWORK.md) ---

  /// A transaction that is committed in memory and staged on the WAL but
  /// whose durability confirmation is still pending. Produced by
  /// ExecuteBlockStaged, resolved by AwaitCommit. Move-only; carries the
  /// writer-admission slot, which is released only when the commit is
  /// awaited (the slot is the unit of writer work the server agreed to
  /// carry, durability wait included). Destroying an unawaited
  /// StagedCommit releases the slot WITHOUT resolving counters — callers
  /// must AwaitCommit every staged transaction on the success path.
  class StagedCommit {
   public:
    StagedCommit() = default;
    StagedCommit(StagedCommit&&) = default;
    StagedCommit& operator=(StagedCommit&&) = default;
    /// True between a successful ExecuteBlockStaged and its AwaitCommit.
    bool pending() const { return pending_; }

   private:
    friend class CommitScheduler;
    AdmissionController::Slot slot_;
    std::shared_ptr<wal::CommitTicket> ticket_;
    CommitReceipt receipt_;
    bool rolled_back_ = false;
    bool pending_ = false;
  };

  /// The stage half of ExecuteBlock: admission, apply + rule fixpoint,
  /// WAL staging, snapshot publication — everything EXCEPT the
  /// durability wait, which moves to AwaitCommit. Between the two the
  /// transaction is committed in memory (visible to snapshot readers and
  /// to later transactions) but not yet durable. A pipelining caller
  /// stages a run of transactions back-to-back and then awaits them in
  /// order: the first AwaitCommit's cohort leader writes and fsyncs every
  /// batch staged meanwhile, so the whole run rides one (or few)
  /// group-commit cohorts — the wire-level amplification of the PR 3
  /// cohort win. `slot`: a pre-acquired admission slot (TryAdmit); when
  /// empty, this call runs normal blocking admission. On a non-OK trace
  /// nothing is pending and the abort is counted here.
  Result<ExecutionTrace> ExecuteBlockStaged(
      const std::vector<StmtPtr>& stmts, StagedCommit* staged,
      AdmissionController::Slot slot = AdmissionController::Slot());

  /// The await half: blocks until the staged transaction's cohort is
  /// durable, resolves the commit/abort counters, fills `receipt`
  /// (commit_lsn from the WAL ticket), runs the interval checkpoint, and
  /// releases the admission slot. Same failure domain as ExecuteBlock:
  /// kCancelled/kTimeout = interrupted (outcome unknown to this caller
  /// only, counted committed, server healthy); any other failure latches
  /// the sticky fatal state.
  Status AwaitCommit(StagedCommit* staged, CommitReceipt* receipt = nullptr);

  /// An all-DDL script, applied and logged under the exclusive lock
  /// (drains the group-commit queue so records stay in LSN order).
  Status ExecuteDdl(std::vector<StmtPtr> stmts);

  /// Read-only select under the shared lock (concurrent with other
  /// queries, serialized against the apply phase). This is the pre-MVCC
  /// baseline path, kept for comparison (bench_snapshot_reads) and for
  /// engines without MVCC enabled.
  Result<QueryResult> Query(const SelectStmt& stmt);

  // --- MVCC snapshot reads (docs/CONCURRENCY.md) ---

  /// Newest published snapshot point: advances monotonically inside the
  /// exclusive section after a transaction's versions are stamped, so a
  /// snapshot at this LSN can never see a torn transaction.
  uint64_t visible_lsn() const {
    return visible_lsn_.load(std::memory_order_acquire);
  }

  /// Pins the current visible LSN against checkpoint pruning, atomically
  /// with respect to a concurrent checkpoint's prune-floor computation
  /// (the LSN load and the registry insert share one critical section of
  /// the registry mutex). The pin is a data-plane pin only — it does not
  /// block DDL; use QueryAt, which takes the schema lock per query.
  SnapshotRegistry::Pin PinSnapshot();

  /// Runs `stmt` against the pinned snapshot, entirely outside the
  /// exclusive writer section (readers never block writers). Takes the
  /// schema lock shared for the duration of the query.
  Result<QueryResult> QueryAt(const SnapshotRegistry::Pin& pin,
                              const SelectStmt& stmt);

  /// One-shot snapshot read: pin the current visible LSN, query, unpin.
  /// Falls back to Query() when the engine has no MVCC.
  Result<QueryResult> QuerySnapshot(const SelectStmt& stmt);

  /// Explains a select — purely analytical, a read (shared lock).
  Result<std::string> Explain(const std::string& sql);

  /// Runs `fn` with the exclusive lock held (maintenance wall between
  /// transactions — explicit checkpoints etc.).
  Status WithExclusive(const std::function<Status()>& fn);

  // --- Read-only replica mode (src/replication/, docs/REPLICATION.md) ---

  /// Puts the scheduler in front of a replication follower's engine:
  /// ExecuteBlock and ExecuteDdl refuse with kReadOnlyReplica (writes
  /// belong on the primary), while every read path keeps working. The
  /// follower applies replicated groups through ApplyReplicated and
  /// publishes their LSNs with PublishReplicaLsn, so snapshot readers
  /// pin the same visible-LSN machinery primary sessions use.
  void EnterReplicaMode() { replica_.store(true, std::memory_order_release); }
  bool replica() const { return replica_.load(std::memory_order_acquire); }

  /// Runs `fn` (the follower's application of one committed group or one
  /// DDL record) under the writer-exclusive lock — and, for DDL, the
  /// schema lock — so replica apply observes exactly the locking
  /// discipline primary writers do: snapshot readers never see a
  /// half-applied catalog, and baseline Query/Explain never see a
  /// half-applied group.
  Status ApplyReplicated(bool ddl, const std::function<Status()>& fn);

  /// CAS-max publication of the follower's replayed LSN as the visible
  /// snapshot head (the replica-mode analogue of the publication point
  /// in ExecuteBlock).
  void PublishReplicaLsn(uint64_t lsn);

  /// Sticky fatal status (OK while the server accepts writes).
  Status fatal() const;

  /// Writer admission control (docs/OVERLOAD.md): every ExecuteBlock
  /// passes through it before touching state_mu_; reads and DDL do not.
  /// Tighten its options to get real shedding under overload.
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }

  uint64_t committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  uint64_t aborted() const { return aborted_.load(std::memory_order_relaxed); }

  Engine* engine() { return engine_; }

 private:
  Status CheckFatal() const;
  void RecordFatal(const Status& failure);
  /// Checkpoints under the exclusive lock when the configured commit
  /// interval has accumulated (the scheduler-side MaybeCheckpoint).
  Status MaybeCheckpoint();

  Engine* engine_;
  /// Writers exclusive, readers shared. Never held across fsync: the
  /// durability wait happens after release.
  std::shared_mutex state_mu_;
  /// Excludes DDL from snapshot reads: snapshots version rows, not the
  /// catalog. DDL takes it exclusive (after state_mu_ — fixed order);
  /// snapshot readers take only this one, shared, so no deadlock cycle
  /// with writers is possible.
  std::shared_mutex schema_mu_;
  /// Published snapshot head. Written only inside the exclusive section
  /// AFTER the committing transaction stamped its versions — even when
  /// the block fails after an inner commit, so it never lags
  /// last_commit_lsn once the exclusive section is released; the release
  /// store pairs with the acquire load in visible_lsn().
  std::atomic<uint64_t> visible_lsn_;
  mutable std::mutex fatal_mu_;
  Status fatal_;
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<bool> replica_{false};
  AdmissionController admission_;
};

}  // namespace server
}  // namespace sopr

#endif  // SOPR_SERVER_COMMIT_SCHEDULER_H_
