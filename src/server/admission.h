#ifndef SOPR_SERVER_ADMISSION_H_
#define SOPR_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>

#include "common/cancel.h"
#include "common/retry.h"
#include "common/status.h"

namespace sopr {
namespace server {

/// Writer admission policy (docs/OVERLOAD.md). Defaults are generous —
/// far above the container's parallelism — so existing workloads see no
/// behavior change; an operator (or the overload bench) tightens them to
/// get real shedding.
struct AdmissionOptions {
  /// Writers allowed past admission at once. One stalled writer inside
  /// its transaction still blocks only the rows it locks; this bound
  /// caps how much concurrent apply work the engine takes on.
  size_t max_inflight_writers = 64;
  /// Writers allowed to WAIT for an in-flight slot. Beyond this the
  /// request is shed immediately with kOverloaded — under overload a
  /// deep queue only adds latency, it never adds throughput.
  size_t max_queued_writers = 256;
  /// Longest a writer may sit in the admission queue before being shed
  /// (zero = wait until the ambient CancelContext gives up). A bounded
  /// queue deadline is what keeps p99 flat when offered load exceeds
  /// capacity: work that would miss its latency budget anyway is
  /// refused at the door instead of timing out mid-transaction.
  std::chrono::microseconds queue_deadline{0};
  /// Schedule for the retry-after hint attached to every kOverloaded:
  /// consecutive sheds escalate the suggested delay, a successful
  /// admission resets it — a crude congestion signal clients can obey
  /// blindly (common/retry.h has the matching Backoff).
  RetryPolicy retry_hint{std::chrono::milliseconds(1),
                         std::chrono::milliseconds(200), 2.0, 0.0, 0};
};

struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_queue_deadline = 0;
  uint64_t shed_cancelled = 0;  // ambient kill/deadline while queued
  size_t inflight = 0;          // instantaneous
  size_t queued = 0;            // instantaneous
};

/// Bounded writer-admission queue in front of the commit scheduler.
/// Reads never pass through it — when writer admission saturates, the
/// snapshot-read path keeps serving (graceful degradation is structural,
/// not a mode).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Move-only RAII admission slot; releases (waking one queued writer)
  /// on destruction.
  class Slot {
   public:
    Slot() = default;
    explicit Slot(AdmissionController* ctrl) : ctrl_(ctrl) {}
    ~Slot() { Release(); }
    Slot(Slot&& o) noexcept : ctrl_(o.ctrl_) { o.ctrl_ = nullptr; }
    Slot& operator=(Slot&& o) noexcept {
      if (this != &o) {
        Release();
        ctrl_ = o.ctrl_;
        o.ctrl_ = nullptr;
      }
      return *this;
    }
    bool admitted() const { return ctrl_ != nullptr; }

   private:
    void Release();
    AdmissionController* ctrl_ = nullptr;
  };

  /// Admits the calling writer, queueing (bounded, deadline-shedded)
  /// when the in-flight limit is reached. Failure modes:
  ///   kOverloaded — queue full or queue deadline passed; the message
  ///     carries a "retry-after-ms=<n>" hint that escalates while the
  ///     system stays saturated.
  ///   kCancelled / kTimeout — the ambient CancelContext (session kill,
  ///     statement timeout) gave up first.
  /// The `server.admit.queue` failpoint fires on entry: chaos injects
  /// admission-layer sheds there, litmus schedules park writers there.
  Result<Slot> Admit();

  /// Non-blocking admission for pipelined staging (docs/NETWORK.md): a
  /// Slot when an in-flight slot is immediately free, kUnavailable when
  /// this writer would have to queue. A pipelining caller holding staged
  /// commits must NOT queue here — the slots it waits for may be its own
  /// staged-but-unawaited transactions, which never release until it
  /// awaits them. On kUnavailable it drains its pipeline (releasing its
  /// slots) and falls back to the blocking Admit. Counts neither a shed
  /// nor a queue entry; the `server.admit.queue` failpoint fires like it
  /// does for Admit.
  Result<Slot> TryAdmit();

  /// Replaces the policy. Affects future Admit calls; writers already
  /// in flight or queued finish under the counts they entered with.
  void set_options(AdmissionOptions options);

  AdmissionStats stats() const;

 private:
  friend class Slot;
  void Release();
  /// Builds the kOverloaded status (mu_ held): escalates the retry-after
  /// hint and stamps it into the message.
  Status ShedLocked(const char* why);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  AdmissionOptions options_;
  Backoff hint_;  // retry-after escalation; guarded by mu_
  size_t inflight_ = 0;
  size_t queued_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_queue_deadline_ = 0;
  uint64_t shed_cancelled_ = 0;
};

}  // namespace server
}  // namespace sopr

#endif  // SOPR_SERVER_ADMISSION_H_
