#ifndef SOPR_SERVER_SESSION_H_
#define SOPR_SERVER_SESSION_H_

#include <cstdint>
#include <string>

#include "server/commit_scheduler.h"

namespace sopr {
namespace server {

class SessionManager;

/// One client connection to the shared engine. A session owns its own
/// SQL parsing (done on the calling thread, outside every engine lock)
/// and its per-session counters; transactions are handed to the shared
/// CommitScheduler for serialized apply and group-commit durability.
///
/// Threading: different sessions are safe to drive from different
/// threads concurrently — that is the point. ONE session must be driven
/// by one thread at a time (like a connection handle).
class Session {
 public:
  Session(SessionManager* manager, uint64_t id)
      : manager_(manager), id_(id) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// A pinned MVCC snapshot: every QueryAt against it reads the same
  /// committed state, and checkpoint pruning keeps the versions it needs
  /// while it is alive. Data-plane only — concurrent DDL is excluded per
  /// query (QueryAt takes the schema lock), not for the pin's lifetime.
  using Snapshot = SnapshotRegistry::Pin;

  /// Autocommit execution of a SQL script: either an all-DDL script or
  /// one DML operation block run as a single transaction (rules to
  /// quiescence, group commit). Returns kRolledBack if a rule's rollback
  /// action fired.
  ///
  /// Read-only classification: a script whose statements are all selects
  /// is a read — it runs against one pinned snapshot, entirely outside
  /// the exclusive writer section. Exceptions: when the engine's §5.1
  /// select-triggering extension is on (track_selects), selects fire
  /// rules and must route through the exclusive section like any write;
  /// and without MVCC (never the SessionManager configuration) the
  /// script also routes through the exclusive section, which is the only
  /// thing that keeps a multi-select script atomic there. Any non-select
  /// statement anywhere in the script makes the whole block a write
  /// transaction.
  Status Execute(const std::string& sql);

  /// Like Execute for DML, returning the full execution trace.
  Result<ExecutionTrace> ExecuteBlock(const std::string& sql);

  /// Read-only query. With MVCC on (the SessionManager default) this
  /// pins the newest published snapshot and never blocks on — or blocks —
  /// the writer; otherwise it falls back to the shared-lock path.
  Result<QueryResult> Query(const std::string& sql);

  /// Explicit alias for the snapshot read path (the name ISSUE 4 uses).
  Result<QueryResult> ExecuteQuery(const std::string& sql);

  /// Pins the newest published snapshot for repeated reads: every
  /// QueryAt(snapshot, ...) sees the same state no matter what commits
  /// meanwhile. Requires MVCC (kInvalidArgument otherwise).
  Result<Snapshot> PinSnapshot();
  Result<QueryResult> QueryAt(const Snapshot& snapshot,
                              const std::string& sql);

  /// `explain <select>` is a read: analyzes the plan under the shared
  /// lock, never entering the exclusive section.
  Result<std::string> Explain(const std::string& sql);

  uint64_t id() const { return id_; }
  /// Receipt of this session's most recent committed DML block (zeroed
  /// before it commits anything).
  const CommitReceipt& last_receipt() const { return last_receipt_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 private:
  CommitScheduler& scheduler();
  /// True when the parsed script classifies as read-only (all selects,
  /// and selects do not trigger rules).
  bool IsReadOnlyScript(const std::vector<StmtPtr>& stmts);

  SessionManager* manager_;
  const uint64_t id_;
  // Owned by the session's driving thread; no locking needed.
  CommitReceipt last_receipt_;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace server
}  // namespace sopr

#endif  // SOPR_SERVER_SESSION_H_
