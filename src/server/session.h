#ifndef SOPR_SERVER_SESSION_H_
#define SOPR_SERVER_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/cancel.h"
#include "server/commit_scheduler.h"

namespace sopr {
namespace server {

class SessionManager;

/// One client connection to the shared engine. A session owns its own
/// SQL parsing (done on the calling thread, outside every engine lock)
/// and its per-session counters; transactions are handed to the shared
/// CommitScheduler for serialized apply and group-commit durability.
///
/// Threading: different sessions are safe to drive from different
/// threads concurrently — that is the point. ONE session must be driven
/// by one thread at a time (like a connection handle); the in-flight
/// statement limit enforces that contract with kOverloaded instead of a
/// race. Cancel() is the one deliberate exception: it is safe from ANY
/// thread, which is what makes a stalled statement killable.
class Session {
 public:
  Session(SessionManager* manager, uint64_t id)
      : manager_(manager), id_(id), kill_(std::make_shared<CancelToken>()) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// A pinned MVCC snapshot: every QueryAt against it reads the same
  /// committed state, and checkpoint pruning keeps the versions it needs
  /// while it is alive. Data-plane only — concurrent DDL is excluded per
  /// query (QueryAt takes the schema lock), not for the pin's lifetime.
  using Snapshot = SnapshotRegistry::Pin;

  /// Autocommit execution of a SQL script: either an all-DDL script or
  /// one DML operation block run as a single transaction (rules to
  /// quiescence, group commit). Returns kRolledBack if a rule's rollback
  /// action fired.
  ///
  /// Read-only classification: a script whose statements are all selects
  /// is a read — it runs against one pinned snapshot, entirely outside
  /// the exclusive writer section. Exceptions: when the engine's §5.1
  /// select-triggering extension is on (track_selects), selects fire
  /// rules and must route through the exclusive section like any write;
  /// and without MVCC (never the SessionManager configuration) the
  /// script also routes through the exclusive section, which is the only
  /// thing that keeps a multi-select script atomic there. Any non-select
  /// statement anywhere in the script makes the whole block a write
  /// transaction.
  Status Execute(const std::string& sql);

  /// Like Execute for DML, returning the full execution trace.
  Result<ExecutionTrace> ExecuteBlock(const std::string& sql);

  /// Per-script outcome of a pipelined run (src/net/, docs/NETWORK.md).
  struct PipelineResult {
    Status status;
    /// Receipt of the script's committed transaction (commit_lsn 0 for
    /// reads, DDL, and failures).
    CommitReceipt receipt;
  };

  /// Pipelined execution of autocommit scripts, each its own transaction
  /// with Execute's exact semantics, EXCEPT that DML durability waits
  /// are deferred: a run of consecutive DML scripts stages its
  /// transactions back-to-back and awaits them together, so the whole
  /// run rides one (or few) group-commit cohorts instead of one fsync
  /// per script. This is the request-pipelining path of the network
  /// front-end — the wire protocol queues a connection's statements and
  /// the driving worker submits them through here.
  ///
  /// Outcomes are per script and independent: script i+1 runs even when
  /// script i failed (each is its own autocommit transaction — there is
  /// no pipeline-abort state). A staged commit is visible to every later
  /// script in the run the moment it stages (same read-your-writes as
  /// sequential Execute); only its durability confirmation is deferred.
  /// The statement timeout applies per script, measured from the moment
  /// its staging starts to the end of its durability wait. A session
  /// kill fails the in-flight script at its next cancellation point and
  /// refuses the rest.
  std::vector<PipelineResult> ExecutePipelined(
      const std::vector<std::string>& scripts);

  /// Read-only query. With MVCC on (the SessionManager default) this
  /// pins the newest published snapshot and never blocks on — or blocks —
  /// the writer; otherwise it falls back to the shared-lock path.
  Result<QueryResult> Query(const std::string& sql);

  /// Explicit alias for the snapshot read path (the name ISSUE 4 uses).
  Result<QueryResult> ExecuteQuery(const std::string& sql);

  /// Pins the newest published snapshot for repeated reads: every
  /// QueryAt(snapshot, ...) sees the same state no matter what commits
  /// meanwhile. Requires MVCC (kInvalidArgument otherwise).
  Result<Snapshot> PinSnapshot();
  Result<QueryResult> QueryAt(const Snapshot& snapshot,
                              const std::string& sql);

  /// `explain <select>` is a read: analyzes the plan under the shared
  /// lock, never entering the exclusive section.
  Result<std::string> Explain(const std::string& sql);

  // --- Overload protection (docs/OVERLOAD.md) ---

  /// Kills the session — the terminate-backend analogue, safe from ANY
  /// thread. The in-flight statement observes the kill at its next
  /// cancellation point (scan batch, rule boundary, lock wait, admission
  /// queue, durability wait) and its transaction rolls back through the
  /// normal structural path, releasing every lock it held; subsequent
  /// statements are refused up front with kCancelled until ResetCancel().
  void Cancel(const std::string& reason);
  /// Installs a fresh kill token, reviving a killed session (operator
  /// un-kill; tests and benches reuse handles).
  void ResetCancel();
  bool killed() const;

  /// Per-statement wall-clock budget (zero = none). Composes with the
  /// engine's per-transaction deadline and the session kill; the earliest
  /// source fires first and attributes the failure (kTimeout for
  /// deadlines, kCancelled for the kill).
  void set_statement_timeout(std::chrono::microseconds timeout) {
    statement_timeout_ = timeout;
  }
  std::chrono::microseconds statement_timeout() const {
    return statement_timeout_;
  }

  /// In-flight statement limit (default 1): a session is a
  /// single-threaded connection handle, so a second statement arriving
  /// while one is still running is a protocol violation — refused with
  /// kOverloaded instead of racing the first.
  void set_max_inflight_statements(size_t n) { max_inflight_statements_ = n; }
  size_t max_inflight_statements() const { return max_inflight_statements_; }

  uint64_t id() const { return id_; }
  /// Receipt of this session's most recent committed DML block (zeroed
  /// before it commits anything).
  const CommitReceipt& last_receipt() const { return last_receipt_; }
  uint64_t commits() const {
    return commits_.load(std::memory_order_relaxed);
  }
  uint64_t aborts() const { return aborts_.load(std::memory_order_relaxed); }
  /// Statements this session started (admitted past the kill and
  /// in-flight checks), including reads.
  uint64_t statements() const {
    return statements_.load(std::memory_order_relaxed);
  }
  size_t inflight_statements() const {
    int n = inflight_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }

 private:
  /// RAII around one statement: refuses killed sessions and in-flight
  /// overflow, installs the session's cancellation sources (kill token,
  /// statement deadline) thread-ambiently for every layer below, and
  /// maintains the statement counters.
  class StatementScope {
   public:
    explicit StatementScope(Session* session);
    ~StatementScope();
    StatementScope(const StatementScope&) = delete;
    StatementScope& operator=(const StatementScope&) = delete;
    /// OK when the statement may run; the refusal otherwise.
    const Status& admitted() const { return status_; }

   private:
    Session* session_;
    CancelContext ctx_;
    std::optional<CancelScope> scope_;
    Status status_;
  };

  CommitScheduler& scheduler();
  /// True when the parsed script classifies as read-only (all selects,
  /// and selects do not trigger rules).
  bool IsReadOnlyScript(const std::vector<StmtPtr>& stmts);
  CancelTokenPtr KillToken() const;

  SessionManager* manager_;
  const uint64_t id_;
  mutable std::mutex cancel_mu_;  // guards kill_ (swapped by ResetCancel)
  CancelTokenPtr kill_;
  // Connection options: set by the driving thread between statements.
  std::chrono::microseconds statement_timeout_{0};
  size_t max_inflight_statements_ = 1;
  // Written by the driving thread, read by SessionManager::Inspect from
  // other threads — hence atomics (relaxed: they are counters, not
  // synchronization).
  std::atomic<uint64_t> statements_{0};
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  // Owned by the session's driving thread; no locking needed.
  CommitReceipt last_receipt_;
};

}  // namespace server
}  // namespace sopr

#endif  // SOPR_SERVER_SESSION_H_
