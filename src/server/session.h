#ifndef SOPR_SERVER_SESSION_H_
#define SOPR_SERVER_SESSION_H_

#include <cstdint>
#include <string>

#include "server/commit_scheduler.h"

namespace sopr {
namespace server {

class SessionManager;

/// One client connection to the shared engine. A session owns its own
/// SQL parsing (done on the calling thread, outside every engine lock)
/// and its per-session counters; transactions are handed to the shared
/// CommitScheduler for serialized apply and group-commit durability.
///
/// Threading: different sessions are safe to drive from different
/// threads concurrently — that is the point. ONE session must be driven
/// by one thread at a time (like a connection handle).
class Session {
 public:
  Session(SessionManager* manager, uint64_t id)
      : manager_(manager), id_(id) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Autocommit execution of a SQL script: either an all-DDL script or
  /// one DML operation block run as a single transaction (rules to
  /// quiescence, group commit). Returns kRolledBack if a rule's rollback
  /// action fired.
  Status Execute(const std::string& sql);

  /// Like Execute for DML, returning the full execution trace.
  Result<ExecutionTrace> ExecuteBlock(const std::string& sql);

  /// Read-only query (shared lock; concurrent with other sessions'
  /// queries).
  Result<QueryResult> Query(const std::string& sql);

  uint64_t id() const { return id_; }
  /// Receipt of this session's most recent committed DML block (zeroed
  /// before it commits anything).
  const CommitReceipt& last_receipt() const { return last_receipt_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 private:
  CommitScheduler& scheduler();

  SessionManager* manager_;
  const uint64_t id_;
  // Owned by the session's driving thread; no locking needed.
  CommitReceipt last_receipt_;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace server
}  // namespace sopr

#endif  // SOPR_SERVER_SESSION_H_
