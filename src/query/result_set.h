#ifndef SOPR_QUERY_RESULT_SET_H_
#define SOPR_QUERY_RESULT_SET_H_

#include <string>

#include "expr/evaluator.h"

namespace sopr {

/// Renders a query result as an aligned ASCII table (for examples and the
/// experiment harness).
std::string FormatResult(const QueryResult& result);

/// Sorts rows structurally (used by tests to compare unordered results).
void SortRows(QueryResult* result);

}  // namespace sopr

#endif  // SOPR_QUERY_RESULT_SET_H_
