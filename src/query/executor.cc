#include "query/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "exec/batch_evaluator.h"
#include "exec/hash_join.h"
#include "exec/row_batch.h"
#include "expr/aggregate.h"

namespace sopr {

namespace {

/// Scan/join loops re-check the ambient CancelContext every this many
/// rows, so a runaway cross product or a giant scan stays interruptible
/// without paying a check per row (docs/OVERLOAD.md).
constexpr size_t kCancelCheckBatch = 1024;

/// Mirrors the batch evaluator's fallback classification: these are
/// row-position-dependent evaluation errors where the vectorized UPDATE
/// re-runs the whole scan row-at-a-time so the reported error is the one
/// the row path hits first (it interleaves predicate and assignment
/// evaluation per row; batches evaluate the predicate stage first).
/// Everything else (cancellation, timeouts, injected faults, lock
/// trouble) propagates as is.
bool IsEvalOrderingError(StatusCode code) {
  return code == StatusCode::kTypeError ||
         code == StatusCode::kExecutionError ||
         code == StatusCode::kCatalogError || code == StatusCode::kInternal;
}

}  // namespace

Result<Relation> DatabaseResolver::Resolve(const TableRef& ref) {
  if (ref.kind != TableRefKind::kBase) {
    return Status::CatalogError(
        "transition table '" + ref.ToString() +
        "' can only be referenced inside a production rule");
  }
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  SOPR_RETURN_NOT_OK(CheckCancel("table scan"));
  // A full scan reads every row, so it takes a table S lock: committed
  // writers cannot change the table under this transaction's feet, and
  // re-scans within the fixpoint see a stable set (coarse-grained
  // phantom protection; see docs/CONCURRENCY.md).
  SOPR_RETURN_NOT_OK(db_->LockForScan(ref.table));
  Relation rel;
  rel.schema = &table->schema();
  std::vector<std::pair<TupleHandle, Row>> rows;
  table->CopyRows(&rows);
  rel.rows.reserve(rows.size());
  rel.handles.reserve(rows.size());
  for (auto& [handle, row] : rows) {
    rel.handles.push_back(handle);
    rel.rows.push_back(std::move(row));
  }
  return rel;
}

Result<const TableSchema*> DatabaseResolver::ResolveSchema(
    const TableRef& ref) {
  if (ref.kind != TableRefKind::kBase) {
    return Status::CatalogError(
        "transition table '" + ref.ToString() +
        "' can only be referenced inside a production rule");
  }
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  return &table->schema();
}

Result<Relation> DatabaseResolver::ResolveEq(const TableRef& ref,
                                             size_t column,
                                             const Value& value) {
  if (ref.kind != TableRefKind::kBase) return Resolve(ref);
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  const ColumnIndex* index = table->GetIndex(column);
  if (index == nullptr) return Resolve(ref);
  Relation rel;
  rel.schema = &table->schema();
  std::vector<TupleHandle> handles;
  table->IndexLookupCopy(column, value, &handles);
  rel.rows.reserve(handles.size());
  rel.handles.reserve(handles.size());
  for (TupleHandle h : handles) {
    // Record S lock per probed row, then re-read: the row may have been
    // deleted between the index probe and the lock grant.
    SOPR_RETURN_NOT_OK(db_->LockRecordForRead(ref.table, h));
    auto row = table->GetCopy(h);
    if (!row.ok()) continue;
    rel.handles.push_back(h);
    rel.rows.push_back(std::move(row).value());
  }
  return rel;
}

namespace {

/// Output column name for a select item.
std::string ItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr*>(item.expr.get())->column;
  }
  return item.expr->ToString();
}

/// True when the select needs the aggregate path.
bool NeedsAggregation(const SelectStmt& stmt) {
  if (!stmt.group_by.empty()) return true;
  if (stmt.having != nullptr) return true;
  for (const SelectItem& item : stmt.items) {
    if (!item.star && ContainsAggregate(*item.expr)) return true;
  }
  return false;
}

/// Checks that a non-aggregate expression in a grouped query is legal:
/// textually one of the group-by expressions, a literal, or composed of
/// legal parts.
bool IsLegalGroupExpr(const Expr& expr,
                      const std::vector<ExprPtr>& group_by) {
  if (expr.kind == ExprKind::kAggregate) return true;
  for (const ExprPtr& g : group_by) {
    if (g->ToString() == expr.ToString()) return true;
  }
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kUnary:
      return IsLegalGroupExpr(*static_cast<const UnaryExpr&>(expr).operand,
                              group_by);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return IsLegalGroupExpr(*b.left, group_by) &&
             IsLegalGroupExpr(*b.right, group_by);
    }
    default:
      return false;
  }
}

}  // namespace

Result<QueryResult> Executor::RunSubquery(const SelectStmt& select,
                                          const Scope* outer) {
  return ExecuteSelect(select, outer, nullptr);
}

Result<QueryResult> Executor::ExecuteSelect(
    const SelectStmt& stmt, const Scope* outer,
    std::vector<SelectedTuple>* selected) {
  if (stmt.from.empty()) {
    return Status::ExecutionError("select requires a FROM clause");
  }

  // Resolve schemas first so planning can run before materialization.
  std::vector<QueryPlan::BindingInfo> binding_infos;
  binding_infos.reserve(stmt.from.size());
  for (const TableRef& ref : stmt.from) {
    SOPR_ASSIGN_OR_RETURN(const TableSchema* schema,
                          resolver_->ResolveSchema(ref));
    binding_infos.push_back(
        QueryPlan::BindingInfo{ref.binding_name(), schema});
  }

  // Plan: pushed single-relation filters, hash equijoin edges, residual
  // conjuncts. With optimization off the whole WHERE is residual, which
  // reduces to the classic cross-product-then-filter pipeline.
  QueryPlan plan;
  std::vector<const Expr*> naive_residual;
  if (options_.optimize) {
    plan = QueryPlan::Analyze(stmt.where.get(), binding_infos);
  } else if (stmt.where != nullptr) {
    naive_residual.push_back(stmt.where.get());
  }
  const std::vector<const Expr*>& residual =
      options_.optimize ? plan.residual() : naive_residual;

  // Materialize each relation, using an equality-index hint when a pushed
  // filter is `column = literal` (the filter is still re-applied below,
  // so an implementation without the index is equally correct).
  auto eq_hint = [&](size_t binding)
      -> std::optional<std::pair<size_t, const Value*>> {
    for (const QueryPlan::PushedFilter& filter : plan.pushed()) {
      if (filter.binding != binding) continue;
      if (filter.conjunct->kind != ExprKind::kBinary) continue;
      const auto& binary = static_cast<const BinaryExpr&>(*filter.conjunct);
      if (binary.op != BinaryOp::kEq) continue;
      const Expr* column_side = binary.left.get();
      const Expr* literal_side = binary.right.get();
      if (column_side->kind != ExprKind::kColumnRef ||
          literal_side->kind != ExprKind::kLiteral) {
        std::swap(column_side, literal_side);
      }
      if (column_side->kind != ExprKind::kColumnRef ||
          literal_side->kind != ExprKind::kLiteral) {
        continue;
      }
      const auto& ref = static_cast<const ColumnRefExpr&>(*column_side);
      auto col = binding_infos[binding].schema->FindColumn(ref.column);
      if (!col) continue;
      const Value& v = static_cast<const LiteralExpr&>(*literal_side).value;
      if (v.is_null()) continue;
      return std::make_pair(*col, &v);
    }
    return std::nullopt;
  };

  std::vector<Relation> relations;
  relations.reserve(stmt.from.size());
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    auto hint = eq_hint(i);
    if (hint) {
      SOPR_ASSIGN_OR_RETURN(
          Relation rel,
          resolver_->ResolveEq(stmt.from[i], hint->first, *hint->second));
      relations.push_back(std::move(rel));
    } else {
      SOPR_ASSIGN_OR_RETURN(Relation rel, resolver_->Resolve(stmt.from[i]));
      relations.push_back(std::move(rel));
    }
  }

  Scope scope(outer);
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    SOPR_RETURN_NOT_OK(
        scope.AddBinding(stmt.from[i].binding_name(), relations[i].schema));
  }

  EvalContext ctx;
  ctx.runner = this;

  // 1. Pushed filters: shrink each relation before joining.
  for (const QueryPlan::PushedFilter& filter : plan.pushed()) {
    Relation& rel = relations[filter.binding];
    if (options_.vectorized) {
      if (ColumnarOn()) {
        SOPR_RETURN_NOT_OK(FilterRelationColumnar(*filter.conjunct, &scope,
                                                  filter.binding, &rel));
      } else {
        SOPR_RETURN_NOT_OK(FilterRelationVectorized(*filter.conjunct, &scope,
                                                    filter.binding, &rel));
      }
      continue;
    }
    std::vector<Row> kept_rows;
    std::vector<TupleHandle> kept_handles;
    for (size_t r = 0; r < rel.rows.size(); ++r) {
      scope.SetRow(filter.binding, &rel.rows[r]);
      SOPR_ASSIGN_OR_RETURN(TriBool t,
                            EvaluatePredicate(*filter.conjunct, scope, ctx));
      if (t == TriBool::kTrue) {
        kept_rows.push_back(std::move(rel.rows[r]));
        kept_handles.push_back(rel.handles[r]);
      }
    }
    rel.rows = std::move(kept_rows);
    rel.handles = std::move(kept_handles);
    scope.SetRow(filter.binding, nullptr);
  }

  // 2. Join in greedy left-deep order; hash join where edges exist.
  std::vector<size_t> order = plan.JoinOrder(relations.size());
  std::vector<Combo> combos;
  std::vector<size_t> joined;
  for (size_t step = 0; step < order.size(); ++step) {
    SOPR_RETURN_NOT_OK(CheckCancel("join step"));
    size_t next = order[step];
    const Relation& rel = relations[next];
    if (step == 0) {
      combos.reserve(rel.rows.size());
      for (size_t r = 0; r < rel.rows.size(); ++r) {
        Combo combo;
        combo.rows.assign(relations.size(), nullptr);
        combo.row_indices.assign(relations.size(), 0);
        combo.rows[next] = &rel.rows[r];
        combo.row_indices[next] = r;
        combos.push_back(std::move(combo));
      }
      joined.push_back(next);
      continue;
    }
    std::vector<QueryPlan::JoinEdge> edges = plan.EdgesTo(joined, next);
    std::vector<Combo> next_combos;
    if (!edges.empty() && options_.vectorized) {
      // Build/probe hash join on `next` keyed by its edge columns. An
      // armed exec.hashjoin.build failure aborts the statement before
      // any build work; a KILL delivered while parked here is observed
      // at the next cancellation check (batch boundaries inside Build).
      SOPR_FAILPOINT_RETURN("exec.hashjoin.build");
      std::vector<size_t> key_cols;
      key_cols.reserve(edges.size());
      for (const QueryPlan::JoinEdge& edge : edges) {
        key_cols.push_back(edge.right_column);
      }
      exec::JoinHashTable table;
      bool built = false;
      bool columnar_built = false;
      if (ColumnarOn()) {
        // Decompose the build side's key columns and digest them with
        // the bulk column-major loops; any column that fails to
        // decompose drops the whole build back to the row loop.
        std::vector<exec::ColumnVector> key_storage(key_cols.size());
        std::vector<const exec::ColumnVector*> key_vecs;
        key_vecs.reserve(key_cols.size());
        for (size_t k = 0; k < key_cols.size(); ++k) {
          const size_t col = key_cols[k];
          if (col >= rel.schema->num_columns() ||
              !exec::BuildColumn(rel.rows, col,
                                 rel.schema->columns()[col].type,
                                 &key_storage[k])) {
            break;
          }
          key_vecs.push_back(&key_storage[k]);
        }
        if (key_vecs.size() == key_cols.size()) {
          SOPR_ASSIGN_OR_RETURN(
              built, table.BuildColumnar(rel.rows, key_cols,
                                         options_.max_hash_build_rows,
                                         key_vecs));
          columnar_built = true;
        }
      }
      if (!columnar_built) {
        SOPR_ASSIGN_OR_RETURN(
            built, table.Build(rel.rows, std::move(key_cols),
                               options_.max_hash_build_rows));
      }
      size_t probed = 0;
      std::vector<const Value*> probe_key(edges.size());
      std::vector<uint32_t> matches;
      for (const Combo& combo : combos) {
        if (probed++ % kCancelCheckBatch == 0) {
          SOPR_RETURN_NOT_OK(CheckCancel("hash join probe"));
        }
        if (built) {
          for (size_t k = 0; k < edges.size(); ++k) {
            probe_key[k] =
                &combo.rows[edges[k].left_binding]->at(edges[k].left_column);
          }
          matches.clear();
          table.Probe(probe_key, &matches);
          for (uint32_t r : matches) {
            Combo out = combo;
            out.rows[next] = &rel.rows[r];
            out.row_indices[next] = r;
            next_combos.push_back(std::move(out));
          }
        } else {
          // Build side exceeded the memory budget: nested-loop probe
          // applying the edge predicates directly (same join semantics,
          // bounded memory — docs/EXECUTION.md).
          for (size_t r = 0; r < rel.rows.size(); ++r) {
            if (r % kCancelCheckBatch == kCancelCheckBatch - 1) {
              SOPR_RETURN_NOT_OK(CheckCancel("nested loop join"));
            }
            bool match = true;
            for (const QueryPlan::JoinEdge& edge : edges) {
              if (combo.rows[edge.left_binding]
                      ->at(edge.left_column)
                      .SqlEquals(rel.rows[r].at(edge.right_column)) !=
                  TriBool::kTrue) {
                match = false;
                break;
              }
            }
            if (!match) continue;
            Combo out = combo;
            out.rows[next] = &rel.rows[r];
            out.row_indices[next] = r;
            next_combos.push_back(std::move(out));
          }
        }
      }
    } else if (!edges.empty()) {
      // Hash join: build on `next` keyed by its edge columns (numerics
      // normalized to double so 2 joins with 2.0); NULL keys never match.
      auto normalize = [](const Value& v) {
        return v.IsNumeric() ? Value::Double(v.NumericAsDouble()) : v;
      };
      std::map<Row, std::vector<size_t>> hash;
      for (size_t r = 0; r < rel.rows.size(); ++r) {
        Row key;
        bool has_null = false;
        for (const QueryPlan::JoinEdge& edge : edges) {
          const Value& v = rel.rows[r].at(edge.right_column);
          if (v.is_null()) has_null = true;
          key.Append(normalize(v));
        }
        if (!has_null) hash[std::move(key)].push_back(r);
      }
      for (const Combo& combo : combos) {
        Row key;
        bool has_null = false;
        for (const QueryPlan::JoinEdge& edge : edges) {
          const Value& v = combo.rows[edge.left_binding]->at(edge.left_column);
          if (v.is_null()) has_null = true;
          key.Append(normalize(v));
        }
        if (has_null) continue;
        auto it = hash.find(key);
        if (it == hash.end()) continue;
        for (size_t r : it->second) {
          Combo out = combo;
          out.rows[next] = &rel.rows[r];
          out.row_indices[next] = r;
          next_combos.push_back(std::move(out));
        }
      }
    } else {
      // Cross product with the next relation.
      next_combos.reserve(combos.size() * rel.rows.size());
      for (const Combo& combo : combos) {
        for (size_t r = 0; r < rel.rows.size(); ++r) {
          if (next_combos.size() % kCancelCheckBatch == 0) {
            SOPR_RETURN_NOT_OK(CheckCancel("cross product"));
          }
          Combo out = combo;
          out.rows[next] = &rel.rows[r];
          out.row_indices[next] = r;
          next_combos.push_back(std::move(out));
        }
      }
    }
    combos = std::move(next_combos);
    joined.push_back(next);
  }
  if (!relations.empty() && combos.empty() && relations.size() != joined.size()) {
    combos.clear();  // defensive: some relation was empty
  }

  // 3. Residual conjuncts over full combos.
  if (!residual.empty() && options_.vectorized) {
    // Batch-at-a-time: each conjunct narrows the chunk's selection
    // vector, so conjunct k only sees combos whose earlier conjuncts
    // were all true — the same pairs the row path evaluates.
    std::vector<Combo> filtered;
    filtered.reserve(combos.size());
    exec::RowBatch batch(scope.num_bindings());
    // Hot columns across every residual conjunct, decomposed per chunk
    // from the combo rows (the columnar path; empty when it is off).
    std::vector<std::pair<size_t, size_t>> hot;
    if (ColumnarOn()) {
      for (const Expr* conjunct : residual) {
        CollectHotColumns(*conjunct, scope, &hot);
      }
    }
    std::vector<exec::ColumnVector> hot_storage(hot.size());
    for (size_t start = 0; start < combos.size();
         start += exec::kBatchRows) {
      SOPR_FAILPOINT_RETURN("exec.batch");
      SOPR_RETURN_NOT_OK(CheckCancel("batch boundary"));
      const size_t end = std::min(start + exec::kBatchRows, combos.size());
      batch.Clear();
      exec::SelVec sel;
      sel.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch.AppendAllNull();
        for (size_t b = 0; b < combos[i].rows.size(); ++b) {
          batch.SetBack(b, combos[i].rows[b]);
        }
        sel.push_back(static_cast<uint32_t>(i - start));
      }
      exec::ColumnSet colset;
      for (size_t k = 0; k < hot.size(); ++k) {
        const size_t b = hot[k].first;
        const size_t col = hot[k].second;
        if (col >= relations[b].schema->num_columns()) continue;
        if (exec::BuildColumnFrom(
                end - start,
                [&](size_t i) -> const Row& {
                  return *combos[start + i].rows[b];
                },
                col, relations[b].schema->columns()[col].type,
                &hot_storage[k])) {
          colset.Add(b, col, &hot_storage[k]);
        }
      }
      for (const Expr* conjunct : residual) {
        if (sel.empty()) break;
        std::vector<TriBool> tri;
        if (ColumnarOn()) {
          SOPR_RETURN_NOT_OK(exec::EvaluatePredicateColumnar(
              *conjunct, &scope, ctx, batch, colset, sel, &tri));
        } else {
          SOPR_RETURN_NOT_OK(exec::EvaluatePredicateBatch(
              *conjunct, &scope, ctx, batch, sel, &tri));
        }
        exec::SelVec next_sel;
        next_sel.reserve(sel.size());
        for (size_t i = 0; i < sel.size(); ++i) {
          if (tri[i] == TriBool::kTrue) next_sel.push_back(sel[i]);
        }
        sel = std::move(next_sel);
      }
      for (uint32_t pos : sel) {
        filtered.push_back(std::move(combos[start + pos]));
      }
    }
    combos = std::move(filtered);
  } else if (!residual.empty()) {
    std::vector<Combo> filtered;
    filtered.reserve(combos.size());
    size_t evaluated = 0;
    for (Combo& combo : combos) {
      if (evaluated++ % kCancelCheckBatch == 0) {
        SOPR_RETURN_NOT_OK(CheckCancel("filter"));
      }
      for (size_t i = 0; i < relations.size(); ++i) {
        scope.SetRow(i, combo.rows[i]);
      }
      bool keep = true;
      for (const Expr* conjunct : residual) {
        SOPR_ASSIGN_OR_RETURN(TriBool t,
                              EvaluatePredicate(*conjunct, scope, ctx));
        if (t != TriBool::kTrue) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(std::move(combo));
    }
    combos = std::move(filtered);
  }

  // 4. §5.1 select tracking over the surviving combos.
  if (selected != nullptr) {
    for (const Combo& combo : combos) {
      for (size_t i = 0; i < relations.size(); ++i) {
        if (stmt.from[i].kind == TableRefKind::kBase &&
            relations[i].handles[combo.row_indices[i]] != kInvalidHandle) {
          selected->push_back(
              SelectedTuple{ToLower(stmt.from[i].table),
                            relations[i].handles[combo.row_indices[i]]});
        }
      }
    }
  }

  QueryResult result;
  std::vector<Row> order_keys;  // parallel to result.rows
  if (NeedsAggregation(stmt)) {
    SOPR_ASSIGN_OR_RETURN(result, ExecuteAggregateSelect(stmt, relations,
                                                         &scope, combos,
                                                         &order_keys));
  } else {
    SOPR_ASSIGN_OR_RETURN(result, ExecutePlainSelect(stmt, relations, &scope,
                                                     combos, &order_keys));
  }
  SOPR_RETURN_NOT_OK(ApplyOrderAndDistinct(stmt, &result, &order_keys));
  return result;
}

Result<QueryResult> Executor::ExecutePlainSelect(
    const SelectStmt& stmt, const std::vector<Relation>& relations,
    Scope* scope, const std::vector<Combo>& combos,
    std::vector<Row>* order_keys) {
  QueryResult result;

  // Output column names.
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (const Relation& rel : relations) {
        for (const ColumnDef& col : rel.schema->columns()) {
          result.columns.push_back(col.name);
        }
      }
    } else {
      result.columns.push_back(ItemName(item));
    }
  }

  EvalContext ctx;
  ctx.runner = this;
  for (const Combo& combo : combos) {
    for (size_t i = 0; i < combo.rows.size(); ++i) {
      scope->SetRow(i, combo.rows[i]);
    }
    Row out;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        for (const Row* row : combo.rows) {
          for (size_t c = 0; c < row->size(); ++c) out.Append(row->at(c));
        }
      } else {
        SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*item.expr, *scope, ctx));
        out.Append(std::move(v));
      }
    }
    result.rows.push_back(std::move(out));
    if (!stmt.order_by.empty()) {
      Row keys;
      for (const OrderByItem& item : stmt.order_by) {
        SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*item.expr, *scope, ctx));
        keys.Append(std::move(v));
      }
      order_keys->push_back(std::move(keys));
    }
  }
  return result;
}

Result<QueryResult> Executor::ExecuteAggregateSelect(
    const SelectStmt& stmt, const std::vector<Relation>& relations,
    Scope* scope, const std::vector<Combo>& combos,
    std::vector<Row>* order_keys) {
  (void)relations;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      return Status::TypeError("'*' cannot be used with aggregation");
    }
    if (!IsLegalGroupExpr(*item.expr, stmt.group_by)) {
      return Status::TypeError("select item " + item.expr->ToString() +
                               " must be an aggregate or appear in group by");
    }
  }

  EvalContext ctx;
  ctx.runner = this;

  // Group combos by group-by key (whole-row structural comparison).
  std::map<Row, std::vector<const Combo*>> groups;
  if (stmt.group_by.empty()) {
    groups.emplace(Row(), std::vector<const Combo*>());
  }
  for (const Combo& combo : combos) {
    for (size_t i = 0; i < combo.rows.size(); ++i) {
      scope->SetRow(i, combo.rows[i]);
    }
    Row key;
    for (const ExprPtr& g : stmt.group_by) {
      SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*g, *scope, ctx));
      key.Append(std::move(v));
    }
    groups[key].push_back(&combo);
  }

  // Aggregate nodes needed across items, HAVING, and ORDER BY.
  std::vector<const AggregateExpr*> agg_nodes;
  for (const SelectItem& item : stmt.items) {
    CollectAggregates(*item.expr, &agg_nodes);
  }
  if (stmt.having != nullptr) CollectAggregates(*stmt.having, &agg_nodes);
  for (const OrderByItem& item : stmt.order_by) {
    CollectAggregates(*item.expr, &agg_nodes);
  }

  QueryResult result;
  for (const SelectItem& item : stmt.items) {
    result.columns.push_back(ItemName(item));
  }

  for (const auto& [key, group] : groups) {
    (void)key;
    // Compute every aggregate over the group.
    std::map<const Expr*, Value> agg_values;
    for (const AggregateExpr* node : agg_nodes) {
      AggregateAccumulator acc(node->func, node->distinct);
      for (const Combo* combo : group) {
        for (size_t i = 0; i < combo->rows.size(); ++i) {
          scope->SetRow(i, combo->rows[i]);
        }
        if (node->argument == nullptr) {
          SOPR_RETURN_NOT_OK(acc.Add(Value::Bool(true)));  // count(*)
        } else {
          EvalContext arg_ctx;
          arg_ctx.runner = this;
          SOPR_ASSIGN_OR_RETURN(Value v,
                                Evaluate(*node->argument, *scope, arg_ctx));
          SOPR_RETURN_NOT_OK(acc.Add(v));
        }
      }
      SOPR_ASSIGN_OR_RETURN(Value final_value, acc.Finish());
      agg_values.emplace(node, std::move(final_value));
    }

    // Bind the first combo (if any) for group-by column references.
    if (!group.empty()) {
      for (size_t i = 0; i < group[0]->rows.size(); ++i) {
        scope->SetRow(i, group[0]->rows[i]);
      }
    } else {
      for (size_t i = 0; i < scope->num_bindings(); ++i) {
        scope->SetRow(i, nullptr);
      }
    }

    EvalContext group_ctx;
    group_ctx.runner = this;
    group_ctx.aggregates = &agg_values;

    if (stmt.having != nullptr) {
      SOPR_ASSIGN_OR_RETURN(TriBool t,
                            EvaluatePredicate(*stmt.having, *scope, group_ctx));
      if (t != TriBool::kTrue) continue;
    }

    Row out;
    for (const SelectItem& item : stmt.items) {
      SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*item.expr, *scope, group_ctx));
      out.Append(std::move(v));
    }
    result.rows.push_back(std::move(out));
    if (!stmt.order_by.empty()) {
      Row keys;
      for (const OrderByItem& item : stmt.order_by) {
        SOPR_ASSIGN_OR_RETURN(Value v,
                              Evaluate(*item.expr, *scope, group_ctx));
        keys.Append(std::move(v));
      }
      order_keys->push_back(std::move(keys));
    }
  }
  return result;
}

Status Executor::ApplyOrderAndDistinct(const SelectStmt& stmt,
                                       QueryResult* result,
                                       std::vector<Row>* order_keys) {
  // Sort first (keys are parallel to rows), then dedupe; a stable sort
  // keeps the first occurrence deterministic.
  if (!stmt.order_by.empty()) {
    struct Keyed {
      Row keys;
      Row row;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(result->rows.size());
    for (size_t i = 0; i < result->rows.size(); ++i) {
      keyed.push_back(
          Keyed{std::move((*order_keys)[i]), std::move(result->rows[i])});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         const Value& va = a.keys.at(i);
                         const Value& vb = b.keys.at(i);
                         bool less = va.StructurallyLess(vb);
                         bool greater = vb.StructurallyLess(va);
                         if (!less && !greater) continue;
                         return stmt.order_by[i].ascending ? less : greater;
                       }
                       return false;
                     });
    result->rows.clear();
    for (Keyed& k : keyed) result->rows.push_back(std::move(k.row));
  }

  if (stmt.distinct) {
    std::vector<Row> unique;
    for (Row& row : result->rows) {
      bool seen = false;
      for (const Row& u : unique) {
        if (u == row) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(std::move(row));
    }
    result->rows = std::move(unique);
  }
  return Status::OK();
}

Status Executor::FilterRelationVectorized(const Expr& conjunct, Scope* scope,
                                          size_t binding, Relation* rel) {
  EvalContext ctx;
  ctx.runner = this;
  std::vector<Row> kept_rows;
  std::vector<TupleHandle> kept_handles;
  exec::RowBatch batch(scope->num_bindings());
  for (size_t start = 0; start < rel->rows.size();
       start += exec::kBatchRows) {
    SOPR_FAILPOINT_RETURN("exec.batch");
    SOPR_RETURN_NOT_OK(CheckCancel("batch boundary"));
    const size_t end = std::min(start + exec::kBatchRows, rel->rows.size());
    batch.Clear();
    exec::SelVec sel;
    sel.reserve(end - start);
    for (size_t r = start; r < end; ++r) {
      batch.AppendAllNull();
      batch.SetBack(binding, &rel->rows[r]);
      sel.push_back(static_cast<uint32_t>(r - start));
    }
    std::vector<TriBool> tri;
    SOPR_RETURN_NOT_OK(exec::EvaluatePredicateBatch(conjunct, scope, ctx,
                                                    batch, sel, &tri));
    for (size_t i = 0; i < sel.size(); ++i) {
      if (tri[i] != TriBool::kTrue) continue;
      kept_rows.push_back(std::move(rel->rows[start + sel[i]]));
      kept_handles.push_back(rel->handles[start + sel[i]]);
    }
  }
  rel->rows = std::move(kept_rows);
  rel->handles = std::move(kept_handles);
  for (size_t b = 0; b < scope->num_bindings(); ++b) {
    scope->SetRow(b, nullptr);
  }
  return Status::OK();
}

void Executor::CollectHotColumns(const Expr& expr, const Scope& scope,
                                 std::vector<std::pair<size_t, size_t>>* out) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      auto resolved = scope.ResolveColumn(ref.qualifier, ref.column);
      // Unresolvable references error at evaluation; outer-scope
      // references broadcast a single value — neither is a hot column.
      if (!resolved.ok()) return;
      for (size_t b = 0; b < scope.num_bindings(); ++b) {
        if (resolved.value().binding != &scope.binding(b)) continue;
        std::pair<size_t, size_t> key(b, resolved.value().column);
        if (std::find(out->begin(), out->end(), key) == out->end()) {
          out->push_back(key);
        }
        return;
      }
      return;
    }
    case ExprKind::kUnary:
      CollectHotColumns(*static_cast<const UnaryExpr&>(expr).operand, scope,
                        out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectHotColumns(*b.left, scope, out);
      CollectHotColumns(*b.right, scope, out);
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      CollectHotColumns(*in.operand, scope, out);
      for (const ExprPtr& item : in.items) {
        CollectHotColumns(*item, scope, out);
      }
      return;
    }
    case ExprKind::kIsNull:
      CollectHotColumns(*static_cast<const IsNullExpr&>(expr).operand, scope,
                        out);
      return;
    case ExprKind::kBetween: {
      const auto& bw = static_cast<const BetweenExpr&>(expr);
      CollectHotColumns(*bw.operand, scope, out);
      CollectHotColumns(*bw.low, scope, out);
      CollectHotColumns(*bw.high, scope, out);
      return;
    }
    default:
      // Literals and aggregates reference no columns; subquery subtrees
      // always take the pointer path, so their references stay cold.
      return;
  }
}

Status Executor::FilterRelationColumnar(const Expr& conjunct, Scope* scope,
                                        size_t binding, Relation* rel) {
  std::vector<std::pair<size_t, size_t>> hot;
  CollectHotColumns(conjunct, *scope, &hot);
  EvalContext ctx;
  ctx.runner = this;
  std::vector<Row> kept_rows;
  std::vector<TupleHandle> kept_handles;
  exec::RowBatch batch(scope->num_bindings());
  std::vector<exec::ColumnVector> hot_storage(hot.size());
  for (size_t start = 0; start < rel->rows.size();
       start += exec::kBatchRows) {
    SOPR_FAILPOINT_RETURN("exec.batch");
    SOPR_RETURN_NOT_OK(CheckCancel("batch boundary"));
    const size_t end = std::min(start + exec::kBatchRows, rel->rows.size());
    batch.Clear();
    exec::SelVec sel;
    sel.reserve(end - start);
    for (size_t r = start; r < end; ++r) {
      batch.AppendAllNull();
      batch.SetBack(binding, &rel->rows[r]);
      sel.push_back(static_cast<uint32_t>(r - start));
    }
    exec::ColumnSet colset;
    for (size_t k = 0; k < hot.size(); ++k) {
      // A pushed filter only references its own binding, but resolution
      // through the full scope can surface others — skip them.
      if (hot[k].first != binding) continue;
      const size_t col = hot[k].second;
      if (col >= rel->schema->num_columns()) continue;
      if (exec::BuildColumnFrom(
              end - start,
              [&](size_t i) -> const Row& { return rel->rows[start + i]; },
              col, rel->schema->columns()[col].type, &hot_storage[k])) {
        colset.Add(binding, col, &hot_storage[k]);
      }
    }
    std::vector<TriBool> tri;
    SOPR_RETURN_NOT_OK(exec::EvaluatePredicateColumnar(
        conjunct, scope, ctx, batch, colset, sel, &tri));
    for (size_t i = 0; i < sel.size(); ++i) {
      if (tri[i] != TriBool::kTrue) continue;
      kept_rows.push_back(std::move(rel->rows[start + sel[i]]));
      kept_handles.push_back(rel->handles[start + sel[i]]);
    }
  }
  rel->rows = std::move(kept_rows);
  rel->handles = std::move(kept_handles);
  for (size_t b = 0; b < scope->num_bindings(); ++b) {
    scope->SetRow(b, nullptr);
  }
  return Status::OK();
}

Status Executor::MatchSnapshotVectorized(
    const Expr& where, Scope* scope,
    const std::vector<std::pair<TupleHandle, Row>>& snapshot,
    std::vector<char>* matches) {
  EvalContext ctx;
  ctx.runner = this;
  matches->assign(snapshot.size(), 0);
  exec::RowBatch batch(scope->num_bindings());
  for (size_t start = 0; start < snapshot.size();
       start += exec::kBatchRows) {
    SOPR_FAILPOINT_RETURN("exec.batch");
    SOPR_RETURN_NOT_OK(CheckCancel("batch boundary"));
    const size_t end = std::min(start + exec::kBatchRows, snapshot.size());
    batch.Clear();
    exec::SelVec sel;
    sel.reserve(end - start);
    for (size_t r = start; r < end; ++r) {
      batch.AppendAllNull();
      batch.SetBack(0, &snapshot[r].second);
      sel.push_back(static_cast<uint32_t>(r - start));
    }
    std::vector<TriBool> tri;
    SOPR_RETURN_NOT_OK(
        exec::EvaluatePredicateBatch(where, scope, ctx, batch, sel, &tri));
    for (size_t i = 0; i < sel.size(); ++i) {
      (*matches)[start + sel[i]] = tri[i] == TriBool::kTrue ? 1 : 0;
    }
  }
  return Status::OK();
}

Status Executor::MatchSnapshotColumnar(
    const Expr& where, Scope* scope,
    const std::vector<std::pair<TupleHandle, Row>>& snapshot,
    const std::vector<size_t>& hot_cols,
    const std::vector<exec::ColumnVector>& cols,
    const std::vector<char>& built, std::vector<char>* matches) {
  EvalContext ctx;
  ctx.runner = this;
  matches->assign(snapshot.size(), 0);
  exec::RowBatch batch(scope->num_bindings());
  std::vector<exec::ColumnVector> window(hot_cols.size());
  for (size_t start = 0; start < snapshot.size();
       start += exec::kBatchRows) {
    SOPR_FAILPOINT_RETURN("exec.batch");
    SOPR_RETURN_NOT_OK(CheckCancel("batch boundary"));
    const size_t end = std::min(start + exec::kBatchRows, snapshot.size());
    batch.Clear();
    exec::SelVec sel;
    sel.reserve(end - start);
    for (size_t r = start; r < end; ++r) {
      batch.AppendAllNull();
      batch.SetBack(0, &snapshot[r].second);
      sel.push_back(static_cast<uint32_t>(r - start));
    }
    exec::ColumnSet colset;
    for (size_t k = 0; k < hot_cols.size() && k < built.size(); ++k) {
      if (!built[k]) continue;
      window[k].SliceFrom(cols[k], start, end - start);
      colset.Add(0, hot_cols[k], &window[k]);
    }
    std::vector<TriBool> tri;
    SOPR_RETURN_NOT_OK(exec::EvaluatePredicateColumnar(
        where, scope, ctx, batch, colset, sel, &tri));
    for (size_t i = 0; i < sel.size(); ++i) {
      (*matches)[start + sel[i]] = tri[i] == TriBool::kTrue ? 1 : 0;
    }
  }
  return Status::OK();
}

Status Executor::SnapshotForDml(
    const Table& table, const std::string& table_name, const Expr* where,
    const TableSchema& schema,
    std::vector<std::pair<TupleHandle, Row>>* snapshot,
    const std::vector<size_t>* hot_cols,
    std::vector<exec::ColumnVector>* cols, std::vector<char>* built) {
  const bool columnar = hot_cols != nullptr && !hot_cols->empty() &&
                        cols != nullptr && built != nullptr;
  auto decompose = [&]() {
    cols->resize(hot_cols->size());
    built->assign(hot_cols->size(), 0);
    for (size_t k = 0; k < hot_cols->size(); ++k) {
      const size_t col = (*hot_cols)[k];
      if (col >= schema.num_columns()) continue;
      (*built)[k] = exec::BuildColumnFrom(
          snapshot->size(),
          [&](size_t i) -> const Row& { return (*snapshot)[i].second; }, col,
          schema.columns()[col].type, &(*cols)[k]);
    }
  };
  if (options_.optimize && where != nullptr) {
    if (auto hint = FindEqLiteral(where, schema)) {
      if (table.GetIndex(hint->first) != nullptr) {
        std::vector<TupleHandle> handles;
        table.IndexLookupCopy(hint->first, *hint->second, &handles);
        snapshot->reserve(handles.size());
        for (TupleHandle h : handles) {
          // Record X lock per candidate (IX on the table), then re-read:
          // the row may have changed or vanished between the index probe
          // and the lock grant. Stale candidates that no longer match
          // `where` are filtered by the caller's predicate evaluation.
          SOPR_RETURN_NOT_OK(db_->LockRecordForWrite(table_name, h));
          auto row = table.GetCopy(h);
          if (!row.ok()) continue;
          snapshot->emplace_back(h, std::move(row).value());
        }
        if (columnar) decompose();
        return Status::OK();
      }
    }
  }
  // Unindexed predicate: every row is a candidate — take a table X lock
  // (full phantom protection for this scan-then-mutate).
  SOPR_RETURN_NOT_OK(db_->LockForWriteScan(table_name));
  snapshot->reserve(table.size());
  if (columnar) {
    // Copy and decompose under one shared-latch acquisition.
    table.CopyRowsColumnar(snapshot, *hot_cols, cols, built);
  } else {
    table.CopyRows(snapshot);
  }
  return Status::OK();
}

Row Executor::CoerceRow(Row row, const TableSchema& schema) {
  for (size_t i = 0; i < row.size() && i < schema.num_columns(); ++i) {
    if (schema.columns()[i].type == ValueType::kDouble &&
        row.at(i).type() == ValueType::kInt) {
      row.at(i) = Value::Double(static_cast<double>(row.at(i).AsInt()));
    }
  }
  return row;
}

Result<DmlEffect> Executor::ExecuteInsert(const InsertStmt& stmt) {
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(stmt.table));
  const TableSchema& schema = table->schema();

  DmlEffect effect;
  effect.table = ToLower(stmt.table);

  std::vector<Row> to_insert;
  if (stmt.select != nullptr) {
    SOPR_ASSIGN_OR_RETURN(QueryResult result, ExecuteSelect(*stmt.select));
    to_insert = std::move(result.rows);
  } else {
    Scope scope;  // no row bindings: VALUES may still use scalar subqueries
    EvalContext ctx;
    ctx.runner = this;
    for (const std::vector<ExprPtr>& row_exprs : stmt.rows) {
      Row row;
      for (const ExprPtr& e : row_exprs) {
        SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*e, scope, ctx));
        row.Append(std::move(v));
      }
      to_insert.push_back(std::move(row));
    }
  }

  for (Row& row : to_insert) {
    SOPR_ASSIGN_OR_RETURN(
        TupleHandle handle,
        db_->InsertRow(stmt.table, CoerceRow(std::move(row), schema)));
    effect.inserted.push_back(handle);
  }
  return effect;
}

Result<DmlEffect> Executor::ExecuteDelete(const DeleteStmt& stmt) {
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(stmt.table));
  const TableSchema& schema = table->schema();

  DmlEffect effect;
  effect.table = ToLower(stmt.table);

  // Scope first: hot-column collection needs it before the snapshot so
  // the full-scan path can decompose under the same latch as the copy.
  Scope scope;
  SOPR_RETURN_NOT_OK(scope.AddBinding(ToLower(stmt.table), &schema));
  EvalContext ctx;
  ctx.runner = this;

  std::vector<size_t> hot_cols;
  if (stmt.where != nullptr && ColumnarOn()) {
    std::vector<std::pair<size_t, size_t>> hot;
    CollectHotColumns(*stmt.where, scope, &hot);
    for (const auto& [b, col] : hot) {
      if (b == 0) hot_cols.push_back(col);
    }
  }

  // Snapshot, then evaluate the predicate against the pre-statement
  // state. A `column = literal` conjunct with an index narrows the
  // snapshot; the full predicate is still evaluated per row.
  std::vector<std::pair<TupleHandle, Row>> snapshot;
  std::vector<exec::ColumnVector> snap_cols;
  std::vector<char> snap_built;
  SOPR_RETURN_NOT_OK(SnapshotForDml(*table, stmt.table, stmt.where.get(),
                                    schema, &snapshot, &hot_cols, &snap_cols,
                                    &snap_built));

  if (stmt.where != nullptr && options_.vectorized) {
    std::vector<char> matches;
    if (ColumnarOn()) {
      SOPR_RETURN_NOT_OK(MatchSnapshotColumnar(*stmt.where, &scope, snapshot,
                                               hot_cols, snap_cols, snap_built,
                                               &matches));
    } else {
      SOPR_RETURN_NOT_OK(
          MatchSnapshotVectorized(*stmt.where, &scope, snapshot, &matches));
    }
    for (size_t r = 0; r < snapshot.size(); ++r) {
      if (matches[r]) {
        effect.deleted.emplace_back(snapshot[r].first,
                                    std::move(snapshot[r].second));
      }
    }
  } else {
    size_t scanned = 0;
    for (auto& [handle, row] : snapshot) {
      if (scanned++ % kCancelCheckBatch == 0) {
        SOPR_RETURN_NOT_OK(CheckCancel("delete scan"));
      }
      bool match = true;
      if (stmt.where != nullptr) {
        scope.SetRow(0, &row);
        SOPR_ASSIGN_OR_RETURN(TriBool t,
                              EvaluatePredicate(*stmt.where, scope, ctx));
        match = (t == TriBool::kTrue);
      }
      if (match) effect.deleted.emplace_back(handle, std::move(row));
    }
  }

  for (const auto& [handle, row] : effect.deleted) {
    (void)row;
    SOPR_RETURN_NOT_OK(db_->DeleteRow(stmt.table, handle));
  }
  return effect;
}

Result<DmlEffect> Executor::ExecuteUpdate(const UpdateStmt& stmt) {
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(stmt.table));
  const TableSchema& schema = table->schema();

  DmlEffect effect;
  effect.table = ToLower(stmt.table);

  // Resolve assigned column indices once.
  std::vector<size_t> assigned_cols;
  assigned_cols.reserve(stmt.assignments.size());
  for (const UpdateStmt::Assignment& a : stmt.assignments) {
    auto idx = schema.FindColumn(a.column);
    if (!idx) {
      return Status::CatalogError("no column " + a.column + " in table " +
                                  stmt.table);
    }
    assigned_cols.push_back(*idx);
  }

  Scope scope;
  SOPR_RETURN_NOT_OK(scope.AddBinding(ToLower(stmt.table), &schema));
  EvalContext ctx;
  ctx.runner = this;

  std::vector<size_t> hot_cols;
  if (stmt.where != nullptr && ColumnarOn()) {
    std::vector<std::pair<size_t, size_t>> hot;
    CollectHotColumns(*stmt.where, scope, &hot);
    for (const auto& [b, col] : hot) {
      if (b == 0) hot_cols.push_back(col);
    }
  }

  std::vector<std::pair<TupleHandle, Row>> snapshot;
  std::vector<exec::ColumnVector> snap_cols;
  std::vector<char> snap_built;
  SOPR_RETURN_NOT_OK(SnapshotForDml(*table, stmt.table, stmt.where.get(),
                                    schema, &snapshot, &hot_cols, &snap_cols,
                                    &snap_built));

  std::vector<std::pair<TupleHandle, Row>> new_rows;
  bool vectorized_done = false;
  if (stmt.where != nullptr && options_.vectorized) {
    std::vector<char> matches;
    Status s = ColumnarOn()
                   ? MatchSnapshotColumnar(*stmt.where, &scope, snapshot,
                                           hot_cols, snap_cols, snap_built,
                                           &matches)
                   : MatchSnapshotVectorized(*stmt.where, &scope, snapshot,
                                             &matches);
    if (s.ok()) {
      // Predicate stage clean: assignment evaluation below visits the
      // same rows in the same order as the row path, so any assignment
      // error already matches it exactly.
      for (size_t r = 0; r < snapshot.size(); ++r) {
        if (!matches[r]) continue;
        auto& [handle, row] = snapshot[r];
        scope.SetRow(0, &row);
        Row new_row = row;
        for (size_t i = 0; i < stmt.assignments.size(); ++i) {
          SOPR_ASSIGN_OR_RETURN(
              Value v, Evaluate(*stmt.assignments[i].value, scope, ctx));
          new_row.at(assigned_cols[i]) = std::move(v);
        }
        new_row = CoerceRow(std::move(new_row), schema);

        DmlEffect::UpdatedTuple updated;
        updated.handle = handle;
        updated.columns = assigned_cols;
        updated.old_row = std::move(row);
        effect.updated.push_back(std::move(updated));
        new_rows.emplace_back(handle, std::move(new_row));
      }
      vectorized_done = true;
    } else if (!IsEvalOrderingError(s.code())) {
      return s;
    }
    // An evaluation error in the predicate stage falls through to the
    // full row-at-a-time scan: the row path may hit an assignment error
    // on an earlier row first, and that is the authoritative outcome.
  }
  size_t scanned = 0;
  for (auto& [handle, row] : snapshot) {
    if (vectorized_done) break;
    if (scanned++ % kCancelCheckBatch == 0) {
      SOPR_RETURN_NOT_OK(CheckCancel("update scan"));
    }
    scope.SetRow(0, &row);
    bool match = true;
    if (stmt.where != nullptr) {
      SOPR_ASSIGN_OR_RETURN(TriBool t,
                            EvaluatePredicate(*stmt.where, scope, ctx));
      match = (t == TriBool::kTrue);
    }
    if (!match) continue;
    Row new_row = row;
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      SOPR_ASSIGN_OR_RETURN(
          Value v, Evaluate(*stmt.assignments[i].value, scope, ctx));
      new_row.at(assigned_cols[i]) = std::move(v);
    }
    new_row = CoerceRow(std::move(new_row), schema);

    DmlEffect::UpdatedTuple updated;
    updated.handle = handle;
    updated.columns = assigned_cols;
    updated.old_row = std::move(row);
    effect.updated.push_back(std::move(updated));
    new_rows.emplace_back(handle, std::move(new_row));
  }

  for (auto& [handle, new_row] : new_rows) {
    SOPR_RETURN_NOT_OK(db_->UpdateRow(stmt.table, handle, std::move(new_row)));
  }
  return effect;
}

Result<DmlEffect> Executor::ExecuteDml(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kInsert:
      return ExecuteInsert(static_cast<const InsertStmt&>(stmt));
    case StmtKind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStmt&>(stmt));
    case StmtKind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStmt&>(stmt));
    default:
      return Status::InvalidArgument("not a DML statement: " +
                                     stmt.ToString());
  }
}

}  // namespace sopr
