#include "query/result_set.h"

#include <algorithm>
#include <vector>

namespace sopr {

std::string FormatResult(const QueryResult& result) {
  std::vector<size_t> widths(result.columns.size(), 0);
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < result.columns.size(); ++c) {
    widths[c] = result.columns[c].size();
  }
  cells.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      std::string s = row.at(c).ToString();
      if (c < widths.size()) widths[c] = std::max(widths[c], s.size());
      line.push_back(std::move(s));
    }
    cells.push_back(std::move(line));
  }

  auto pad = [](const std::string& s, size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };

  std::string out;
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (c > 0) out += " | ";
    out += pad(result.columns[c], widths[c]);
  }
  out += "\n";
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (c > 0) out += "-+-";
    out += std::string(widths[c], '-');
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      if (c > 0) out += " | ";
      out += pad(line[c], c < widths.size() ? widths[c] : line[c].size());
    }
    out += "\n";
  }
  return out;
}

void SortRows(QueryResult* result) {
  std::sort(result->rows.begin(), result->rows.end());
}

}  // namespace sopr
