#include "query/snapshot_resolver.h"

namespace sopr {

namespace {

Status TransitionTableError(const TableRef& ref) {
  return Status::CatalogError(
      "transition table '" + ref.ToString() +
      "' can only be referenced inside a production rule");
}

}  // namespace

Result<Relation> SnapshotResolver::Resolve(const TableRef& ref) {
  if (ref.kind != TableRefKind::kBase) return TransitionTableError(ref);
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  std::vector<std::pair<TupleHandle, Row>> visible;
  table->SnapshotScan(lsn_, &visible);
  Relation rel;
  rel.schema = &table->schema();
  rel.rows.reserve(visible.size());
  rel.handles.reserve(visible.size());
  for (auto& [handle, row] : visible) {
    rel.handles.push_back(handle);
    rel.rows.push_back(std::move(row));
  }
  return rel;
}

Result<const TableSchema*> SnapshotResolver::ResolveSchema(
    const TableRef& ref) {
  if (ref.kind != TableRefKind::kBase) return TransitionTableError(ref);
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  return &table->schema();
}

Result<Relation> SnapshotResolver::ResolveEq(const TableRef& ref,
                                             size_t column,
                                             const Value& value) {
  if (ref.kind != TableRefKind::kBase) return TransitionTableError(ref);
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  std::vector<std::pair<TupleHandle, Row>> visible;
  table->SnapshotProbeEq(lsn_, column, value, &visible);
  Relation rel;
  rel.schema = &table->schema();
  rel.rows.reserve(visible.size());
  rel.handles.reserve(visible.size());
  for (auto& [handle, row] : visible) {
    rel.handles.push_back(handle);
    rel.rows.push_back(std::move(row));
  }
  return rel;
}

}  // namespace sopr
