#ifndef SOPR_QUERY_PLANNER_H_
#define SOPR_QUERY_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "sql/ast.h"

namespace sopr {

/// Lightweight single-query planner supporting the paper's §1 point that
/// set-oriented rule processing benefits from ordinary relational
/// optimization: WHERE conjuncts are classified so the executor can
///   * push single-relation predicates down to the scan,
///   * execute `a.x = b.y` predicates as hash equijoins,
///   * keep everything else as a residual filter over the joined rows.
/// The analysis is purely name-based (no rows touched) and conservative:
/// anything it cannot prove single-relation stays residual, so optimized
/// and naive execution are always semantically identical.
class QueryPlan {
 public:
  /// One FROM binding as the planner sees it.
  struct BindingInfo {
    std::string name;  // binding name (alias or table)
    const TableSchema* schema = nullptr;
  };

  /// A conjunct pushed down to one relation.
  struct PushedFilter {
    size_t binding = 0;  // index into the FROM list
    const Expr* conjunct = nullptr;
  };

  /// An equijoin edge: left.binding.column == right.binding.column.
  struct JoinEdge {
    size_t left_binding = 0;
    size_t left_column = 0;
    size_t right_binding = 0;
    size_t right_column = 0;
  };

  /// Analyzes `where` over the given bindings. Never fails: unresolvable
  /// or ambiguous references simply make the conjunct residual (the
  /// executor will surface the real error when it evaluates it).
  static QueryPlan Analyze(const Expr* where,
                           const std::vector<BindingInfo>& bindings);

  const std::vector<PushedFilter>& pushed() const { return pushed_; }
  const std::vector<JoinEdge>& joins() const { return joins_; }
  const std::vector<const Expr*>& residual() const { return residual_; }

  /// Greedy left-deep join order: starts from binding 0, repeatedly picks
  /// a relation connected to the joined set by an equijoin edge, then
  /// falls back to the next unjoined relation (cross product).
  std::vector<size_t> JoinOrder(size_t num_bindings) const;

  /// Equijoin edges between the already-joined set and `next`.
  std::vector<JoinEdge> EdgesTo(const std::vector<size_t>& joined,
                                size_t next) const;

 private:
  std::vector<PushedFilter> pushed_;
  std::vector<JoinEdge> joins_;
  std::vector<const Expr*> residual_;
};

/// Scans the top-level AND conjuncts of `where` for `column = literal`
/// (either orientation) where `column` belongs to `schema`. Used by the
/// single-table DML paths to narrow their scan through an equality
/// index. NULL literals are skipped (they never match).
std::optional<std::pair<size_t, const Value*>> FindEqLiteral(
    const Expr* where, const TableSchema& schema);

}  // namespace sopr

#endif  // SOPR_QUERY_PLANNER_H_
