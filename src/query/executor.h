#ifndef SOPR_QUERY_EXECUTOR_H_
#define SOPR_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/column_vector.h"
#include "expr/evaluator.h"
#include "query/planner.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "storage/tuple_handle.h"

namespace sopr {

/// A materialized relation: schema plus rows. `handles[i]` identifies
/// `rows[i]` when the relation comes from stored tuples (base tables and
/// transition tables); kInvalidHandle otherwise.
struct Relation {
  const TableSchema* schema = nullptr;
  std::vector<Row> rows;
  std::vector<TupleHandle> handles;
};

/// Maps FROM items to materialized relations. The base implementation
/// resolves only stored tables; the rule engine layers transition tables
/// on top (§3 of the paper).
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  virtual Result<Relation> Resolve(const TableRef& ref) = 0;

  /// Schema of the relation `ref` denotes, without materializing rows
  /// (transition tables share their base table's schema).
  virtual Result<const TableSchema*> ResolveSchema(const TableRef& ref) = 0;

  /// Like Resolve, but the caller promises it will only keep rows whose
  /// `column` equals `value`; implementations with an index may return
  /// just those rows. The default ignores the hint (the caller always
  /// re-applies the predicate, so a superset is safe).
  virtual Result<Relation> ResolveEq(const TableRef& ref, size_t column,
                                     const Value& value) {
    (void)column;
    (void)value;
    return Resolve(ref);
  }
};

/// Resolves base tables from a Database by snapshotting their rows.
/// Transition-table references fail — they only exist inside rules.
class DatabaseResolver : public TableResolver {
 public:
  explicit DatabaseResolver(const Database* db) : db_(db) {}
  Result<Relation> Resolve(const TableRef& ref) override;
  Result<const TableSchema*> ResolveSchema(const TableRef& ref) override;
  /// Uses the table's equality index on `column` when one exists.
  Result<Relation> ResolveEq(const TableRef& ref, size_t column,
                             const Value& value) override;

 private:
  const Database* db_;
};

/// The per-statement affected set (§2.1), with the value information the
/// rule system needs to build transition tables: deleted rows carry their
/// pre-image, updated tuples carry the updated column indices and the
/// pre-image of the whole tuple.
struct DmlEffect {
  std::string table;  // lowercased target table

  struct UpdatedTuple {
    TupleHandle handle = kInvalidHandle;
    std::vector<size_t> columns;  // indices of assigned columns
    Row old_row;
  };

  std::vector<TupleHandle> inserted;
  std::vector<std::pair<TupleHandle, Row>> deleted;
  std::vector<UpdatedTuple> updated;
};

/// Tuples read by a top-level select, for the §5.1 "selected" extension.
struct SelectedTuple {
  std::string table;  // lowercased
  TupleHandle handle = kInvalidHandle;
};

/// Executor tuning knobs, threaded down from RuleEngineOptions.
struct ExecOptions {
  /// Predicate pushdown + equijoin extraction. Off = plain
  /// cross-product-then-filter (ablation benchmark B9).
  bool optimize = true;
  /// Batch-at-a-time predicate evaluation and the unordered build/probe
  /// hash join (docs/EXECUTION.md). Off = the original row-at-a-time
  /// pipeline, kept alive as the differential oracle.
  bool vectorized = true;
  /// Columnar chunks on top of `vectorized` (docs/EXECUTION.md "Columnar
  /// chunks"): hot predicate/join-key columns decompose into contiguous
  /// typed arrays at materialization time and the branch-light kernels
  /// of exec/kernels.h evaluate them, with per-expression fallback to
  /// the pointer path. Only effective when `vectorized` is also on; off
  /// = the pointer-vector pipeline, the middle engine of the three-way
  /// differential oracle.
  bool columnar = true;
  /// Build-side row cap for the vectorized hash join; exceeding it
  /// falls back to a nested-loop join with a counted stat instead of
  /// growing the hash table without bound. 0 = unlimited.
  size_t max_hash_build_rows = 1u << 20;
};

/// Set-oriented executor for the paper's SQL subset. Stateless between
/// statements; all mutations flow through the Database (which records
/// undo information). DML evaluates its full target set against the
/// pre-statement state before applying any mutation, so statements never
/// observe their own partial effects.
class Executor : public SubqueryRunner {
 public:
  /// `db` may be mutated by DML; `resolver` supplies FROM relations
  /// (including transition tables when running inside a rule). When
  /// `optimize` is true (default), WHERE conjuncts are pushed down and
  /// `a.x = b.y` predicates run as hash equijoins; when false, the plain
  /// cross-product-then-filter pipeline runs (used for differential
  /// testing and the optimizer ablation benchmark).
  Executor(Database* db, TableResolver* resolver, bool optimize = true)
      : db_(db), resolver_(resolver),
        options_{optimize, true, true, 1u << 20} {}

  Executor(Database* db, TableResolver* resolver, const ExecOptions& options)
      : db_(db), resolver_(resolver), options_(options) {}

  /// Runs a select. `outer` provides correlation bindings for subqueries.
  /// When `selected` is non-null, handles of base-table tuples that
  /// participated in result rows are appended (§5.1 extension).
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                    const Scope* outer = nullptr,
                                    std::vector<SelectedTuple>* selected = nullptr);

  Result<DmlEffect> ExecuteInsert(const InsertStmt& stmt);
  Result<DmlEffect> ExecuteDelete(const DeleteStmt& stmt);
  Result<DmlEffect> ExecuteUpdate(const UpdateStmt& stmt);

  /// Dispatches on statement kind (DML only).
  Result<DmlEffect> ExecuteDml(const Stmt& stmt);

  // SubqueryRunner:
  Result<QueryResult> RunSubquery(const SelectStmt& select,
                                  const Scope* outer) override;

 private:
  struct Combo {
    std::vector<const Row*> rows;      // one per FROM binding
    std::vector<size_t> row_indices;   // parallel: index into the relation
  };

  Result<QueryResult> ExecutePlainSelect(
      const SelectStmt& stmt, const std::vector<Relation>& relations,
      Scope* scope, const std::vector<Combo>& combos,
      std::vector<Row>* order_keys);
  Result<QueryResult> ExecuteAggregateSelect(
      const SelectStmt& stmt, const std::vector<Relation>& relations,
      Scope* scope, const std::vector<Combo>& combos,
      std::vector<Row>* order_keys);
  Status ApplyOrderAndDistinct(const SelectStmt& stmt, QueryResult* result,
                               std::vector<Row>* order_keys);

  /// Snapshot of a DML target table, narrowed through an equality index
  /// when `where` has a `column = literal` conjunct and one exists. With
  /// record locking enabled, candidates are X-locked before they are
  /// copied (the table itself when the predicate is unindexed).
  /// When `hot_cols` is non-null and non-empty, the snapshot's hot
  /// columns are also decomposed into `cols` (parallel to `hot_cols`,
  /// success flags in `built`) — under the same latch acquisition on the
  /// full-scan path (Table::CopyRowsColumnar), after the per-candidate
  /// copy loop on the indexed path.
  Status SnapshotForDml(const Table& table, const std::string& table_name,
                        const Expr* where, const TableSchema& schema,
                        std::vector<std::pair<TupleHandle, Row>>* snapshot,
                        const std::vector<size_t>* hot_cols = nullptr,
                        std::vector<exec::ColumnVector>* cols = nullptr,
                        std::vector<char>* built = nullptr);

  /// Coerces int literals into double columns so stored types match the
  /// schema exactly.
  static Row CoerceRow(Row row, const TableSchema& schema);

  /// Vectorized pushed-filter: batch-evaluates `conjunct` over binding
  /// `binding` of `rel` and compacts it to the rows where it is true.
  /// Fires the `exec.batch` failpoint and checks cancellation at every
  /// batch boundary.
  Status FilterRelationVectorized(const Expr& conjunct, Scope* scope,
                                  size_t binding, Relation* rel);

  /// Vectorized DML predicate scan: batch-evaluates `where` over the
  /// snapshot rows and sets `matches[i]` for rows where it is true.
  Status MatchSnapshotVectorized(
      const Expr& where, Scope* scope,
      const std::vector<std::pair<TupleHandle, Row>>& snapshot,
      std::vector<char>* matches);

  /// True when the columnar chunk path is effective: `columnar` layers
  /// on `vectorized`, so the three engine configurations are row
  /// (vectorized off), pointer-vector (vectorized on, columnar off) and
  /// columnar (both on).
  bool ColumnarOn() const { return options_.vectorized && options_.columnar; }

  /// Appends every (binding, column) pair `expr` references at this
  /// scope level (not descending into subqueries) to `out`, without
  /// duplicates — the hot columns worth decomposing for a batch.
  static void CollectHotColumns(const Expr& expr, const Scope& scope,
                                std::vector<std::pair<size_t, size_t>>* out);

  /// Columnar pushed-filter: FilterRelationVectorized with the
  /// conjunct's hot columns decomposed per chunk and evaluated through
  /// the typed kernels (exec::EvaluatePredicateColumnar).
  Status FilterRelationColumnar(const Expr& conjunct, Scope* scope,
                                size_t binding, Relation* rel);

  /// Columnar DML predicate scan: MatchSnapshotVectorized over
  /// whole-snapshot columns (`cols`/`built` from SnapshotForDml, parallel
  /// to `hot_cols`), windowed per chunk.
  Status MatchSnapshotColumnar(
      const Expr& where, Scope* scope,
      const std::vector<std::pair<TupleHandle, Row>>& snapshot,
      const std::vector<size_t>& hot_cols,
      const std::vector<exec::ColumnVector>& cols,
      const std::vector<char>& built, std::vector<char>* matches);

  Database* db_;
  TableResolver* resolver_;
  ExecOptions options_;
};

}  // namespace sopr

#endif  // SOPR_QUERY_EXECUTOR_H_
