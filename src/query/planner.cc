#include "query/planner.h"

#include <algorithm>
#include <set>

namespace sopr {

namespace {

/// Splits a predicate into top-level AND conjuncts.
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary) {
    const auto& binary = static_cast<const BinaryExpr&>(*expr);
    if (binary.op == BinaryOp::kAnd) {
      SplitConjuncts(binary.left.get(), out);
      SplitConjuncts(binary.right.get(), out);
      return;
    }
  }
  out->push_back(expr);
}

/// Tracks which local FROM bindings an expression references. `unknown`
/// becomes true for anything that cannot be proven local: outer
/// references, ambiguous names, unqualified names inside subqueries.
struct RefCollector {
  const std::vector<QueryPlan::BindingInfo>* bindings;
  std::set<size_t> refs;
  bool unknown = false;

  /// Binding names introduced by enclosing subquery FROM lists (these
  /// shadow our bindings for references within the subquery).
  std::vector<std::string> shadowed;

  bool IsShadowed(const std::string& name) const {
    return std::find(shadowed.begin(), shadowed.end(), name) !=
           shadowed.end();
  }

  void VisitColumn(const ColumnRefExpr& ref, bool inside_subquery) {
    if (!ref.qualifier.empty()) {
      if (IsShadowed(ref.qualifier)) return;  // belongs to the subquery
      for (size_t i = 0; i < bindings->size(); ++i) {
        if ((*bindings)[i].name == ref.qualifier) {
          refs.insert(i);
          return;
        }
      }
      unknown = true;  // outer scope or error
      return;
    }
    if (inside_subquery) {
      // An unqualified name inside a subquery usually resolves to the
      // subquery's own FROM; we cannot know without its schemas.
      unknown = true;
      return;
    }
    // Unqualified at our level: unique containing binding or unknown.
    int found = -1;
    for (size_t i = 0; i < bindings->size(); ++i) {
      if ((*bindings)[i].schema->FindColumn(ref.column)) {
        if (found >= 0) {
          unknown = true;  // ambiguous
          return;
        }
        found = static_cast<int>(i);
      }
    }
    if (found >= 0) {
      refs.insert(static_cast<size_t>(found));
    } else {
      unknown = true;  // outer scope or error
    }
  }

  void VisitSelect(const SelectStmt& select, size_t depth);

  void Visit(const Expr& expr, size_t depth) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return;
      case ExprKind::kColumnRef:
        VisitColumn(static_cast<const ColumnRefExpr&>(expr), depth > 0);
        return;
      case ExprKind::kUnary:
        Visit(*static_cast<const UnaryExpr&>(expr).operand, depth);
        return;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        Visit(*b.left, depth);
        Visit(*b.right, depth);
        return;
      }
      case ExprKind::kInList: {
        const auto& in = static_cast<const InListExpr&>(expr);
        Visit(*in.operand, depth);
        for (const ExprPtr& item : in.items) Visit(*item, depth);
        return;
      }
      case ExprKind::kInSubquery: {
        const auto& in = static_cast<const InSubqueryExpr&>(expr);
        Visit(*in.operand, depth);
        VisitSelect(*in.subquery, depth + 1);
        return;
      }
      case ExprKind::kExists:
        VisitSelect(*static_cast<const ExistsExpr&>(expr).subquery,
                    depth + 1);
        return;
      case ExprKind::kScalarSubquery:
        VisitSelect(*static_cast<const ScalarSubqueryExpr&>(expr).subquery,
                    depth + 1);
        return;
      case ExprKind::kAggregate: {
        const auto& agg = static_cast<const AggregateExpr&>(expr);
        if (agg.argument) Visit(*agg.argument, depth);
        return;
      }
      case ExprKind::kIsNull:
        Visit(*static_cast<const IsNullExpr&>(expr).operand, depth);
        return;
      case ExprKind::kBetween: {
        const auto& b = static_cast<const BetweenExpr&>(expr);
        Visit(*b.operand, depth);
        Visit(*b.low, depth);
        Visit(*b.high, depth);
        return;
      }
    }
  }
};

void RefCollector::VisitSelect(const SelectStmt& select, size_t depth) {
  size_t added = 0;
  for (const TableRef& ref : select.from) {
    shadowed.push_back(ref.binding_name());
    ++added;
  }
  for (const SelectItem& item : select.items) {
    if (item.expr) Visit(*item.expr, depth);
  }
  if (select.where) Visit(*select.where, depth);
  for (const ExprPtr& g : select.group_by) Visit(*g, depth);
  if (select.having) Visit(*select.having, depth);
  for (const OrderByItem& o : select.order_by) Visit(*o.expr, depth);
  shadowed.resize(shadowed.size() - added);
}

/// If `expr` is `col = col` over two distinct local bindings, returns the
/// join edge.
std::optional<QueryPlan::JoinEdge> AsJoinEdge(
    const Expr& expr, const std::vector<QueryPlan::BindingInfo>& bindings) {
  if (expr.kind != ExprKind::kBinary) return std::nullopt;
  const auto& binary = static_cast<const BinaryExpr&>(expr);
  if (binary.op != BinaryOp::kEq) return std::nullopt;
  if (binary.left->kind != ExprKind::kColumnRef ||
      binary.right->kind != ExprKind::kColumnRef) {
    return std::nullopt;
  }

  auto resolve = [&bindings](const ColumnRefExpr& ref)
      -> std::optional<std::pair<size_t, size_t>> {
    if (!ref.qualifier.empty()) {
      for (size_t i = 0; i < bindings.size(); ++i) {
        if (bindings[i].name == ref.qualifier) {
          auto col = bindings[i].schema->FindColumn(ref.column);
          if (!col) return std::nullopt;
          return std::make_pair(i, *col);
        }
      }
      return std::nullopt;
    }
    std::optional<std::pair<size_t, size_t>> found;
    for (size_t i = 0; i < bindings.size(); ++i) {
      auto col = bindings[i].schema->FindColumn(ref.column);
      if (col) {
        if (found) return std::nullopt;  // ambiguous
        found = std::make_pair(i, *col);
      }
    }
    return found;
  };

  auto left = resolve(static_cast<const ColumnRefExpr&>(*binary.left));
  auto right = resolve(static_cast<const ColumnRefExpr&>(*binary.right));
  if (!left || !right || left->first == right->first) return std::nullopt;
  return QueryPlan::JoinEdge{left->first, left->second, right->first,
                             right->second};
}

}  // namespace

QueryPlan QueryPlan::Analyze(const Expr* where,
                             const std::vector<BindingInfo>& bindings) {
  QueryPlan plan;
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(where, &conjuncts);

  for (const Expr* conjunct : conjuncts) {
    RefCollector collector;
    collector.bindings = &bindings;
    collector.Visit(*conjunct, 0);

    if (collector.unknown) {
      plan.residual_.push_back(conjunct);
      continue;
    }
    if (collector.refs.size() <= 1) {
      size_t binding = collector.refs.empty() ? 0 : *collector.refs.begin();
      plan.pushed_.push_back(PushedFilter{binding, conjunct});
      continue;
    }
    if (collector.refs.size() == 2) {
      if (auto edge = AsJoinEdge(*conjunct, bindings)) {
        plan.joins_.push_back(*edge);
        continue;
      }
    }
    plan.residual_.push_back(conjunct);
  }
  return plan;
}

std::vector<QueryPlan::JoinEdge> QueryPlan::EdgesTo(
    const std::vector<size_t>& joined, size_t next) const {
  std::vector<JoinEdge> out;
  for (const JoinEdge& edge : joins_) {
    bool left_in = std::find(joined.begin(), joined.end(),
                             edge.left_binding) != joined.end();
    bool right_in = std::find(joined.begin(), joined.end(),
                              edge.right_binding) != joined.end();
    if (left_in && edge.right_binding == next) {
      out.push_back(edge);
    } else if (right_in && edge.left_binding == next) {
      // Orient so that `left` is in the joined set.
      out.push_back(JoinEdge{edge.right_binding, edge.right_column,
                             edge.left_binding, edge.left_column});
    }
  }
  return out;
}

std::vector<size_t> QueryPlan::JoinOrder(size_t num_bindings) const {
  std::vector<size_t> order;
  std::vector<bool> used(num_bindings, false);
  if (num_bindings == 0) return order;
  order.push_back(0);
  used[0] = true;
  while (order.size() < num_bindings) {
    size_t pick = num_bindings;
    // Prefer a relation connected by an equijoin edge.
    for (size_t i = 0; i < num_bindings && pick == num_bindings; ++i) {
      if (used[i]) continue;
      if (!EdgesTo(order, i).empty()) pick = i;
    }
    // Fall back to the next unjoined relation (cross product).
    for (size_t i = 0; i < num_bindings && pick == num_bindings; ++i) {
      if (!used[i]) pick = i;
    }
    used[pick] = true;
    order.push_back(pick);
  }
  return order;
}

std::optional<std::pair<size_t, const Value*>> FindEqLiteral(
    const Expr* where, const TableSchema& schema) {
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(where, &conjuncts);
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind != ExprKind::kBinary) continue;
    const auto& binary = static_cast<const BinaryExpr&>(*conjunct);
    if (binary.op != BinaryOp::kEq) continue;
    const Expr* column_side = binary.left.get();
    const Expr* literal_side = binary.right.get();
    if (column_side->kind != ExprKind::kColumnRef ||
        literal_side->kind != ExprKind::kLiteral) {
      std::swap(column_side, literal_side);
    }
    if (column_side->kind != ExprKind::kColumnRef ||
        literal_side->kind != ExprKind::kLiteral) {
      continue;
    }
    const auto& ref = static_cast<const ColumnRefExpr&>(*column_side);
    auto col = schema.FindColumn(ref.column);
    if (!col) continue;
    const Value& v = static_cast<const LiteralExpr&>(*literal_side).value;
    if (v.is_null()) continue;
    return std::make_pair(*col, &v);
  }
  return std::nullopt;
}

}  // namespace sopr
