#ifndef SOPR_QUERY_SNAPSHOT_RESOLVER_H_
#define SOPR_QUERY_SNAPSHOT_RESOLVER_H_

#include "query/executor.h"
#include "storage/database.h"

namespace sopr {

/// Resolves base tables as of one snapshot LSN via Table::SnapshotScan /
/// SnapshotProbeEq (docs/CONCURRENCY.md "MVCC snapshot reads"). Runs
/// entirely under the tables' shared version latches — concurrent with
/// the single writer — so an Executor built on this resolver serves
/// read-only statements outside the exclusive writer section.
///
/// Like DatabaseResolver, transition-table references fail: transition
/// tables only exist inside a running rule, and rule actions always
/// execute at the write-side head, never against a snapshot.
///
/// The caller must hold the scheduler's schema lock (shared) for the
/// duration of the query: snapshots version rows, not the catalog, so
/// concurrent DDL is excluded instead.
class SnapshotResolver : public TableResolver {
 public:
  SnapshotResolver(const Database* db, uint64_t lsn) : db_(db), lsn_(lsn) {}

  Result<Relation> Resolve(const TableRef& ref) override;
  Result<const TableSchema*> ResolveSchema(const TableRef& ref) override;
  /// Narrows through the table's equality index (live rows) plus a
  /// version-chain scan (superseded rows); may return a superset, never
  /// misses.
  Result<Relation> ResolveEq(const TableRef& ref, size_t column,
                             const Value& value) override;

  uint64_t lsn() const { return lsn_; }

 private:
  const Database* db_;
  uint64_t lsn_;
};

}  // namespace sopr

#endif  // SOPR_QUERY_SNAPSHOT_RESOLVER_H_
