#ifndef SOPR_RULES_TRANSITION_TABLES_H_
#define SOPR_RULES_TRANSITION_TABLES_H_

#include "query/executor.h"
#include "rules/trans_info.h"
#include "storage/database.h"

namespace sopr {

/// Resolves FROM items inside a rule's condition/action: base tables come
/// from the database, transition tables (§3) are materialized from the
/// rule's composite transition information:
///   * `inserted t`      — current values of tuples in info.ins;
///   * `deleted t`       — pre-transition values stored in info.del;
///   * `old updated t.c` — pre-transition values from info.upd, filtered
///                         to tuples whose column c was updated;
///   * `new updated t.c` — current values of the same tuples;
///   * `selected t`      — current values of tuples in info.sel (§5.1).
class TransitionTableResolver : public TableResolver {
 public:
  TransitionTableResolver(const Database* db, const TransInfo* info)
      : db_(db), base_(db), info_(info) {}

  Result<Relation> Resolve(const TableRef& ref) override;
  Result<const TableSchema*> ResolveSchema(const TableRef& ref) override;
  /// Base tables use the database's equality indexes; transition tables
  /// ignore the hint (they are already small).
  Result<Relation> ResolveEq(const TableRef& ref, size_t column,
                             const Value& value) override;

 private:
  const Database* db_;
  DatabaseResolver base_;
  const TransInfo* info_;
};

}  // namespace sopr

#endif  // SOPR_RULES_TRANSITION_TABLES_H_
