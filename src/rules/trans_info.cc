#include "rules/trans_info.h"

namespace sopr {

bool TransInfo::Empty() const {
  for (const auto& [name, info] : tables_) {
    (void)name;
    if (!info.Empty()) return false;
  }
  return true;
}

const TableTransInfo& TransInfo::ForTable(const std::string& table) const {
  static const TableTransInfo* kEmpty = new TableTransInfo();
  auto it = tables_.find(table);
  return it == tables_.end() ? *kEmpty : it->second;
}

void TransInfo::ApplyOp(const DmlEffect& op) {
  TableTransInfo& t = tables_[op.table];

  // Inserts: new handles, cannot collide with anything existing.
  for (TupleHandle h : op.inserted) t.ins.insert(h);

  // Deletes (paper: an insert followed by a delete is not considered at
  // all; an update followed by a delete is a delete with the pre-update
  // value).
  for (const auto& [h, old_row] : op.deleted) {
    t.sel.erase(h);
    if (t.ins.count(h) > 0) {
      t.ins.erase(h);
      continue;
    }
    auto upd_it = t.upd.find(h);
    if (upd_it != t.upd.end()) {
      t.del.emplace(h, std::move(upd_it->second.old_row));
      t.upd.erase(upd_it);
    } else {
      t.del.emplace(h, old_row);
    }
  }

  // Updates (paper: insert-then-update is an insertion of the updated
  // tuple; update-then-update keeps the first pre-image and unions the
  // columns).
  for (const DmlEffect::UpdatedTuple& u : op.updated) {
    if (t.ins.count(u.handle) > 0) continue;
    auto it = t.upd.find(u.handle);
    if (it != t.upd.end()) {
      it->second.columns.insert(u.columns.begin(), u.columns.end());
    } else {
      TableTransInfo::UpdInfo info;
      info.columns.insert(u.columns.begin(), u.columns.end());
      info.old_row = u.old_row;
      t.upd.emplace(u.handle, std::move(info));
    }
  }
}

void TransInfo::ApplySelect(const std::vector<SelectedTuple>& selected) {
  for (const SelectedTuple& s : selected) {
    tables_[s.table].sel.insert(s.handle);
  }
}

void TransInfo::Compose(const TransInfo& later) {
  for (const auto& [name, l] : later.tables_) {
    TableTransInfo& t = tables_[name];

    for (TupleHandle h : l.ins) t.ins.insert(h);

    for (const auto& [h, row] : l.del) {
      t.sel.erase(h);
      if (t.ins.count(h) > 0) {
        // Inserted earlier in this composite transition, deleted now:
        // net effect is nothing.
        t.ins.erase(h);
        continue;
      }
      auto upd_it = t.upd.find(h);
      if (upd_it != t.upd.end()) {
        // Figure 1 get-old-value: the tuple was updated earlier in this
        // composite transition, so its pre-transition value is the one
        // recorded in upd, not the value it had when `later` deleted it.
        t.del.emplace(h, std::move(upd_it->second.old_row));
        t.upd.erase(upd_it);
      } else {
        t.del.emplace(h, row);
      }
    }

    for (const auto& [h, u] : l.upd) {
      if (t.ins.count(h) > 0) continue;
      auto it = t.upd.find(h);
      if (it != t.upd.end()) {
        it->second.columns.insert(u.columns.begin(), u.columns.end());
      } else {
        // Untouched by this info before `later`, so u.old_row (the value
        // at the start of `later`) is also the pre-composite value.
        t.upd.emplace(h, u);
      }
    }

    for (TupleHandle h : l.sel) t.sel.insert(h);
  }
}

TransitionEffect TransInfo::ToEffect() const {
  TransitionEffect effect;
  for (const auto& [name, t] : tables_) {
    if (t.Empty()) continue;
    TableEffect e;
    e.inserted = t.ins;
    for (const auto& [h, row] : t.del) {
      (void)row;
      e.deleted.insert(h);
    }
    for (const auto& [h, u] : t.upd) {
      e.updated.emplace(h, u.columns);
    }
    e.selected = t.sel;
    effect.tables.emplace(name, std::move(e));
  }
  return effect;
}

}  // namespace sopr
