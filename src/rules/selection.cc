#include "rules/selection.h"

namespace sopr {

const char* TieBreakName(TieBreak tie_break) {
  switch (tie_break) {
    case TieBreak::kCreationOrder:
      return "creation-order";
    case TieBreak::kLeastRecentlyConsidered:
      return "least-recently-considered";
    case TieBreak::kMostRecentlyConsidered:
      return "most-recently-considered";
  }
  return "?";
}

Status PriorityGraph::AddEdge(const std::string& higher,
                              const std::string& lower) {
  if (higher == lower) {
    return Status::InvalidArgument("rule priority cycle: " + higher +
                                   " before itself");
  }
  if (Reachable(lower, higher)) {
    return Status::InvalidArgument("rule priority cycle: " + lower +
                                   " already precedes " + higher);
  }
  below_[higher].insert(lower);
  return Status::OK();
}

void PriorityGraph::RemoveRule(const std::string& rule) {
  below_.erase(rule);
  for (auto& [name, lowers] : below_) {
    (void)name;
    lowers.erase(rule);
  }
}

bool PriorityGraph::Reachable(const std::string& from,
                              const std::string& to) const {
  if (from == to) return true;
  auto it = below_.find(from);
  if (it == below_.end()) return false;
  for (const std::string& next : it->second) {
    if (Reachable(next, to)) return true;
  }
  return false;
}

bool PriorityGraph::Higher(const std::string& a, const std::string& b) const {
  if (a == b) return false;
  auto it = below_.find(a);
  if (it == below_.end()) return false;
  for (const std::string& next : it->second) {
    if (next == b || Reachable(next, b)) return true;
  }
  return false;
}

size_t PriorityGraph::num_edges() const {
  size_t n = 0;
  for (const auto& [name, lowers] : below_) {
    (void)name;
    n += lowers.size();
  }
  return n;
}

int SelectRule(const std::vector<SelectionCandidate>& candidates,
               const PriorityGraph& priorities, TieBreak tie_break) {
  int best = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    // Skip candidates dominated by another triggered candidate.
    bool dominated = false;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (i != j && priorities.Higher(candidates[j].name, candidates[i].name)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const SelectionCandidate& cur = candidates[i];
    const SelectionCandidate& b = candidates[static_cast<size_t>(best)];
    bool better = false;
    switch (tie_break) {
      case TieBreak::kCreationOrder:
        better = cur.creation_seq < b.creation_seq;
        break;
      case TieBreak::kLeastRecentlyConsidered:
        better = cur.last_considered != b.last_considered
                     ? cur.last_considered < b.last_considered
                     : cur.creation_seq < b.creation_seq;
        break;
      case TieBreak::kMostRecentlyConsidered:
        better = cur.last_considered != b.last_considered
                     ? cur.last_considered > b.last_considered
                     : cur.creation_seq < b.creation_seq;
        break;
    }
    if (better) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace sopr
