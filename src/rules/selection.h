#ifndef SOPR_RULES_SELECTION_H_
#define SOPR_RULES_SELECTION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace sopr {

/// Tie-breaking strategy applied among triggered rules that are maximal
/// in the priority partial order (§4.4 discusses all three).
enum class TieBreak {
  kCreationOrder,             // deterministic: oldest definition first
  kLeastRecentlyConsidered,   // prefer rules considered least recently
  kMostRecentlyConsidered,    // prefer rules considered most recently
};

const char* TieBreakName(TieBreak tie_break);

/// The user-declared partial order on rules: `create rule priority A
/// before B` adds the pair A > B. Any acyclic set of pairs induces a
/// strict partial order (§4.4); cycles are rejected at definition time.
class PriorityGraph {
 public:
  /// Adds higher > lower. Fails if it would create a cycle (including
  /// higher == lower).
  Status AddEdge(const std::string& higher, const std::string& lower);

  /// Removes every pair mentioning `rule` (used by drop rule).
  void RemoveRule(const std::string& rule);

  /// True if `a` is strictly higher than `b` (transitively).
  bool Higher(const std::string& a, const std::string& b) const;

  /// Number of declared (direct) pairs.
  size_t num_edges() const;

 private:
  bool Reachable(const std::string& from, const std::string& to) const;

  std::map<std::string, std::set<std::string>> below_;  // direct edges
};

/// Per-rule bookkeeping the selector needs.
struct SelectionCandidate {
  std::string name;
  uint64_t creation_seq = 0;
  uint64_t last_considered = 0;  // 0 = never considered this transaction
};

/// Picks the next rule from `candidates` (all triggered): a rule with no
/// strictly-higher triggered rule, tie-broken per `tie_break` and finally
/// by creation order for determinism. Returns the index into
/// `candidates`, or -1 if empty.
int SelectRule(const std::vector<SelectionCandidate>& candidates,
               const PriorityGraph& priorities, TieBreak tie_break);

}  // namespace sopr

#endif  // SOPR_RULES_SELECTION_H_
