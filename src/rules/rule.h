#ifndef SOPR_RULES_RULE_H_
#define SOPR_RULES_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "rules/effect.h"
#include "sql/ast.h"

namespace sopr {

/// Collects every TableRef reachable from a statement/expression,
/// including the FROM lists of embedded subqueries (used by rule
/// validation and static analysis).
void CollectTableRefs(const Stmt& stmt, std::vector<const TableRef*>* out);
void CollectTableRefsFromExpr(const Expr& expr,
                              std::vector<const TableRef*>* out);

class Rule;

/// True if the rule's when-list, condition, or action mentions `table`
/// (as predicate target, FROM item, subquery source, or DML target).
bool RuleReferencesTable(const Rule& rule, std::string_view table);

/// A basic transition predicate with the column resolved to an index
/// (kAnyColumn for `updated t` / `selected t`).
struct ResolvedTransPred {
  static constexpr size_t kAnyColumn = static_cast<size_t>(-1);

  BasicTransPred::Kind kind = BasicTransPred::Kind::kInsertedInto;
  std::string table;          // lowercased
  size_t column = kAnyColumn;
};

/// An installed production rule: the parsed definition plus resolved
/// transition predicates. Immutable after creation; all runtime state
/// (trans-info, consideration timestamps) lives in the rule engine.
class Rule {
 public:
  /// Validates the definition against the catalog: tables/columns in the
  /// `when` list exist; transition tables referenced by condition/action
  /// correspond to the rule's basic transition predicates (the paper's
  /// syntactic restriction, §3); the action's target tables exist.
  static Result<std::shared_ptr<Rule>> Create(
      std::shared_ptr<const CreateRuleStmt> def, const Catalog& catalog);

  const std::string& name() const { return def_->name; }
  const CreateRuleStmt& def() const { return *def_; }
  const std::vector<ResolvedTransPred>& when() const { return when_; }
  const Expr* condition() const { return def_->condition.get(); }
  bool action_is_rollback() const { return def_->action_is_rollback; }
  const std::vector<StmtPtr>& action() const { return def_->action; }

  /// True if any basic transition predicate is satisfied by `effect`
  /// (the `when` list is a disjunction, §3).
  bool Triggered(const TransitionEffect& effect) const;

 private:
  explicit Rule(std::shared_ptr<const CreateRuleStmt> def)
      : def_(std::move(def)) {}

  std::shared_ptr<const CreateRuleStmt> def_;
  std::vector<ResolvedTransPred> when_;
};

}  // namespace sopr

#endif  // SOPR_RULES_RULE_H_
