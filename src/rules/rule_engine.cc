#include "rules/rule_engine.h"

#include <algorithm>
#include <thread>

#include "common/digest.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "rules/transition_tables.h"
#include "sql/parser.h"
#include "wal/wal_writer.h"

namespace sopr {

Result<QueryResult> ProcedureContext::Query(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument(
        "ProcedureContext::Query expects a select statement");
  }
  return executor_->ExecuteSelect(static_cast<const SelectStmt&>(*stmt));
}

Status ProcedureContext::Execute(const std::string& sql) {
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, Parser::ParseScript(sql));
  for (const StmtPtr& stmt : stmts) {
    SOPR_ASSIGN_OR_RETURN(DmlEffect effect, executor_->ExecuteDml(*stmt));
    accumulate_->ApplyOp(effect);
  }
  return Status::OK();
}

RuleEngine::RuleEngine(Database* db, RuleEngineOptions options)
    : db_(db), options_(options) {}

RuleEngine::EngineTls& RuleEngine::Tls() const {
  // One slot per (thread, engine). Slots are unique_ptrs so references
  // handed out stay valid even if the vector reallocates when a thread
  // first touches another engine.
  thread_local std::vector<
      std::pair<const RuleEngine*, std::unique_ptr<EngineTls>>>
      slots;
  for (auto& slot : slots) {
    if (slot.first == this) return *slot.second;
  }
  slots.emplace_back(this, std::make_unique<EngineTls>());
  return *slots.back().second;
}

bool RuleEngine::in_transaction() const { return Tls().frame != nullptr; }

RuleEngine::RuleState* RuleEngine::FindState(const std::string& name) {
  std::string key = ToLower(name);
  for (auto& state : rules_) {
    if (state->rule->name() == key) return state.get();
  }
  return nullptr;
}

const RuleEngine::RuleState* RuleEngine::FindState(
    const std::string& name) const {
  std::string key = ToLower(name);
  for (const auto& state : rules_) {
    if (state->rule->name() == key) return state.get();
  }
  return nullptr;
}

Status RuleEngine::DefineRule(std::shared_ptr<const CreateRuleStmt> def) {
  if (in_transaction()) {
    return Status::InvalidArgument(
        "rules cannot be defined inside a transaction");
  }
  if (FindState(def->name) != nullptr) {
    return Status::CatalogError("rule already exists: " + def->name);
  }
  SOPR_ASSIGN_OR_RETURN(std::shared_ptr<Rule> rule,
                        Rule::Create(std::move(def), db_->catalog()));
  auto state = std::make_unique<RuleState>();
  state->rule = std::move(rule);
  state->creation_seq = next_creation_seq_++;
  rules_.push_back(std::move(state));
  return Status::OK();
}

Status RuleEngine::DropRule(const std::string& name) {
  if (in_transaction()) {
    return Status::InvalidArgument(
        "rules cannot be dropped inside a transaction");
  }
  std::string key = ToLower(name);
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if ((*it)->rule->name() == key) {
      rules_.erase(it);
      priorities_.RemoveRule(key);
      return Status::OK();
    }
  }
  return Status::CatalogError("no such rule: " + name);
}

Status RuleEngine::AddPriority(const std::string& higher,
                               const std::string& lower) {
  if (FindState(higher) == nullptr) {
    return Status::CatalogError("no such rule: " + higher);
  }
  if (FindState(lower) == nullptr) {
    return Status::CatalogError("no such rule: " + lower);
  }
  return priorities_.AddEdge(ToLower(higher), ToLower(lower));
}

Status RuleEngine::SetRuleEnabled(const std::string& name, bool enabled) {
  RuleState* state = FindState(name);
  if (state == nullptr) {
    return Status::CatalogError("no such rule: " + name);
  }
  state->enabled = enabled;
  return Status::OK();
}

Result<bool> RuleEngine::IsRuleEnabled(const std::string& name) const {
  const RuleState* state = FindState(name);
  if (state == nullptr) {
    return Status::CatalogError("no such rule: " + name);
  }
  return state->enabled;
}

Status RuleEngine::SetResetPolicy(const std::string& name,
                                  ResetPolicy policy) {
  RuleState* state = FindState(name);
  if (state == nullptr) {
    return Status::CatalogError("no such rule: " + name);
  }
  state->reset_policy = policy;
  return Status::OK();
}

Status RuleEngine::SetDetached(const std::string& name, bool detached) {
  RuleState* state = FindState(name);
  if (state == nullptr) {
    return Status::CatalogError("no such rule: " + name);
  }
  if (detached && state->rule->action_is_rollback()) {
    return Status::InvalidArgument(
        "rule " + name +
        " has a rollback action; detaching it is meaningless (a detached "
        "action runs in its own transaction)");
  }
  state->detached = detached;
  return Status::OK();
}

Status RuleEngine::RegisterProcedure(const std::string& name,
                                     ProcedureFn fn) {
  std::string key = ToLower(name);
  if (procedures_.count(key) > 0) {
    return Status::CatalogError("procedure already registered: " + name);
  }
  procedures_.emplace(std::move(key), std::move(fn));
  return Status::OK();
}

void RuleEngine::ResetInfo(TxnFrame& frame, size_t index) {
  RuleScratch& scratch = frame.scratch[index];
  if (options_.maintenance == MaintenanceMode::kPerRule) {
    scratch.info.Clear();
    scratch.effect = TransitionEffect();
  } else {
    scratch.log_start = frame.log.size();
    scratch.cached.Clear();
    scratch.cached_effect = TransitionEffect();
    scratch.cached_upto = frame.log.size();
  }
}

std::vector<std::string> RuleEngine::RuleNames() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& state : rules_) names.push_back(state->rule->name());
  return names;
}

Result<const Rule*> RuleEngine::GetRule(const std::string& name) const {
  const RuleState* state = FindState(name);
  if (state == nullptr) {
    return Status::CatalogError("no such rule: " + name);
  }
  return state->rule.get();
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Status RuleEngine::Begin() {
  EngineTls& tls = Tls();
  if (tls.frame != nullptr) {
    return Status::InvalidArgument("transaction already in progress");
  }
  // Bind this thread's database transaction context first: with record
  // locking enabled every mutation below acquires locks under this txn
  // id, and the undo mark must come from the per-transaction undo log.
  db_->BeginTxn();
  auto frame = std::make_unique<TxnFrame>();
  frame->start_mark = db_->UndoMark();
  db_->set_undo_budget(options_.max_undo_records);
  frame->has_deadline = options_.txn_deadline.count() > 0;
  if (frame->has_deadline) {
    frame->deadline_at = std::chrono::steady_clock::now() + options_.txn_deadline;
  }
  // Compose this transaction's cancellation sources on top of the
  // caller's (a session installs its kill token and statement timeout
  // before calling in) and make them ambient for the frame's lifetime:
  // lock waits, scan batches, and retry sleeps all observe the same
  // context without signature plumbing. Detached transactions re-derive
  // from the session scope after this frame dies, so they get their own
  // deadline window but stay killable.
  frame->cancel = CancelContext::InheritAmbient();
  if (frame->has_deadline) {
    frame->cancel.AddDeadline(Deadline::At(frame->deadline_at), "transaction");
  }
  frame->cancel_scope = std::make_unique<CancelScope>(&frame->cancel);
  if (options_.verify_rollback_integrity && db_->lock_manager() == nullptr) {
    // Whole-state checksums are only meaningful without concurrent
    // committers; in locking mode rollback is verified per touched row
    // instead (see AbortTransaction).
    frame->start_checksum = db_->Checksum();
  }
  if (wal_ != nullptr) wal_->BeginTxn();
  frame->scratch.resize(rules_.size());
  tls.frame = std::move(frame);
  return Status::OK();
}

Status RuleEngine::AbortTransaction() {
  // RollbackTo discards the buffered redo; AbortTxn drops the writer's
  // transaction state. Nothing of an aborted transaction was ever written
  // to the log, so there is no durable side to undo.
  EngineTls& tls = Tls();
  const bool was_in_txn = tls.frame != nullptr;
  const UndoLog::Mark start_mark =
      was_in_txn ? tls.frame->start_mark : UndoLog::Mark{0};
  const uint64_t start_checksum = was_in_txn ? tls.frame->start_checksum : 0;
  const bool locked = db_->lock_manager() != nullptr && db_->InTxn();
  std::vector<std::pair<std::string, TupleHandle>> touched;
  if (options_.verify_rollback_integrity && locked) {
    touched = db_->TouchedRows();
  }
  Status undo = db_->RollbackTo(start_mark);
  if (wal_ != nullptr) wal_->AbortTxn();
  Status verify = Status::OK();
  if (undo.ok() && options_.verify_rollback_integrity && locked) {
    // Whole-state checksums are meaningless while other writers commit
    // concurrently. Instead verify — while this transaction's exclusive
    // locks are still held, so nobody can have re-created one — that the
    // rollback left no pending version on any row it touched.
    for (const auto& [table, handle] : touched) {
      if (!db_->VerifyNoPending(table, handle)) {
        verify = Status::Internal(
            "rollback left a pending version on " + table + " handle " +
            std::to_string(handle));
        break;
      }
    }
  }
  // Strict two-phase locking: every lock this transaction took releases
  // here, at transaction end — partial rollback never releases locks.
  db_->EndTxn();
  // Dropping the frame discards pending_block, the shared log, and the
  // deferred queue. Detached actions queued by the aborted transaction
  // must not run (their trigger never committed); deferrals from an
  // enclosing committed transaction were already drained into
  // RunDeferred's local queue.
  tls.frame.reset();
  SOPR_RETURN_NOT_OK(undo);
  SOPR_RETURN_NOT_OK(verify);
  if (options_.verify_rollback_integrity && was_in_txn && !locked) {
    SOPR_RETURN_NOT_OK(db_->CheckInvariants());
    uint64_t restored = db_->Checksum();
    if (restored != start_checksum) {
      return Status::Internal(
          "rollback did not restore the transaction-start state: checksum " +
          std::to_string(restored) + " != S0 checksum " +
          std::to_string(start_checksum));
    }
  }
  return Status::OK();
}

Status RuleEngine::CheckDeadline(const TxnFrame& frame) const {
  if (frame.has_deadline &&
      std::chrono::steady_clock::now() > frame.deadline_at) {
    return Status::Timeout(
        "transaction exceeded its deadline of " +
        std::to_string(options_.txn_deadline.count()) + "ms");
  }
  // The ambient context covers the remaining sources (session kill,
  // statement timeout) and gives chaos a delivery point (cancel.deliver).
  return CheckCancel("rule processing");
}

Status RuleEngine::RollbackTransaction() {
  if (!in_transaction()) {
    return Status::InvalidArgument("no transaction in progress");
  }
  return AbortTransaction();
}

Status RuleEngine::RunOps(const std::vector<const Stmt*>& ops,
                          ExecutionTrace* trace) {
  TxnFrame* frame = Tls().frame.get();
  if (frame == nullptr) {
    return Status::InvalidArgument("no transaction in progress");
  }
  Status entry = SOPR_FAILPOINT("rules.block.pre");
  if (!entry.ok()) {
    SOPR_RETURN_NOT_OK(AbortTransaction());
    return entry;
  }
  // External blocks may not reference transition tables, but they execute
  // with the same resolver so that the error message is uniform.
  DatabaseResolver resolver(db_);
  Executor executor(db_, &resolver, ExecOptionsFrom(options_));
  for (const Stmt* op : ops) {
    Status deadline = CheckDeadline(*frame);
    if (!deadline.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return deadline;
    }
    if (op->kind == StmtKind::kSelect) {
      std::vector<SelectedTuple> selected;
      auto result = executor.ExecuteSelect(
          static_cast<const SelectStmt&>(*op), nullptr,
          options_.track_selects ? &selected : nullptr);
      if (!result.ok()) {
        SOPR_RETURN_NOT_OK(AbortTransaction());
        return result.status();
      }
      if (trace != nullptr) {
        trace->retrieved.push_back(std::move(result).value());
      }
      if (options_.track_selects) frame->pending_block.ApplySelect(selected);
      continue;
    }
    if (op->kind == StmtKind::kProcessRules) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return Status::InvalidArgument(
          "'process rules' is only valid inside a full operation block "
          "(use ProcessRules() with the explicit transaction API)");
    }
    auto effect = executor.ExecuteDml(*op);
    if (!effect.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return effect.status();
    }
    frame->pending_block.ApplyOp(effect.value());
  }
  Status exit = SOPR_FAILPOINT("rules.block.post");
  if (!exit.ok()) {
    SOPR_RETURN_NOT_OK(AbortTransaction());
    return exit;
  }
  return Status::OK();
}

void RuleEngine::PropagateTransition(TxnFrame& frame,
                                     const TransInfo& transition,
                                     size_t source_index) {
  if (options_.maintenance == MaintenanceMode::kPerRule) {
    for (size_t i = 0; i < rules_.size(); ++i) {
      RuleScratch& scratch = frame.scratch[i];
      if (i == source_index &&
          rules_[i]->reset_policy == ResetPolicy::kOnExecution) {
        scratch.info = transition;  // Figure 1: R gets new transition info
      } else {
        // All other rules compose; a kOnConsideration source was already
        // reset at its consideration point, so its own transition
        // composes in like any other.
        scratch.info.Compose(transition);
      }
      scratch.effect = scratch.info.ToEffect();
    }
  } else {
    frame.log.push_back(transition);
    frame.global_composite.Compose(transition);
    frame.global_effect = frame.global_composite.ToEffect();
    if (source_index != kNoSource &&
        rules_[source_index]->reset_policy == ResetPolicy::kOnExecution) {
      RuleScratch& scratch = frame.scratch[source_index];
      scratch.log_start = frame.log.size() - 1;
      scratch.cached = transition;
      scratch.cached_effect = scratch.cached.ToEffect();
      scratch.cached_upto = frame.log.size();
    }
  }
  // A new transition starts a new state: every rule may be (re)considered.
  for (RuleScratch& scratch : frame.scratch) {
    scratch.considered_in_state = false;
  }
}

RuleEngine::InfoView RuleEngine::ViewFor(TxnFrame& frame, size_t index) {
  RuleScratch& scratch = frame.scratch[index];
  if (options_.maintenance == MaintenanceMode::kPerRule) {
    return InfoView{&scratch.info, &scratch.effect};
  }
  if (scratch.log_start == 0) {
    // Never fired this transaction: every such rule shares the global
    // composite, so idle rules cost nothing per transition.
    return InfoView{&frame.global_composite, &frame.global_effect};
  }
  // Fired before: lazily extend this rule's private cache.
  size_t begin = std::max(scratch.cached_upto, scratch.log_start);
  if (scratch.cached_upto < scratch.log_start) {
    scratch.cached.Clear();
    begin = scratch.log_start;
  }
  if (begin < frame.log.size()) {
    for (size_t i = begin; i < frame.log.size(); ++i) {
      scratch.cached.Compose(frame.log[i]);
    }
    scratch.cached_upto = frame.log.size();
    scratch.cached_effect = scratch.cached.ToEffect();
  }
  return InfoView{&scratch.cached, &scratch.cached_effect};
}

Status RuleEngine::RunRuleLoop(ExecutionTrace* trace) {
  TxnFrame& frame = *Tls().frame;
  while (true) {
    Status deadline = CheckDeadline(frame);
    if (!deadline.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return deadline;
    }
    // Gather triggered rules that have not yet been rejected in the
    // current state.
    std::vector<SelectionCandidate> candidates;
    std::vector<size_t> candidate_indices;
    for (size_t i = 0; i < rules_.size(); ++i) {
      RuleState& state = *rules_[i];
      RuleScratch& scratch = frame.scratch[i];
      if (!state.enabled || scratch.considered_in_state) continue;
      InfoView view = ViewFor(frame, i);
      if (view.info->Empty()) continue;
      if (!state.rule->Triggered(*view.effect)) continue;
      candidates.push_back(SelectionCandidate{state.rule->name(),
                                              state.creation_seq,
                                              scratch.last_considered});
      candidate_indices.push_back(i);
    }

    int pick = SelectRule(candidates, priorities_, options_.tie_break);
    if (pick < 0) return Status::OK();  // quiescent

    size_t index = candidate_indices[static_cast<size_t>(pick)];
    RuleState* state = rules_[index].get();
    const Rule& rule = *state->rule;
    frame.scratch[index].last_considered = ++frame.consider_tick;
    frame.scratch[index].considered_in_state = true;

    // check-condition: evaluate against the current state and the rule's
    // transition tables. The info is copied so that the footnote 8
    // consideration-reset below cannot invalidate the transition tables
    // the condition and action are evaluated against.
    TransInfo info = *ViewFor(frame, index).info;
    // Footnote 8 alternative: measure this rule's next composite
    // transition from this consideration point onward. (The action's own
    // transition, which happens after this point, is then included.)
    if (state->reset_policy == ResetPolicy::kOnConsideration) {
      ResetInfo(frame, index);
    }
    TransitionTableResolver resolver(db_, &info);
    Executor executor(db_, &resolver, ExecOptionsFrom(options_));
    bool condition_holds = true;
    if (rule.condition() != nullptr) {
      Scope scope;
      EvalContext ctx;
      ctx.runner = &executor;
      auto held = EvaluatePredicate(*rule.condition(), scope, ctx);
      if (!held.ok()) {
        SOPR_RETURN_NOT_OK(AbortTransaction());
        return Status(held.status().code(),
                      "rule " + rule.name() +
                          " condition failed: " + held.status().message());
      }
      condition_holds = (held.value() == TriBool::kTrue);
    }
    if (trace != nullptr) {
      trace->considered.push_back(Consideration{rule.name(), condition_holds});
    }
    if (!condition_holds) continue;  // try another rule in this state

    if (rule.action_is_rollback()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      if (trace != nullptr) {
        trace->rolled_back = true;
        trace->rollback_rule = rule.name();
      }
      return Status::OK();
    }

    // Detached rules (§5.3): queue the action with a snapshot of its
    // transition tables; it runs as its own transaction after commit.
    if (state->detached) {
      frame.deferred.push_back(DeferredFiring{index, info});
      // Like a firing, the rule's composite transition restarts here.
      ResetInfo(frame, index);
      continue;
    }

    // Execute the action's operation block; its ops compose into one
    // transition (§2.1).
    if (++frame.firings > options_.max_rule_firings) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return Status::LimitExceeded(
          "rule cascade exceeded " +
          std::to_string(options_.max_rule_firings) +
          " firings in one transaction (possible infinite loop involving "
          "rule " +
          rule.name() + ")");
    }
    total_firings_.fetch_add(1, std::memory_order_relaxed);

    Status pre = SOPR_FAILPOINT("rules.action.pre");
    if (!pre.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return Status(pre.code(), "before action of rule " + rule.name() +
                                    ": " + pre.message());
    }
    TransInfo action_info;
    SOPR_RETURN_NOT_OK(ExecuteAction(rule, info, &action_info, trace));
    Status post = SOPR_FAILPOINT("rules.action.post");
    if (!post.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return Status(post.code(), "after action of rule " + rule.name() +
                                     ": " + post.message());
    }

    if (trace != nullptr) {
      trace->firings.push_back(RuleFiring{rule.name(), action_info, false});
    }
    PropagateTransition(frame, action_info, index);
  }
}

Status RuleEngine::ExecuteAction(const Rule& rule, const TransInfo& info,
                                 TransInfo* out, ExecutionTrace* trace) {
  TransitionTableResolver resolver(db_, &info);
  Executor executor(db_, &resolver, ExecOptionsFrom(options_));
  for (const StmtPtr& op : rule.action()) {
    Status deadline = CheckDeadline(*Tls().frame);
    if (!deadline.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return deadline;
    }
    if (op->kind == StmtKind::kCall) {
      const auto& call = static_cast<const CallStmt&>(*op);
      auto it = procedures_.find(call.procedure);
      if (it == procedures_.end()) {
        SOPR_RETURN_NOT_OK(AbortTransaction());
        return Status::CatalogError("rule " + rule.name() +
                                    ": no such procedure: " + call.procedure);
      }
      ProcedureContext context(&executor, out, rule.name());
      Status proc_status = it->second(context);
      if (!proc_status.ok()) {
        SOPR_RETURN_NOT_OK(AbortTransaction());
        return Status(proc_status.code(),
                      "rule " + rule.name() + " procedure " + call.procedure +
                          " failed: " + proc_status.message());
      }
      continue;
    }
    if (op->kind == StmtKind::kSelect) {
      std::vector<SelectedTuple> selected;
      auto result = executor.ExecuteSelect(
          static_cast<const SelectStmt&>(*op), nullptr,
          options_.track_selects ? &selected : nullptr);
      if (!result.ok()) {
        SOPR_RETURN_NOT_OK(AbortTransaction());
        return Status(result.status().code(),
                      "rule " + rule.name() +
                          " action failed: " + result.status().message());
      }
      if (trace != nullptr) {
        trace->retrieved.push_back(std::move(result).value());
      }
      if (options_.track_selects) out->ApplySelect(selected);
      continue;
    }
    auto effect = executor.ExecuteDml(*op);
    if (!effect.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return Status(effect.status().code(),
                    "rule " + rule.name() +
                        " action failed: " + effect.status().message());
    }
    out->ApplyOp(effect.value());
  }
  return Status::OK();
}

Status RuleEngine::RunDeferredOnce(size_t rule_index, const TransInfo& info,
                                   ExecutionTrace* trace) {
  SOPR_FAILPOINT_RETURN("rules.deferred.dispatch");
  const Rule& rule = *rules_[rule_index]->rule;
  SOPR_RETURN_NOT_OK(Begin());
  total_firings_.fetch_add(1, std::memory_order_relaxed);
  TransInfo action_info;
  SOPR_RETURN_NOT_OK(ExecuteAction(rule, info, &action_info, trace));
  if (trace != nullptr) {
    trace->firings.push_back(RuleFiring{rule.name(), action_info, true});
  }
  // The detached action is this transaction's externally-generated block
  // from every other rule's perspective.
  Tls().frame->pending_block = std::move(action_info);
  return Commit(trace);  // cascades + nested deferrals
}

Status RuleEngine::RunDeferred(std::vector<DeferredFiring> queue,
                               ExecutionTrace* trace) {
  EngineTls& tls = Tls();
  ++tls.detached_depth;
  if (tls.detached_depth == 1) tls.detached_runs = 0;
  Status overall = Status::OK();
  for (DeferredFiring& f : queue) {
    const Rule& rule = *rules_[f.rule_index]->rule;
    Status attempt = Status::OK();
    size_t attempts = 0;
    while (true) {
      if (++tls.detached_runs > options_.max_rule_firings) {
        overall = Status::LimitExceeded(
            "detached rule chain exceeded " +
            std::to_string(options_.max_rule_firings) + " transactions");
        break;
      }
      ++attempts;
      size_t firings_before = trace != nullptr ? trace->firings.size() : 0;
      attempt = RunDeferredOnce(f.rule_index, f.info, trace);
      if (attempt.ok()) break;
      // The runaway guard is an engine-level error, not a transient
      // failure of this action: surface it instead of retrying.
      if (attempt.code() == StatusCode::kLimitExceeded) break;
      // The attempt's transaction was rolled back; drop its firing record
      // so a retry cannot double-report.
      if (trace != nullptr) trace->firings.resize(firings_before);
      if (attempts > options_.detached_retries) break;
      if (options_.detached_retry_backoff.count() > 0) {
        auto delay = options_.detached_retry_backoff *
                     (1LL << std::min<size_t>(attempts - 1, 10));
        // Deadline/cancel-aware: the sleep is clipped to the ambient
        // budget (the session's statement timeout or a kill), and an
        // interrupted sleep ends the retry schedule — the cancellation,
        // not the transient failure, is what the caller must see.
        Status slept = CancellableSleep(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::min<std::chrono::milliseconds>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        delay),
                    std::chrono::milliseconds(1000))),
            "detached retry backoff");
        if (!slept.ok()) {
          attempt = slept;
          break;
        }
      }
    }
    if (!overall.ok()) break;
    if (attempt.code() == StatusCode::kLimitExceeded) {
      overall = attempt;
      break;
    }
    if (!attempt.ok() && trace != nullptr) {
      // The action failed every attempt; its own transactions rolled back
      // while the committed triggering transaction stands.
      std::string label = rule.name();
      if (attempts > 1) {
        label += " (after " + std::to_string(attempts) + " attempts)";
      }
      trace->detached_errors.push_back(label + ": " + attempt.ToString());
    }
  }
  --tls.detached_depth;
  return overall;
}

Status RuleEngine::ProcessRules(ExecutionTrace* trace) {
  TxnFrame* frame = Tls().frame.get();
  if (frame == nullptr) {
    return Status::InvalidArgument("no transaction in progress");
  }
  if (!frame->pending_block.Empty()) {
    // The externally-generated transition is complete; fold it into every
    // rule's composite info (external transitions have no source rule).
    TransInfo block = std::move(frame->pending_block);
    frame->pending_block.Clear();
    PropagateTransition(*frame, block, kNoSource);
  }
  Status status = RunRuleLoop(trace);
  if (!status.ok() && in_transaction()) {
    SOPR_RETURN_NOT_OK(AbortTransaction());
  }
  return status;
}

Status RuleEngine::Commit(ExecutionTrace* trace) {
  return CommitImpl(trace, nullptr);
}

Status RuleEngine::CommitStaged(ExecutionTrace* trace,
                                std::shared_ptr<wal::CommitTicket>* staged) {
  *staged = nullptr;
  return CommitImpl(trace, staged);
}

Status RuleEngine::CommitImpl(ExecutionTrace* trace,
                              std::shared_ptr<wal::CommitTicket>* staged) {
  SOPR_RETURN_NOT_OK(ProcessRules(trace));
  EngineTls& tls = Tls();
  std::vector<DeferredFiring> deferred;
  if (tls.frame != nullptr) {
    uint64_t commit_lsn = 0;  // 0 = synthetic (in-memory engine)
    // Deliberately OUTSIDE commit_mu_: a writer parked here (the litmus
    // harness does this) still holds its record locks, but does not block
    // other writers' commits.
    Status fault = SOPR_FAILPOINT("rules.commit.pre");
    if (!fault.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return fault;
    }
    Status committed;
    {
      // Serialize LSN assignment and version stamping across writer
      // threads: WAL file order, commit-LSN order, and MVCC stamping
      // order must agree (docs/CONCURRENCY.md).
      std::lock_guard<std::mutex> commit_lock(commit_mu_);
      // Past the point of no return: the transaction survived every
      // cancellation check; once its batch is staged, an interrupted
      // durability wait could not be rolled back (the bytes may reach the
      // log anyway). Shield the commit section from the ambient context —
      // the scheduler's AwaitDurable, outside this section, stays
      // cancellable with commit-outcome-unknown semantics.
      CancelScope commit_shield(nullptr);
      committed = [&]() -> Status {
        if (wal_ != nullptr) {
          // The durability point: the group-commit batch (BEGIN + every
          // redo record of this transaction, rule-generated mutations
          // included + COMMIT) reaches the log before the undo
          // information is forgotten. If it cannot, the transaction never
          // happened — roll back to S0. In staged mode the batch is only
          // deposited on the group-commit queue here; the caller awaits
          // durability outside the serialized commit section (a failure
          // there is handled by the scheduler, not by rollback — later
          // transactions may already have built on this one's state).
          auto ticket = wal_->StageCommitTxn(db_->next_handle());
          if (!ticket.ok()) return ticket.status();
          if (staged != nullptr) {
            *staged = std::move(ticket).value();
            // The COMMIT record's LSN identifies this commit for MVCC
            // snapshots (null ticket = read-only transaction, no new
            // state).
            if (*staged != nullptr) commit_lsn = (*staged)->last_lsn;
          } else {
            // Stage + await, like CommitTxn, but keeping the ticket so
            // the commit LSN is known for version stamping.
            Status durable = wal_->AwaitDurable(ticket.value());
            if (!durable.ok()) return durable;
            if (ticket.value() != nullptr) {
              commit_lsn = ticket.value()->last_lsn;
            }
          }
        }
        db_->CommitAll(commit_lsn);
        return Status::OK();
      }();
    }
    if (!committed.ok()) {
      SOPR_RETURN_NOT_OK(AbortTransaction());
      return committed;
    }
    deferred = std::move(tls.frame->deferred);
    tls.frame.reset();
    // Strict two-phase locking: locks release only after the whole
    // fixpoint committed and its versions are stamped, so the record
    // conflict order equals the commit-LSN order.
    db_->EndTxn();
  }
  if (!deferred.empty()) {
    SOPR_RETURN_NOT_OK(RunDeferred(std::move(deferred), trace));
  }
  return Status::OK();
}

uint64_t RuleEngine::RuleSetChecksum() const {
  // Domain-separation seeds mirror Database::Checksum's scheme.
  constexpr uint64_t kRuleSeed = digest::kFnvOffset ^ 0x6969696969696969ull;
  constexpr uint64_t kEdgeSeed = digest::kFnvOffset ^ 0x0f0f0f0f0f0f0f0full;
  uint64_t sum = 0;
  for (const auto& state : rules_) {
    uint64_t h = digest::MixString(kRuleSeed, state->rule->name());
    h = digest::MixString(h, state->rule->def().ToString());
    h = digest::MixU64(h, state->enabled ? 1 : 0);
    h = digest::MixU64(h, state->detached ? 1 : 0);
    h = digest::MixU64(h, static_cast<uint64_t>(state->reset_policy));
    sum += digest::Finalize(h);
  }
  std::vector<std::string> names = RuleNames();
  for (const std::string& higher : names) {
    for (const std::string& lower : names) {
      if (priorities_.Higher(higher, lower)) {
        uint64_t h = digest::MixString(kEdgeSeed, higher);
        h = digest::MixString(h, lower);
        sum += digest::Finalize(h);
      }
    }
  }
  return sum;
}

Result<ExecutionTrace> RuleEngine::ExecuteBlock(
    const std::vector<const Stmt*>& ops) {
  return ExecuteBlockImpl(ops, nullptr);
}

Result<ExecutionTrace> RuleEngine::ExecuteBlockStaged(
    const std::vector<const Stmt*>& ops,
    std::shared_ptr<wal::CommitTicket>* staged) {
  *staged = nullptr;
  return ExecuteBlockImpl(ops, staged);
}

Result<ExecutionTrace> RuleEngine::ExecuteBlockImpl(
    const std::vector<const Stmt*>& ops,
    std::shared_ptr<wal::CommitTicket>* staged) {
  SOPR_RETURN_NOT_OK(Begin());
  ExecutionTrace trace;
  // `process rules` markers (§5.3) split the script into segments, each
  // an externally-generated transition followed by rule processing.
  std::vector<const Stmt*> segment;
  for (const Stmt* op : ops) {
    if (op->kind == StmtKind::kProcessRules) {
      SOPR_RETURN_NOT_OK(RunOps(segment, &trace));
      segment.clear();
      SOPR_RETURN_NOT_OK(ProcessRules(&trace));
      if (!in_transaction()) return trace;  // a rule rolled back the txn
      continue;
    }
    segment.push_back(op);
  }
  SOPR_RETURN_NOT_OK(RunOps(segment, &trace));
  SOPR_RETURN_NOT_OK(CommitImpl(&trace, staged));
  return trace;
}

}  // namespace sopr
