#include "rules/rule.h"

#include "common/string_util.h"

namespace sopr {

void CollectTableRefsFromExpr(const Expr& expr,
                              std::vector<const TableRef*>* out) {
  switch (expr.kind) {
    case ExprKind::kUnary:
      CollectTableRefsFromExpr(*static_cast<const UnaryExpr&>(expr).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectTableRefsFromExpr(*b.left, out);
      CollectTableRefsFromExpr(*b.right, out);
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      CollectTableRefsFromExpr(*in.operand, out);
      for (const ExprPtr& item : in.items) CollectTableRefsFromExpr(*item, out);
      return;
    }
    case ExprKind::kInSubquery: {
      const auto& in = static_cast<const InSubqueryExpr&>(expr);
      CollectTableRefsFromExpr(*in.operand, out);
      CollectTableRefs(*in.subquery, out);
      return;
    }
    case ExprKind::kExists:
      CollectTableRefs(*static_cast<const ExistsExpr&>(expr).subquery, out);
      return;
    case ExprKind::kScalarSubquery:
      CollectTableRefs(
          *static_cast<const ScalarSubqueryExpr&>(expr).subquery, out);
      return;
    case ExprKind::kAggregate: {
      const auto& agg = static_cast<const AggregateExpr&>(expr);
      if (agg.argument) CollectTableRefsFromExpr(*agg.argument, out);
      return;
    }
    case ExprKind::kIsNull:
      CollectTableRefsFromExpr(*static_cast<const IsNullExpr&>(expr).operand, out);
      return;
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(expr);
      CollectTableRefsFromExpr(*b.operand, out);
      CollectTableRefsFromExpr(*b.low, out);
      CollectTableRefsFromExpr(*b.high, out);
      return;
    }
    default:
      return;
  }
}

void CollectTableRefs(const Stmt& stmt, std::vector<const TableRef*>* out) {
  switch (stmt.kind) {
    case StmtKind::kSelect: {
      const auto& sel = static_cast<const SelectStmt&>(stmt);
      for (const TableRef& ref : sel.from) out->push_back(&ref);
      for (const SelectItem& item : sel.items) {
        if (item.expr) CollectTableRefsFromExpr(*item.expr, out);
      }
      if (sel.where) CollectTableRefsFromExpr(*sel.where, out);
      for (const ExprPtr& g : sel.group_by) CollectTableRefsFromExpr(*g, out);
      if (sel.having) CollectTableRefsFromExpr(*sel.having, out);
      for (const OrderByItem& o : sel.order_by) {
        CollectTableRefsFromExpr(*o.expr, out);
      }
      return;
    }
    case StmtKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(stmt);
      for (const auto& row : ins.rows) {
        for (const ExprPtr& e : row) CollectTableRefsFromExpr(*e, out);
      }
      if (ins.select) CollectTableRefs(*ins.select, out);
      return;
    }
    case StmtKind::kDelete: {
      const auto& del = static_cast<const DeleteStmt&>(stmt);
      if (del.where) CollectTableRefsFromExpr(*del.where, out);
      return;
    }
    case StmtKind::kUpdate: {
      const auto& upd = static_cast<const UpdateStmt&>(stmt);
      for (const UpdateStmt::Assignment& a : upd.assignments) {
        CollectTableRefsFromExpr(*a.value, out);
      }
      if (upd.where) CollectTableRefsFromExpr(*upd.where, out);
      return;
    }
    default:
      return;
  }
}

namespace {

/// Does `ref` (a transition-table reference) correspond to one of the
/// rule's basic transition predicates (§3's syntactic restriction)?
bool RefCoveredByPred(const TableRef& ref, const BasicTransPred& pred) {
  if (ToLower(pred.table) != ToLower(ref.table)) return false;
  switch (ref.kind) {
    case TableRefKind::kInserted:
      return pred.kind == BasicTransPred::Kind::kInsertedInto;
    case TableRefKind::kDeleted:
      return pred.kind == BasicTransPred::Kind::kDeletedFrom;
    case TableRefKind::kOldUpdated:
    case TableRefKind::kNewUpdated:
      if (pred.kind != BasicTransPred::Kind::kUpdated) return false;
      // `updated t` (any column) covers both `updated t` and
      // `updated t.c` transition tables; `updated t.c` covers only the
      // same column.
      return pred.column.empty() ||
             ToLower(pred.column) == ToLower(ref.column);
    case TableRefKind::kSelectedTt:
      if (pred.kind != BasicTransPred::Kind::kSelectedFrom) return false;
      return pred.column.empty() ||
             ToLower(pred.column) == ToLower(ref.column);
    default:
      return true;  // base tables are always fine
  }
}

}  // namespace

Result<std::shared_ptr<Rule>> Rule::Create(
    std::shared_ptr<const CreateRuleStmt> def, const Catalog& catalog) {
  auto rule = std::shared_ptr<Rule>(new Rule(std::move(def)));
  const CreateRuleStmt& stmt = *rule->def_;

  if (stmt.when.empty()) {
    return Status::InvalidArgument("rule " + stmt.name +
                                   " has no transition predicate");
  }

  // Resolve the `when` list against the catalog.
  for (const BasicTransPred& pred : stmt.when) {
    SOPR_ASSIGN_OR_RETURN(const TableSchema* schema,
                          catalog.GetTable(pred.table));
    ResolvedTransPred resolved;
    resolved.kind = pred.kind;
    resolved.table = ToLower(pred.table);
    if (!pred.column.empty()) {
      auto idx = schema->FindColumn(pred.column);
      if (!idx) {
        return Status::CatalogError("rule " + stmt.name + ": no column " +
                                    pred.column + " in table " + pred.table);
      }
      resolved.column = *idx;
    }
    rule->when_.push_back(resolved);
  }

  // Collect all table references in the condition and action; check that
  // transition tables correspond to basic predicates (§3) and that base
  // tables exist.
  std::vector<const TableRef*> refs;
  if (stmt.condition) CollectTableRefsFromExpr(*stmt.condition, &refs);
  for (const StmtPtr& op : stmt.action) {
    CollectTableRefs(*op, &refs);
    // DML target tables must exist.
    std::string target;
    switch (op->kind) {
      case StmtKind::kInsert:
        target = static_cast<const InsertStmt&>(*op).table;
        break;
      case StmtKind::kDelete:
        target = static_cast<const DeleteStmt&>(*op).table;
        break;
      case StmtKind::kUpdate:
        target = static_cast<const UpdateStmt&>(*op).table;
        break;
      default:
        break;
    }
    if (!target.empty() && !catalog.HasTable(target)) {
      return Status::CatalogError("rule " + stmt.name +
                                  ": action references unknown table " +
                                  target);
    }
  }
  for (const TableRef* ref : refs) {
    if (!catalog.HasTable(ref->table)) {
      return Status::CatalogError("rule " + stmt.name +
                                  ": unknown table " + ref->table);
    }
    if (!ref->is_transition()) continue;
    bool covered = false;
    for (const BasicTransPred& pred : stmt.when) {
      if (RefCoveredByPred(*ref, pred)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return Status::InvalidArgument(
          "rule " + stmt.name + ": transition table '" + ref->ToString() +
          "' does not correspond to any basic transition predicate in the "
          "rule's when clause");
    }
  }

  return rule;
}

bool RuleReferencesTable(const Rule& rule, std::string_view table) {
  std::string key = ToLower(table);
  for (const BasicTransPred& pred : rule.def().when) {
    if (ToLower(pred.table) == key) return true;
  }
  std::vector<const TableRef*> refs;
  if (rule.condition() != nullptr) {
    CollectTableRefsFromExpr(*rule.condition(), &refs);
  }
  for (const StmtPtr& op : rule.action()) {
    CollectTableRefs(*op, &refs);
    switch (op->kind) {
      case StmtKind::kInsert:
        if (ToLower(static_cast<const InsertStmt&>(*op).table) == key) {
          return true;
        }
        break;
      case StmtKind::kDelete:
        if (ToLower(static_cast<const DeleteStmt&>(*op).table) == key) {
          return true;
        }
        break;
      case StmtKind::kUpdate:
        if (ToLower(static_cast<const UpdateStmt&>(*op).table) == key) {
          return true;
        }
        break;
      default:
        break;
    }
  }
  for (const TableRef* ref : refs) {
    if (ToLower(ref->table) == key) return true;
  }
  return false;
}

bool Rule::Triggered(const TransitionEffect& effect) const {
  for (const ResolvedTransPred& pred : when_) {
    const TableEffect& e = effect.ForTable(pred.table);
    switch (pred.kind) {
      case BasicTransPred::Kind::kInsertedInto:
        if (!e.inserted.empty()) return true;
        break;
      case BasicTransPred::Kind::kDeletedFrom:
        if (!e.deleted.empty()) return true;
        break;
      case BasicTransPred::Kind::kUpdated:
        if (pred.column == ResolvedTransPred::kAnyColumn) {
          if (!e.updated.empty()) return true;
        } else {
          for (const auto& [h, cols] : e.updated) {
            (void)h;
            if (cols.count(pred.column) > 0) return true;
          }
        }
        break;
      case BasicTransPred::Kind::kSelectedFrom:
        // Column-level select tracking is not distinguished; any selected
        // tuple of the table triggers (documented §5.1 simplification).
        if (!e.selected.empty()) return true;
        break;
    }
  }
  return false;
}

}  // namespace sopr
