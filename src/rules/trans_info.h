#ifndef SOPR_RULES_TRANS_INFO_H_
#define SOPR_RULES_TRANS_INFO_H_

#include <map>
#include <set>
#include <string>

#include "query/executor.h"
#include "rules/effect.h"
#include "storage/tuple_handle.h"
#include "types/row.h"

namespace sopr {

/// Per-table slice of a rule's composite transition information — the
/// `[ins, del, upd]` triple of the Figure 1 algorithm, with the meanings:
///   * `ins` — handles of inserted tuples (current values live in the DB);
///   * `del` — deleted tuples with their full pre-transition values;
///   * `upd` — updated tuples: the set of updated columns plus the value
///     of the *whole tuple* at the start of the composite transition
///     (the paper's (h, c, v) triples all share one v per handle).
struct TableTransInfo {
  struct UpdInfo {
    std::set<size_t> columns;
    Row old_row;
    bool operator==(const UpdInfo& other) const = default;
  };

  std::set<TupleHandle> ins;
  std::map<TupleHandle, Row> del;
  std::map<TupleHandle, UpdInfo> upd;
  std::set<TupleHandle> sel;  // §5.1 extension

  bool Empty() const {
    return ins.empty() && del.empty() && upd.empty() && sel.empty();
  }
  bool operator==(const TableTransInfo& other) const = default;
};

/// Composite transition information across all tables. This structure
/// plays two roles, mirroring the paper:
///   1. accumulated *within* an operation block, by folding each
///      operation's affected set (`ApplyOp`, the inductive definition of
///      E(B) in §2.2, with values captured at mutation time as the paper
///      suggests in §4.3);
///   2. maintained *between* transitions per rule (`Compose`, the
///      modify-trans-info function of Figure 1).
class TransInfo {
 public:
  bool Empty() const;

  const std::map<std::string, TableTransInfo>& tables() const {
    return tables_;
  }
  const TableTransInfo& ForTable(const std::string& table) const;

  /// Folds one operation's affected set into this info (within-block
  /// composition). `op.deleted` / `op.updated` carry pre-operation values
  /// captured by the executor.
  void ApplyOp(const DmlEffect& op);

  /// Records tuples read by a select operation (§5.1 extension).
  void ApplySelect(const std::vector<SelectedTuple>& selected);

  /// Figure 1 modify-trans-info: folds the info of a *later* indivisible
  /// transition into this one (Definition 2.1 lifted to carried values).
  void Compose(const TransInfo& later);

  /// Projects out the pure [I, D, U, S] handle sets for transition
  /// predicate evaluation.
  TransitionEffect ToEffect() const;

  void Clear() { tables_.clear(); }

  bool operator==(const TransInfo& other) const {
    return tables_ == other.tables_;
  }

 private:
  std::map<std::string, TableTransInfo> tables_;
};

}  // namespace sopr

#endif  // SOPR_RULES_TRANS_INFO_H_
