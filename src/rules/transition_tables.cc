#include "rules/transition_tables.h"

#include "common/string_util.h"
#include "rules/rule.h"

namespace sopr {

Result<const TableSchema*> TransitionTableResolver::ResolveSchema(
    const TableRef& ref) {
  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  return &table->schema();
}

Result<Relation> TransitionTableResolver::ResolveEq(const TableRef& ref,
                                                    size_t column,
                                                    const Value& value) {
  if (ref.kind == TableRefKind::kBase) {
    return base_.ResolveEq(ref, column, value);
  }
  return Resolve(ref);
}

Result<Relation> TransitionTableResolver::Resolve(const TableRef& ref) {
  if (ref.kind == TableRefKind::kBase) return base_.Resolve(ref);

  SOPR_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(ref.table));
  const TableSchema& schema = table->schema();
  const TableTransInfo& info = info_->ForTable(ToLower(ref.table));

  // Column filter for `[old|new] updated t.c`.
  size_t column_filter = ResolvedTransPred::kAnyColumn;
  if (!ref.column.empty()) {
    auto idx = schema.FindColumn(ref.column);
    if (!idx) {
      return Status::CatalogError("no column " + ref.column + " in table " +
                                  ref.table);
    }
    column_filter = *idx;
  }

  Relation rel;
  rel.schema = &schema;

  switch (ref.kind) {
    case TableRefKind::kInserted:
      // Transition-table rows are this transaction's own writes (X locks
      // held), but the heap structure may be reshaped by concurrent
      // committers — read through the latched accessor, batched so the
      // whole transition materializes under one latch acquisition.
      rel.handles.assign(info.ins.begin(), info.ins.end());
      SOPR_RETURN_NOT_OK(table->GetCopyBatch(rel.handles, &rel.rows));
      break;

    case TableRefKind::kDeleted:
      for (const auto& [h, old_row] : info.del) {
        rel.handles.push_back(h);
        rel.rows.push_back(old_row);
      }
      break;

    case TableRefKind::kOldUpdated:
    case TableRefKind::kNewUpdated:
      for (const auto& [h, upd] : info.upd) {
        if (column_filter != ResolvedTransPred::kAnyColumn &&
            upd.columns.count(column_filter) == 0) {
          continue;
        }
        rel.handles.push_back(h);
        if (ref.kind == TableRefKind::kOldUpdated) {
          rel.rows.push_back(upd.old_row);
        }
      }
      if (ref.kind == TableRefKind::kNewUpdated) {
        SOPR_RETURN_NOT_OK(table->GetCopyBatch(rel.handles, &rel.rows));
      }
      break;

    case TableRefKind::kSelectedTt:
      rel.handles.assign(info.sel.begin(), info.sel.end());
      SOPR_RETURN_NOT_OK(table->GetCopyBatch(rel.handles, &rel.rows));
      break;

    case TableRefKind::kBase:
      return Status::Internal("unreachable");
  }
  return rel;
}

}  // namespace sopr
