#ifndef SOPR_RULES_ANALYSIS_H_
#define SOPR_RULES_ANALYSIS_H_

#include <string>
#include <vector>

#include "rules/rule.h"
#include "rules/selection.h"

namespace sopr {

/// A conservative "may write" descriptor for one operation in a rule's
/// action: the table, the kind of change, and (for updates) the columns.
struct WriteOp {
  BasicTransPred::Kind kind = BasicTransPred::Kind::kInsertedInto;
  std::string table;                 // lowercased
  std::vector<std::string> columns;  // update only; empty = n/a

  std::string ToString() const;
};

/// Edge of the triggering graph: executing `from`'s action may satisfy a
/// basic transition predicate of `to`.
struct TriggerEdge {
  std::string from;
  std::string to;
  std::string via;  // human-readable: which write matches which predicate
};

/// A warning produced by static analysis (§6: "a facility that issues
/// warnings of potential loops and conflicts as rules are defined").
struct AnalysisWarning {
  enum class Kind {
    kSelfTrigger,      // a rule may trigger itself (potential divergence)
    kCycle,            // a cycle of rules may trigger forever
    kOrderSensitive,   // two unordered rules may interleave differently
    kOpaqueAction,     // action calls an external procedure (§5.2): its
                       // writes are invisible to static analysis
  };
  Kind kind;
  std::vector<std::string> rules;  // involved rules, in cycle order
  std::string detail;

  std::string ToString() const;
};

/// Static analyzer over a set of rules: builds the triggering graph and
/// reports potential infinite loops (self-triggers and cycles) and
/// order-sensitive unordered rule pairs. All analyses are conservative
/// (syntactic may-trigger, ignoring conditions), as the paper proposes.
class RuleAnalyzer {
 public:
  explicit RuleAnalyzer(std::vector<const Rule*> rules,
                        const PriorityGraph* priorities = nullptr);

  /// Conservative write set of a rule's action.
  static std::vector<WriteOp> ActionWrites(const Rule& rule);

  /// True if `write` may satisfy `pred`.
  static bool WriteMayTrigger(const WriteOp& write,
                              const ResolvedTransPred& pred,
                              const Rule& target_rule);

  const std::vector<TriggerEdge>& edges() const { return edges_; }

  /// All warnings: self-triggers, elementary cycles (deduplicated by
  /// rule set), and order-sensitive pairs lacking a priority.
  std::vector<AnalysisWarning> Analyze() const;

 private:
  bool EdgeExists(const std::string& from, const std::string& to) const;

  std::vector<const Rule*> rules_;
  const PriorityGraph* priorities_;
  std::vector<TriggerEdge> edges_;
};

}  // namespace sopr

#endif  // SOPR_RULES_ANALYSIS_H_
