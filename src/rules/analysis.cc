#include "rules/analysis.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace sopr {

std::string WriteOp::ToString() const {
  switch (kind) {
    case BasicTransPred::Kind::kInsertedInto:
      return "insert into " + table;
    case BasicTransPred::Kind::kDeletedFrom:
      return "delete from " + table;
    case BasicTransPred::Kind::kUpdated:
      return "update " + table + "(" + Join(columns, ",") + ")";
    case BasicTransPred::Kind::kSelectedFrom:
      return "select from " + table;
  }
  return "?";
}

std::string AnalysisWarning::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kSelfTrigger:
      out = "self-trigger: ";
      break;
    case Kind::kCycle:
      out = "cycle: ";
      break;
    case Kind::kOrderSensitive:
      out = "order-sensitive: ";
      break;
    case Kind::kOpaqueAction:
      out = "opaque-action: ";
      break;
  }
  out += Join(rules, " -> ");
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

std::vector<WriteOp> RuleAnalyzer::ActionWrites(const Rule& rule) {
  std::vector<WriteOp> writes;
  for (const StmtPtr& op : rule.action()) {
    switch (op->kind) {
      case StmtKind::kInsert: {
        const auto& ins = static_cast<const InsertStmt&>(*op);
        writes.push_back(WriteOp{BasicTransPred::Kind::kInsertedInto,
                                 ToLower(ins.table),
                                 {}});
        break;
      }
      case StmtKind::kDelete: {
        const auto& del = static_cast<const DeleteStmt&>(*op);
        writes.push_back(WriteOp{BasicTransPred::Kind::kDeletedFrom,
                                 ToLower(del.table),
                                 {}});
        break;
      }
      case StmtKind::kUpdate: {
        const auto& upd = static_cast<const UpdateStmt&>(*op);
        WriteOp w;
        w.kind = BasicTransPred::Kind::kUpdated;
        w.table = ToLower(upd.table);
        for (const UpdateStmt::Assignment& a : upd.assignments) {
          w.columns.push_back(ToLower(a.column));
        }
        writes.push_back(std::move(w));
        break;
      }
      default:
        break;
    }
  }
  return writes;
}

namespace {

/// May `write` satisfy basic predicate `pred` (unresolved, by name)?
bool WriteMayTriggerPred(const WriteOp& write, const BasicTransPred& pred) {
  if (write.table != ToLower(pred.table)) return false;
  if (write.kind != pred.kind) return false;
  if (pred.kind == BasicTransPred::Kind::kUpdated && !pred.column.empty()) {
    return std::find(write.columns.begin(), write.columns.end(),
                     ToLower(pred.column)) != write.columns.end();
  }
  return true;
}

/// Tables a rule reads (condition + action FROM clauses and subqueries).
std::set<std::string> ReadTables(const Rule& rule) {
  std::vector<const TableRef*> refs;
  if (rule.condition() != nullptr) {
    CollectTableRefsFromExpr(*rule.condition(), &refs);
  }
  for (const StmtPtr& op : rule.action()) CollectTableRefs(*op, &refs);
  std::set<std::string> out;
  for (const TableRef* ref : refs) out.insert(ToLower(ref->table));
  return out;
}

std::set<std::string> WriteTables(const Rule& rule) {
  std::set<std::string> out;
  for (const WriteOp& w : RuleAnalyzer::ActionWrites(rule)) {
    out.insert(w.table);
  }
  return out;
}

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& x : a) {
    if (b.count(x) > 0) return true;
  }
  return false;
}

}  // namespace

bool RuleAnalyzer::WriteMayTrigger(const WriteOp& write,
                                   const ResolvedTransPred& pred,
                                   const Rule& target_rule) {
  // Match against the unresolved predicates so column names compare.
  for (const BasicTransPred& p : target_rule.def().when) {
    if (WriteMayTriggerPred(write, p)) {
      // Only count if this unresolved pred matches the resolved one's
      // table and kind.
      if (ToLower(p.table) == pred.table && p.kind == pred.kind) return true;
    }
  }
  return false;
}

RuleAnalyzer::RuleAnalyzer(std::vector<const Rule*> rules,
                           const PriorityGraph* priorities)
    : rules_(std::move(rules)), priorities_(priorities) {
  for (const Rule* from : rules_) {
    std::vector<WriteOp> writes = ActionWrites(*from);
    for (const Rule* to : rules_) {
      for (const WriteOp& w : writes) {
        bool may = false;
        for (const BasicTransPred& pred : to->def().when) {
          if (WriteMayTriggerPred(w, pred)) {
            may = true;
            edges_.push_back(TriggerEdge{
                from->name(), to->name(),
                w.ToString() + " matches '" + pred.ToString() + "'"});
            break;
          }
        }
        if (may) break;  // one edge per rule pair
      }
    }
  }
}

bool RuleAnalyzer::EdgeExists(const std::string& from,
                              const std::string& to) const {
  for (const TriggerEdge& e : edges_) {
    if (e.from == from && e.to == to) return true;
  }
  return false;
}

std::vector<AnalysisWarning> RuleAnalyzer::Analyze() const {
  std::vector<AnalysisWarning> warnings;

  // Opaque actions: external procedure calls hide writes from this
  // analysis, so loop/order results for such rules are incomplete.
  for (const Rule* rule : rules_) {
    for (const StmtPtr& op : rule->action()) {
      if (op->kind == StmtKind::kCall) {
        AnalysisWarning w;
        w.kind = AnalysisWarning::Kind::kOpaqueAction;
        w.rules = {rule->name()};
        w.detail = "action calls procedure '" +
                   static_cast<const CallStmt&>(*op).procedure +
                   "'; its database writes are not statically visible";
        warnings.push_back(std::move(w));
        break;
      }
    }
  }

  // Self-triggers.
  for (const Rule* rule : rules_) {
    if (EdgeExists(rule->name(), rule->name())) {
      AnalysisWarning w;
      w.kind = AnalysisWarning::Kind::kSelfTrigger;
      w.rules = {rule->name()};
      w.detail =
          "the rule's action may satisfy its own transition predicate; "
          "divergence is possible if the condition never becomes false";
      warnings.push_back(std::move(w));
    }
  }

  // Cycles of length >= 2 via mutual reachability (rule counts are small).
  auto reachable = [&](const std::string& from,
                       const std::string& to) -> bool {
    std::set<std::string> visited;
    std::vector<std::string> stack{from};
    while (!stack.empty()) {
      std::string cur = stack.back();
      stack.pop_back();
      for (const TriggerEdge& e : edges_) {
        if (e.from != cur) continue;
        if (e.to == to) return true;
        if (visited.insert(e.to).second) stack.push_back(e.to);
      }
    }
    return false;
  };

  std::set<std::set<std::string>> reported;
  for (const Rule* a : rules_) {
    for (const Rule* b : rules_) {
      if (a->name() >= b->name()) continue;
      if (reachable(a->name(), b->name()) && reachable(b->name(), a->name())) {
        std::set<std::string> key{a->name(), b->name()};
        if (!reported.insert(key).second) continue;
        AnalysisWarning w;
        w.kind = AnalysisWarning::Kind::kCycle;
        w.rules = {a->name(), b->name()};
        w.detail = "each rule's action may (transitively) trigger the other";
        warnings.push_back(std::move(w));
      }
    }
  }

  // Order-sensitive unordered pairs: both rules write a common table, or
  // one writes what the other reads, and no priority orders them.
  for (size_t i = 0; i < rules_.size(); ++i) {
    for (size_t j = i + 1; j < rules_.size(); ++j) {
      const Rule& a = *rules_[i];
      const Rule& b = *rules_[j];
      if (priorities_ != nullptr && (priorities_->Higher(a.name(), b.name()) ||
                                     priorities_->Higher(b.name(), a.name()))) {
        continue;
      }
      std::set<std::string> wa = WriteTables(a);
      std::set<std::string> wb = WriteTables(b);
      std::set<std::string> ra = ReadTables(a);
      std::set<std::string> rb = ReadTables(b);
      std::string why;
      if (Intersects(wa, wb)) {
        why = "both actions write a common table";
      } else if (Intersects(wa, rb)) {
        why = a.name() + " writes a table " + b.name() + " reads";
      } else if (Intersects(wb, ra)) {
        why = b.name() + " writes a table " + a.name() + " reads";
      }
      if (!why.empty()) {
        AnalysisWarning w;
        w.kind = AnalysisWarning::Kind::kOrderSensitive;
        w.rules = {a.name(), b.name()};
        w.detail = why + "; consider `create rule priority`";
        warnings.push_back(std::move(w));
      }
    }
  }

  return warnings;
}

}  // namespace sopr
