#ifndef SOPR_RULES_RULE_ENGINE_H_
#define SOPR_RULES_RULE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "query/executor.h"
#include "rules/rule.h"
#include "rules/selection.h"
#include "rules/trans_info.h"
#include "storage/database.h"
#include "wal/wal_options.h"

namespace sopr {

namespace wal {
class WalWriter;
struct CommitTicket;
}  // namespace wal

/// How composite transition information is maintained across rules.
enum class MaintenanceMode {
  /// The paper's Figure 1 algorithm: every rule's [ins, del, upd] is
  /// eagerly updated after every transition (modify-trans-info).
  kPerRule,
  /// The optimization the paper hints at ("substantial need and room for
  /// optimization"): transitions are appended to a shared log; each rule
  /// keeps only a start index and composes lazily (with an incremental
  /// cache) when it is actually considered.
  kSharedLog,
};

struct RuleEngineOptions {
  TieBreak tie_break = TieBreak::kCreationOrder;
  MaintenanceMode maintenance = MaintenanceMode::kPerRule;
  /// Runaway-cascade guard (the paper's footnote 7 suggests run-time
  /// detection); exceeding it aborts and rolls back the transaction.
  size_t max_rule_firings = 1000;
  /// Enable the §5.1 extension: selects contribute an S component and
  /// `selected` predicates/transition tables become live.
  bool track_selects = false;
  /// Query optimization (predicate pushdown + hash equijoins) for every
  /// statement executed through the rule system. Off = plain
  /// cross-product-then-filter (ablation benchmark B9).
  bool optimize_queries = true;
  /// Vectorized set-oriented execution (docs/EXECUTION.md): rule
  /// conditions, query filters, DML predicate scans, and transition ⋈
  /// base joins evaluate batch-at-a-time over columnar RowBatches with
  /// an unordered build/probe hash join. Off = the original
  /// row-at-a-time pipeline, kept alive as the differential oracle
  /// (tests/rules/vectorized_differential_test.cc).
  bool vectorized_execution = true;
  /// Columnar chunk execution layered on vectorized_execution
  /// (docs/EXECUTION.md "Columnar chunks"): hot predicate and join-key
  /// columns decompose into contiguous typed arrays at materialization
  /// time and branch-light kernels evaluate them, falling back
  /// per-expression to the pointer path. Independent of
  /// vectorized_execution so all three engines stay constructible: row
  /// (vectorized off), pointer-vector (vectorized on, columnar off),
  /// columnar (both on — the default). No effect when
  /// vectorized_execution is off.
  bool columnar_execution = true;
  /// Build-side row cap for the vectorized hash join (0 = unlimited): a
  /// join whose build side exceeds it falls back to a nested-loop probe
  /// with a counted stat (exec::GlobalStats().hash_join_fallbacks)
  /// instead of growing the hash table without bound.
  size_t max_hash_build_rows = 1u << 20;
  /// Per-transaction wall-clock deadline (zero = none). Checked between
  /// operations and rule considerations; exceeding it aborts the
  /// transaction with kTimeout. Detached transactions get their own
  /// deadline window.
  std::chrono::milliseconds txn_deadline{0};
  /// Upper bound on any single lock wait once concurrent writers are
  /// enabled (zero = unbounded; docs/OVERLOAD.md). A waiter that exceeds
  /// it aborts with kLockTimeout and rolls back, so one stalled holder
  /// cannot wedge conflicting writers forever. Applied to the lock
  /// manager by Engine::EnableConcurrentWriters.
  std::chrono::milliseconds lock_wait_timeout{10000};
  /// Per-transaction undo-log record budget (0 = unlimited). A mutation
  /// that would exceed it fails with kResourceExhausted and the
  /// transaction aborts; rollback itself never needs new log space.
  size_t max_undo_records = 0;
  /// Failed detached-rule actions are retried this many times (each
  /// attempt is a fresh transaction) before landing in
  /// ExecutionTrace::detached_errors. Rollbacks requested by rules and
  /// the runaway-cascade guard are never retried.
  size_t detached_retries = 0;
  /// Sleep before retry k (1-based) is backoff * 2^(k-1), capped at 1s.
  std::chrono::milliseconds detached_retry_backoff{0};
  /// Paranoid mode: capture a state checksum at Begin and verify after
  /// every rollback that the restored state matches it exactly and that
  /// all indexes agree with their heaps. O(database) per transaction —
  /// meant for tests and chaos runs, not production hot paths.
  bool verify_rollback_integrity = false;
  /// Directory holding the write-ahead log (empty = durability off, the
  /// default: a purely in-memory engine). Use Engine::Open() to run
  /// recovery and attach the log; the plain Engine constructor ignores
  /// this field.
  std::string wal_dir;
  /// When the log is fsync'd (see WalFsyncPolicy). Overridable at run
  /// time via SOPR_WAL_FSYNC=off|commit|always.
  WalFsyncPolicy wal_fsync = WalFsyncPolicy::kCommit;
  /// Write a snapshot checkpoint (bounding recovery replay and letting
  /// the log truncate) after this many commits. 0 = only explicit
  /// Engine::Checkpoint() calls.
  uint64_t wal_checkpoint_interval = 0;
};

/// Executor knobs derived from rule-engine options — the single place
/// the mapping lives, so every Executor construction site agrees.
inline ExecOptions ExecOptionsFrom(const RuleEngineOptions& o) {
  return ExecOptions{o.optimize_queries, o.vectorized_execution,
                     o.columnar_execution, o.max_hash_build_rows};
}

/// Footnote 8 of the paper: which point a rule's composite transition is
/// measured from. The main semantics resets a rule's trans-info when its
/// action executes; the alternative resets whenever the rule is *chosen
/// for consideration*, regardless of whether the condition held.
enum class ResetPolicy {
  kOnExecution,      // §4.2 default
  kOnConsideration,  // footnote 8 alternative
};

/// Environment handed to an external procedure (§5.2): it may query the
/// current state (with the triggering rule's transition tables in scope)
/// and run DML whose effects become part of the rule's transition.
class ProcedureContext {
 public:
  ProcedureContext(Executor* executor, TransInfo* accumulate,
                   const std::string& rule)
      : executor_(executor), accumulate_(accumulate), rule_(rule) {}

  /// Runs a select; transition tables of the invoking rule are visible.
  Result<QueryResult> Query(const std::string& sql);

  /// Runs insert/delete/update statements; their affected sets fold into
  /// the invoking rule's action transition (so they trigger other rules
  /// exactly like inline action operations).
  Status Execute(const std::string& sql);

  /// Name of the invoking rule.
  const std::string& rule() const { return rule_; }

 private:
  Executor* executor_;
  TransInfo* accumulate_;
  std::string rule_;
};

/// An external procedure callable from a rule action via `call <name>`.
using ProcedureFn = std::function<Status(ProcedureContext&)>;

/// One rule-condition evaluation, in order (for example traces).
struct Consideration {
  std::string rule;
  bool condition_held = false;
};

/// One executed rule action.
struct RuleFiring {
  std::string rule;
  /// Value-carrying effect of the action's transition (for traces).
  TransInfo effect;
  /// True when the action ran as a separate (detached) transaction.
  bool detached = false;
};

/// What happened during one transaction's rule processing.
struct ExecutionTrace {
  std::vector<Consideration> considered;
  std::vector<RuleFiring> firings;
  /// Result sets of top-level select operations (in the external block
  /// and in rule actions, in execution order).
  std::vector<QueryResult> retrieved;
  bool rolled_back = false;
  std::string rollback_rule;  // set when a rule's rollback action fired
  /// Errors from detached actions (their own transactions rolled back;
  /// the triggering transaction stayed committed).
  std::vector<std::string> detached_errors;
};

/// The production rule system of the paper: rule registry, priorities,
/// and the §4 execution semantics. A transaction is one external
/// operation block followed by rule processing to quiescence (or
/// rollback); the §5.3 extension exposes explicit Begin / RunOps /
/// ProcessRules / Commit for user-defined rule triggering points.
class RuleEngine {
 public:
  explicit RuleEngine(Database* db, RuleEngineOptions options = {});
  RuleEngine(const RuleEngine&) = delete;
  RuleEngine& operator=(const RuleEngine&) = delete;

  const RuleEngineOptions& options() const { return options_; }

  // --- Rule DDL (only between transactions) ---
  Status DefineRule(std::shared_ptr<const CreateRuleStmt> def);
  Status DropRule(const std::string& name);
  /// `create rule priority higher before lower`; both must exist and the
  /// pair must not create a cycle.
  Status AddPriority(const std::string& higher, const std::string& lower);
  /// Extension: temporarily deactivate/reactivate a rule.
  Status SetRuleEnabled(const std::string& name, bool enabled);
  Result<bool> IsRuleEnabled(const std::string& name) const;
  /// Footnote 8: per-rule choice of re-triggering semantics.
  Status SetResetPolicy(const std::string& name, ResetPolicy policy);
  /// §5.3: "the ability to specify that a rule's action should be
  /// executed in a separate transaction". A detached rule's action is
  /// queued when its condition holds and runs as its own transaction
  /// AFTER the triggering transaction commits; a failure or rollback in
  /// the detached action does not undo the triggering transaction.
  /// Rollback-action rules cannot be detached.
  Status SetDetached(const std::string& name, bool detached);
  /// §5.2: registers an external procedure callable via `call <name>` in
  /// rule actions. Fails on duplicate names.
  Status RegisterProcedure(const std::string& name, ProcedureFn fn);

  std::vector<std::string> RuleNames() const;
  Result<const Rule*> GetRule(const std::string& name) const;
  size_t num_rules() const { return rules_.size(); }
  const PriorityGraph& priorities() const { return priorities_; }

  // --- Transactions ---
  /// Convenience: Begin + RunOps + Commit as a single transaction.
  Result<ExecutionTrace> ExecuteBlock(const std::vector<const Stmt*>& ops);

  Status Begin();
  /// Executes operations of the external block, accumulating their
  /// composite effect; rules are not yet considered. Failure of any
  /// operation aborts (rolls back) the whole transaction.
  Status RunOps(const std::vector<const Stmt*>& ops,
                ExecutionTrace* trace = nullptr);
  /// §5.3 rule triggering point: the externally-generated transition so
  /// far is considered complete and rules are processed to quiescence.
  Status ProcessRules(ExecutionTrace* trace);
  /// Processes rules, then commits.
  Status Commit(ExecutionTrace* trace);
  /// Two-phase commit for the concurrent front-end (src/server/):
  /// processes rules and commits in memory, but only STAGES the durable
  /// batch on the WAL's group-commit queue. *staged receives the commit
  /// ticket (null for a read-only transaction or an in-memory engine);
  /// the caller must pass it to WalWriter::AwaitDurable AFTER leaving the
  /// serialized commit section — until the ticket resolves the
  /// transaction is committed in memory but not durable. Detached actions
  /// triggered by the transaction still commit inline, each as its own
  /// transaction.
  Status CommitStaged(ExecutionTrace* trace,
                      std::shared_ptr<wal::CommitTicket>* staged);
  /// ExecuteBlock with the final commit staged instead of synced inline.
  Result<ExecutionTrace> ExecuteBlockStaged(
      const std::vector<const Stmt*>& ops,
      std::shared_ptr<wal::CommitTicket>* staged);
  /// Aborts the transaction, undoing everything since Begin.
  Status RollbackTransaction();
  /// True when the CALLING THREAD has a transaction in progress.
  /// Transactions are thread-scoped (see the threading note below).
  bool in_transaction() const;

  /// Total rule firings across all transactions (for benchmarks).
  uint64_t total_firings() const {
    return total_firings_.load(std::memory_order_relaxed);
  }

  /// Attaches (or detaches, with nullptr) the write-ahead log. Begin /
  /// Commit / Abort notify the writer so each rule transaction maps to
  /// one durable group-commit batch; CommitTxn failure aborts the
  /// transaction (no durability → no commit).
  void set_wal(wal::WalWriter* wal) { wal_ = wal; }

  /// Order-independent digest over the rule set: names, full definitions
  /// (events, conditions, actions), activation state, detached flags,
  /// reset policies, and priority edges. Combined with
  /// Database::Checksum() by Engine::StateChecksum() to certify recovery.
  uint64_t RuleSetChecksum() const;

 private:
  // Threading model: the rule CATALOG (rules_, priorities_, procedures_)
  // is mutated only between transactions by the front-end's exclusive
  // sections, while TRANSACTION state lives in a per-thread TxnFrame —
  // each writer session runs its whole Begin..Commit fixpoint on one
  // thread, so concurrent writers never share scratch state. The only
  // cross-thread synchronization the engine itself adds is commit_mu_,
  // which serializes WAL LSN assignment + version stamping so that
  // commit-LSN order equals the stamping order.

  /// Catalog entry for one rule: definition plus the settings that
  /// persist across transactions. Per-transaction scratch lives in
  /// TxnFrame::scratch, parallel to rules_.
  struct RuleState {
    std::shared_ptr<Rule> rule;
    uint64_t creation_seq = 0;
    bool enabled = true;
    ResetPolicy reset_policy = ResetPolicy::kOnExecution;
    bool detached = false;
  };

  /// One rule's per-transaction composite-transition scratch.
  struct RuleScratch {
    // kPerRule mode: eagerly maintained composite info + its effect.
    TransInfo info;
    TransitionEffect effect;
    // kSharedLog mode: compose log[log_start..) lazily with a cache
    // (only used once the rule has fired; before that the frame's
    // global composite applies).
    size_t log_start = 0;
    TransInfo cached;
    TransitionEffect cached_effect;
    size_t cached_upto = 0;
    uint64_t last_considered = 0;
    bool considered_in_state = false;
  };

  /// A detached action waiting for the triggering transaction to commit:
  /// the rule (by catalog index — DDL cannot run mid-transaction, so
  /// indexes are stable) plus a snapshot of its transition tables at
  /// deferral time.
  struct DeferredFiring {
    size_t rule_index = 0;
    TransInfo info;
  };

  /// Everything one in-flight transaction needs, owned by the thread
  /// running it.
  struct TxnFrame {
    UndoLog::Mark start_mark = 0;
    std::chrono::steady_clock::time_point deadline_at{};
    bool has_deadline = false;
    /// This transaction's cancellation sources — the caller's ambient
    /// context (session kill, statement timeout) plus the txn deadline —
    /// installed thread-ambiently for the frame's whole Begin..Commit
    /// lifetime so lock waits, scans, and sleeps can observe it.
    /// `cancel` is declared before `cancel_scope`: the scope (which
    /// restores the outer ambient context) must die first.
    CancelContext cancel;
    std::unique_ptr<CancelScope> cancel_scope;
    uint64_t start_checksum = 0;
    TransInfo pending_block;
    std::vector<TransInfo> log;   // kSharedLog: transitions this txn
    TransInfo global_composite;   // kSharedLog: composition of all of log
    TransitionEffect global_effect;
    std::vector<DeferredFiring> deferred;
    size_t firings = 0;
    uint64_t consider_tick = 0;
    std::vector<RuleScratch> scratch;  // parallel to rules_
  };

  /// The calling thread's per-engine state: the current frame (null
  /// between transactions) plus the detached-cascade counters, which
  /// span the sequence of frames a deferred chain runs through.
  struct EngineTls {
    std::unique_ptr<TxnFrame> frame;
    size_t detached_depth = 0;
    size_t detached_runs = 0;
  };
  EngineTls& Tls() const;

  /// "No source rule" marker for PropagateTransition (external blocks).
  static constexpr size_t kNoSource = static_cast<size_t>(-1);

  RuleState* FindState(const std::string& name);
  const RuleState* FindState(const std::string& name) const;

  /// Composite info plus its projected effect for a rule. In kSharedLog
  /// mode, rules that have not fired this transaction all share one
  /// global composite (they would compose the identical log suffix), so
  /// idle rules cost O(1) per transition — the optimization the paper
  /// calls for in §4.3.
  struct InfoView {
    const TransInfo* info = nullptr;
    const TransitionEffect* effect = nullptr;
  };
  InfoView ViewFor(TxnFrame& frame, size_t index);

  /// Folds a completed transition into every rule's info. `source_index`
  /// is the rule whose action produced it (kNoSource for external
  /// transitions); per Figure 1 the source rule's info is *reset* to just
  /// this transition while all others compose.
  void PropagateTransition(TxnFrame& frame, const TransInfo& transition,
                           size_t source_index);

  /// The select-eligible-rule loop of Figure 1 plus action execution.
  Status RunRuleLoop(ExecutionTrace* trace);

  /// Executes one rule's action operations against `info`'s transition
  /// tables, folding affected sets into `out`.
  Status ExecuteAction(const Rule& rule, const TransInfo& info,
                       TransInfo* out, ExecutionTrace* trace);

  /// Runs queued detached actions, each as its own transaction.
  Status RunDeferred(std::vector<DeferredFiring> queue,
                     ExecutionTrace* trace);

  /// One attempt at a deferred firing: dispatch failpoint + Begin +
  /// action + commit. A non-OK return means the attempt's transaction was
  /// rolled back (retry material unless the cascade guard tripped).
  Status RunDeferredOnce(size_t rule_index, const TransInfo& info,
                         ExecutionTrace* trace);

  /// Shared body of Commit and CommitStaged: `staged` selects whether the
  /// WAL batch is synced inline (nullptr) or deposited on the
  /// group-commit queue.
  Status CommitImpl(ExecutionTrace* trace,
                    std::shared_ptr<wal::CommitTicket>* staged);
  Result<ExecutionTrace> ExecuteBlockImpl(
      const std::vector<const Stmt*>& ops,
      std::shared_ptr<wal::CommitTicket>* staged);

  Status AbortTransaction();

  /// kTimeout when the transaction deadline has passed (OK otherwise).
  Status CheckDeadline(const TxnFrame& frame) const;

  /// Resets a rule's composite info to "nothing yet" (used by the
  /// kOnConsideration policy).
  void ResetInfo(TxnFrame& frame, size_t index);

  Database* db_;
  RuleEngineOptions options_;
  wal::WalWriter* wal_ = nullptr;  // not owned; null when durability is off
  std::vector<std::unique_ptr<RuleState>> rules_;
  std::map<std::string, ProcedureFn> procedures_;
  PriorityGraph priorities_;
  uint64_t next_creation_seq_ = 0;

  /// Serializes commit-LSN assignment (WAL staging) with version
  /// stamping (Database::CommitAll) across concurrent writer threads, so
  /// WAL file order == commit-LSN order == stamping order. Record locks
  /// are NOT held under this mutex-acquisition path in any order that
  /// could cycle: lock waits happen during the mutation phase, strictly
  /// before commit.
  std::mutex commit_mu_;
  std::atomic<uint64_t> total_firings_{0};
};

}  // namespace sopr

#endif  // SOPR_RULES_RULE_ENGINE_H_
