#include "rules/trace_format.h"

#include "query/result_set.h"

namespace sopr {

std::string FormatTrace(const ExecutionTrace& trace,
                        const TraceFormatOptions& options) {
  std::string out;
  if (options.show_considered) {
    for (const Consideration& c : trace.considered) {
      out += options.indent + "considered " + c.rule + ": condition " +
             (c.condition_held ? "held" : "false") + "\n";
    }
  }
  if (options.show_firings) {
    for (const RuleFiring& f : trace.firings) {
      out += options.indent + "fired " + f.rule;
      if (f.detached) out += " [detached]";
      out += ": " + f.effect.ToEffect().ToString() + "\n";
    }
  }
  if (options.show_retrieved) {
    for (const QueryResult& r : trace.retrieved) {
      out += FormatResult(r);
    }
  }
  for (const std::string& error : trace.detached_errors) {
    out += options.indent + "detached action failed: " + error + "\n";
  }
  if (trace.rolled_back) {
    out += options.indent + "ROLLED BACK by rule " + trace.rollback_rule +
           "\n";
  }
  return out;
}

}  // namespace sopr
