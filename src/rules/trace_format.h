#ifndef SOPR_RULES_TRACE_FORMAT_H_
#define SOPR_RULES_TRACE_FORMAT_H_

#include <string>

#include "rules/rule_engine.h"

namespace sopr {

/// Options for rendering an ExecutionTrace.
struct TraceFormatOptions {
  bool show_considered = true;   // condition evaluations in order
  bool show_firings = true;      // executed actions with their effects
  bool show_retrieved = false;   // result sets retrieved by select ops
  std::string indent = "  ";
};

/// Renders a trace as human-readable lines, e.g.:
///   considered salary_guard: condition held
///   fired salary_guard: emp: I={} D={6} U={}
///   fired mgr_cascade [detached]: ...
///   ROLLED BACK by rule capacity
/// Used by the shell, examples, and the experiment harness.
std::string FormatTrace(const ExecutionTrace& trace,
                        const TraceFormatOptions& options = {});

}  // namespace sopr

#endif  // SOPR_RULES_TRACE_FORMAT_H_
