#include "rules/effect.h"

namespace sopr {

namespace {

TableEffect ComposeTable(const TableEffect& e1, const TableEffect& e2) {
  TableEffect out;

  // I = (I1 ∪ I2) − D2.
  for (TupleHandle h : e1.inserted) {
    if (e2.deleted.count(h) == 0) out.inserted.insert(h);
  }
  for (TupleHandle h : e2.inserted) {
    // Handles are never reused, so h cannot be in D2; inserted as-is.
    out.inserted.insert(h);
  }

  // D = (D1 ∪ D2) − I1.
  for (TupleHandle h : e1.deleted) out.deleted.insert(h);
  for (TupleHandle h : e2.deleted) {
    if (e1.inserted.count(h) == 0) out.deleted.insert(h);
  }

  // U = (U1 ∪ U2) − (D2 ∪ I1), column sets unioned per handle.
  for (const auto& [h, cols] : e1.updated) {
    if (e2.deleted.count(h) == 0) {
      out.updated[h].insert(cols.begin(), cols.end());
    }
  }
  for (const auto& [h, cols] : e2.updated) {
    if (e1.inserted.count(h) == 0 && e2.deleted.count(h) == 0) {
      out.updated[h].insert(cols.begin(), cols.end());
    }
  }

  // S = (S1 ∪ S2) − D2 (extension; see DESIGN.md).
  for (TupleHandle h : e1.selected) {
    if (e2.deleted.count(h) == 0) out.selected.insert(h);
  }
  for (TupleHandle h : e2.selected) {
    if (e2.deleted.count(h) == 0) out.selected.insert(h);
  }

  return out;
}

}  // namespace

bool TransitionEffect::Empty() const {
  for (const auto& [name, effect] : tables) {
    (void)name;
    if (!effect.Empty()) return false;
  }
  return true;
}

const TableEffect& TransitionEffect::ForTable(const std::string& table) const {
  static const TableEffect* kEmpty = new TableEffect();
  auto it = tables.find(table);
  return it == tables.end() ? *kEmpty : it->second;
}

TransitionEffect TransitionEffect::Compose(const TransitionEffect& first,
                                           const TransitionEffect& second) {
  TransitionEffect out;
  for (const auto& [name, effect] : first.tables) {
    TableEffect composed = ComposeTable(effect, second.ForTable(name));
    if (!composed.Empty()) out.tables.emplace(name, std::move(composed));
  }
  for (const auto& [name, effect] : second.tables) {
    if (first.tables.count(name) > 0) continue;  // already composed above
    TableEffect composed = ComposeTable(TableEffect(), effect);
    if (!composed.Empty()) out.tables.emplace(name, std::move(composed));
  }
  return out;
}

bool TransitionEffect::WellFormed() const {
  for (const auto& [name, e] : tables) {
    (void)name;
    for (TupleHandle h : e.inserted) {
      if (e.deleted.count(h) > 0 || e.updated.count(h) > 0) return false;
    }
    for (TupleHandle h : e.deleted) {
      if (e.updated.count(h) > 0) return false;
    }
  }
  return true;
}

std::string TransitionEffect::ToString() const {
  std::string out;
  for (const auto& [name, e] : tables) {
    if (e.Empty()) continue;
    if (!out.empty()) out += "; ";
    out += name + ": I={";
    bool first = true;
    for (TupleHandle h : e.inserted) {
      if (!first) out += ",";
      out += std::to_string(h);
      first = false;
    }
    out += "} D={";
    first = true;
    for (TupleHandle h : e.deleted) {
      if (!first) out += ",";
      out += std::to_string(h);
      first = false;
    }
    out += "} U={";
    first = true;
    for (const auto& [h, cols] : e.updated) {
      if (!first) out += ",";
      out += std::to_string(h) + ":(";
      bool fc = true;
      for (size_t c : cols) {
        if (!fc) out += ",";
        out += std::to_string(c);
        fc = false;
      }
      out += ")";
      first = false;
    }
    out += "}";
    if (!e.selected.empty()) {
      out += " S={";
      first = true;
      for (TupleHandle h : e.selected) {
        if (!first) out += ",";
        out += std::to_string(h);
        first = false;
      }
      out += "}";
    }
  }
  return out.empty() ? "<empty>" : out;
}

}  // namespace sopr
