#ifndef SOPR_RULES_EFFECT_H_
#define SOPR_RULES_EFFECT_H_

#include <map>
#include <set>
#include <string>

#include "storage/tuple_handle.h"

namespace sopr {

/// The [I, D, U] components of a transition effect (§2.2) restricted to
/// one table, plus the optional S component of the §5.1 data-retrieval
/// extension. A handle appears in at most one of I/D/U (paper invariant).
struct TableEffect {
  std::set<TupleHandle> inserted;                    // I
  std::set<TupleHandle> deleted;                     // D
  std::map<TupleHandle, std::set<size_t>> updated;   // U: handle → columns
  std::set<TupleHandle> selected;                    // S (§5.1)

  bool Empty() const {
    return inserted.empty() && deleted.empty() && updated.empty() &&
           selected.empty();
  }
  bool operator==(const TableEffect& other) const = default;
};

/// A transition effect over the whole database, keyed by (lowercased)
/// table name. Since a tuple handle belongs to exactly one table,
/// composition distributes over tables.
struct TransitionEffect {
  std::map<std::string, TableEffect> tables;

  bool Empty() const;

  /// The table's effect, or an empty one.
  const TableEffect& ForTable(const std::string& table) const;

  /// Definition 2.1: the effect of indivisibly executing the transition
  /// with effect `first` followed by the transition with effect `second`:
  ///   I = (I1 ∪ I2) − D2
  ///   D = (D1 ∪ D2) − I1
  ///   U = (U1 ∪ U2) − (D2 ∪ I1)   (handle-wise; columns union per handle)
  /// The S component (our extension) composes as S = (S1 ∪ S2) − D2.
  static TransitionEffect Compose(const TransitionEffect& first,
                                  const TransitionEffect& second);

  /// Verifies the paper's invariant that a handle appears in at most one
  /// of I, D, U per table. Used by tests and debug assertions.
  bool WellFormed() const;

  std::string ToString() const;

  bool operator==(const TransitionEffect& other) const = default;
};

}  // namespace sopr

#endif  // SOPR_RULES_EFFECT_H_
