#ifndef SOPR_CATALOG_SCHEMA_H_
#define SOPR_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace sopr {

/// One column of a table: a (case-insensitively unique) name and a type.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// The fixed schema of a table (the paper assumes a fixed schema, §2 fn 1).
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column_name` (case-insensitive), or nullopt.
  std::optional<size_t> FindColumn(std::string_view column_name) const;

  /// Validates a row against this schema: arity, and per-column type
  /// (NULL is accepted for any column; ints coerce to double columns).
  Status CheckRow(const class Row& row) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace sopr

#endif  // SOPR_CATALOG_SCHEMA_H_
