#ifndef SOPR_CATALOG_CATALOG_H_
#define SOPR_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace sopr {

/// Name → schema registry for all tables in the database. Names are
/// case-insensitive (stored lowercased).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table. Fails on duplicate name or empty/duplicate columns.
  Status AddTable(TableSchema schema);

  Status DropTable(std::string_view name);

  bool HasTable(std::string_view name) const;

  /// Looks up a schema. Fails with CatalogError if absent.
  Result<const TableSchema*> GetTable(std::string_view name) const;

  /// All table names in registration order.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableSchema> tables_;
  std::vector<std::string> order_;
};

}  // namespace sopr

#endif  // SOPR_CATALOG_CATALOG_H_
