#include "catalog/schema.h"

#include "common/string_util.h"
#include "types/row.h"

namespace sopr {

std::optional<size_t> TableSchema::FindColumn(
    std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, column_name)) return i;
  }
  return std::nullopt;
}

Status TableSchema::CheckRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::TypeError("table " + name_ + " expects " +
                             std::to_string(columns_.size()) +
                             " values, got " + std::to_string(row.size()));
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Value& v = row.at(i);
    if (v.is_null()) continue;
    ValueType want = columns_[i].type;
    ValueType got = v.type();
    if (got == want) continue;
    if (want == ValueType::kDouble && got == ValueType::kInt) continue;
    return Status::TypeError("column " + name_ + "." + columns_[i].name +
                             " has type " + ValueTypeName(want) + ", got " +
                             ValueTypeName(got) + " value " + v.ToString());
  }
  return Status::OK();
}

std::string TableSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace sopr
