#include "catalog/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace sopr {

Status Catalog::AddTable(TableSchema schema) {
  std::string key = ToLower(schema.name());
  if (key.empty()) {
    return Status::CatalogError("table name must be non-empty");
  }
  if (tables_.count(key) > 0) {
    return Status::CatalogError("table already exists: " + schema.name());
  }
  if (schema.num_columns() == 0) {
    return Status::CatalogError("table " + schema.name() +
                                " must have at least one column");
  }
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    for (size_t j = i + 1; j < schema.num_columns(); ++j) {
      if (EqualsIgnoreCase(schema.columns()[i].name,
                           schema.columns()[j].name)) {
        return Status::CatalogError("duplicate column " +
                                    schema.columns()[i].name + " in table " +
                                    schema.name());
      }
    }
  }
  order_.push_back(key);
  tables_.emplace(std::move(key), std::move(schema));
  return Status::OK();
}

Status Catalog::DropTable(std::string_view name) {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  tables_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), key), order_.end());
  return Status::OK();
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.count(ToLower(name)) > 0;
}

Result<const TableSchema*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const { return order_; }

}  // namespace sopr
