#ifndef SOPR_EXPR_AGGREGATE_H_
#define SOPR_EXPR_AGGREGATE_H_

#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "types/value.h"

namespace sopr {

/// Streaming accumulator for one aggregate function with SQL semantics:
/// NULL inputs are skipped; `sum/avg/min/max` over zero non-NULL inputs is
/// NULL; `count` is 0. `distinct` dedupes structurally.
class AggregateAccumulator {
 public:
  AggregateAccumulator(AggFunc func, bool distinct)
      : func_(func), distinct_(distinct) {}

  /// Feed one input value. For count(*), feed Value::Bool(true) per row.
  Status Add(const Value& v);

  /// Final aggregate value.
  Result<Value> Finish() const;

 private:
  AggFunc func_;
  bool distinct_;
  std::vector<Value> seen_;  // only used when distinct_
  int64_t count_ = 0;
  double sum_ = 0.0;
  bool sum_is_int_ = true;
  int64_t int_sum_ = 0;
  Value min_;
  Value max_;
};

}  // namespace sopr

#endif  // SOPR_EXPR_AGGREGATE_H_
