#include "expr/aggregate.h"

namespace sopr {

Status AggregateAccumulator::Add(const Value& v) {
  if (v.is_null()) return Status::OK();  // SQL: aggregates ignore NULLs
  if (distinct_) {
    for (const Value& s : seen_) {
      if (s.StructurallyEquals(v)) return Status::OK();
    }
    seen_.push_back(v);
  }
  switch (func_) {
    case AggFunc::kCount:
      ++count_;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (!v.IsNumeric()) {
        return Status::TypeError(std::string(AggFuncName(func_)) +
                                 " requires numeric input, got " +
                                 v.ToString());
      }
      ++count_;
      if (v.type() == ValueType::kInt && sum_is_int_) {
        int64_t next;
        if (__builtin_add_overflow(int_sum_, v.AsInt(), &next)) {
          sum_ = static_cast<double>(int_sum_) +
                 static_cast<double>(v.AsInt());
          sum_is_int_ = false;
        } else {
          int_sum_ = next;
        }
      } else {
        if (sum_is_int_) {
          sum_ = static_cast<double>(int_sum_);
          sum_is_int_ = false;
        }
        sum_ += v.NumericAsDouble();
      }
      return Status::OK();
    case AggFunc::kMin:
      ++count_;
      if (min_.is_null() || v.SqlLess(min_) == TriBool::kTrue) min_ = v;
      return Status::OK();
    case AggFunc::kMax:
      ++count_;
      if (max_.is_null() || max_.SqlLess(v) == TriBool::kTrue) max_ = v;
      return Status::OK();
  }
  return Status::Internal("unhandled aggregate function");
}

Result<Value> AggregateAccumulator::Finish() const {
  switch (func_) {
    case AggFunc::kCount:
      return Value::Int(count_);
    case AggFunc::kSum:
      if (count_ == 0) return Value::Null();
      return sum_is_int_ ? Value::Int(int_sum_) : Value::Double(sum_);
    case AggFunc::kAvg: {
      if (count_ == 0) return Value::Null();
      double total = sum_is_int_ ? static_cast<double>(int_sum_) : sum_;
      return Value::Double(total / static_cast<double>(count_));
    }
    case AggFunc::kMin:
      return count_ == 0 ? Value::Null() : min_;
    case AggFunc::kMax:
      return count_ == 0 ? Value::Null() : max_;
  }
  return Status::Internal("unhandled aggregate function");
}

}  // namespace sopr
