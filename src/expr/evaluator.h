#ifndef SOPR_EXPR_EVALUATOR_H_
#define SOPR_EXPR_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "sql/ast.h"
#include "types/row.h"
#include "types/value.h"

namespace sopr {

/// One named relation visible to expressions: a binding name (table name
/// or alias), the relation's schema, and the current row while iterating.
struct Binding {
  std::string name;
  const TableSchema* schema = nullptr;
  const Row* row = nullptr;
};

/// Lexical scope for name resolution. Inner scopes (subquery FROM lists)
/// shadow outer ones; unqualified names must be unambiguous within the
/// innermost level that defines them.
class Scope {
 public:
  explicit Scope(const Scope* parent = nullptr) : parent_(parent) {}

  /// Adds a binding; rejects duplicate names at the same level.
  Status AddBinding(std::string name, const TableSchema* schema);

  size_t num_bindings() const { return bindings_.size(); }
  void SetRow(size_t i, const Row* row) { bindings_[i].row = row; }
  const Binding& binding(size_t i) const { return bindings_[i]; }

  struct Resolved {
    const Binding* binding = nullptr;
    size_t column = 0;
  };

  /// Resolves `qualifier.column` (qualifier may be empty). Searches this
  /// level, then parents. Ambiguous unqualified names are an error.
  Result<Resolved> ResolveColumn(const std::string& qualifier,
                                 const std::string& column) const;

 private:
  const Scope* parent_;
  std::vector<Binding> bindings_;
};

/// Result rows of a (sub)query: column names plus materialized rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

/// Callback used by the evaluator to run embedded selects (implemented by
/// the query executor; an interface breaks the circular dependency).
class SubqueryRunner {
 public:
  virtual ~SubqueryRunner() = default;
  virtual Result<QueryResult> RunSubquery(const SelectStmt& select,
                                          const Scope* outer) = 0;
};

/// Evaluation context: subquery runner plus, inside grouped queries,
/// precomputed values for aggregate nodes (keyed by node identity).
struct EvalContext {
  SubqueryRunner* runner = nullptr;
  const std::map<const Expr*, Value>* aggregates = nullptr;
};

/// Evaluates a scalar expression. Boolean results use Value::Bool;
/// SQL `unknown` is represented as NULL.
Result<Value> Evaluate(const Expr& expr, const Scope& scope,
                       EvalContext& ctx);

// Shared value kernels. Both the row-at-a-time evaluator and the batch
// evaluator (src/exec/batch_evaluator.cc) call exactly these, so the two
// paths cannot diverge on three-valued logic, type errors, or messages
// (the differential-oracle contract; docs/EXECUTION.md).

/// Boolean/NULL encoding of a truth value: SQL `unknown` is NULL.
Value TriBoolToValue(TriBool t);

/// Interprets a value as a predicate result; non-boolean non-null values
/// are a type error.
Result<TriBool> PredicateTriFromValue(const Value& v);

/// The non-logical binary operators (arithmetic and comparisons) as a
/// pure value kernel. kAnd/kOr are not handled here — they short-circuit
/// in each evaluator's control flow.
Result<Value> EvaluateBinaryValue(BinaryOp op, const Value& left,
                                  const Value& right);

/// SQL membership test (`needle IN (haystack...)`) with three-valued
/// logic: any kUnknown comparison taints a miss into kUnknown.
TriBool MembershipTri(const Value& needle, const std::vector<Value>& haystack);

/// Evaluates `expr` as a predicate with three-valued logic. Non-boolean,
/// non-null results are a type error.
Result<TriBool> EvaluatePredicate(const Expr& expr, const Scope& scope,
                                  EvalContext& ctx);

/// True if the tree contains an AggregateExpr outside of subqueries.
bool ContainsAggregate(const Expr& expr);

/// Appends every AggregateExpr in the tree (not descending into
/// subqueries) to `out`.
void CollectAggregates(const Expr& expr,
                       std::vector<const AggregateExpr*>* out);

}  // namespace sopr

#endif  // SOPR_EXPR_EVALUATOR_H_
