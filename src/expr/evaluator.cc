#include "expr/evaluator.h"

namespace sopr {

Status Scope::AddBinding(std::string name, const TableSchema* schema) {
  for (const Binding& b : bindings_) {
    if (b.name == name) {
      return Status::CatalogError("duplicate table binding: " + name +
                                  " (use an alias)");
    }
  }
  bindings_.push_back(Binding{std::move(name), schema, nullptr});
  return Status::OK();
}

Result<Scope::Resolved> Scope::ResolveColumn(const std::string& qualifier,
                                             const std::string& column) const {
  if (!qualifier.empty()) {
    for (const Binding& b : bindings_) {
      if (b.name == qualifier) {
        auto idx = b.schema->FindColumn(column);
        if (!idx) {
          return Status::CatalogError("no column " + column + " in " +
                                      qualifier);
        }
        return Resolved{&b, *idx};
      }
    }
    if (parent_ != nullptr) return parent_->ResolveColumn(qualifier, column);
    return Status::CatalogError("unknown table or alias: " + qualifier);
  }

  const Binding* found = nullptr;
  size_t found_col = 0;
  for (const Binding& b : bindings_) {
    auto idx = b.schema->FindColumn(column);
    if (idx) {
      if (found != nullptr) {
        return Status::CatalogError("ambiguous column: " + column);
      }
      found = &b;
      found_col = *idx;
    }
  }
  if (found != nullptr) return Resolved{found, found_col};
  if (parent_ != nullptr) return parent_->ResolveColumn(qualifier, column);
  return Status::CatalogError("unknown column: " + column);
}

Value TriBoolToValue(TriBool t) {
  switch (t) {
    case TriBool::kTrue:
      return Value::Bool(true);
    case TriBool::kFalse:
      return Value::Bool(false);
    case TriBool::kUnknown:
      return Value::Null();
  }
  return Value::Null();
}

Result<TriBool> PredicateTriFromValue(const Value& v) {
  if (v.is_null()) return TriBool::kUnknown;
  if (v.type() == ValueType::kBool) {
    return v.AsBool() ? TriBool::kTrue : TriBool::kFalse;
  }
  return Status::TypeError("expected a boolean predicate, got " +
                           std::string(ValueTypeName(v.type())) + " value " +
                           v.ToString());
}

Result<Value> EvaluateBinaryValue(BinaryOp op, const Value& left,
                                  const Value& right) {
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Add(left, right);
    case BinaryOp::kSub:
      return Value::Subtract(left, right);
    case BinaryOp::kMul:
      return Value::Multiply(left, right);
    case BinaryOp::kDiv:
      return Value::Divide(left, right);
    case BinaryOp::kEq:
      return TriBoolToValue(left.SqlEquals(right));
    case BinaryOp::kNe:
      return TriBoolToValue(TriNot(left.SqlEquals(right)));
    case BinaryOp::kLt:
      return TriBoolToValue(left.SqlLess(right));
    case BinaryOp::kGe:
      return TriBoolToValue(TriNot(left.SqlLess(right)));
    case BinaryOp::kGt:
      return TriBoolToValue(right.SqlLess(left));
    case BinaryOp::kLe:
      return TriBoolToValue(TriNot(right.SqlLess(left)));
    default:
      return Status::Internal("not a value binary operator");
  }
}

TriBool MembershipTri(const Value& needle, const std::vector<Value>& haystack) {
  bool saw_unknown = false;
  for (const Value& candidate : haystack) {
    TriBool eq = needle.SqlEquals(candidate);
    if (eq == TriBool::kTrue) return TriBool::kTrue;
    if (eq == TriBool::kUnknown) saw_unknown = true;
  }
  return saw_unknown ? TriBool::kUnknown : TriBool::kFalse;
}

namespace {

Result<Value> EvaluateScalarSubquery(const SelectStmt& select,
                                     const Scope& scope, EvalContext& ctx) {
  if (ctx.runner == nullptr) {
    return Status::Internal("no subquery runner in this context");
  }
  SOPR_ASSIGN_OR_RETURN(QueryResult result,
                        ctx.runner->RunSubquery(select, &scope));
  if (result.columns.size() != 1) {
    return Status::ExecutionError(
        "scalar subquery must produce exactly one column, got " +
        std::to_string(result.columns.size()));
  }
  if (result.rows.size() > 1) {
    return Status::ExecutionError(
        "scalar subquery produced more than one row");
  }
  if (result.rows.empty()) return Value::Null();
  return result.rows[0].at(0);
}

}  // namespace

Result<Value> Evaluate(const Expr& expr, const Scope& scope,
                       EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      SOPR_ASSIGN_OR_RETURN(Scope::Resolved resolved,
                            scope.ResolveColumn(ref.qualifier, ref.column));
      if (resolved.binding->row == nullptr) {
        return Status::Internal("column " + ref.ToString() +
                                " referenced outside row context");
      }
      return resolved.binding->row->at(resolved.column);
    }

    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      SOPR_ASSIGN_OR_RETURN(Value operand,
                            Evaluate(*unary.operand, scope, ctx));
      if (unary.op == UnaryOp::kNeg) return Value::Negate(operand);
      SOPR_ASSIGN_OR_RETURN(TriBool t, PredicateTriFromValue(operand));
      return TriBoolToValue(TriNot(t));
    }

    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      // Short-circuit logical operators with three-valued logic.
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        SOPR_ASSIGN_OR_RETURN(Value lv, Evaluate(*binary.left, scope, ctx));
        SOPR_ASSIGN_OR_RETURN(TriBool lt, PredicateTriFromValue(lv));
        if (binary.op == BinaryOp::kAnd && lt == TriBool::kFalse) {
          return Value::Bool(false);
        }
        if (binary.op == BinaryOp::kOr && lt == TriBool::kTrue) {
          return Value::Bool(true);
        }
        SOPR_ASSIGN_OR_RETURN(Value rv, Evaluate(*binary.right, scope, ctx));
        SOPR_ASSIGN_OR_RETURN(TriBool rt, PredicateTriFromValue(rv));
        return TriBoolToValue(binary.op == BinaryOp::kAnd ? TriAnd(lt, rt)
                                                          : TriOr(lt, rt));
      }
      SOPR_ASSIGN_OR_RETURN(Value left, Evaluate(*binary.left, scope, ctx));
      SOPR_ASSIGN_OR_RETURN(Value right, Evaluate(*binary.right, scope, ctx));
      return EvaluateBinaryValue(binary.op, left, right);
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      SOPR_ASSIGN_OR_RETURN(Value needle, Evaluate(*in.operand, scope, ctx));
      std::vector<Value> items;
      items.reserve(in.items.size());
      for (const ExprPtr& item : in.items) {
        SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*item, scope, ctx));
        items.push_back(std::move(v));
      }
      TriBool t = MembershipTri(needle, items);
      return TriBoolToValue(in.negated ? TriNot(t) : t);
    }

    case ExprKind::kInSubquery: {
      const auto& in = static_cast<const InSubqueryExpr&>(expr);
      SOPR_ASSIGN_OR_RETURN(Value needle, Evaluate(*in.operand, scope, ctx));
      if (ctx.runner == nullptr) {
        return Status::Internal("no subquery runner in this context");
      }
      SOPR_ASSIGN_OR_RETURN(QueryResult result,
                            ctx.runner->RunSubquery(*in.subquery, &scope));
      if (result.columns.size() != 1) {
        return Status::ExecutionError(
            "IN subquery must produce exactly one column");
      }
      std::vector<Value> items;
      items.reserve(result.rows.size());
      for (const Row& row : result.rows) items.push_back(row.at(0));
      TriBool t = MembershipTri(needle, items);
      return TriBoolToValue(in.negated ? TriNot(t) : t);
    }

    case ExprKind::kExists: {
      const auto& exists = static_cast<const ExistsExpr&>(expr);
      if (ctx.runner == nullptr) {
        return Status::Internal("no subquery runner in this context");
      }
      SOPR_ASSIGN_OR_RETURN(QueryResult result,
                            ctx.runner->RunSubquery(*exists.subquery, &scope));
      return Value::Bool(!result.rows.empty());
    }

    case ExprKind::kScalarSubquery: {
      const auto& sub = static_cast<const ScalarSubqueryExpr&>(expr);
      return EvaluateScalarSubquery(*sub.subquery, scope, ctx);
    }

    case ExprKind::kAggregate: {
      if (ctx.aggregates != nullptr) {
        auto it = ctx.aggregates->find(&expr);
        if (it != ctx.aggregates->end()) return it->second;
      }
      return Status::TypeError("aggregate " + expr.ToString() +
                               " used outside an aggregation context");
    }

    case ExprKind::kIsNull: {
      const auto& isnull = static_cast<const IsNullExpr&>(expr);
      SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*isnull.operand, scope, ctx));
      bool null = v.is_null();
      return Value::Bool(isnull.negated ? !null : null);
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(*between.operand, scope, ctx));
      SOPR_ASSIGN_OR_RETURN(Value lo, Evaluate(*between.low, scope, ctx));
      SOPR_ASSIGN_OR_RETURN(Value hi, Evaluate(*between.high, scope, ctx));
      // v between lo and hi  ≡  lo <= v and v <= hi.
      TriBool ge = TriNot(v.SqlLess(lo));
      TriBool le = TriNot(hi.SqlLess(v));
      TriBool t = TriAnd(ge, le);
      return TriBoolToValue(between.negated ? TriNot(t) : t);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<TriBool> EvaluatePredicate(const Expr& expr, const Scope& scope,
                                  EvalContext& ctx) {
  SOPR_ASSIGN_OR_RETURN(Value v, Evaluate(expr, scope, ctx));
  return PredicateTriFromValue(v);
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kAggregate) return true;
  switch (expr.kind) {
    case ExprKind::kUnary:
      return ContainsAggregate(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return ContainsAggregate(*b.left) || ContainsAggregate(*b.right);
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      if (ContainsAggregate(*in.operand)) return true;
      for (const ExprPtr& item : in.items) {
        if (ContainsAggregate(*item)) return true;
      }
      return false;
    }
    case ExprKind::kInSubquery:
      return ContainsAggregate(
          *static_cast<const InSubqueryExpr&>(expr).operand);
    case ExprKind::kIsNull:
      return ContainsAggregate(*static_cast<const IsNullExpr&>(expr).operand);
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(expr);
      return ContainsAggregate(*b.operand) || ContainsAggregate(*b.low) ||
             ContainsAggregate(*b.high);
    }
    default:
      return false;
  }
}

void CollectAggregates(const Expr& expr,
                       std::vector<const AggregateExpr*>* out) {
  switch (expr.kind) {
    case ExprKind::kAggregate:
      out->push_back(static_cast<const AggregateExpr*>(&expr));
      return;
    case ExprKind::kUnary:
      CollectAggregates(*static_cast<const UnaryExpr&>(expr).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectAggregates(*b.left, out);
      CollectAggregates(*b.right, out);
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      CollectAggregates(*in.operand, out);
      for (const ExprPtr& item : in.items) CollectAggregates(*item, out);
      return;
    }
    case ExprKind::kInSubquery:
      CollectAggregates(*static_cast<const InSubqueryExpr&>(expr).operand,
                        out);
      return;
    case ExprKind::kIsNull:
      CollectAggregates(*static_cast<const IsNullExpr&>(expr).operand, out);
      return;
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(expr);
      CollectAggregates(*b.operand, out);
      CollectAggregates(*b.low, out);
      CollectAggregates(*b.high, out);
      return;
    }
    default:
      return;
  }
}

}  // namespace sopr
