#ifndef SOPR_STORAGE_UNDO_LOG_H_
#define SOPR_STORAGE_UNDO_LOG_H_

#include <string>
#include <vector>

#include "storage/tuple_handle.h"
#include "types/row.h"

namespace sopr {

/// One reversible mutation. `old_row` is populated for deletes (the full
/// deleted tuple) and updates (the pre-image).
struct UndoRecord {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind;
  std::string table;  // lowercased table name
  TupleHandle handle = kInvalidHandle;
  Row old_row;
};

/// Append-only log of mutations within the current transaction. The
/// Database replays it backwards to implement the paper's `rollback`
/// action (roll back to the transaction's start state S0). Marks allow
/// partial rollback for nested scopes (used by failed operation blocks).
class UndoLog {
 public:
  using Mark = size_t;

  void RecordInsert(std::string table, TupleHandle handle);
  void RecordDelete(std::string table, TupleHandle handle, Row old_row);
  void RecordUpdate(std::string table, TupleHandle handle, Row old_row);

  Mark mark() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  /// Records at and after `m`, newest last. Caller applies them in reverse.
  const std::vector<UndoRecord>& records() const { return records_; }

  /// Drop records from `m` onward (after they have been applied), or drop
  /// everything up to `m` at commit.
  void TruncateTo(Mark m);
  void Clear() { records_.clear(); }

 private:
  std::vector<UndoRecord> records_;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_UNDO_LOG_H_
