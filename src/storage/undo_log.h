#ifndef SOPR_STORAGE_UNDO_LOG_H_
#define SOPR_STORAGE_UNDO_LOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/tuple_handle.h"
#include "types/row.h"

namespace sopr {

/// One reversible mutation. `old_row` is populated for deletes (the full
/// deleted tuple) and updates (the pre-image).
struct UndoRecord {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind;
  std::string table;  // lowercased table name
  TupleHandle handle = kInvalidHandle;
  Row old_row;
};

/// Append-only log of mutations within the current transaction. The
/// Database replays it backwards to implement the paper's `rollback`
/// action (roll back to the transaction's start state S0). Marks allow
/// partial rollback for nested scopes (used by failed operation blocks).
class UndoLog {
 public:
  using Mark = size_t;

  /// Appends fail with kResourceExhausted once the log holds
  /// `record_budget` records (0 = unlimited), simulating log-space
  /// exhaustion; the caller must revert the mutation it failed to log.
  /// The `undo.append` failpoint can inject the same failure.
  Status RecordInsert(std::string table, TupleHandle handle);
  Status RecordDelete(std::string table, TupleHandle handle, Row old_row);
  Status RecordUpdate(std::string table, TupleHandle handle, Row old_row);

  /// Caps the number of records the log accepts (0 = unlimited). Records
  /// already in the log are unaffected — rollback always works.
  void set_record_budget(size_t budget) { record_budget_ = budget; }
  size_t record_budget() const { return record_budget_; }

  Mark mark() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  /// Records at and after `m`, newest last. Caller applies them in reverse.
  const std::vector<UndoRecord>& records() const { return records_; }

  /// Drop records from `m` onward (after they have been applied), or drop
  /// everything up to `m` at commit.
  void TruncateTo(Mark m);
  void Clear() { records_.clear(); }

 private:
  Status CheckAppend();

  std::vector<UndoRecord> records_;
  size_t record_budget_ = 0;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_UNDO_LOG_H_
