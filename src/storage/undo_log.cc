#include "storage/undo_log.h"

namespace sopr {

void UndoLog::RecordInsert(std::string table, TupleHandle handle) {
  records_.push_back(
      UndoRecord{UndoRecord::Kind::kInsert, std::move(table), handle, Row()});
}

void UndoLog::RecordDelete(std::string table, TupleHandle handle,
                           Row old_row) {
  records_.push_back(UndoRecord{UndoRecord::Kind::kDelete, std::move(table),
                                handle, std::move(old_row)});
}

void UndoLog::RecordUpdate(std::string table, TupleHandle handle,
                           Row old_row) {
  records_.push_back(UndoRecord{UndoRecord::Kind::kUpdate, std::move(table),
                                handle, std::move(old_row)});
}

void UndoLog::TruncateTo(Mark m) {
  if (m < records_.size()) {
    records_.resize(m);
  }
}

}  // namespace sopr
