#include "storage/undo_log.h"

#include "common/failpoint.h"

namespace sopr {

Status UndoLog::CheckAppend() {
  SOPR_FAILPOINT_RETURN("undo.append");
  if (record_budget_ != 0 && records_.size() >= record_budget_) {
    return Status::ResourceExhausted(
        "undo log budget of " + std::to_string(record_budget_) +
        " records exhausted");
  }
  return Status::OK();
}

Status UndoLog::RecordInsert(std::string table, TupleHandle handle) {
  SOPR_RETURN_NOT_OK(CheckAppend());
  records_.push_back(
      UndoRecord{UndoRecord::Kind::kInsert, std::move(table), handle, Row()});
  return Status::OK();
}

Status UndoLog::RecordDelete(std::string table, TupleHandle handle,
                             Row old_row) {
  SOPR_RETURN_NOT_OK(CheckAppend());
  records_.push_back(UndoRecord{UndoRecord::Kind::kDelete, std::move(table),
                                handle, std::move(old_row)});
  return Status::OK();
}

Status UndoLog::RecordUpdate(std::string table, TupleHandle handle,
                             Row old_row) {
  SOPR_RETURN_NOT_OK(CheckAppend());
  records_.push_back(UndoRecord{UndoRecord::Kind::kUpdate, std::move(table),
                                handle, std::move(old_row)});
  return Status::OK();
}

void UndoLog::TruncateTo(Mark m) {
  if (m < records_.size()) {
    records_.resize(m);
  }
}

}  // namespace sopr
