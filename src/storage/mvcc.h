#ifndef SOPR_STORAGE_MVCC_H_
#define SOPR_STORAGE_MVCC_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include <mutex>

#include "types/row.h"

namespace sopr {

/// Multi-version read support (docs/CONCURRENCY.md "MVCC snapshot
/// reads"). Every committed database state is identified by its commit
/// LSN; a snapshot at LSN S sees a row version iff
///
///     begin_lsn <= S < end_lsn
///
/// Live rows have a conceptual end_lsn of infinity. Versions written by
/// a transaction that has not committed yet carry the kPendingLsn
/// sentinel in the affected field; since kPendingLsn compares greater
/// than every real LSN, a pending begin is invisible to every snapshot
/// and a pending end keeps the superseded version visible — exactly the
/// isolation an in-flight transaction must provide. At commit the
/// sentinels are stamped to the transaction's commit LSN, and only then
/// does the CommitScheduler publish that LSN as visible.
inline constexpr uint64_t kPendingLsn = ~0ull;

/// A superseded (updated-over or deleted) row image kept for readers
/// whose snapshot predates the supersession.
struct RowVersion {
  uint64_t begin_lsn = 0;
  uint64_t end_lsn = kPendingLsn;
  Row row;
};

/// The set of snapshot LSNs currently pinned by readers. Checkpoint
/// pruning may discard a version only when no pinned snapshot can still
/// see it (wal/checkpoint.cc).
class SnapshotRegistry {
 public:
  /// RAII pin: while alive, versions visible at `lsn` survive pruning.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { Reset(); }
    Pin(Pin&& other) noexcept
        : registry_(other.registry_), lsn_(other.lsn_) {
      other.registry_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Reset();
        registry_ = other.registry_;
        lsn_ = other.lsn_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    uint64_t lsn() const { return lsn_; }
    bool pinned() const { return registry_ != nullptr; }
    void Reset();

   private:
    friend class SnapshotRegistry;
    /// Only Acquire / AcquireCurrent construct live pins: the registry
    /// insert must happen under mu_, in the same critical section that
    /// chose `lsn`.
    Pin(SnapshotRegistry* registry, uint64_t lsn)
        : registry_(registry), lsn_(lsn) {}

    SnapshotRegistry* registry_ = nullptr;
    uint64_t lsn_ = 0;
  };

  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  Pin Acquire(uint64_t lsn);

  /// Pins the LSN `current()` returns, evaluating it and registering the
  /// pin in ONE critical section of the registry mutex — the mutex
  /// OldestPinnedOr holds while a checkpoint computes its prune floor.
  /// Pinning the "newest visible" LSN MUST go through this (not a load
  /// followed by Acquire): a prune floor computed between the load and
  /// the insert would miss the nascent pin and garbage-collect versions
  /// the snapshot still needs.
  Pin AcquireCurrent(const std::function<uint64_t()>& current);

  /// The oldest pinned snapshot LSN, or `fallback` when nothing is
  /// pinned (callers pass the current commit head: with no readers, only
  /// the head state needs to stay reconstructible).
  uint64_t OldestPinnedOr(uint64_t fallback) const;

  size_t num_pinned() const;

  /// Snapshot of the pinned set plus a floor, taken in ONE critical
  /// section of the registry mutex (commit-time incremental pruning,
  /// docs/CONCURRENCY.md): `*pins` gets every pinned LSN ascending, and
  /// the returned floor is `current()` evaluated under the mutex — so a
  /// pin registered later (via AcquireCurrent against the same source)
  /// necessarily reads an LSN >= the floor and cannot need a version the
  /// caller prunes below it.
  uint64_t CollectPinned(const std::function<uint64_t()>& current,
                         std::vector<uint64_t>* pins) const;

  /// Non-blocking variant for commit-time incremental pruning: returns
  /// false (collecting nothing) if the registry mutex is contended — a
  /// pin acquisition may be parked inside its critical section, and a
  /// committer must never wait behind it (skipping a prune is always
  /// safe; the next commit or checkpoint retries).
  bool TryCollectPinned(const std::function<uint64_t()>& current,
                        std::vector<uint64_t>* pins, uint64_t* floor) const;

 private:
  friend class Pin;
  void ReleaseLocked(uint64_t lsn);

  mutable std::mutex mu_;
  std::multiset<uint64_t> pinned_;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_MVCC_H_
