#ifndef SOPR_STORAGE_TUPLE_HANDLE_H_
#define SOPR_STORAGE_TUPLE_HANDLE_H_

#include <cstdint>

namespace sopr {

/// System tuple handle (§2): "a distinct, non-reusable value identifying
/// the tuple and its containing table". Handles are assigned from a single
/// database-wide monotonic counter and are never reused, so a handle that
/// appears in a transition effect's D component still uniquely names the
/// (now deleted) tuple.
using TupleHandle = uint64_t;

/// Zero is never assigned to a tuple.
inline constexpr TupleHandle kInvalidHandle = 0;

}  // namespace sopr

#endif  // SOPR_STORAGE_TUPLE_HANDLE_H_
