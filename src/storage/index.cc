#include "storage/index.h"

namespace sopr {

void ColumnIndex::Insert(const Value& key, TupleHandle handle) {
  if (key.is_null()) return;
  buckets_[NormalizeKey(key)].insert(handle);
}

void ColumnIndex::Erase(const Value& key, TupleHandle handle) {
  if (key.is_null()) return;
  auto it = buckets_.find(NormalizeKey(key));
  if (it == buckets_.end()) return;
  it->second.erase(handle);
  if (it->second.empty()) buckets_.erase(it);
}

size_t ColumnIndex::num_entries() const {
  size_t total = 0;
  for (const auto& [key, handles] : buckets_) {
    (void)key;
    total += handles.size();
  }
  return total;
}

const std::set<TupleHandle>* ColumnIndex::Lookup(const Value& key) const {
  if (key.is_null()) return nullptr;
  auto it = buckets_.find(NormalizeKey(key));
  return it == buckets_.end() ? nullptr : &it->second;
}

}  // namespace sopr
