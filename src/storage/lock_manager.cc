#include "storage/lock_manager.h"

#include <algorithm>

#include "common/failpoint.h"

namespace sopr {

namespace {

/// Standard hierarchical compatibility matrix. Rows/cols indexed by the
/// LockMode enum value (IS, IX, S, X).
constexpr bool kCompatible[4][4] = {
    // IS     IX     S      X
    {true, true, true, false},    // IS
    {true, true, false, false},   // IX
    {true, false, true, false},   // S
    {false, false, false, false}  // X
};

bool Compatible(LockMode a, LockMode b) {
  return kCompatible[static_cast<int>(a)][static_cast<int>(b)];
}

/// The weakest single mode that covers both (upgrade arithmetic):
/// IS is absorbed by anything, X absorbs everything, IX+S = X (the only
/// genuinely mixed pair: read the whole table AND write some records).
LockMode Combine(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  if (a == LockMode::kIS) return b;
  if (b == LockMode::kIS) return a;
  return LockMode::kX;  // {IX,S} in either order
}

}  // namespace

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

Status LockManager::AcquireTable(uint64_t txn, const std::string& table,
                                 LockMode mode) {
  SOPR_FAILPOINT_RETURN("lock.acquire");
  std::unique_lock<std::mutex> lock(mu_);
  return AcquireLocked(lock, txn, LockKey{table, kInvalidHandle}, mode);
}

Status LockManager::AcquireRecord(uint64_t txn, const std::string& table,
                                  TupleHandle handle, LockMode mode) {
  SOPR_FAILPOINT_RETURN("lock.acquire");
  const LockMode intent =
      mode == LockMode::kX ? LockMode::kIX : LockMode::kIS;
  std::unique_lock<std::mutex> lock(mu_);
  SOPR_RETURN_NOT_OK(
      AcquireLocked(lock, txn, LockKey{table, kInvalidHandle}, intent));
  return AcquireLocked(lock, txn, LockKey{table, handle}, mode);
}

Status LockManager::AcquireLocked(std::unique_lock<std::mutex>& lock,
                                  uint64_t txn, const LockKey& key,
                                  LockMode mode) {
  bool hit_wait_site = false;
  for (;;) {
    auto& holders = granted_[key];
    LockMode desired = mode;
    auto own = holders.find(txn);
    if (own != holders.end()) desired = Combine(own->second, mode);
    std::vector<uint64_t> conflicts;
    for (const auto& [holder, held_mode] : holders) {
      if (holder != txn && !Compatible(desired, held_mode)) {
        conflicts.push_back(holder);
      }
    }
    if (conflicts.empty()) {
      if (own == holders.end()) {
        holders.emplace(txn, desired);
        held_[txn].push_back(key);
      } else {
        own->second = desired;
      }
      waits_for_.erase(txn);
      return Status::OK();
    }

    // About to block. The wait failpoints are sync points for litmus
    // schedules (and failure-injection points for chaos); a blocking
    // trigger parks the thread HERE, before the real cv wait, so they
    // must be hit with the manager mutex released. Hit once per
    // acquisition, not per spurious wakeup.
    if (!hit_wait_site) {
      hit_wait_site = true;
      lock.unlock();
      Status fp = SOPR_FAILPOINT("lock.wait");
      if (fp.ok()) {
        fp = FailpointRegistry::Instance().Hit(
            ("lock.wait." + key.table).c_str());
      }
      lock.lock();
      if (!fp.ok()) {
        waits_for_.erase(txn);
        return fp;
      }
      continue;  // holders may have changed while unlocked
    }

    // Record the wait edges and look for a cycle BEFORE sleeping: the
    // requester whose edge closes a cycle is the deterministic victim.
    waits_for_[txn] = conflicts;
    if (WaitCausesCycle(txn)) {
      waits_for_.erase(txn);
      deadlocks_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      (void)SOPR_FAILPOINT("lock.deadlock");
      lock.lock();
      return Status::Deadlock("lock wait on " + key.table +
                              " would close a deadlock cycle; transaction "
                              "chosen as victim");
    }
    ++waiting_;
    cv_.notify_all();  // wake WaitForWaiters barriers
    cv_.wait(lock);
    --waiting_;
    waits_for_.erase(txn);
  }
}

bool LockManager::WaitCausesCycle(uint64_t waiter) const {
  // DFS from the waiter over waits_for_; a path back to the waiter means
  // its new edges closed a cycle.
  std::vector<uint64_t> stack{waiter};
  std::vector<uint64_t> seen;
  while (!stack.empty()) {
    uint64_t node = stack.back();
    stack.pop_back();
    auto edges = waits_for_.find(node);
    if (edges == waits_for_.end()) continue;
    for (uint64_t next : edges->second) {
      if (next == waiter) return true;
      if (std::find(seen.begin(), seen.end(), next) == seen.end()) {
        seen.push_back(next);
        stack.push_back(next);
      }
    }
  }
  return false;
}

void LockManager::ReleaseAll(uint64_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto held = held_.find(txn);
  if (held != held_.end()) {
    for (const LockKey& key : held->second) {
      auto entry = granted_.find(key);
      if (entry == granted_.end()) continue;
      entry->second.erase(txn);
      if (entry->second.empty()) granted_.erase(entry);
    }
    held_.erase(held);
  }
  waits_for_.erase(txn);
  cv_.notify_all();
}

size_t LockManager::HeldKeys(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto held = held_.find(txn);
  return held == held_.end() ? 0 : held->second.size();
}

void LockManager::WaitForWaiters(size_t n) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return waiting_ >= n; });
}

}  // namespace sopr
