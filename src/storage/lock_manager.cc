#include "storage/lock_manager.h"

#include <algorithm>

#include "common/failpoint.h"

namespace sopr {

namespace {

/// Standard hierarchical compatibility matrix. Rows/cols indexed by the
/// LockMode enum value (IS, IX, S, X).
constexpr bool kCompatible[4][4] = {
    // IS     IX     S      X
    {true, true, true, false},    // IS
    {true, true, false, false},   // IX
    {true, false, true, false},   // S
    {false, false, false, false}  // X
};

bool Compatible(LockMode a, LockMode b) {
  return kCompatible[static_cast<int>(a)][static_cast<int>(b)];
}

/// The weakest single mode that covers both (upgrade arithmetic):
/// IS is absorbed by anything, X absorbs everything, IX+S = X (the only
/// genuinely mixed pair: read the whole table AND write some records).
LockMode Combine(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  if (a == LockMode::kIS) return b;
  if (b == LockMode::kIS) return a;
  return LockMode::kX;  // {IX,S} in either order
}

}  // namespace

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

Status LockManager::AcquireTable(uint64_t txn, const std::string& table,
                                 LockMode mode) {
  SOPR_FAILPOINT_RETURN("lock.acquire");
  std::unique_lock<std::mutex> lock(mu_);
  return AcquireLocked(lock, txn, LockKey{table, kInvalidHandle}, mode);
}

Status LockManager::AcquireRecord(uint64_t txn, const std::string& table,
                                  TupleHandle handle, LockMode mode) {
  SOPR_FAILPOINT_RETURN("lock.acquire");
  const LockMode intent =
      mode == LockMode::kX ? LockMode::kIX : LockMode::kIS;
  std::unique_lock<std::mutex> lock(mu_);
  SOPR_RETURN_NOT_OK(
      AcquireLocked(lock, txn, LockKey{table, kInvalidHandle}, intent));
  return AcquireLocked(lock, txn, LockKey{table, handle}, mode);
}

Status LockManager::AcquireLocked(std::unique_lock<std::mutex>& lock,
                                  uint64_t txn, const LockKey& key,
                                  LockMode mode) {
  bool hit_wait_site = false;
  // Snapshot the cancellation sources once per acquisition: the ambient
  // context (session kill / statement timeout / txn deadline) and the
  // manager's per-wait bound, started at the first block below.
  const CancelContext* cancel = CancelScope::Current();
  Deadline wait_deadline = Deadline::Never();
  for (;;) {
    auto& holders = granted_[key];
    LockMode desired = mode;
    auto own = holders.find(txn);
    if (own != holders.end()) desired = Combine(own->second, mode);
    std::vector<uint64_t> conflicts;
    for (const auto& [holder, held_mode] : holders) {
      if (holder != txn && !Compatible(desired, held_mode)) {
        conflicts.push_back(holder);
      }
    }
    if (conflicts.empty()) {
      if (own == holders.end()) {
        holders.emplace(txn, desired);
        held_[txn].push_back(key);
      } else {
        own->second = desired;
      }
      waits_for_.erase(txn);
      return Status::OK();
    }

    // About to block. The wait failpoints are sync points for litmus
    // schedules (and failure-injection points for chaos); a blocking
    // trigger parks the thread HERE, before the real cv wait, so they
    // must be hit with the manager mutex released. Hit once per
    // acquisition, not per spurious wakeup.
    if (!hit_wait_site) {
      hit_wait_site = true;
      if (wait_timeout_ > std::chrono::microseconds(0)) {
        wait_deadline = Deadline::After(wait_timeout_);
      }
      lock.unlock();
      Status fp = SOPR_FAILPOINT("lock.wait");
      if (fp.ok()) {
        fp = FailpointRegistry::Instance().Hit(
            ("lock.wait." + key.table).c_str());
      }
      lock.lock();
      if (!fp.ok()) {
        waits_for_.erase(txn);
        return fp;
      }
      continue;  // holders may have changed while unlocked
    }

    // Record the wait edges and look for a cycle BEFORE sleeping: the
    // requester whose edge closes a cycle is the deterministic victim.
    waits_for_[txn] = conflicts;
    if (WaitCausesCycle(txn)) {
      waits_for_.erase(txn);
      deadlocks_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      (void)SOPR_FAILPOINT("lock.deadlock");
      lock.lock();
      return Status::Deadlock("lock wait on " + key.table +
                              " would close a deadlock cycle; transaction "
                              "chosen as victim");
    }
    ++waiting_;
    cv_.notify_all();  // wake WaitForWaiters barriers
    // Bounded park: wait_until against the earlier of the lock-wait
    // deadline and the ambient cancel deadline, shortened to the poll
    // quantum when an asynchronous kill token must be noticed (tokens
    // have no cv of their own). Unbounded only when nothing bounds it.
    const Deadline bound = Deadline::Earlier(
        wait_deadline,
        cancel != nullptr ? cancel->deadline() : Deadline::Never());
    const bool poll = cancel != nullptr && cancel->has_tokens();
    if (!bound.has_deadline() && !poll) {
      cv_.wait(lock);
    } else {
      CancelClock::time_point until =
          bound.has_deadline() ? bound.at() : CancelClock::time_point::max();
      if (poll) {
        until = std::min(until, CancelClock::now() + kCancelPollQuantum);
      }
      cv_.wait_until(lock, until);
    }
    --waiting_;
    waits_for_.erase(txn);
    // Give up? Attribute in priority order: an explicit kill beats a
    // deadline, the ambient budget beats the per-wait bound.
    Status interrupted =
        cancel != nullptr ? cancel->Check("lock wait") : Status::OK();
    if (interrupted.ok() && wait_deadline.Expired()) {
      interrupted = Status::LockTimeout(
          "lock wait on " + key.table + " (" + LockModeName(mode) +
          ") exceeded the lock-wait timeout; transaction rolled back");
    }
    if (!interrupted.ok()) {
      // Edges are already erased above, under the mutex — no orphan
      // wait-for edges survive for later cycle searches to trip on.
      wait_timeouts_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      Status fp = SOPR_FAILPOINT("lock.wait.timeout");
      lock.lock();
      if (!fp.ok()) return fp;
      return interrupted;
    }
  }
}

bool LockManager::WaitCausesCycle(uint64_t waiter) const {
  // DFS from the waiter over waits_for_; a path back to the waiter means
  // its new edges closed a cycle.
  std::vector<uint64_t> stack{waiter};
  std::vector<uint64_t> seen;
  while (!stack.empty()) {
    uint64_t node = stack.back();
    stack.pop_back();
    auto edges = waits_for_.find(node);
    if (edges == waits_for_.end()) continue;
    for (uint64_t next : edges->second) {
      if (next == waiter) return true;
      if (std::find(seen.begin(), seen.end(), next) == seen.end()) {
        seen.push_back(next);
        stack.push_back(next);
      }
    }
  }
  return false;
}

void LockManager::ReleaseAll(uint64_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto held = held_.find(txn);
  if (held != held_.end()) {
    for (const LockKey& key : held->second) {
      auto entry = granted_.find(key);
      if (entry == granted_.end()) continue;
      entry->second.erase(txn);
      if (entry->second.empty()) granted_.erase(entry);
    }
    held_.erase(held);
  }
  waits_for_.erase(txn);
  cv_.notify_all();
}

size_t LockManager::HeldKeys(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto held = held_.find(txn);
  return held == held_.end() ? 0 : held->second.size();
}

size_t LockManager::WaitEdgeCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waits_for_.size();
}

void LockManager::WaitForWaiters(size_t n) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return waiting_ >= n; });
}

}  // namespace sopr
