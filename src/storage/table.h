#ifndef SOPR_STORAGE_TABLE_H_
#define SOPR_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "exec/column_vector.h"
#include "storage/index.h"
#include "storage/mvcc.h"
#include "storage/tuple_handle.h"
#include "types/row.h"

namespace sopr {

/// Heap storage for one table: handle → row. Duplicate rows are allowed
/// (they have distinct handles, per the paper's model). Iteration order is
/// ascending handle, i.e. insertion order, which keeps traces deterministic.
///
/// MVCC (docs/CONCURRENCY.md): after EnableMvcc(), every mutation also
/// maintains per-tuple version state under a per-table latch —
///   - live_begin: the commit LSN from which the current heap row is
///     visible (absent = 0, i.e. visible to every snapshot; kPendingLsn
///     while the writing transaction is in flight);
///   - per-handle chains of superseded RowVersions, each ending at the
///     LSN of the commit that superseded it.
/// SnapshotScan / SnapshotProbeEq read the state as of a snapshot LSN
/// under the shared side of the latch, entirely concurrent with the
/// single writer (who takes the exclusive side only for the short heap +
/// version critical section). The unversioned accessors (rows(), Get)
/// keep reading the write-side head and rely on the caller's locking,
/// exactly as before.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Adds a row under a caller-supplied handle (the Database allocates
  /// handles so they are unique across tables). Row must already be
  /// schema-checked by the caller.
  Status Insert(TupleHandle handle, Row row);

  /// Removes the row; fails if the handle is absent.
  Status Erase(TupleHandle handle);

  /// Replaces the row in place; fails if the handle is absent.
  Status Replace(TupleHandle handle, Row row);

  bool Contains(TupleHandle handle) const { return rows_.count(handle) > 0; }

  /// Fails with ExecutionError if the handle is absent.
  Result<const Row*> Get(TupleHandle handle) const;

  /// Ordered (handle, row) view for scans.
  const std::map<TupleHandle, Row>& rows() const { return rows_; }

  // --- Latched head accessors (concurrent writers) ------------------------
  // rows()/Get() read the write-side head unlatched and rely on the
  // caller's locking; with record-level locking two writers mutate the
  // same table concurrently, so readers of the head must copy out under
  // the shared side of the MVCC latch (the same latch every mutation
  // takes exclusive). All three degrade to plain unlatched reads with
  // MVCC off.

  /// Copy-out Get: the row under `handle`, ExecutionError if absent.
  Result<Row> GetCopy(TupleHandle handle) const;

  /// Batched GetCopy: copies the rows under `handles` (in order) under
  /// one shared-latch acquisition instead of one per row — the
  /// vectorized transition-table materialization path. Fails on the
  /// first absent handle with GetCopy's error.
  Status GetCopyBatch(const std::vector<TupleHandle>& handles,
                      std::vector<Row>* out) const;

  /// Appends every (handle, row) of the current head in handle order.
  void CopyRows(std::vector<std::pair<TupleHandle, Row>>* out) const;

  /// CopyRows plus columnar materialization under the SAME shared-latch
  /// acquisition: after copying, decomposes each column index of
  /// `hot_cols` over the copied rows into `cols` (parallel to
  /// `hot_cols`; docs/EXECUTION.md "Columnar chunks"). An entry that
  /// cannot decompose (type mismatch) is left with a false flag in
  /// `built` and the executor's pointer path covers that column. `out`
  /// must start empty and MUST NOT be mutated afterwards — string
  /// column entries borrow from the copied rows.
  void CopyRowsColumnar(std::vector<std::pair<TupleHandle, Row>>* out,
                        const std::vector<size_t>& hot_cols,
                        std::vector<exec::ColumnVector>* cols,
                        std::vector<char>* built) const;

  /// Index probe returning handles by value. False when `column` has no
  /// index (caller falls back to a scan).
  bool IndexLookupCopy(size_t column, const Value& value,
                       std::vector<TupleHandle>* out) const;

  /// Builds an equality index on `column` (idempotent: a second request
  /// on the same column is a no-op). Existing rows are indexed
  /// immediately; subsequent mutations maintain it.
  Status CreateIndex(size_t column);

  /// The index on `column`, or nullptr.
  const ColumnIndex* GetIndex(size_t column) const;

  size_t num_indexes() const { return indexes_.size(); }

  // --- MVCC ---------------------------------------------------------------

  /// Turns on version tracking (idempotent). Existing rows get no
  /// explicit version entry: absent means begin_lsn 0, visible to every
  /// snapshot — which is exactly right for recovered or pre-existing
  /// state.
  void EnableMvcc();
  bool mvcc_enabled() const { return mvcc_ != nullptr; }

  /// Structural undoes of the three mutations, used by Database rollback
  /// so version state reverts in lockstep with the heap (a plain inverse
  /// mutation would instead record the rollback as new history). With
  /// MVCC off they degrade to Erase / Insert / Replace.
  Status RollbackInsert(TupleHandle handle);
  Status RollbackDelete(TupleHandle handle, Row old_row);
  Status RollbackUpdate(TupleHandle handle, Row old_row);

  /// Commit point for `handle`: rewrites every kPendingLsn sentinel this
  /// transaction left on its version state to `commit_lsn`. Idempotent
  /// per (handle, commit). No-op with MVCC off.
  void StampVersions(TupleHandle handle, uint64_t commit_lsn);

  /// Appends every (handle, row) visible at snapshot `lsn`, in ascending
  /// handle order. With MVCC off this is a plain copy of rows().
  void SnapshotScan(uint64_t lsn,
                    std::vector<std::pair<TupleHandle, Row>>* out) const;

  /// Like SnapshotScan narrowed to rows whose `column` (probably) equals
  /// `value`: live rows come from the equality index when one exists,
  /// superseded versions from a chain scan. May return a superset (the
  /// executor re-applies the predicate); never misses a matching row.
  void SnapshotProbeEq(uint64_t lsn, size_t column, const Value& value,
                       std::vector<std::pair<TupleHandle, Row>>* out) const;

  /// Discards version state no snapshot at or after `floor` can see:
  /// superseded versions with end_lsn <= floor and live_begin entries
  /// with begin_lsn <= floor (the default 0 takes over). Returns the
  /// number of row versions dropped.
  size_t PruneVersions(uint64_t floor);

  /// Incremental per-handle prune (commit-time, docs/CONCURRENCY.md):
  /// drops every superseded version of `handle` that no currently pinned
  /// snapshot (`pins`, ascending) and no future pin (which gets an LSN
  /// >= `floor`) can see — keep [begin, end) iff some pin falls inside
  /// it or end > floor; pending versions always survive. Also retires
  /// the live_begin entry when every present and future pin sees the
  /// live row anyway. Returns versions dropped.
  size_t PruneChainPinned(TupleHandle handle,
                          const std::vector<uint64_t>& pins, uint64_t floor);

  /// True iff `handle` carries no kPendingLsn sentinel — i.e. no
  /// in-flight transaction state. After an abort's structural rollback
  /// this must hold for every handle the transaction touched (the
  /// aborter held X locks, so nobody else could have left one).
  bool VerifyNoPending(TupleHandle handle) const;

  /// Superseded row versions currently retained (0 with MVCC off).
  size_t version_count() const;

 private:
  struct MvccState {
    mutable std::shared_mutex mu;
    /// Commit LSN from which the live heap row is visible; absent = 0.
    std::map<TupleHandle, uint64_t> live_begin;
    /// Superseded versions per handle, oldest first. Interval [begin,
    /// end) of consecutive entries (plus the live row) are disjoint, so
    /// at most one version of a handle is visible at any snapshot.
    std::map<TupleHandle, std::vector<RowVersion>> chains;
  };

  /// The version of `handle` visible at `lsn` among superseded entries,
  /// or nullptr. Caller holds mvcc_->mu.
  static const Row* VisibleChainRow(const std::vector<RowVersion>& chain,
                                    uint64_t lsn);
  /// True when the live heap row of `handle` is visible at `lsn`.
  /// Caller holds mvcc_->mu.
  bool LiveVisibleLocked(TupleHandle handle, uint64_t lsn) const;
  void SnapshotScanLocked(uint64_t lsn,
                          std::vector<std::pair<TupleHandle, Row>>* out) const;

  TableSchema schema_;
  std::map<TupleHandle, Row> rows_;
  std::vector<ColumnIndex> indexes_;
  /// Null until EnableMvcc(); behind a pointer because Table is movable
  /// and a shared_mutex is not.
  std::unique_ptr<MvccState> mvcc_;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_TABLE_H_
