#ifndef SOPR_STORAGE_TABLE_H_
#define SOPR_STORAGE_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/index.h"
#include "storage/tuple_handle.h"
#include "types/row.h"

namespace sopr {

/// Heap storage for one table: handle → row. Duplicate rows are allowed
/// (they have distinct handles, per the paper's model). Iteration order is
/// ascending handle, i.e. insertion order, which keeps traces deterministic.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Adds a row under a caller-supplied handle (the Database allocates
  /// handles so they are unique across tables). Row must already be
  /// schema-checked by the caller.
  Status Insert(TupleHandle handle, Row row);

  /// Removes the row; fails if the handle is absent.
  Status Erase(TupleHandle handle);

  /// Replaces the row in place; fails if the handle is absent.
  Status Replace(TupleHandle handle, Row row);

  bool Contains(TupleHandle handle) const { return rows_.count(handle) > 0; }

  /// Fails with ExecutionError if the handle is absent.
  Result<const Row*> Get(TupleHandle handle) const;

  /// Ordered (handle, row) view for scans.
  const std::map<TupleHandle, Row>& rows() const { return rows_; }

  /// Builds an equality index on `column` (idempotent: a second request
  /// on the same column is a no-op). Existing rows are indexed
  /// immediately; subsequent mutations maintain it.
  Status CreateIndex(size_t column);

  /// The index on `column`, or nullptr.
  const ColumnIndex* GetIndex(size_t column) const;

  size_t num_indexes() const { return indexes_.size(); }

 private:
  TableSchema schema_;
  std::map<TupleHandle, Row> rows_;
  std::vector<ColumnIndex> indexes_;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_TABLE_H_
