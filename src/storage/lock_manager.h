#ifndef SOPR_STORAGE_LOCK_MANAGER_H_
#define SOPR_STORAGE_LOCK_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "storage/tuple_handle.h"

namespace sopr {

/// Hierarchical lock modes in the System R tradition. Intent modes (IS/IX)
/// are taken on a table before S/X on one of its records; a full-scan read
/// takes table S and a full-scan write takes table X, which is what makes
/// record locks and scans conflict correctly without predicate locks.
enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kX = 3 };

const char* LockModeName(LockMode mode);

/// Record-level write-lock manager (docs/CONCURRENCY.md, "Record-level
/// write locking"). Strict two-phase: a transaction's locks are released
/// only by ReleaseAll at commit/abort of its whole rule fixpoint, never at
/// statement end and never on partial (savepoint) rollback — that is what
/// keeps each fixpoint's history serializable per the paper's §4.
///
/// Deadlock policy: detection at wait time over the wait-for graph, under
/// the manager mutex. The REQUESTER whose wait would close a cycle is the
/// victim: it receives Status::kDeadlock instead of blocking, and its
/// transaction is rolled back structurally by the caller via the existing
/// MVCC undo/journal machinery. Detection is complete because every edge
/// insertion runs cycle search before the thread sleeps, so the closing
/// edge of any cycle is always examined by a live thread.
///
/// Waits are bounded (docs/OVERLOAD.md): every park is a wait_until
/// against the earlier of the manager's lock-wait timeout and the
/// thread-ambient CancelContext's deadline, polling ambient kill tokens.
/// A waiter that gives up removes its wait-for edges under the mutex
/// (nothing orphaned for later cycle searches), hits the
/// `lock.wait.timeout` site, and returns kLockTimeout — or kCancelled /
/// kTimeout when the ambient context (session kill, statement or txn
/// deadline) fired first. The caller rolls the transaction back exactly
/// like a deadlock victim.
///
/// Keys are (table, handle) with handle 0 denoting the table-level lock
/// (real tuple handles start at 1, storage/tuple_handle.h).
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode` on the table-level key of `table`.
  /// Blocks until compatible with all other holders; kDeadlock if this
  /// wait would close a cycle; kInjectedFault etc. if the "lock.acquire"
  /// failpoint is armed.
  Status AcquireTable(uint64_t txn, const std::string& table, LockMode mode);

  /// Record lock: takes the implied intent lock (IS for S, IX for X) on
  /// the table first, then S/X on (table, handle).
  Status AcquireRecord(uint64_t txn, const std::string& table,
                       TupleHandle handle, LockMode mode);

  /// Releases every lock `txn` holds and wakes all waiters. Idempotent.
  void ReleaseAll(uint64_t txn);

  /// Upper bound on any single lock wait. Zero = no per-wait bound (the
  /// ambient CancelContext, if any, still bounds it). Affects waits that
  /// start after the call.
  void set_wait_timeout(std::chrono::microseconds timeout) {
    std::lock_guard<std::mutex> lock(mu_);
    wait_timeout_ = timeout;
  }
  std::chrono::microseconds wait_timeout() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wait_timeout_;
  }

  /// Number of distinct keys `txn` currently holds locks on (tests).
  size_t HeldKeys(uint64_t txn) const;

  /// Transactions with outstanding wait-for edges right now (tests: a
  /// quiesced manager must report 0 — a timed-out waiter may leave no
  /// orphan edges behind).
  size_t WaitEdgeCount() const;

  /// Test barrier: blocks until at least `n` threads are parked inside a
  /// real conflict wait (the cv wait, not a failpoint block). Lets a
  /// litmus schedule sequence a deadlock deterministically: park victim
  /// candidate A in its wait, then release B to add the closing edge.
  void WaitForWaiters(size_t n) const;

  /// Total victim aborts since construction (soak accounting).
  uint64_t deadlocks() const {
    return deadlocks_.load(std::memory_order_relaxed);
  }

  /// Total waits abandoned on timeout/cancel since construction.
  uint64_t wait_timeouts() const {
    return wait_timeouts_.load(std::memory_order_relaxed);
  }

 private:
  struct LockKey {
    std::string table;
    TupleHandle handle;  // 0 = table-level
    bool operator<(const LockKey& o) const {
      if (int c = table.compare(o.table)) return c < 0;
      return handle < o.handle;
    }
  };

  Status AcquireLocked(std::unique_lock<std::mutex>& lock, uint64_t txn,
                       const LockKey& key, LockMode mode);
  /// True iff a wait by `waiter` (whose current conflict set is implicit
  /// in waits_for_) can reach `waiter` again — i.e. the wait closes a
  /// cycle. Plain DFS over waits_for_; the graph is tiny (one node per
  /// blocked transaction).
  bool WaitCausesCycle(uint64_t waiter) const;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  /// Granted locks: key -> (txn -> strongest granted mode).
  std::map<LockKey, std::map<uint64_t, LockMode>> granted_;
  /// Reverse index for ReleaseAll.
  std::map<uint64_t, std::vector<LockKey>> held_;
  /// waiter txn -> the holders it is currently blocked behind. Rebuilt
  /// each time the waiter re-evaluates its request.
  std::map<uint64_t, std::vector<uint64_t>> waits_for_;
  size_t waiting_ = 0;  // threads parked in the cv wait (test barrier)
  /// Per-wait bound; new waits snapshot it on first block.
  std::chrono::microseconds wait_timeout_{std::chrono::seconds(10)};
  std::atomic<uint64_t> deadlocks_{0};
  std::atomic<uint64_t> wait_timeouts_{0};
};

}  // namespace sopr

#endif  // SOPR_STORAGE_LOCK_MANAGER_H_
