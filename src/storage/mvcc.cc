#include "storage/mvcc.h"

namespace sopr {

void SnapshotRegistry::Pin::Reset() {
  if (registry_ == nullptr) return;
  registry_->ReleaseLocked(lsn_);
  registry_ = nullptr;
}

void SnapshotRegistry::ReleaseLocked(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pinned_.find(lsn);
  if (it != pinned_.end()) pinned_.erase(it);
}

SnapshotRegistry::Pin SnapshotRegistry::Acquire(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_.insert(lsn);
  return Pin(this, lsn);
}

SnapshotRegistry::Pin SnapshotRegistry::AcquireCurrent(
    const std::function<uint64_t()>& current) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t lsn = current();
  pinned_.insert(lsn);
  return Pin(this, lsn);
}

uint64_t SnapshotRegistry::OldestPinnedOr(uint64_t fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pinned_.empty()) return fallback;
  return *pinned_.begin();
}

uint64_t SnapshotRegistry::CollectPinned(
    const std::function<uint64_t()>& current,
    std::vector<uint64_t>* pins) const {
  std::lock_guard<std::mutex> lock(mu_);
  pins->assign(pinned_.begin(), pinned_.end());  // multiset: ascending
  return current();
}

bool SnapshotRegistry::TryCollectPinned(
    const std::function<uint64_t()>& current,
    std::vector<uint64_t>* pins, uint64_t* floor) const {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  pins->assign(pinned_.begin(), pinned_.end());  // multiset: ascending
  *floor = current();
  return true;
}

size_t SnapshotRegistry::num_pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_.size();
}

}  // namespace sopr
