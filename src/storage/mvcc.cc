#include "storage/mvcc.h"

namespace sopr {

SnapshotRegistry::Pin::Pin(SnapshotRegistry* registry, uint64_t lsn)
    : registry_(registry), lsn_(lsn) {
  std::lock_guard<std::mutex> lock(registry_->mu_);
  registry_->pinned_.insert(lsn_);
}

void SnapshotRegistry::Pin::Reset() {
  if (registry_ == nullptr) return;
  registry_->ReleaseLocked(lsn_);
  registry_ = nullptr;
}

void SnapshotRegistry::ReleaseLocked(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pinned_.find(lsn);
  if (it != pinned_.end()) pinned_.erase(it);
}

SnapshotRegistry::Pin SnapshotRegistry::Acquire(uint64_t lsn) {
  return Pin(this, lsn);
}

uint64_t SnapshotRegistry::OldestPinnedOr(uint64_t fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pinned_.empty()) return fallback;
  return *pinned_.begin();
}

size_t SnapshotRegistry::num_pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_.size();
}

}  // namespace sopr
