#ifndef SOPR_STORAGE_REDO_SINK_H_
#define SOPR_STORAGE_REDO_SINK_H_

#include <string_view>

#include "common/status.h"
#include "storage/tuple_handle.h"
#include "storage/undo_log.h"
#include "types/row.h"

namespace sopr {

/// Receiver for physical redo records, one per applied heap mutation.
/// Implemented by the WAL writer; the storage layer depends only on this
/// interface, never on the wal/ layer.
///
/// `pos` is the undo-log index of the mutation's own undo record
/// (UndoLog::mark() before the mutation was logged). Redo records are
/// buffered until commit, and Database::RollbackTo(mark) calls
/// RedoDiscardAfter(mark) so that redo for undone mutations never reaches
/// the log — the WAL only ever contains final committed state.
///
/// A failing Redo* call means the mutation cannot be made durable; the
/// caller reverts it (heap + undo record) and surfaces the error, exactly
/// as for a failed undo append.
class RedoSink {
 public:
  virtual ~RedoSink() = default;

  virtual Status RedoInsert(UndoLog::Mark pos, std::string_view table,
                            TupleHandle handle, const Row& after) = 0;
  virtual Status RedoDelete(UndoLog::Mark pos, std::string_view table,
                            TupleHandle handle, const Row& before) = 0;
  virtual Status RedoUpdate(UndoLog::Mark pos, std::string_view table,
                            TupleHandle handle, const Row& before,
                            const Row& after) = 0;

  /// Drops buffered redo whose undo position is >= `mark` (infallible:
  /// discarding in-memory state cannot fail).
  virtual void RedoDiscardAfter(UndoLog::Mark mark) = 0;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_REDO_SINK_H_
