#ifndef SOPR_STORAGE_DATABASE_H_
#define SOPR_STORAGE_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/lock_manager.h"
#include "storage/mvcc.h"
#include "storage/redo_sink.h"
#include "storage/table.h"
#include "storage/tuple_handle.h"
#include "storage/undo_log.h"

namespace sopr {

/// A single-user relational database state: catalog + heap tables +
/// transaction-scope undo log. This is the substrate the paper assumes
/// ("multiple users, concurrent processing, and failures are all
/// transparent", §2.1): mutations are applied immediately and can be
/// rolled back to any earlier mark within the current transaction.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Catalog& catalog() const { return catalog_; }

  /// DDL: creates the table (schema-checked by the catalog).
  Status CreateTable(TableSchema schema);
  Status DropTable(std::string_view name);

  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;

  /// DML primitives. Each validates against the schema, applies the
  /// mutation, assigns/uses handles, and appends an undo record.
  Result<TupleHandle> InsertRow(std::string_view table, Row row);
  Status DeleteRow(std::string_view table, TupleHandle handle);
  Status UpdateRow(std::string_view table, TupleHandle handle, Row new_row);

  /// Number of handles ever allocated (monotonic, never reused).
  TupleHandle last_handle() const {
    return next_handle_.load(std::memory_order_acquire) - 1;
  }
  TupleHandle next_handle() const {
    return next_handle_.load(std::memory_order_acquire);
  }

  /// Attaches (or detaches, with nullptr) a redo sink. Once attached,
  /// every applied mutation emits a physical redo record; a mutation whose
  /// redo cannot be buffered is reverted and fails, exactly like one whose
  /// undo cannot be logged.
  void set_wal(RedoSink* wal) { wal_ = wal; }

  /// --- Recovery-only redo application ---
  /// Applies a logged mutation verbatim: failpoints suppressed, no undo or
  /// redo emitted, before-images validated against the heap (a mismatch is
  /// kDataLoss — the log and the recovered state have diverged), and
  /// next_handle bumped past any handle seen.
  Status ApplyRedoInsert(std::string_view table, TupleHandle handle,
                         Row after);
  Status ApplyRedoDelete(std::string_view table, TupleHandle handle,
                         const Row& before);
  Status ApplyRedoUpdate(std::string_view table, TupleHandle handle,
                         const Row& before, Row after);

  /// Ensures next_handle >= `h` (recovery restores the counter from
  /// COMMIT / snapshot records so handles stay never-reused across
  /// restarts).
  void BumpNextHandle(TupleHandle h) {
    uint64_t cur = next_handle_.load(std::memory_order_relaxed);
    while (h > cur && !next_handle_.compare_exchange_weak(
                          cur, h, std::memory_order_acq_rel)) {
    }
  }

  /// --- Transaction support ---
  ///
  /// Two regimes share these entry points. In the legacy single-writer
  /// regime (no write locking, or no bound transaction) the database-wide
  /// undo log and MVCC journal are used directly, exactly as before. With
  /// write locking enabled (EnableWriteLocking) a caller binds a
  /// per-transaction context to ITS THREAD via BeginTxn/EndTxn; every
  /// transaction-scoped API below (UndoMark, RollbackTo, CommitAll,
  /// undo_log_size, the budget, and the mutation paths' undo/journal
  /// appends) then routes to the calling thread's context, so concurrent
  /// writers never share undo state. Mutations additionally take record
  /// X locks (table IX) for the bound transaction; strict two-phase —
  /// EndTxn is the single release point, after commit or full rollback.

  /// Binds a fresh transaction context to the calling thread (requires
  /// EnableWriteLocking; no-op otherwise). Must be paired with EndTxn.
  void BeginTxn();
  /// Releases every lock the thread's transaction holds and unbinds its
  /// context. Safe to call when none is bound.
  void EndTxn();
  /// True when the calling thread has a bound transaction context.
  bool InTxn() const;
  /// The bound transaction's lock-manager id (0 when unbound).
  uint64_t txn_id() const;

  /// Current undo-log position; rolling back to it undoes everything
  /// logged afterwards.
  UndoLog::Mark UndoMark() const { return active_undo().mark(); }

  /// Reverses all mutations logged after `mark` (most recent first) and
  /// truncates the log. Tuple handles consumed meanwhile stay consumed —
  /// handles are never reused even across rollback.
  Status RollbackTo(UndoLog::Mark mark);

  /// Commit point: forget undo information (the paper's model has no
  /// post-commit rollback). With MVCC on, also stamps every version this
  /// transaction wrote to `commit_lsn` — callers with a WAL pass the
  /// COMMIT record's LSN; callers without one pass 0 and get a synthetic
  /// monotonically increasing LSN.
  void CommitAll(uint64_t commit_lsn = 0);

  size_t undo_log_size() const { return active_undo().size(); }

  // --- Record-level write locking (docs/CONCURRENCY.md) -------------------

  /// Creates the lock manager; from then on, threads that BeginTxn get
  /// per-record strict-2PL write locking. Threads without a bound
  /// transaction (recovery, DDL under the scheduler's exclusive wall)
  /// bypass locking entirely.
  void EnableWriteLocking();
  LockManager* lock_manager() const { return locks_.get(); }

  /// Lock seams the query layer calls before reading the write-side
  /// head. All are no-ops unless locking is on AND the calling thread
  /// has a bound transaction (snapshot readers never lock).
  Status LockForScan(std::string_view table) const;        // table S
  Status LockForWriteScan(std::string_view table) const;   // table X
  Status LockRecordForRead(std::string_view table, TupleHandle h) const;
  Status LockRecordForWrite(std::string_view table, TupleHandle h) const;

  /// Commit-time incremental pruning: when set, CommitAll prunes each
  /// touched handle's version chain against the currently pinned
  /// snapshots plus this floor (the scheduler's published visible LSN —
  /// any future pin gets an LSN >= it). Unset (default), version state
  /// is only pruned at checkpoints, preserving the in-memory engines'
  /// ability to pin arbitrary historical LSNs.
  void set_incremental_prune_floor(std::function<uint64_t()> floor) {
    prune_floor_ = std::move(floor);
  }

  /// True iff no kPendingLsn sentinel remains on `handle` in `table`
  /// (post-abort structural integrity; see Table::VerifyNoPending).
  bool VerifyNoPending(std::string_view table, TupleHandle handle) const;

  /// The (table, handle) pairs the calling thread's transaction has
  /// mutated so far (MVCC journal snapshot; may contain duplicates).
  /// Capture BEFORE RollbackTo — rollback truncates the journal.
  std::vector<std::pair<std::string, TupleHandle>> TouchedRows() const {
    return active_journal();
  }

  // --- MVCC ---------------------------------------------------------------

  /// Turns on version tracking for every current and future table.
  /// Must happen before concurrent readers exist and after recovery (so
  /// recovered rows stay unversioned, i.e. visible at snapshot 0).
  void EnableMvcc();
  bool mvcc_enabled() const { return mvcc_enabled_; }

  /// LSN of the most recent commit (0 before the first one). This is the
  /// newest meaningful snapshot point.
  uint64_t last_commit_lsn() const {
    return last_commit_lsn_.load(std::memory_order_acquire);
  }

  /// Readers pin the snapshots they are using so checkpoint pruning
  /// keeps the versions those snapshots can see.
  SnapshotRegistry& snapshots() const { return snapshots_; }
  SnapshotRegistry::Pin PinSnapshot(uint64_t lsn) const {
    return snapshots_.Acquire(lsn);
  }

  /// Drops version state invisible to every snapshot at or after `floor`
  /// across all tables; returns versions discarded.
  size_t PruneVersions(uint64_t floor);

  /// Total superseded row versions retained across all tables.
  size_t VersionCount() const;

  /// Caps undo-log growth (0 = unlimited); a mutation that would exceed
  /// the budget fails with kResourceExhausted and is NOT applied. The log
  /// is cleared at commit, so the budget is effectively per-transaction.
  void set_undo_budget(size_t records) {
    active_undo().set_record_budget(records);
  }
  size_t undo_budget() const { return active_undo().record_budget(); }

  /// Order-independent digest over the catalog (table names, column
  /// names/types, index structure) and all table heaps and index
  /// contents. Two databases with identical logical state produce the
  /// same checksum; a schema difference, heap/index divergence, or a
  /// lost/phantom row changes it. O(total rows). Recovery certifies a
  /// restart by comparing this against the pre-crash committed value.
  uint64_t Checksum() const;

  /// Handle-insensitive variant: digests the catalog plus the multiset
  /// of row VALUES per table, ignoring tuple handles and index entries
  /// (whose contents embed handles). Two states that differ only in
  /// handle assignment — e.g. a concurrent run vs its serial replay,
  /// where interleaved inserts drew from the shared counter in a
  /// different order — compare equal; any difference in actual row data
  /// does not.
  uint64_t LogicalChecksum() const;

  /// Verifies physical invariants: the catalog and the heap agree on the
  /// set of tables, and every indexed table's index agrees exactly with
  /// its heap (each non-NULL key maps its handle; no stale entries).
  /// Returns kInternal describing the first violation.
  Status CheckInvariants() const;

 private:
  /// Per-transaction mutable state, bound to one thread between
  /// BeginTxn and EndTxn. Each concurrent writer gets its own undo log
  /// and MVCC journal; the lock manager id doubles as the wait-for-graph
  /// node.
  struct TxnContext {
    uint64_t txn_id = 0;
    UndoLog undo;
    std::vector<std::pair<std::string, TupleHandle>> journal;
  };
  /// The calling thread's (database -> context) bindings.
  static std::vector<std::pair<const Database*, std::unique_ptr<TxnContext>>>&
  TlsContexts();
  /// The calling thread's bound context for THIS database, or nullptr.
  TxnContext* txn_ctx() const;
  /// The undo log transaction-scoped APIs operate on: the bound
  /// context's when one exists, the database-wide legacy log otherwise.
  UndoLog& active_undo() const;
  std::vector<std::pair<std::string, TupleHandle>>& active_journal() const;
  /// Record-X acquisition for the bound transaction (no-op when
  /// unbound / locking off). Every mutation path calls this before
  /// touching the heap.
  Status LockMutation(std::string_view table, TupleHandle handle) const;

  /// Tripwire for the concurrent front-end (docs/CONCURRENCY.md): counts
  /// threads currently inside a mutation or rollback entry point. The
  /// commit scheduler must admit one writer at a time — unless the
  /// writers carry bound locking transactions, which serialize through
  /// the lock manager instead; if two ever overlap otherwise, the
  /// mutation fails kInternal instead of silently racing on heaps and
  /// the undo log. Reads are not counted — the front-end's shared lock
  /// covers them.
  struct MutationScope {
    explicit MutationScope(std::atomic<int>* active) : active(active) {
      exclusive = active->fetch_add(1, std::memory_order_acq_rel) == 0;
    }
    ~MutationScope() { active->fetch_sub(1, std::memory_order_acq_rel); }
    MutationScope(const MutationScope&) = delete;
    MutationScope& operator=(const MutationScope&) = delete;
    std::atomic<int>* active;
    bool exclusive;
  };
  static Status ConcurrentMutationError();

  Catalog catalog_;
  std::map<std::string, Table> tables_;  // key: lowercased name
  /// Mutable because active_undo()/active_journal() are const (they are
  /// reached from const transaction-scoped accessors like UndoMark).
  mutable UndoLog undo_;
  RedoSink* wal_ = nullptr;  // not owned; null when durability is off
  std::atomic<TupleHandle> next_handle_{1};
  std::atomic<int> active_mutators_{0};

  /// Null until EnableWriteLocking().
  std::unique_ptr<LockManager> locks_;
  std::atomic<uint64_t> next_txn_id_{1};
  /// Commit-time prune floor provider; unset = no incremental pruning.
  std::function<uint64_t()> prune_floor_;

  bool mvcc_enabled_ = false;
  /// One entry per undo record (same order): which (table, handle) this
  /// transaction touched, so CommitAll can stamp the pending version
  /// sentinels. Truncated in lockstep with the undo log on rollback.
  mutable std::vector<std::pair<std::string, TupleHandle>> mvcc_journal_;
  std::atomic<uint64_t> last_commit_lsn_{0};
  mutable SnapshotRegistry snapshots_;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_DATABASE_H_
