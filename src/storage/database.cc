#include "storage/database.h"

#include "common/string_util.h"

namespace sopr {

Status Database::CreateTable(TableSchema schema) {
  std::string key = ToLower(schema.name());
  SOPR_RETURN_NOT_OK(catalog_.AddTable(schema));
  tables_.emplace(std::move(key), Table(std::move(schema)));
  return Status::OK();
}

Status Database::DropTable(std::string_view name) {
  SOPR_RETURN_NOT_OK(catalog_.DropTable(name));
  tables_.erase(ToLower(name));
  return Status::OK();
}

Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<TupleHandle> Database::InsertRow(std::string_view table, Row row) {
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(row));
  TupleHandle handle = next_handle_++;
  SOPR_RETURN_NOT_OK(t->Insert(handle, std::move(row)));
  undo_.RecordInsert(ToLower(table), handle);
  return handle;
}

Status Database::DeleteRow(std::string_view table, TupleHandle handle) {
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_ASSIGN_OR_RETURN(const Row* row, t->Get(handle));
  Row old_row = *row;
  SOPR_RETURN_NOT_OK(t->Erase(handle));
  undo_.RecordDelete(ToLower(table), handle, std::move(old_row));
  return Status::OK();
}

Status Database::UpdateRow(std::string_view table, TupleHandle handle,
                           Row new_row) {
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(new_row));
  SOPR_ASSIGN_OR_RETURN(const Row* row, t->Get(handle));
  Row old_row = *row;
  SOPR_RETURN_NOT_OK(t->Replace(handle, std::move(new_row)));
  undo_.RecordUpdate(ToLower(table), handle, std::move(old_row));
  return Status::OK();
}

Status Database::RollbackTo(UndoLog::Mark mark) {
  const auto& records = undo_.records();
  for (size_t i = records.size(); i > mark; --i) {
    const UndoRecord& rec = records[i - 1];
    auto table_result = GetTable(rec.table);
    if (!table_result.ok()) return table_result.status();
    Table* t = table_result.value();
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        SOPR_RETURN_NOT_OK(t->Erase(rec.handle));
        break;
      case UndoRecord::Kind::kDelete:
        SOPR_RETURN_NOT_OK(t->Insert(rec.handle, rec.old_row));
        break;
      case UndoRecord::Kind::kUpdate:
        SOPR_RETURN_NOT_OK(t->Replace(rec.handle, rec.old_row));
        break;
    }
  }
  undo_.TruncateTo(mark);
  return Status::OK();
}

}  // namespace sopr
