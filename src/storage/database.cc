#include "storage/database.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/digest.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace sopr {

Status Database::ConcurrentMutationError() {
  return Status::Internal(
      "concurrent Database mutation detected: the commit scheduler must "
      "serialize writers (docs/CONCURRENCY.md)");
}

// ---------------------------------------------------------------------------
// Per-thread transaction contexts (record-level write locking)
// ---------------------------------------------------------------------------

std::vector<std::pair<const Database*, std::unique_ptr<Database::TxnContext>>>&
Database::TlsContexts() {
  // One slot per (thread, database) pair; a thread drives at most a
  // handful of engines, so linear search beats a map.
  thread_local std::vector<
      std::pair<const Database*, std::unique_ptr<TxnContext>>>
      contexts;
  return contexts;
}

Database::TxnContext* Database::txn_ctx() const {
  for (auto& [db, ctx] : TlsContexts()) {
    if (db == this) return ctx.get();
  }
  return nullptr;
}

UndoLog& Database::active_undo() const {
  TxnContext* ctx = txn_ctx();
  return ctx != nullptr ? ctx->undo : undo_;
}

std::vector<std::pair<std::string, TupleHandle>>& Database::active_journal()
    const {
  TxnContext* ctx = txn_ctx();
  return ctx != nullptr ? ctx->journal : mvcc_journal_;
}

void Database::BeginTxn() {
  if (locks_ == nullptr) return;  // legacy single-writer regime
  if (txn_ctx() != nullptr) return;  // already bound (idempotent)
  auto ctx = std::make_unique<TxnContext>();
  ctx->txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  TlsContexts().emplace_back(this, std::move(ctx));
}

void Database::EndTxn() {
  auto& contexts = TlsContexts();
  for (auto it = contexts.begin(); it != contexts.end(); ++it) {
    if (it->first != this) continue;
    if (locks_ != nullptr) locks_->ReleaseAll(it->second->txn_id);
    contexts.erase(it);
    return;
  }
}

bool Database::InTxn() const { return txn_ctx() != nullptr; }

uint64_t Database::txn_id() const {
  TxnContext* ctx = txn_ctx();
  return ctx != nullptr ? ctx->txn_id : 0;
}

void Database::EnableWriteLocking() {
  if (locks_ == nullptr) locks_ = std::make_unique<LockManager>();
}

Status Database::LockMutation(std::string_view table,
                              TupleHandle handle) const {
  if (locks_ == nullptr) return Status::OK();
  TxnContext* ctx = txn_ctx();
  if (ctx == nullptr) return Status::OK();  // recovery / exclusive-wall DDL
  return locks_->AcquireRecord(ctx->txn_id, ToLower(table), handle,
                               LockMode::kX);
}

Status Database::LockForScan(std::string_view table) const {
  if (locks_ == nullptr) return Status::OK();
  TxnContext* ctx = txn_ctx();
  if (ctx == nullptr) return Status::OK();
  return locks_->AcquireTable(ctx->txn_id, ToLower(table), LockMode::kS);
}

Status Database::LockForWriteScan(std::string_view table) const {
  if (locks_ == nullptr) return Status::OK();
  TxnContext* ctx = txn_ctx();
  if (ctx == nullptr) return Status::OK();
  return locks_->AcquireTable(ctx->txn_id, ToLower(table), LockMode::kX);
}

Status Database::LockRecordForRead(std::string_view table,
                                   TupleHandle h) const {
  if (locks_ == nullptr) return Status::OK();
  TxnContext* ctx = txn_ctx();
  if (ctx == nullptr) return Status::OK();
  return locks_->AcquireRecord(ctx->txn_id, ToLower(table), h, LockMode::kS);
}

Status Database::LockRecordForWrite(std::string_view table,
                                    TupleHandle h) const {
  return LockMutation(table, h);
}

bool Database::VerifyNoPending(std::string_view table,
                               TupleHandle handle) const {
  auto t = GetTable(table);
  if (!t.ok()) return true;  // table dropped since — nothing to leak
  return t.value()->VerifyNoPending(handle);
}

Status Database::CreateTable(TableSchema schema) {
  std::string key = ToLower(schema.name());
  SOPR_RETURN_NOT_OK(catalog_.AddTable(schema));
  auto [it, inserted] = tables_.emplace(std::move(key), Table(std::move(schema)));
  if (inserted && mvcc_enabled_) it->second.EnableMvcc();
  return Status::OK();
}

void Database::EnableMvcc() {
  mvcc_enabled_ = true;
  for (auto& [name, table] : tables_) table.EnableMvcc();
}

Status Database::DropTable(std::string_view name) {
  SOPR_RETURN_NOT_OK(catalog_.DropTable(name));
  tables_.erase(ToLower(name));
  return Status::OK();
}

Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<TupleHandle> Database::InsertRow(std::string_view table, Row row) {
  MutationScope scope(&active_mutators_);
  const bool locked_txn = txn_ctx() != nullptr;
  if (!scope.exclusive && !locked_txn) return ConcurrentMutationError();
  SOPR_FAILPOINT_RETURN("storage.insert.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(row));
  TupleHandle handle = next_handle_.fetch_add(1, std::memory_order_acq_rel);
  // The record X (with its table IX) is what excludes full-table S/X
  // scanners until this transaction commits; the fresh handle itself can
  // have no competing holder.
  SOPR_RETURN_NOT_OK(LockMutation(table, handle));
  UndoLog& undo = active_undo();
  Row wal_image;
  if (wal_ != nullptr) wal_image = row;  // after-image for the redo record
  SOPR_RETURN_NOT_OK(t->Insert(handle, std::move(row)));
  // A mutation that cannot be undo-logged (or redo-buffered) must not stay
  // applied: without the records, rollback could not remove it, or a
  // commit would silently lose it from the durable log.
  UndoLog::Mark pos = undo.mark();
  Status logged = undo.RecordInsert(ToLower(table), handle);
  if (logged.ok() && wal_ != nullptr) {
    logged = wal_->RedoInsert(pos, ToLower(table), handle, wal_image);
    if (!logged.ok()) undo.TruncateTo(pos);  // drop the orphan undo record
  }
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->RollbackInsert(handle));
    return logged;
  }
  if (mvcc_enabled_) active_journal().emplace_back(ToLower(table), handle);
  SOPR_FAILPOINT_RETURN("storage.insert.post");
  return handle;
}

Status Database::DeleteRow(std::string_view table, TupleHandle handle) {
  MutationScope scope(&active_mutators_);
  const bool locked_txn = txn_ctx() != nullptr;
  if (!scope.exclusive && !locked_txn) return ConcurrentMutationError();
  SOPR_FAILPOINT_RETURN("storage.delete.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  // Lock before reading the before-image: the row must not change under
  // us between the read and the erase.
  SOPR_RETURN_NOT_OK(LockMutation(table, handle));
  SOPR_ASSIGN_OR_RETURN(Row old_row, t->GetCopy(handle));
  UndoLog& undo = active_undo();
  SOPR_RETURN_NOT_OK(t->Erase(handle));
  UndoLog::Mark pos = undo.mark();
  Status logged = undo.RecordDelete(ToLower(table), handle, old_row);
  if (logged.ok() && wal_ != nullptr) {
    logged = wal_->RedoDelete(pos, ToLower(table), handle, old_row);
    if (!logged.ok()) undo.TruncateTo(pos);  // drop the orphan undo record
  }
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->RollbackDelete(handle, std::move(old_row)));
    return logged;
  }
  if (mvcc_enabled_) active_journal().emplace_back(ToLower(table), handle);
  SOPR_FAILPOINT_RETURN("storage.delete.post");
  return Status::OK();
}

Status Database::UpdateRow(std::string_view table, TupleHandle handle,
                           Row new_row) {
  MutationScope scope(&active_mutators_);
  const bool locked_txn = txn_ctx() != nullptr;
  if (!scope.exclusive && !locked_txn) return ConcurrentMutationError();
  SOPR_FAILPOINT_RETURN("storage.update.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(new_row));
  SOPR_RETURN_NOT_OK(LockMutation(table, handle));
  SOPR_ASSIGN_OR_RETURN(Row old_row, t->GetCopy(handle));
  UndoLog& undo = active_undo();
  Row wal_after;
  if (wal_ != nullptr) wal_after = new_row;  // post-image for the redo record
  SOPR_RETURN_NOT_OK(t->Replace(handle, std::move(new_row)));
  UndoLog::Mark pos = undo.mark();
  Status logged = undo.RecordUpdate(ToLower(table), handle, old_row);
  if (logged.ok() && wal_ != nullptr) {
    logged = wal_->RedoUpdate(pos, ToLower(table), handle, old_row, wal_after);
    if (!logged.ok()) undo.TruncateTo(pos);  // drop the orphan undo record
  }
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->RollbackUpdate(handle, std::move(old_row)));
    return logged;
  }
  if (mvcc_enabled_) active_journal().emplace_back(ToLower(table), handle);
  SOPR_FAILPOINT_RETURN("storage.update.post");
  return Status::OK();
}

Status Database::RollbackTo(UndoLog::Mark mark) {
  MutationScope scope(&active_mutators_);
  if (!scope.exclusive && txn_ctx() == nullptr) {
    return ConcurrentMutationError();
  }
  // Undone mutations must never reach the durable log: drop their
  // buffered redo records before touching the heap.
  if (wal_ != nullptr) wal_->RedoDiscardAfter(mark);
  // Rollback replays the undo log through the same Table mutation code the
  // failpoints instrument; it must be infallible or a failed transaction
  // could land in a third state between "committed" and "S0". Locks are
  // NOT released here (strict 2PL): a partial rollback — a failed rule
  // action, a savepoint — keeps the transaction running, and even a full
  // abort holds its locks until EndTxn so no other writer can observe
  // the rollback mid-flight.
  FailpointRegistry::SuppressScope no_failpoints;
  UndoLog& undo = active_undo();
  const auto& records = undo.records();
  for (size_t i = records.size(); i > mark; --i) {
    const UndoRecord& rec = records[i - 1];
    auto table_result = GetTable(rec.table);
    if (!table_result.ok()) return table_result.status();
    Table* t = table_result.value();
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        SOPR_RETURN_NOT_OK(t->RollbackInsert(rec.handle));
        break;
      case UndoRecord::Kind::kDelete:
        SOPR_RETURN_NOT_OK(t->RollbackDelete(rec.handle, rec.old_row));
        break;
      case UndoRecord::Kind::kUpdate:
        SOPR_RETURN_NOT_OK(t->RollbackUpdate(rec.handle, rec.old_row));
        break;
    }
  }
  undo.TruncateTo(mark);
  // Keep the MVCC journal 1:1 with the undo log: the rolled-back
  // mutations left no version state behind (structural undo), so their
  // journal entries must go too.
  auto& journal = active_journal();
  if (journal.size() > mark) journal.resize(mark);
  return Status::OK();
}

void Database::CommitAll(uint64_t commit_lsn) {
  auto& journal = active_journal();
  if (mvcc_enabled_ && !journal.empty()) {
    if (commit_lsn == 0) {
      // No WAL: synthesize a commit LSN. The single-writer discipline —
      // or, with concurrent writers, the rule engine's commit mutex —
      // makes the read-modify-write safe.
      commit_lsn = last_commit_lsn_.load(std::memory_order_acquire) + 1;
    }
    for (const auto& [table, handle] : journal) {
      auto t = GetTable(table);
      if (t.ok()) t.value()->StampVersions(handle, commit_lsn);
    }
    if (prune_floor_) {
      // Incremental version-chain pruning (docs/CONCURRENCY.md): retire,
      // for just the handles this commit touched, every superseded
      // version no pinned snapshot and no future pin can see. The pin
      // set and the floor are collected in ONE registry critical
      // section, so a pin registered later necessarily reads an LSN >=
      // the floor and cannot need anything pruned below it. Non-blocking
      // on purpose: a pin acquisition can be parked inside the registry's
      // critical section (server.pin.acquire), and a committer must not
      // wait behind it — a skipped prune is retried by the next commit
      // touching the chain, and checkpoints prune unconditionally.
      std::vector<uint64_t> pins;
      uint64_t floor = 0;
      if (snapshots_.TryCollectPinned(prune_floor_, &pins, &floor)) {
        auto touched = journal;
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        for (const auto& [table, handle] : touched) {
          auto t = GetTable(table);
          if (t.ok()) t.value()->PruneChainPinned(handle, pins, floor);
        }
      }
    }
  }
  uint64_t prev = last_commit_lsn_.load(std::memory_order_acquire);
  while (commit_lsn > prev && !last_commit_lsn_.compare_exchange_weak(
                                  prev, commit_lsn,
                                  std::memory_order_acq_rel)) {
  }
  journal.clear();
  active_undo().Clear();
}

size_t Database::PruneVersions(uint64_t floor) {
  size_t pruned = 0;
  for (auto& [name, table] : tables_) pruned += table.PruneVersions(floor);
  return pruned;
}

size_t Database::VersionCount() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.version_count();
  return n;
}

// ---------------------------------------------------------------------------
// Recovery-only redo application
// ---------------------------------------------------------------------------

Status Database::ApplyRedoInsert(std::string_view table, TupleHandle handle,
                                 Row after) {
  FailpointRegistry::SuppressScope no_failpoints;
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  if (t->Contains(handle)) {
    return Status::DataLoss("redo insert into " + std::string(table) +
                            ": handle " + std::to_string(handle) +
                            " already present");
  }
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(after));
  SOPR_RETURN_NOT_OK(t->Insert(handle, std::move(after)));
  // With MVCC on (a replication follower applying while readers are
  // pinned) the mutation left a kPendingLsn sentinel; journal it so the
  // follower's per-group CommitAll stamps it at the commit LSN. Plain
  // recovery runs before EnableMvcc and never journals.
  if (mvcc_enabled_) active_journal().emplace_back(ToLower(table), handle);
  BumpNextHandle(handle + 1);
  return Status::OK();
}

Status Database::ApplyRedoDelete(std::string_view table, TupleHandle handle,
                                 const Row& before) {
  FailpointRegistry::SuppressScope no_failpoints;
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  auto current = t->Get(handle);
  if (!current.ok() || *current.value() != before) {
    return Status::DataLoss("redo delete from " + std::string(table) +
                            ": heap disagrees with logged before-image for "
                            "handle " +
                            std::to_string(handle));
  }
  SOPR_RETURN_NOT_OK(t->Erase(handle));
  if (mvcc_enabled_) active_journal().emplace_back(ToLower(table), handle);
  BumpNextHandle(handle + 1);
  return Status::OK();
}

Status Database::ApplyRedoUpdate(std::string_view table, TupleHandle handle,
                                 const Row& before, Row after) {
  FailpointRegistry::SuppressScope no_failpoints;
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  auto current = t->Get(handle);
  if (!current.ok() || *current.value() != before) {
    return Status::DataLoss("redo update in " + std::string(table) +
                            ": heap disagrees with logged before-image for "
                            "handle " +
                            std::to_string(handle));
  }
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(after));
  SOPR_RETURN_NOT_OK(t->Replace(handle, std::move(after)));
  if (mvcc_enabled_) active_journal().emplace_back(ToLower(table), handle);
  BumpNextHandle(handle + 1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Integrity: checksums and invariants
// ---------------------------------------------------------------------------

namespace {

uint64_t HashValue(uint64_t h, const Value& v) {
  auto tag = static_cast<uint64_t>(v.type());
  h = digest::MixU64(h, tag);
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      h = digest::MixU64(h, v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      h = digest::MixU64(h, static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      h = digest::MixU64(h, bits);
      break;
    }
    case ValueType::kString:
      h = digest::Mix(h, v.AsString().data(), v.AsString().size());
      break;
  }
  return h;
}

// Domain-separation seeds so a row, an index entry, and a schema entry
// can never collide into the same per-entry hash.
constexpr uint64_t kRowSeed = digest::kFnvOffset;
constexpr uint64_t kIndexSeed = digest::kFnvOffset ^ 0xa5a5a5a5a5a5a5a5ull;
constexpr uint64_t kSchemaSeed = digest::kFnvOffset ^ 0x3c3c3c3c3c3c3c3cull;

}  // namespace

uint64_t Database::Checksum() const {
  uint64_t sum = 0;
  for (const auto& [name, table] : tables_) {
    // Catalog: table name, column names/types, and which columns carry an
    // index — so a dropped column, a renamed table, or a lost index
    // definition changes the checksum even when no rows exist.
    {
      uint64_t h = digest::MixString(kSchemaSeed, name);
      for (const ColumnDef& col : table.schema().columns()) {
        h = digest::MixString(h, ToLower(col.name));
        h = digest::MixU64(h, static_cast<uint64_t>(col.type));
      }
      for (size_t c = 0; c < table.schema().num_columns(); ++c) {
        if (table.GetIndex(c) != nullptr) h = digest::MixU64(h, c);
      }
      sum += digest::Finalize(h);
    }
    for (const auto& [handle, row] : table.rows()) {
      uint64_t h = digest::Mix(kRowSeed, name.data(), name.size());
      h = digest::MixU64(h, handle);
      for (size_t c = 0; c < row.size(); ++c) h = HashValue(h, row.at(c));
      sum += digest::Finalize(h);
    }
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const ColumnIndex* index = table.GetIndex(c);
      if (index == nullptr) continue;
      index->ForEachEntry([&](const Value& key, TupleHandle handle) {
        uint64_t h = digest::Mix(kIndexSeed, name.data(), name.size());
        h = digest::MixU64(h, c);
        h = HashValue(h, key);
        h = digest::MixU64(h, handle);
        sum += digest::Finalize(h);
      });
    }
  }
  return sum;
}

uint64_t Database::LogicalChecksum() const {
  uint64_t sum = 0;
  for (const auto& [name, table] : tables_) {
    {
      uint64_t h = digest::MixString(kSchemaSeed, name);
      for (const ColumnDef& col : table.schema().columns()) {
        h = digest::MixString(h, ToLower(col.name));
        h = digest::MixU64(h, static_cast<uint64_t>(col.type));
      }
      for (size_t c = 0; c < table.schema().num_columns(); ++c) {
        if (table.GetIndex(c) != nullptr) h = digest::MixU64(h, c);
      }
      sum += digest::Finalize(h);
    }
    // Rows by value only — no handle, and no index entries (index
    // contents map values to handles). The commutative sum makes this a
    // multiset digest, so duplicate rows still count separately.
    for (const auto& [handle, row] : table.rows()) {
      (void)handle;
      uint64_t h = digest::Mix(kRowSeed, name.data(), name.size());
      for (size_t c = 0; c < row.size(); ++c) h = HashValue(h, row.at(c));
      sum += digest::Finalize(h);
    }
  }
  return sum;
}

Status Database::CheckInvariants() const {
  // Catalog ↔ heap agreement: the two views of "which tables exist" must
  // be identical (recovery certifies with this after replaying DDL).
  std::vector<std::string> names = catalog_.TableNames();
  if (names.size() != tables_.size()) {
    return Status::Internal(
        "catalog lists " + std::to_string(names.size()) +
        " tables but the heap holds " + std::to_string(tables_.size()));
  }
  for (const std::string& name : names) {
    auto it = tables_.find(ToLower(name));
    if (it == tables_.end()) {
      return Status::Internal("catalog table " + name + " has no heap");
    }
    if (ToLower(it->second.schema().name()) != ToLower(name)) {
      return Status::Internal("heap entry for " + name +
                              " holds schema named " +
                              it->second.schema().name());
    }
  }
  for (const auto& [name, table] : tables_) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const ColumnIndex* index = table.GetIndex(c);
      if (index == nullptr) continue;
      size_t indexed_rows = 0;
      for (const auto& [handle, row] : table.rows()) {
        const Value& key = row.at(c);
        if (key.is_null()) continue;  // NULLs are not indexed
        ++indexed_rows;
        const std::set<TupleHandle>* bucket = index->Lookup(key);
        if (bucket == nullptr || bucket->count(handle) == 0) {
          return Status::Internal(
              "index on " + name + "." +
              table.schema().columns()[c].name + " is missing handle " +
              std::to_string(handle) + " for key " + key.ToString());
        }
      }
      if (index->num_entries() != indexed_rows) {
        return Status::Internal(
            "index on " + name + "." + table.schema().columns()[c].name +
            " has " + std::to_string(index->num_entries()) +
            " entries but the heap has " + std::to_string(indexed_rows) +
            " indexable rows (stale entries)");
      }
    }
  }
  return Status::OK();
}

}  // namespace sopr
