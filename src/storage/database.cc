#include "storage/database.h"

#include <cstring>
#include <vector>

#include "common/digest.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace sopr {

Status Database::ConcurrentMutationError() {
  return Status::Internal(
      "concurrent Database mutation detected: the commit scheduler must "
      "serialize writers (docs/CONCURRENCY.md)");
}

Status Database::CreateTable(TableSchema schema) {
  std::string key = ToLower(schema.name());
  SOPR_RETURN_NOT_OK(catalog_.AddTable(schema));
  auto [it, inserted] = tables_.emplace(std::move(key), Table(std::move(schema)));
  if (inserted && mvcc_enabled_) it->second.EnableMvcc();
  return Status::OK();
}

void Database::EnableMvcc() {
  mvcc_enabled_ = true;
  for (auto& [name, table] : tables_) table.EnableMvcc();
}

Status Database::DropTable(std::string_view name) {
  SOPR_RETURN_NOT_OK(catalog_.DropTable(name));
  tables_.erase(ToLower(name));
  return Status::OK();
}

Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<TupleHandle> Database::InsertRow(std::string_view table, Row row) {
  MutationScope scope(&active_mutators_);
  if (!scope.exclusive) return ConcurrentMutationError();
  SOPR_FAILPOINT_RETURN("storage.insert.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(row));
  TupleHandle handle = next_handle_++;
  Row wal_image;
  if (wal_ != nullptr) wal_image = row;  // after-image for the redo record
  SOPR_RETURN_NOT_OK(t->Insert(handle, std::move(row)));
  // A mutation that cannot be undo-logged (or redo-buffered) must not stay
  // applied: without the records, rollback could not remove it, or a
  // commit would silently lose it from the durable log.
  UndoLog::Mark pos = undo_.mark();
  Status logged = undo_.RecordInsert(ToLower(table), handle);
  if (logged.ok() && wal_ != nullptr) {
    logged = wal_->RedoInsert(pos, ToLower(table), handle, wal_image);
    if (!logged.ok()) undo_.TruncateTo(pos);  // drop the orphan undo record
  }
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->RollbackInsert(handle));
    return logged;
  }
  if (mvcc_enabled_) mvcc_journal_.emplace_back(ToLower(table), handle);
  SOPR_FAILPOINT_RETURN("storage.insert.post");
  return handle;
}

Status Database::DeleteRow(std::string_view table, TupleHandle handle) {
  MutationScope scope(&active_mutators_);
  if (!scope.exclusive) return ConcurrentMutationError();
  SOPR_FAILPOINT_RETURN("storage.delete.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_ASSIGN_OR_RETURN(const Row* row, t->Get(handle));
  Row old_row = *row;
  SOPR_RETURN_NOT_OK(t->Erase(handle));
  UndoLog::Mark pos = undo_.mark();
  Status logged = undo_.RecordDelete(ToLower(table), handle, old_row);
  if (logged.ok() && wal_ != nullptr) {
    logged = wal_->RedoDelete(pos, ToLower(table), handle, old_row);
    if (!logged.ok()) undo_.TruncateTo(pos);  // drop the orphan undo record
  }
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->RollbackDelete(handle, std::move(old_row)));
    return logged;
  }
  if (mvcc_enabled_) mvcc_journal_.emplace_back(ToLower(table), handle);
  SOPR_FAILPOINT_RETURN("storage.delete.post");
  return Status::OK();
}

Status Database::UpdateRow(std::string_view table, TupleHandle handle,
                           Row new_row) {
  MutationScope scope(&active_mutators_);
  if (!scope.exclusive) return ConcurrentMutationError();
  SOPR_FAILPOINT_RETURN("storage.update.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(new_row));
  SOPR_ASSIGN_OR_RETURN(const Row* row, t->Get(handle));
  Row old_row = *row;
  Row wal_after;
  if (wal_ != nullptr) wal_after = new_row;  // post-image for the redo record
  SOPR_RETURN_NOT_OK(t->Replace(handle, std::move(new_row)));
  UndoLog::Mark pos = undo_.mark();
  Status logged = undo_.RecordUpdate(ToLower(table), handle, old_row);
  if (logged.ok() && wal_ != nullptr) {
    logged = wal_->RedoUpdate(pos, ToLower(table), handle, old_row, wal_after);
    if (!logged.ok()) undo_.TruncateTo(pos);  // drop the orphan undo record
  }
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->RollbackUpdate(handle, std::move(old_row)));
    return logged;
  }
  if (mvcc_enabled_) mvcc_journal_.emplace_back(ToLower(table), handle);
  SOPR_FAILPOINT_RETURN("storage.update.post");
  return Status::OK();
}

Status Database::RollbackTo(UndoLog::Mark mark) {
  MutationScope scope(&active_mutators_);
  if (!scope.exclusive) return ConcurrentMutationError();
  // Undone mutations must never reach the durable log: drop their
  // buffered redo records before touching the heap.
  if (wal_ != nullptr) wal_->RedoDiscardAfter(mark);
  // Rollback replays the undo log through the same Table mutation code the
  // failpoints instrument; it must be infallible or a failed transaction
  // could land in a third state between "committed" and "S0".
  FailpointRegistry::SuppressScope no_failpoints;
  const auto& records = undo_.records();
  for (size_t i = records.size(); i > mark; --i) {
    const UndoRecord& rec = records[i - 1];
    auto table_result = GetTable(rec.table);
    if (!table_result.ok()) return table_result.status();
    Table* t = table_result.value();
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        SOPR_RETURN_NOT_OK(t->RollbackInsert(rec.handle));
        break;
      case UndoRecord::Kind::kDelete:
        SOPR_RETURN_NOT_OK(t->RollbackDelete(rec.handle, rec.old_row));
        break;
      case UndoRecord::Kind::kUpdate:
        SOPR_RETURN_NOT_OK(t->RollbackUpdate(rec.handle, rec.old_row));
        break;
    }
  }
  undo_.TruncateTo(mark);
  // Keep the MVCC journal 1:1 with the undo log: the rolled-back
  // mutations left no version state behind (structural undo), so their
  // journal entries must go too.
  if (mvcc_journal_.size() > mark) mvcc_journal_.resize(mark);
  return Status::OK();
}

void Database::CommitAll(uint64_t commit_lsn) {
  if (mvcc_enabled_ && !mvcc_journal_.empty()) {
    if (commit_lsn == 0) {
      // No WAL: synthesize a commit LSN. Single-writer discipline makes
      // the read-modify-write safe.
      commit_lsn = last_commit_lsn_.load(std::memory_order_acquire) + 1;
    }
    for (const auto& [table, handle] : mvcc_journal_) {
      auto t = GetTable(table);
      if (t.ok()) t.value()->StampVersions(handle, commit_lsn);
    }
  }
  if (commit_lsn > last_commit_lsn_.load(std::memory_order_acquire)) {
    last_commit_lsn_.store(commit_lsn, std::memory_order_release);
  }
  mvcc_journal_.clear();
  undo_.Clear();
}

size_t Database::PruneVersions(uint64_t floor) {
  size_t pruned = 0;
  for (auto& [name, table] : tables_) pruned += table.PruneVersions(floor);
  return pruned;
}

size_t Database::VersionCount() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.version_count();
  return n;
}

// ---------------------------------------------------------------------------
// Recovery-only redo application
// ---------------------------------------------------------------------------

Status Database::ApplyRedoInsert(std::string_view table, TupleHandle handle,
                                 Row after) {
  FailpointRegistry::SuppressScope no_failpoints;
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  if (t->Contains(handle)) {
    return Status::DataLoss("redo insert into " + std::string(table) +
                            ": handle " + std::to_string(handle) +
                            " already present");
  }
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(after));
  SOPR_RETURN_NOT_OK(t->Insert(handle, std::move(after)));
  BumpNextHandle(handle + 1);
  return Status::OK();
}

Status Database::ApplyRedoDelete(std::string_view table, TupleHandle handle,
                                 const Row& before) {
  FailpointRegistry::SuppressScope no_failpoints;
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  auto current = t->Get(handle);
  if (!current.ok() || *current.value() != before) {
    return Status::DataLoss("redo delete from " + std::string(table) +
                            ": heap disagrees with logged before-image for "
                            "handle " +
                            std::to_string(handle));
  }
  SOPR_RETURN_NOT_OK(t->Erase(handle));
  BumpNextHandle(handle + 1);
  return Status::OK();
}

Status Database::ApplyRedoUpdate(std::string_view table, TupleHandle handle,
                                 const Row& before, Row after) {
  FailpointRegistry::SuppressScope no_failpoints;
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  auto current = t->Get(handle);
  if (!current.ok() || *current.value() != before) {
    return Status::DataLoss("redo update in " + std::string(table) +
                            ": heap disagrees with logged before-image for "
                            "handle " +
                            std::to_string(handle));
  }
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(after));
  SOPR_RETURN_NOT_OK(t->Replace(handle, std::move(after)));
  BumpNextHandle(handle + 1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Integrity: checksums and invariants
// ---------------------------------------------------------------------------

namespace {

uint64_t HashValue(uint64_t h, const Value& v) {
  auto tag = static_cast<uint64_t>(v.type());
  h = digest::MixU64(h, tag);
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      h = digest::MixU64(h, v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      h = digest::MixU64(h, static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      h = digest::MixU64(h, bits);
      break;
    }
    case ValueType::kString:
      h = digest::Mix(h, v.AsString().data(), v.AsString().size());
      break;
  }
  return h;
}

// Domain-separation seeds so a row, an index entry, and a schema entry
// can never collide into the same per-entry hash.
constexpr uint64_t kRowSeed = digest::kFnvOffset;
constexpr uint64_t kIndexSeed = digest::kFnvOffset ^ 0xa5a5a5a5a5a5a5a5ull;
constexpr uint64_t kSchemaSeed = digest::kFnvOffset ^ 0x3c3c3c3c3c3c3c3cull;

}  // namespace

uint64_t Database::Checksum() const {
  uint64_t sum = 0;
  for (const auto& [name, table] : tables_) {
    // Catalog: table name, column names/types, and which columns carry an
    // index — so a dropped column, a renamed table, or a lost index
    // definition changes the checksum even when no rows exist.
    {
      uint64_t h = digest::MixString(kSchemaSeed, name);
      for (const ColumnDef& col : table.schema().columns()) {
        h = digest::MixString(h, ToLower(col.name));
        h = digest::MixU64(h, static_cast<uint64_t>(col.type));
      }
      for (size_t c = 0; c < table.schema().num_columns(); ++c) {
        if (table.GetIndex(c) != nullptr) h = digest::MixU64(h, c);
      }
      sum += digest::Finalize(h);
    }
    for (const auto& [handle, row] : table.rows()) {
      uint64_t h = digest::Mix(kRowSeed, name.data(), name.size());
      h = digest::MixU64(h, handle);
      for (size_t c = 0; c < row.size(); ++c) h = HashValue(h, row.at(c));
      sum += digest::Finalize(h);
    }
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const ColumnIndex* index = table.GetIndex(c);
      if (index == nullptr) continue;
      index->ForEachEntry([&](const Value& key, TupleHandle handle) {
        uint64_t h = digest::Mix(kIndexSeed, name.data(), name.size());
        h = digest::MixU64(h, c);
        h = HashValue(h, key);
        h = digest::MixU64(h, handle);
        sum += digest::Finalize(h);
      });
    }
  }
  return sum;
}

Status Database::CheckInvariants() const {
  // Catalog ↔ heap agreement: the two views of "which tables exist" must
  // be identical (recovery certifies with this after replaying DDL).
  std::vector<std::string> names = catalog_.TableNames();
  if (names.size() != tables_.size()) {
    return Status::Internal(
        "catalog lists " + std::to_string(names.size()) +
        " tables but the heap holds " + std::to_string(tables_.size()));
  }
  for (const std::string& name : names) {
    auto it = tables_.find(ToLower(name));
    if (it == tables_.end()) {
      return Status::Internal("catalog table " + name + " has no heap");
    }
    if (ToLower(it->second.schema().name()) != ToLower(name)) {
      return Status::Internal("heap entry for " + name +
                              " holds schema named " +
                              it->second.schema().name());
    }
  }
  for (const auto& [name, table] : tables_) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const ColumnIndex* index = table.GetIndex(c);
      if (index == nullptr) continue;
      size_t indexed_rows = 0;
      for (const auto& [handle, row] : table.rows()) {
        const Value& key = row.at(c);
        if (key.is_null()) continue;  // NULLs are not indexed
        ++indexed_rows;
        const std::set<TupleHandle>* bucket = index->Lookup(key);
        if (bucket == nullptr || bucket->count(handle) == 0) {
          return Status::Internal(
              "index on " + name + "." +
              table.schema().columns()[c].name + " is missing handle " +
              std::to_string(handle) + " for key " + key.ToString());
        }
      }
      if (index->num_entries() != indexed_rows) {
        return Status::Internal(
            "index on " + name + "." + table.schema().columns()[c].name +
            " has " + std::to_string(index->num_entries()) +
            " entries but the heap has " + std::to_string(indexed_rows) +
            " indexable rows (stale entries)");
      }
    }
  }
  return Status::OK();
}

}  // namespace sopr
